//! Vendored, offline subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace builds with no network access, so the real crates.io
//! release cannot be fetched. This stub keeps the same bench-authoring
//! API (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `Bencher::iter` / `iter_batched`, throughput annotations) but replaces
//! the statistical machinery with a simple calibrated timing loop: each
//! benchmark is warmed up, then measured for a fixed wall-clock window,
//! and the mean time per iteration is printed as
//! `group/name ... <mean> ns/iter (<throughput>)`.
//!
//! Under `cargo test` (which runs `harness = false` bench targets with
//! `--test`) every benchmark executes exactly one iteration, so benches
//! stay compile- and run-checked without burning CI time.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input: batches of many iterations.
    SmallInput,
    /// Large routine input: smaller batches.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle passed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    measure_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            measure_window: Duration::from_millis(120),
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (`--test`); returns `self` for
    /// drop-in compatibility with the real API.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        let window = self.measure_window;
        run_one(id, None, test_mode, window, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/size settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub's sampling is time-boxed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.criterion.measure_window = window.min(Duration::from_secs(1));
        self
    }

    /// Benchmarks one function in this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.throughput,
            self.criterion.test_mode,
            self.criterion.measure_window,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F>(
    label: &str,
    throughput: Option<Throughput>,
    test_mode: bool,
    window: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: if test_mode { 1 } else { 0 },
        window,
        total: Duration::ZERO,
        executed: 0,
    };
    f(&mut b);
    if test_mode {
        println!("{label}: ok (test mode)");
        return;
    }
    let mean_ns = if b.executed == 0 {
        f64::NAN
    } else {
        b.total.as_secs_f64() * 1e9 / b.executed as f64
    };
    match throughput {
        Some(Throughput::Elements(n)) if mean_ns.is_finite() && mean_ns > 0.0 => {
            let rate = n as f64 / (mean_ns * 1e-9);
            println!("{label}: {mean_ns:.1} ns/iter ({rate:.3e} elem/s)");
        }
        Some(Throughput::Bytes(n)) if mean_ns.is_finite() && mean_ns > 0.0 => {
            let rate = n as f64 / (mean_ns * 1e-9) / (1 << 20) as f64;
            println!("{label}: {mean_ns:.1} ns/iter ({rate:.1} MiB/s)");
        }
        _ => println!("{label}: {mean_ns:.1} ns/iter"),
    }
}

/// Passed to each benchmark closure; runs the timing loops.
#[derive(Debug)]
pub struct Bencher {
    /// Nonzero forces exactly that many iterations (test mode).
    iters: u64,
    window: Duration,
    total: Duration,
    executed: u64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.iters > 0 {
            let start = Instant::now();
            for _ in 0..self.iters {
                black_box(routine());
            }
            self.record(start.elapsed(), self.iters);
            return;
        }
        // Calibrate: find an iteration count that fills ~1/8 window.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= self.window / 8 || n >= 1 << 30 {
                self.record(took, n);
                break;
            }
            n *= 2;
        }
        // Measure until the window is spent.
        let deadline = Instant::now() + self.window;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            self.record(start.elapsed(), n);
        }
    }

    /// Times `routine` on fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let reps = if self.iters > 0 {
            self.iters
        } else {
            // Time-boxed: run batches until the window is spent, at least
            // three reps so the mean is not a single sample.
            let deadline = Instant::now() + self.window;
            let mut reps = 0u64;
            while reps < 3 || Instant::now() < deadline {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                self.record(start.elapsed(), 1);
                reps += 1;
                if reps >= 10_000 {
                    break;
                }
            }
            return;
        };
        for _ in 0..reps {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.record(start.elapsed(), 1);
        }
    }

    fn record(&mut self, took: Duration, iters: u64) {
        self.total += took;
        self.executed += iters;
    }
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
