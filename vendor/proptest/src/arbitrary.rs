//! `any::<T>()` — whole-domain strategies for the primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only; magnitude spread over ~±2^64.
        let mantissa = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 129) as i32 - 64;
        mantissa * exp2(exp)
    }
}

fn exp2(e: i32) -> f64 {
    f64::from(e).exp2()
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Whole-domain strategy for `A`.
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}
