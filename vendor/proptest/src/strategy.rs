//! The [`Strategy`] trait and the primitive strategies: ranges, tuples,
//! map/flat-map combinators, and [`Just`].

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of test inputs.
///
/// Unlike the real proptest there is no value tree / shrinking: a
/// strategy simply produces a value from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `f` (retry with a cap, then
    /// reject loudly by panicking: good enough for a test stub).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

// `&S` is a strategy too, so strategies can be passed by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 straight values",
            self.whence
        );
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a uniform draw over `[lo, hi)` / `[lo, hi]`.
pub trait SampleUniform: Copy {
    /// Uniform draw from the half-open interval; `lo < hi`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// Uniform draw from the closed interval; `lo <= hi`.
    fn sample_closed(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as $t;
                lo.wrapping_add(draw)
            }
            fn sample_closed(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Entire domain.
                    return rng.next_u64() as $t;
                }
                let draw = (u128::from(rng.next_u64()) % span) as $t;
                lo.wrapping_add(draw)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        assert!(lo < hi, "empty range strategy");
        let v = lo + (hi - lo) * rng.next_f64();
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo
        } else {
            v
        }
    }
    fn sample_closed(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.next_f64()
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        f64::sample_half_open(f64::from(lo), f64::from(hi), rng) as f32
    }
    fn sample_closed(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        f64::sample_closed(f64::from(lo), f64::from(hi), rng) as f32
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_closed(*self.start(), *self.end(), rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
