//! Vendored, offline subset of the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! This workspace builds with no network access, so the real crates.io
//! release cannot be fetched. This stub reimplements exactly the surface
//! the workspace's property tests use, with the same names and semantics:
//!
//! * the [`proptest!`] macro (doc comments + `#[test]` + `pat in strategy`
//!   argument lists),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * range strategies over the primitive numeric types,
//!   [`arbitrary::any`], tuple strategies, [`collection::vec`], and
//!   [`strategy::Just`].
//!
//! Unlike the real proptest there is **no shrinking** and no persisted
//! failure file: a failing case panics with the generated inputs'
//! formatted message and the case's seed. Case count defaults to 64 and
//! can be raised with `PROPTEST_CASES=n`.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Mirrors `proptest::prelude`: everything the test files import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// Each item is an ordinary test function whose arguments are drawn from
/// strategies: `fn name(x in 0u64..100, v in prop::collection::vec(...))`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__pt_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), __pt_rng);
                    )*
                    {
                        $body
                    }
                    Ok(())
                });
            }
        )*
    };
}

/// Like `assert!`, but reports the failing case through the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but reports the failing case through the runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{l:?}`\n right: `{r:?}`"
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{l:?}`\n right: `{r:?}`\n{}",
                format!($($fmt)+)
            )));
        }
    }};
}

/// Like `assert_ne!`, but reports the failing case through the runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  left: `{l:?}`\n right: `{r:?}`"
            )));
        }
    }};
}

/// Rejects the current case without counting it as a run.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}
