//! The case loop: deterministic seeding, rejection bookkeeping, failure
//! reporting. No shrinking — the failing seed is printed instead.

/// Outcome of one generated case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assumptions did not hold; it is not counted.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (vacuous) case.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic 64-bit generator (SplitMix64) driving all strategies.
///
/// Self-contained so the stub has no dependencies (the workspace's own
/// `ac-randkit` dev-depends on this crate).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Runs `body` against `cases()` generated inputs.
///
/// The per-case seed is derived from the test name and the case index, so
/// failures are reproducible and independent of test ordering.
pub fn run<F>(name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let target = cases();
    let max_rejects = target.saturating_mul(16).max(1024);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while accepted < target {
        let seed = base ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d);
        let mut rng = TestRng::new(seed);
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest '{name}': too many rejected cases ({rejected}); \
                     last assumption: {why}"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {case} (seed {seed:#018x}):\n{msg}");
            }
        }
        case += 1;
    }
}
