//! Property-based tests for the lower-bound machinery.

use ac_automaton::pump::{find_witness, verify_witness};
use ac_automaton::{DeterministicCounter, RandomizedCounter};
use proptest::prelude::*;

/// Strategy: a random deterministic automaton on 1..=24 states.
fn automaton_strategy() -> impl Strategy<Value = DeterministicCounter> {
    (1usize..=24).prop_flat_map(|n| {
        (0..n as u32, prop::collection::vec(0..n as u32, n))
            .prop_map(|(init, trans)| DeterministicCounter::new(init, trans))
    })
}

proptest! {
    /// The rho-analysis agrees with brute-force simulation at arbitrary
    /// times.
    #[test]
    fn analysis_matches_simulation(dfa in automaton_strategy(), t in 0u64..2_000) {
        // Brute force.
        let mut s = dfa.init();
        for _ in 0..t {
            s = dfa.transitions()[s as usize];
        }
        prop_assert_eq!(dfa.state_at(t), s);
    }

    /// Window state-sets match brute-force enumeration.
    #[test]
    fn windows_match_brute_force(dfa in automaton_strategy(), lo in 0u64..500, span in 0u64..500) {
        let fast = dfa.states_in_window(lo, lo + span);
        let mut expect = ac_automaton::StateSet::new(dfa.num_states());
        for t in lo..=lo + span {
            expect.insert(dfa.state_at(t));
        }
        prop_assert_eq!(fast, expect);
    }

    /// Whenever the pigeonhole applies (fewer states than T/2), a pump
    /// witness exists, verifies, and refutes distinguishing.
    #[test]
    fn pumping_is_sound_and_complete(dfa in automaton_strategy(), t_exp in 6u32..14) {
        let t_param = 1u64 << t_exp;
        if (dfa.num_states() as u64) < t_param / 2 {
            let w = find_witness(&dfa, t_param);
            prop_assert!(w.is_some(), "pigeonhole guarantees a witness");
            let w = w.unwrap();
            prop_assert!(verify_witness(&dfa, &w, t_param));
            prop_assert!(!dfa.distinguishes(t_param));
        }
    }

    /// Distinguishing and window intersection are complementary by
    /// definition; re-verify through the public API on random automata.
    #[test]
    fn distinguish_consistency(dfa in automaton_strategy(), t_exp in 3u32..10) {
        let t = 1u64 << t_exp;
        let low = dfa.states_in_window(1, t / 2);
        let high = dfa.states_in_window(2 * t, 4 * t);
        prop_assert_eq!(dfa.distinguishes(t), !low.intersects(&high));
    }

    /// Derandomization picks a valid transition function: the chosen
    /// successor always carries the row's maximal probability.
    #[test]
    fn derandomize_takes_argmax(rows in prop::collection::vec(prop::collection::vec(0.01f64..1.0, 4), 4)) {
        // Normalize rows into distributions over 4 states.
        let trans: Vec<Vec<f64>> = rows
            .iter()
            .map(|row| {
                let sum: f64 = row.iter().sum();
                row.iter().map(|&w| w / sum).collect()
            })
            .collect();
        let init = vec![0.25; 4];
        let auto = RandomizedCounter::new(init, trans.clone());
        let det = auto.derandomize();
        for (s, row) in trans.iter().enumerate() {
            let chosen = det.transitions()[s] as usize;
            let max = row.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(row[chosen] >= max - 1e-12);
        }
    }

    /// The derandomized path probability is a real probability and no
    /// smaller than (min transition prob)^(n+1) can force... sanity: in
    /// (0, 1] and monotone nonincreasing in n.
    #[test]
    fn path_probability_sane(n1 in 0u64..50, n2 in 0u64..50) {
        let auto = ac_automaton::adapter::morris_automaton(0.7, 16);
        let (lo, hi) = (n1.min(n2), n1.max(n2));
        let p_lo = auto.derandomized_path_probability(lo);
        let p_hi = auto.derandomized_path_probability(hi);
        prop_assert!(p_lo > 0.0 && p_lo <= 1.0);
        prop_assert!(p_hi <= p_lo + 1e-12, "longer paths are never likelier");
    }
}
