//! # `ac-automaton` — the Section 3 lower bound, executable
//!
//! Nelson & Yu prove their space lower bound
//! (`S ≥ Ω(min{log n, log log n + log 1/ε + log log 1/δ})`, Theorem 3.1)
//! by a chain of constructive steps. Every step is an algorithm, so this
//! crate implements them:
//!
//! 1. **Modeling** ([`DeterministicCounter`], [`RandomizedCounter`]): an
//!    `S`-bit counter is an automaton over at most `2^S` memory states
//!    whose transition on an increment may be randomized.
//! 2. **Derandomization** ([`RandomizedCounter::derandomize`]): replace
//!    every transition distribution by its highest-probability outcome
//!    (lexicographically smallest on ties) — exactly the paper's `C_det`.
//! 3. **Pumping** ([`pump::find_witness`]): for a deterministic automaton
//!    with `2^S ≤ T/2` states, constructively find times
//!    `N₁ < N₂ ≤ T/2` that collide on a state and a pumped time
//!    `N₃ ∈ [2T, 4T]` reaching the same state — a concrete pair of counts
//!    the automaton provably cannot distinguish.
//! 4. **Exhaustive verification** ([`exhaustive`]): for small state
//!    budgets, enumerate *every* deterministic automaton and verify none
//!    distinguishes `[1, T/2]` from `[2T, 4T]`, and find the true minimal
//!    number of states that can (it is `T/2 + 2`: a saturating counter).
//! 5. **Application to the real algorithms** ([`adapter`]): wrap
//!    `Morris(a)` and the Csűrös counter as randomized automata and watch
//!    their derandomized versions freeze at a constant level, exactly as
//!    the proof predicts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
mod dfa;
pub mod exhaustive;
pub mod matrix;
pub mod pump;
mod randomized;

pub use dfa::{DeterministicCounter, StateSet};
pub use randomized::RandomizedCounter;
