//! Exact distribution evolution for randomized counter automata.
//!
//! For a randomized automaton with transition matrix `P`, the state
//! distribution after `n` increments is `π₀·Pⁿ` — computable exactly by
//! repeated vector-matrix products (O(n·m²)) or matrix squaring
//! (O(log n · m³)). This gives *exact* failure probabilities for capped
//! real counters at any `N`, complementing the per-algorithm DP in
//! `ac-core` and making the lower-bound experiments quantitative: the
//! distinguishing advantage of a randomized counter can be computed, not
//! just sampled.

use crate::RandomizedCounter;

/// The exact state distribution of `auto` after `n` increments.
///
/// Uses iterated vector-matrix products for `n ≤ 4·m` (cheaper and
/// numerically gentler) and binary-exponentiation matrix powers
/// otherwise.
#[must_use]
pub fn distribution_after(auto: &RandomizedCounter, n: u64) -> Vec<f64> {
    let m = auto.num_states();
    let mut pi: Vec<f64> = auto.init_distribution().to_vec();
    if n <= 4 * m as u64 {
        for _ in 0..n {
            pi = step(auto, &pi);
        }
        return pi;
    }
    // Matrix power by squaring.
    let mut base: Vec<Vec<f64>> = (0..m)
        .map(|s| auto.transition_row(s as u32).to_vec())
        .collect();
    let mut exp = n;
    loop {
        if exp & 1 == 1 {
            pi = vec_mat(&pi, &base);
        }
        exp >>= 1;
        if exp == 0 {
            break;
        }
        base = mat_mat(&base, &base);
    }
    pi
}

/// One exact transition step `π ← π·P`.
#[must_use]
pub fn step(auto: &RandomizedCounter, pi: &[f64]) -> Vec<f64> {
    let m = auto.num_states();
    assert_eq!(pi.len(), m, "distribution dimension mismatch");
    let mut out = vec![0.0; m];
    for (s, &mass) in pi.iter().enumerate() {
        if mass == 0.0 {
            continue;
        }
        for (s2, &p) in auto.transition_row(s as u32).iter().enumerate() {
            if p > 0.0 {
                out[s2] += mass * p;
            }
        }
    }
    out
}

fn vec_mat(v: &[f64], m: &[Vec<f64>]) -> Vec<f64> {
    let n = v.len();
    let mut out = vec![0.0; n];
    for (i, &x) in v.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &p) in m[i].iter().enumerate() {
            out[j] += x * p;
        }
    }
    out
}

fn mat_mat(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

/// The best achievable probability of distinguishing `N = n_low` from
/// `N = n_high` by any query function over the automaton's memory
/// states: `(1 + total-variation distance)/2` (the optimal test accepts
/// each state under its likelier hypothesis, both hypotheses equally
/// likely a priori).
///
/// For the paper's Theorem 3.1 task this quantifies how well a
/// *randomized* `S`-bit counter separates `[1, T/2]` from `[2T, 4T]` —
/// and how the advantage dies as the state budget shrinks.
#[must_use]
pub fn distinguishing_advantage(auto: &RandomizedCounter, n_low: u64, n_high: u64) -> f64 {
    let lo = distribution_after(auto, n_low);
    let hi = distribution_after(auto, n_high);
    let tv: f64 = lo
        .iter()
        .zip(hi.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / 2.0;
    0.5 * (1.0 + tv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::morris_automaton;
    use ac_randkit::Xoshiro256PlusPlus;

    #[test]
    fn distribution_is_stochastic() {
        let auto = morris_automaton(0.5, 20);
        for n in [0u64, 1, 7, 100, 10_000] {
            let pi = distribution_after(&auto, n);
            let total: f64 = pi.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n}: total={total}");
            assert!(pi.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
    }

    #[test]
    fn matches_core_exact_dp() {
        // The automaton matrix power must agree with
        // ac_core::exact_level_distribution on uncapped ranges.
        let (a, n) = (0.5, 30u64);
        let auto = morris_automaton(a, 63);
        let pi = distribution_after(&auto, n);
        let dp = ac_core::exact_level_distribution(a, n);
        for (j, &p) in dp.iter().enumerate() {
            assert!(
                (pi[j] - p).abs() < 1e-9,
                "level {j}: matrix {} vs dp {p}",
                pi[j]
            );
        }
    }

    #[test]
    fn power_path_matches_iterated_path() {
        // n chosen to force the matrix-squaring branch; compare against
        // brute iteration.
        let auto = morris_automaton(1.0, 10);
        let n = 500u64; // > 4·11 so the power path runs
        let by_power = distribution_after(&auto, n);
        let mut pi: Vec<f64> = auto.init_distribution().to_vec();
        for _ in 0..n {
            pi = step(&auto, &pi);
        }
        for (a, b) in by_power.iter().zip(pi.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_simulation() {
        let auto = morris_automaton(0.3, 15);
        let n = 200u64;
        let pi = distribution_after(&auto, n);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let trials = 40_000;
        let mut counts = vec![0u32; auto.num_states()];
        for _ in 0..trials {
            counts[auto.simulate(n, &mut rng) as usize] += 1;
        }
        for (s, (&p, &obs)) in pi.iter().zip(counts.iter()).enumerate() {
            let expected = p * f64::from(trials);
            if expected >= 25.0 {
                let sigma = (expected * (1.0 - p)).sqrt();
                assert!(
                    (f64::from(obs) - expected).abs() < 6.0 * sigma,
                    "state {s}: {obs} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn advantage_bounds_and_monotonicity() {
        let auto = morris_automaton(1.0, 30);
        // Identical inputs: advantage is exactly 1/2 (no information).
        let same = distinguishing_advantage(&auto, 100, 100);
        assert!((same - 0.5).abs() < 1e-12);
        // Very different counts: advantage approaches 1.
        let far = distinguishing_advantage(&auto, 8, 1 << 14);
        assert!(far > 0.9, "far={far}");
        // Closer counts: in between.
        let near = distinguishing_advantage(&auto, 1 << 10, 1 << 11);
        assert!(near > 0.5 && near < far, "near={near}, far={far}");
    }

    #[test]
    fn fewer_states_means_less_advantage() {
        // The lower-bound moral, exactly: capping the Morris counter at
        // fewer levels caps its ability to separate T/2 from 3T.
        let t = 1u64 << 10;
        let rich = morris_automaton(1.0, 16);
        let poor = morris_automaton(1.0, 4);
        let rich_adv = distinguishing_advantage(&rich, t / 2, 3 * t);
        let poor_adv = distinguishing_advantage(&poor, t / 2, 3 * t);
        assert!(
            rich_adv > poor_adv + 0.05,
            "rich {rich_adv} vs poor {poor_adv}"
        );
    }
}
