//! Wrapping the real counting algorithms as randomized automata.
//!
//! The lower-bound proof treats *any* `S`-bit counter as a randomized
//! automaton over `2^S` states. These adapters build that automaton
//! explicitly for capped `Morris(a)` and Csűrös counters, so the
//! derandomization step of the proof can be applied to the actual
//! algorithms of this workspace — and its prediction observed: the
//! derandomized counters freeze at the first level whose advance
//! probability drops below 1/2.

use crate::RandomizedCounter;

/// The capped `Morris(a)` counter as a randomized automaton: states are
/// levels `0..=cap`, an increment advances level `i` with probability
/// `(1+a)^{-i}` (the cap absorbs).
///
/// # Panics
///
/// Panics unless `a > 0` and `cap ≥ 1` (and small enough to enumerate,
/// `cap ≤ 2^20`).
#[must_use]
pub fn morris_automaton(a: f64, cap: u32) -> RandomizedCounter {
    assert!(a > 0.0 && a.is_finite(), "invalid base");
    assert!((1..=1 << 20).contains(&cap), "cap out of range");
    let n = cap as usize + 1;
    let ln1a = a.ln_1p();
    let mut trans = vec![vec![0.0; n]; n];
    for (i, row) in trans.iter_mut().enumerate() {
        if i == n - 1 {
            row[i] = 1.0; // absorbing cap
        } else {
            let p = (-(i as f64) * ln1a).exp();
            row[i + 1] = p;
            row[i] = 1.0 - p;
        }
    }
    let mut init = vec![0.0; n];
    init[0] = 1.0;
    RandomizedCounter::new(init, trans)
}

/// The capped Csűrös floating-point counter as a randomized automaton:
/// states are register values `0..=cap`, an increment advances register
/// `x` with probability `2^{-(x >> d)}`.
///
/// # Panics
///
/// Panics unless `cap ≥ 1` (and `cap ≤ 2^20`).
#[must_use]
pub fn csuros_automaton(d: u32, cap: u32) -> RandomizedCounter {
    assert!((1..=1 << 20).contains(&cap), "cap out of range");
    let n = cap as usize + 1;
    let mut trans = vec![vec![0.0; n]; n];
    for (x, row) in trans.iter_mut().enumerate() {
        if x == n - 1 {
            row[x] = 1.0;
        } else {
            let u = (x as u64) >> d;
            let p = (-(u as f64)).exp2();
            row[x + 1] = p;
            row[x] = 1.0 - p;
        }
    }
    let mut init = vec![0.0; n];
    init[0] = 1.0;
    RandomizedCounter::new(init, trans)
}

/// The level at which the derandomized `Morris(a)` freezes: the first `i`
/// with `(1+a)^{-i} ≤ 1/2`, i.e. `⌈log_{1+a} 2⌉` — a *constant*
/// independent of `N`, which is why derandomized approximate counting is
/// impossible (the crux of the Theorem 3.1 proof).
#[must_use]
pub fn morris_freeze_level(a: f64) -> u64 {
    assert!(a > 0.0 && a.is_finite());
    (std::f64::consts::LN_2 / a.ln_1p()).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pump;
    use ac_randkit::Xoshiro256PlusPlus;

    #[test]
    fn morris_automaton_rows_are_stochastic() {
        // Construction would panic otherwise; spot-check structure.
        let r = morris_automaton(1.0, 8);
        assert_eq!(r.num_states(), 9);
        assert_eq!(r.transition_row(0)[1], 1.0, "level 0 always advances");
        assert!((r.transition_row(3)[4] - 0.125).abs() < 1e-12);
    }

    #[test]
    fn derandomized_morris_freezes_at_constant_level() {
        // a = 1: freeze level is 1 (advance prob at level 1 is 1/2, tie →
        // stay... p=0.5 vs 0.5: lexicographic tie-break keeps "stay" iff
        // stay-index < advance-index, which holds). The point: the level
        // stops growing at a small constant.
        let det = morris_automaton(1.0, 64).derandomize();
        let a = det.analysis();
        let frozen = det.state_at(1 << 40);
        assert!(frozen <= 1, "froze at {frozen}");
        assert_eq!(a.cycle.len(), 1, "absorbed in a fixed point");
    }

    #[test]
    fn freeze_level_formula() {
        assert_eq!(morris_freeze_level(1.0), 1);
        // a = 0.1: log_{1.1} 2 ≈ 7.27 → 8.
        assert_eq!(morris_freeze_level(0.1), 8);
    }

    #[test]
    fn derandomized_morris_cannot_distinguish_large_ranges() {
        let det = morris_automaton(0.5, 32).derandomize();
        // Far beyond the freeze level the state is constant, so any
        // large-T distinguishing task fails and pumping finds a witness.
        assert!(!det.distinguishes(1 << 10));
        let w = pump::find_witness(&det, 1 << 10).expect("frozen state collides");
        assert!(pump::verify_witness(&det, &w, 1 << 10));
    }

    #[test]
    fn randomized_morris_does_distinguish_where_derandomized_fails() {
        // The randomized automaton concentrates: after N increments the
        // level is near log_{1+a}(aN+1), so small vs large N lands in
        // disjoint level ranges with high probability — while its
        // derandomization is stuck at one state. This is the heart of
        // the lower-bound contradiction, observed empirically.
        let a = 1.0;
        let cap = 40;
        let auto = morris_automaton(a, cap);
        let det = auto.derandomize();
        let t = 1u64 << 12;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        // Empirical separation of the randomized version.
        let mut low_levels = Vec::new();
        let mut high_levels = Vec::new();
        for _ in 0..300 {
            low_levels.push(auto.simulate(t / 2, &mut rng));
            high_levels.push(auto.simulate(3 * t, &mut rng));
        }
        let low_max = *low_levels.iter().max().unwrap();
        let high_min = *high_levels.iter().min().unwrap();
        // Median separation: levels differ by ~log2(6) ≈ 2.6; the
        // supports overlap rarely. Check medians instead of extremes.
        low_levels.sort_unstable();
        high_levels.sort_unstable();
        assert!(
            low_levels[150] < high_levels[150],
            "median low {} vs high {}",
            low_levels[150],
            high_levels[150]
        );
        let _ = (low_max, high_min);
        // The derandomized automaton, by contrast, is provably unable.
        assert!(!det.distinguishes(t));
    }

    #[test]
    fn csuros_automaton_structure() {
        let r = csuros_automaton(2, 16);
        // Registers 0..3 advance with probability 1 (u = 0).
        assert_eq!(r.transition_row(0)[1], 1.0);
        assert_eq!(r.transition_row(3)[4], 1.0);
        // Register 4 has u = 1: probability 1/2.
        assert!((r.transition_row(4)[5] - 0.5).abs() < 1e-12);
        // Derandomized: counts exactly to 2^d, then freezes (first level
        // with p ≤ 1/2 ties at exactly 1/2 → stays).
        let det = r.derandomize();
        assert_eq!(det.state_at(1 << 30), 4);
    }

    #[test]
    fn error_amplification_bound_matches_proof() {
        // The proof bounds the conditional error by δ·(2^S)^{N+1} via the
        // path probability ≥ (2^-S)^{N+1}. Our computed path probability
        // must respect that bound.
        let auto = morris_automaton(1.0, 7); // 8 states = 2^3
        let n = 20u64;
        let p = auto.derandomized_path_probability(n);
        let bound = (1.0f64 / 8.0).powi(n as i32 + 1);
        assert!(p >= bound, "p={p} < bound={bound}");
        assert!(p <= 1.0);
    }
}
