//! Deterministic counter automata and reachable-state analysis.

/// A deterministic counter automaton: a finite set of memory states, an
/// initial state, and one transition per state (the input alphabet is the
/// single symbol "increment").
///
/// Since the input is unary, the run is a "rho" shape: a tail followed by
/// a cycle. [`DeterministicCounter::analysis`] extracts that structure
/// once, after which the state at any time — and the state *set* over any
/// time interval — is O(cycle length) to compute, even for astronomically
/// large times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicCounter {
    init: u32,
    /// `trans[s]` = state after an increment in state `s`.
    trans: Vec<u32>,
}

/// The rho-structure of a deterministic unary automaton's run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunAnalysis {
    /// States visited before entering the cycle: `path[t]` is the state
    /// at time `t` (after `t` increments), for `t < path.len()`.
    /// `path[0]` is the initial state.
    pub tail: Vec<u32>,
    /// The states of the cycle in traversal order; the state at time
    /// `tail.len() + j` is `cycle[j % cycle.len()]`.
    pub cycle: Vec<u32>,
}

/// A set of automaton states (bitset over at most a few thousand states).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSet {
    bits: Vec<u64>,
}

impl StateSet {
    /// Creates an empty set over `n` states.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts state `s`.
    pub fn insert(&mut self, s: u32) {
        self.bits[(s / 64) as usize] |= 1u64 << (s % 64);
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, s: u32) -> bool {
        (self.bits[(s / 64) as usize] >> (s % 64)) & 1 == 1
    }

    /// True when the two sets share a state.
    #[must_use]
    pub fn intersects(&self, other: &StateSet) -> bool {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Number of member states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no state is a member.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

impl DeterministicCounter {
    /// Creates an automaton from an initial state and a transition table.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty, any transition points outside the
    /// state set, or the initial state is out of range.
    #[must_use]
    pub fn new(init: u32, trans: Vec<u32>) -> Self {
        let n = trans.len() as u32;
        assert!(n > 0, "automaton needs at least one state");
        assert!(init < n, "initial state out of range");
        assert!(
            trans.iter().all(|&s| s < n),
            "transition target out of range"
        );
        Self { init, trans }
    }

    /// Number of memory states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// The initial state.
    #[must_use]
    pub fn init(&self) -> u32 {
        self.init
    }

    /// The transition table.
    #[must_use]
    pub fn transitions(&self) -> &[u32] {
        &self.trans
    }

    /// The state reached after exactly `t` increments, in O(min(t, n))
    /// time via the rho-structure.
    #[must_use]
    pub fn state_at(&self, t: u64) -> u32 {
        let a = self.analysis();
        a.state_at(t)
    }

    /// Extracts the tail + cycle structure of the run (O(number of
    /// states)).
    #[must_use]
    pub fn analysis(&self) -> RunAnalysis {
        let n = self.trans.len();
        let mut first_seen = vec![u32::MAX; n];
        let mut order: Vec<u32> = Vec::with_capacity(n + 1);
        let mut s = self.init;
        loop {
            if first_seen[s as usize] != u32::MAX {
                let cycle_start = first_seen[s as usize] as usize;
                let cycle = order[cycle_start..].to_vec();
                let tail = order[..cycle_start].to_vec();
                return RunAnalysis { tail, cycle };
            }
            first_seen[s as usize] = order.len() as u32;
            order.push(s);
            s = self.trans[s as usize];
        }
    }

    /// The set of states visited at times `lo..=hi` (inclusive; time 0 is
    /// the initial state), computed in O(n) regardless of `hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn states_in_window(&self, lo: u64, hi: u64) -> StateSet {
        assert!(lo <= hi, "empty window");
        let a = self.analysis();
        let mut set = StateSet::new(self.num_states());
        let tail_len = a.tail.len() as u64;
        // Tail part of the window.
        let t_end = hi.min(tail_len.saturating_sub(1));
        if lo < tail_len {
            for t in lo..=t_end {
                set.insert(a.tail[t as usize]);
            }
        }
        // Cycle part of the window.
        if hi >= tail_len {
            let c_lo = lo.max(tail_len) - tail_len;
            let c_hi = hi - tail_len;
            let clen = a.cycle.len() as u64;
            if c_hi - c_lo + 1 >= clen {
                for &s in &a.cycle {
                    set.insert(s);
                }
            } else {
                let mut j = c_lo % clen;
                for _ in c_lo..=c_hi {
                    set.insert(a.cycle[j as usize]);
                    j = (j + 1) % clen;
                }
            }
        }
        set
    }

    /// The paper's distinguishing task: can *any* query function tell
    /// "`N ∈ [1, T/2]`" from "`N ∈ [2T, 4T]`" looking only at the memory
    /// state? Possible iff the two windows' state sets are disjoint.
    #[must_use]
    pub fn distinguishes(&self, t_param: u64) -> bool {
        assert!(t_param >= 2, "need T >= 2");
        let low = self.states_in_window(1, t_param / 2);
        let high = self.states_in_window(2 * t_param, 4 * t_param);
        !low.intersects(&high)
    }

    /// The saturating exact counter on `n` states: counts `0, 1, …, n−2`
    /// and then sticks at `n−1`. The optimal deterministic
    /// distinguisher — with `n = T/2 + 2` states it distinguishes
    /// `[1, T/2]` from `[2T, 4T]`.
    #[must_use]
    pub fn saturating(n: usize) -> Self {
        assert!(n >= 1);
        let trans = (0..n as u32).map(|s| (s + 1).min(n as u32 - 1)).collect();
        Self::new(0, trans)
    }
}

impl RunAnalysis {
    /// The state at time `t`.
    #[must_use]
    pub fn state_at(&self, t: u64) -> u32 {
        let tail_len = self.tail.len() as u64;
        if t < tail_len {
            self.tail[t as usize]
        } else {
            self.cycle[((t - tail_len) % self.cycle.len() as u64) as usize]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_malformed_tables() {
        let ok = DeterministicCounter::new(0, vec![1, 0]);
        assert_eq!(ok.num_states(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_transition() {
        let _ = DeterministicCounter::new(0, vec![2, 0]);
    }

    #[test]
    fn pure_cycle_analysis() {
        // 0 -> 1 -> 2 -> 0: no tail, cycle of length 3.
        let d = DeterministicCounter::new(0, vec![1, 2, 0]);
        let a = d.analysis();
        assert!(a.tail.is_empty());
        assert_eq!(a.cycle, vec![0, 1, 2]);
        assert_eq!(d.state_at(0), 0);
        assert_eq!(d.state_at(1), 1);
        assert_eq!(d.state_at(3_000_000_000), 0);
        assert_eq!(d.state_at(3_000_000_001), 1);
    }

    #[test]
    fn tail_then_cycle_analysis() {
        // 0 -> 1 -> 2 -> 3 -> 2 : tail [0, 1], cycle [2, 3].
        let d = DeterministicCounter::new(0, vec![1, 2, 3, 2]);
        let a = d.analysis();
        assert_eq!(a.tail, vec![0, 1]);
        assert_eq!(a.cycle, vec![2, 3]);
        assert_eq!(d.state_at(1), 1);
        assert_eq!(d.state_at(2), 2);
        assert_eq!(d.state_at(5), 3); // 2,3,2,3... times 2,3,4,5
        assert_eq!(d.state_at(1 << 40), 2);
    }

    #[test]
    fn fixed_point_analysis() {
        // Saturating immediately: 0 -> 0.
        let d = DeterministicCounter::new(0, vec![0]);
        let a = d.analysis();
        assert!(a.tail.is_empty());
        assert_eq!(a.cycle, vec![0]);
        assert_eq!(d.state_at(123_456), 0);
    }

    #[test]
    fn window_matches_brute_force() {
        let d = DeterministicCounter::new(0, vec![1, 2, 3, 4, 2]);
        for (lo, hi) in [(0u64, 0u64), (1, 4), (3, 12), (0, 20), (7, 7)] {
            let fast = d.states_in_window(lo, hi);
            let mut slow = StateSet::new(d.num_states());
            for t in lo..=hi {
                slow.insert(d.state_at(t));
            }
            assert_eq!(fast, slow, "window [{lo}, {hi}]");
        }
    }

    #[test]
    fn window_far_beyond_tail_covers_cycle() {
        let d = DeterministicCounter::new(0, vec![1, 2, 1]);
        let set = d.states_in_window(1 << 50, (1 << 50) + 10);
        assert!(set.contains(1) && set.contains(2));
        assert!(!set.contains(0));
    }

    #[test]
    fn saturating_counter_distinguishes() {
        let t = 16u64;
        // T/2 + 2 = 10 states: counts to 9 and sticks.
        let d = DeterministicCounter::saturating((t / 2 + 2) as usize);
        assert!(d.distinguishes(t));
    }

    #[test]
    fn too_small_saturating_counter_fails() {
        let t = 16u64;
        // With only T/2 + 1 states the saturation point 8 is reached both
        // at time T/2 = 8 and at all times >= 8 — windows intersect.
        let d = DeterministicCounter::saturating((t / 2 + 1) as usize);
        assert!(!d.distinguishes(t));
    }

    #[test]
    fn cyclic_counter_cannot_distinguish() {
        // A mod-5 counter revisits everything: windows intersect.
        let d = DeterministicCounter::new(0, vec![1, 2, 3, 4, 0]);
        assert!(!d.distinguishes(64));
    }

    #[test]
    fn state_set_operations() {
        let mut a = StateSet::new(130);
        let mut b = StateSet::new(130);
        a.insert(0);
        a.insert(129);
        b.insert(64);
        assert!(!a.intersects(&b));
        b.insert(129);
        assert!(a.intersects(&b));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(StateSet::new(10).is_empty());
    }
}
