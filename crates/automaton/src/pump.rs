//! The pumping-lemma step of the Theorem 3.1 proof, constructively.
//!
//! "Since `2^S ≤ T^{1/2}`, there exists `1 ≤ N₁ < N₂ ≤ T/2` such that
//! `C_det` reaches the same memory state after `N₁` or `N₂` increments.
//! …`C_det` must reach the same memory state after `N₁ + k(N₂ − N₁)`
//! increments, for all integer `k ≥ 0`. In particular, there exists
//! `N₃ ∈ [2T, 4T]`…" — this module *finds* those `N₁, N₂, N₃`.

use crate::DeterministicCounter;

/// A concrete refutation of a deterministic counter's ability to
/// distinguish small counts from large ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PumpWitness {
    /// First colliding time, `1 ≤ n1 < n2`.
    pub n1: u64,
    /// Second colliding time, `n2 ≤ T/2`.
    pub n2: u64,
    /// Pumped time in `[2T, 4T]` reaching the same state as `n1`.
    pub n3: u64,
    /// The shared memory state.
    pub state: u32,
}

/// Finds a pumping witness for `dfa` against threshold `t_param`, i.e.
/// times `n1 < n2 ≤ T/2` and `n3 ∈ [2T, 4T]` all reaching the same state.
///
/// Succeeds whenever the pigeonhole applies (`num_states < T/2`), which
/// covers the paper's regime `2^S ≤ √T`; may also succeed outside it.
/// Returns `None` when no collision exists within `[1, T/2]` (the
/// automaton has enough states to count that far).
#[must_use]
pub fn find_witness(dfa: &DeterministicCounter, t_param: u64) -> Option<PumpWitness> {
    assert!(t_param >= 2, "need T >= 2");
    let half = t_param / 2;
    // First collision within [1, T/2] — scan times; by pigeonhole this
    // terminates within num_states + 1 steps when num_states < T/2.
    let mut first_time = vec![u64::MAX; dfa.num_states()];
    let mut s = dfa.init();
    let mut collision: Option<(u64, u64, u32)> = None;
    for t in 1..=half {
        s = dfa.transitions()[s as usize];
        let seen = &mut first_time[s as usize];
        if *seen != u64::MAX {
            collision = Some((*seen, t, s));
            break;
        }
        *seen = t;
    }
    let (n1, n2, state) = collision?;
    // n3 = n1 + k·d for the smallest k putting it at or above 2T; the
    // period d ≤ T/2 guarantees n3 ≤ 2T + d ≤ 4T... in fact < 2T + T/2.
    let d = n2 - n1;
    let k = (2 * t_param - n1).div_ceil(d);
    let n3 = n1 + k * d;
    debug_assert!(n3 >= 2 * t_param && n3 <= 4 * t_param);
    Some(PumpWitness { n1, n2, n3, state })
}

/// Verifies a witness by direct evaluation (used in tests and the
/// experiment binary to make the refutation checkable).
#[must_use]
pub fn verify_witness(dfa: &DeterministicCounter, w: &PumpWitness, t_param: u64) -> bool {
    w.n1 < w.n2
        && w.n2 <= t_param / 2
        && (2 * t_param..=4 * t_param).contains(&w.n3)
        && dfa.state_at(w.n1) == w.state
        && dfa.state_at(w.n2) == w.state
        && dfa.state_at(w.n3) == w.state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witness_for_small_cyclic_counter() {
        // Mod-4 counter vs T = 64: collision guaranteed.
        let dfa = DeterministicCounter::new(0, vec![1, 2, 3, 0]);
        let w = find_witness(&dfa, 64).expect("pigeonhole applies");
        assert!(verify_witness(&dfa, &w, 64), "witness {w:?}");
        assert_eq!(w.n2 - w.n1, 4, "period of the mod-4 counter");
    }

    #[test]
    fn witness_for_saturating_counter_too_small() {
        // Saturating counter with 10 states vs T = 64: saturation point
        // is revisited, giving a period-1 collision.
        let dfa = DeterministicCounter::saturating(10);
        let w = find_witness(&dfa, 64).expect("saturation collides");
        assert!(verify_witness(&dfa, &w, 64));
        assert_eq!(w.n2 - w.n1, 1);
        assert_eq!(w.state, 9);
    }

    #[test]
    fn no_witness_when_counter_is_big_enough() {
        // A saturating counter with more than T/2 states never collides
        // within [1, T/2].
        let t = 16u64;
        let dfa = DeterministicCounter::saturating(20);
        assert!(find_witness(&dfa, t).is_none());
        // And indeed it distinguishes.
        assert!(dfa.distinguishes(t));
    }

    #[test]
    fn witness_existence_matches_paper_regime() {
        // For every automaton on ≤ √T states (here T = 100, so ≤ 10
        // states), a witness must exist. Spot-check a family of random-ish
        // transition tables built deterministically.
        let t = 100u64;
        for seed in 0..200u64 {
            let n = 2 + (seed % 9) as usize; // 2..=10 states
            let trans: Vec<u32> = (0..n)
                .map(|i| {
                    ((seed.wrapping_mul(2_654_435_761).wrapping_add(i as u64 * 97)) % n as u64)
                        as u32
                })
                .collect();
            let dfa = DeterministicCounter::new(0, trans);
            let w = find_witness(&dfa, t).unwrap_or_else(|| panic!("no witness for seed {seed}"));
            assert!(verify_witness(&dfa, &w, t), "seed {seed}: {w:?}");
        }
    }

    #[test]
    fn witness_refutes_distinguishing() {
        // Any automaton with a verified witness cannot distinguish:
        // states_in_window must intersect.
        let dfa = DeterministicCounter::new(0, vec![1, 2, 0]);
        let t = 32u64;
        let w = find_witness(&dfa, t).unwrap();
        assert!(verify_witness(&dfa, &w, t));
        assert!(!dfa.distinguishes(t));
    }
}
