//! Randomized counter automata and the paper's derandomization step.

use crate::DeterministicCounter;
use ac_randkit::RandomSource;

/// A randomized counter automaton: a distribution over initial states and,
/// for each state, a distribution over successor states taken on each
/// increment.
///
/// This is the abstract model of *any* `S`-bit randomized counter used in
/// the Theorem 3.1 proof (with at most `2^S` states).
#[derive(Debug, Clone, PartialEq)]
pub struct RandomizedCounter {
    /// `init[s]` = probability of starting in state `s`.
    init: Vec<f64>,
    /// `trans[s][s']` = probability of moving `s → s'` on an increment.
    trans: Vec<Vec<f64>>,
}

impl RandomizedCounter {
    /// Creates the automaton from an initial distribution and a row-
    /// stochastic transition matrix.
    ///
    /// # Panics
    ///
    /// Panics unless all rows (and the initial distribution) are the same
    /// length, non-negative, and sum to 1 within `1e-9`.
    #[must_use]
    pub fn new(init: Vec<f64>, trans: Vec<Vec<f64>>) -> Self {
        let n = init.len();
        assert!(n > 0, "automaton needs at least one state");
        assert_eq!(trans.len(), n, "transition matrix must be square");
        let check = |row: &[f64], what: &str| {
            assert_eq!(row.len(), n, "{what} has wrong length");
            assert!(
                row.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)),
                "{what} has probabilities outside [0,1]"
            );
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{what} sums to {sum}, not 1");
        };
        check(&init, "initial distribution");
        for (s, row) in trans.iter().enumerate() {
            check(row, &format!("transition row {s}"));
        }
        Self { init, trans }
    }

    /// Number of memory states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.init.len()
    }

    /// The initial distribution.
    #[must_use]
    pub fn init_distribution(&self) -> &[f64] {
        &self.init
    }

    /// The transition distribution out of state `s`.
    #[must_use]
    pub fn transition_row(&self, s: u32) -> &[f64] {
        &self.trans[s as usize]
    }

    /// The paper's derandomization: "instead of updating the memory
    /// according to this distribution, `C_det` always updates it to the
    /// state with the highest probability in this distribution (in case
    /// of tie, pick the lexicographically smallest)".
    #[must_use]
    pub fn derandomize(&self) -> DeterministicCounter {
        let argmax = |row: &[f64]| -> u32 {
            let mut best = 0usize;
            for (i, &p) in row.iter().enumerate() {
                // Strict > keeps the lexicographically smallest on ties.
                if p > row[best] {
                    best = i;
                }
            }
            best as u32
        };
        let init = argmax(&self.init);
        let trans = self.trans.iter().map(|row| argmax(row)).collect();
        DeterministicCounter::new(init, trans)
    }

    /// The probability that a random execution follows exactly the
    /// derandomized path for `n` increments — at least `p_max^(n+1)`
    /// where every chosen step has probability ≥ `1/num_states`. Used to
    /// reproduce the proof's error-amplification bound
    /// `δ · (2^S)^{N+1}`.
    #[must_use]
    pub fn derandomized_path_probability(&self, n: u64) -> f64 {
        let det = self.derandomize();
        let mut logp = self.init[det.init() as usize].ln();
        let mut s = det.init();
        // The path is eventually periodic; accumulate in log space over
        // min(n, states) distinct steps then multiply out the cycle.
        let analysis = det.analysis();
        let tail_len = analysis.tail.len() as u64;
        let steps_listed = (tail_len + analysis.cycle.len() as u64).min(n);
        let mut per_step: Vec<f64> = Vec::new();
        for _ in 0..steps_listed {
            let next = det.transitions()[s as usize];
            per_step.push(self.trans[s as usize][next as usize].ln());
            s = next;
        }
        if n <= steps_listed {
            logp += per_step[..n as usize].iter().sum::<f64>();
        } else {
            logp += per_step.iter().sum::<f64>();
            let cycle_logp: f64 = per_step[tail_len as usize..].iter().sum();
            let extra = n - steps_listed;
            let clen = analysis.cycle.len() as u64;
            logp += cycle_logp * (extra / clen) as f64;
            logp += per_step[tail_len as usize..(tail_len + extra % clen) as usize]
                .iter()
                .sum::<f64>();
        }
        logp.exp()
    }

    /// Samples the state after `n` increments.
    pub fn simulate(&self, n: u64, rng: &mut dyn RandomSource) -> u32 {
        let mut s = sample_row(&self.init, rng);
        for _ in 0..n {
            s = sample_row(&self.trans[s as usize], rng);
        }
        s
    }
}

fn sample_row(row: &[f64], rng: &mut dyn RandomSource) -> u32 {
    let mut u = rng.next_f64();
    for (i, &p) in row.iter().enumerate() {
        if u < p {
            return i as u32;
        }
        u -= p;
    }
    // Numerical leftovers: return the last state with positive mass.
    row.iter()
        .rposition(|&p| p > 0.0)
        .expect("row sums to 1, so some entry is positive") as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_randkit::Xoshiro256PlusPlus;

    fn biased_walk() -> RandomizedCounter {
        // Three states; each step advances with probability 0.8, stays
        // with 0.2; state 2 absorbs.
        RandomizedCounter::new(
            vec![1.0, 0.0, 0.0],
            vec![
                vec![0.2, 0.8, 0.0],
                vec![0.0, 0.2, 0.8],
                vec![0.0, 0.0, 1.0],
            ],
        )
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn rejects_non_stochastic_rows() {
        let _ = RandomizedCounter::new(vec![1.0], vec![vec![0.5]]);
    }

    #[test]
    fn derandomize_takes_argmax() {
        let det = biased_walk().derandomize();
        assert_eq!(det.init(), 0);
        assert_eq!(det.transitions(), &[1, 2, 2]);
    }

    #[test]
    fn derandomize_breaks_ties_lexicographically() {
        let r = RandomizedCounter::new(vec![0.5, 0.5], vec![vec![0.5, 0.5], vec![0.5, 0.5]]);
        let det = r.derandomize();
        assert_eq!(det.init(), 0);
        assert_eq!(det.transitions(), &[0, 0]);
    }

    #[test]
    fn path_probability_matches_direct_product() {
        let r = biased_walk();
        // Derandomized path: 0 -> 1 -> 2 -> 2 -> ... with probabilities
        // 1.0 (init), then 0.8, 0.8, 1.0, 1.0, ...
        let p3 = r.derandomized_path_probability(3);
        assert!((p3 - 0.8 * 0.8).abs() < 1e-12, "p3={p3}");
        let p10 = r.derandomized_path_probability(10);
        assert!((p10 - 0.64).abs() < 1e-12);
    }

    #[test]
    fn path_probability_decays_for_cyclic_choices() {
        // Two states, 60/40 both ways: each step costs 0.6.
        let r = RandomizedCounter::new(vec![1.0, 0.0], vec![vec![0.4, 0.6], vec![0.6, 0.4]]);
        let p = r.derandomized_path_probability(10);
        assert!((p - 0.6f64.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn simulate_reaches_absorbing_state() {
        let r = biased_walk();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut absorbed = 0;
        for _ in 0..1_000 {
            if r.simulate(50, &mut rng) == 2 {
                absorbed += 1;
            }
        }
        // After 50 steps the walk is essentially surely absorbed.
        assert!(absorbed > 990, "absorbed={absorbed}");
    }

    #[test]
    fn simulate_matches_single_step_distribution() {
        let r = biased_walk();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let n = 50_000;
        let advanced = (0..n).filter(|_| r.simulate(1, &mut rng) == 1).count();
        let freq = advanced as f64 / f64::from(n);
        assert!((freq - 0.8).abs() < 0.01, "freq={freq}");
    }
}
