//! Exhaustive verification of the lower bound for small state budgets.
//!
//! The paper's argument implies that *no* deterministic automaton on
//! `m ≤ T/2` states can distinguish `[1, T/2]` from `[2T, 4T]`. For small
//! `m` we can check every automaton — all `m^m` transition tables × `m`
//! initial states — and also find the exact minimum `m` that suffices
//! (it is `T/2 + 2`: a saturating counter, matching the `Ω(log T)` bits
//! bound with the right constant).

use crate::DeterministicCounter;

/// Outcome of an exhaustive scan over all `m`-state automata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// Number of states per automaton.
    pub num_states: usize,
    /// The threshold parameter `T`.
    pub t_param: u64,
    /// Automata (table × init) examined.
    pub examined: u64,
    /// How many of them distinguish `[1, T/2]` from `[2T, 4T]`.
    pub distinguishers: u64,
    /// One distinguishing automaton, if any exist.
    pub example: Option<DeterministicCounter>,
}

/// Scans *all* deterministic automata with `num_states` states against
/// threshold `t_param`.
///
/// Cost is `num_states^(num_states+1)` path analyses; practical for
/// `num_states ≤ 8`.
///
/// # Panics
///
/// Panics if `num_states` is 0 or large enough to overflow the
/// enumeration (`> 12`), or `t_param < 2`.
#[must_use]
pub fn scan_all(num_states: usize, t_param: u64) -> ScanResult {
    assert!((1..=12).contains(&num_states), "enumeration infeasible");
    assert!(t_param >= 2);
    let m = num_states as u64;
    let tables = m.pow(num_states as u32);
    let mut result = ScanResult {
        num_states,
        t_param,
        examined: 0,
        distinguishers: 0,
        example: None,
    };
    let mut trans = vec![0u32; num_states];
    for code in 0..tables {
        // Decode the table in base m.
        let mut c = code;
        for slot in trans.iter_mut() {
            *slot = (c % m) as u32;
            c /= m;
        }
        for init in 0..num_states as u32 {
            let dfa = DeterministicCounter::new(init, trans.clone());
            result.examined += 1;
            if dfa.distinguishes(t_param) {
                result.distinguishers += 1;
                if result.example.is_none() {
                    result.example = Some(dfa);
                }
            }
        }
    }
    result
}

/// Returns the minimal number of states any deterministic automaton needs
/// to distinguish `[1, T/2]` from `[2T, 4T]`, found by exhaustive scan.
///
/// Only practical for very small `T` (the scan is exponential); the
/// experiment binary uses `T ∈ {4, 6, 8, 10, 12}` and confirms the answer
/// is exactly `T/2 + 2`.
#[must_use]
pub fn minimal_distinguishing_states(t_param: u64, max_states: usize) -> Option<usize> {
    (1..=max_states).find(|&m| scan_all(m, t_param).distinguishers > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_regime_has_no_distinguishers() {
        // T = 16: the paper regime 2^S ≤ √T = 4 means ≤ 4 states. Verify
        // the stronger statement for every m ≤ T/2 = 8 here at m = 4.
        let r = scan_all(4, 16);
        assert_eq!(r.distinguishers, 0, "examined {}", r.examined);
        assert_eq!(r.examined, 4u64.pow(4) * 4);
    }

    #[test]
    fn pigeonhole_bound_is_respected_everywhere() {
        // No automaton with m ≤ T/2 states distinguishes (T = 8, m ≤ 4).
        for m in 1..=4 {
            let r = scan_all(m, 8);
            assert_eq!(r.distinguishers, 0, "m={m}");
        }
    }

    #[test]
    fn minimal_states_is_half_t_plus_two() {
        // T = 8: minimal is T/2 + 2 = 6 (count to 5, saturate).
        assert_eq!(minimal_distinguishing_states(8, 7), Some(6));
        // T = 4: minimal is 4.
        assert_eq!(minimal_distinguishing_states(4, 5), Some(4));
    }

    #[test]
    fn scan_finds_the_saturating_example() {
        let r = scan_all(6, 8);
        assert!(r.distinguishers > 0);
        let example = r.example.expect("found one");
        assert!(example.distinguishes(8));
    }

    #[test]
    fn minimal_none_when_cap_too_low() {
        assert_eq!(minimal_distinguishing_states(8, 5), None);
    }
}
