//! `ReplicaNode`: a warm read-only mirror fed by the primary's delta
//! checkpoint stream.
//!
//! The replica folds every [`ReplSegment`] it receives through
//! [`restore_checkpoint_chain`] — the same integrity-checked path a
//! crash recovery takes — acknowledges the segment's chain digest, and
//! republishes the folded snapshot for local reads. Chain digests do
//! the integrity work: a delta that does not cite the replica's tip is
//! refused by the fold itself, and the acknowledged digest is what a
//! reconnect resumes from. When the primary has compacted past the
//! acknowledged digest it re-sends from a full frame, which the
//! replica folds as a reset.
//!
//! [`ReplSegment`]: crate::wire::Frame::ReplSegment
//! [`restore_checkpoint_chain`]: ac_engine::restore_checkpoint_chain

use crate::client::{connect, expect_hello_ok};
use crate::conn::FrameConn;
use crate::error::{NetError, RefuseCode};
use crate::wire::{Frame, Identity, Role, NEW_PRODUCER};
use ac_core::{ApproxCounter, CounterFamily};
use ac_engine::{
    compact_chain_workers, read_header, restore_checkpoint_chain, CheckpointHeader, EngineSnapshot,
};
use ac_randkit::{mix64, Xoshiro256PlusPlus};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Replica-side knobs.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Locally compact the mirrored chain into a single base once it
    /// exceeds this many segments (the fold cost of every later delta
    /// is proportional to chain length).
    pub max_chain_segments: usize,
    /// Backoff between reconnect attempts after a lost feed.
    pub retry: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            max_chain_segments: 16,
            retry: Duration::from_millis(200),
        }
    }
}

/// The mirrored chain plus the snapshot folded from it.
#[derive(Debug, Default)]
struct Mirror {
    segments: Vec<Vec<u8>>,
    tip: Option<CheckpointHeader>,
    snap: Option<Arc<EngineSnapshot<CounterFamily>>>,
    /// The primary-side chain digest last folded and acknowledged —
    /// what a reconnect handshake presents. Survives local compaction
    /// (the compacted base has its own digest; resumption speaks the
    /// primary's).
    acked_chain: u64,
    folds: u64,
}

#[derive(Debug)]
struct ReplicaInner {
    addr: SocketAddr,
    identity: Identity,
    template: CounterFamily,
    config: ReplicaConfig,
    mirror: RwLock<Mirror>,
    stop: AtomicBool,
    failed: Mutex<Option<String>>,
}

/// A node-to-node replica of a remote [`Store`]: connects to a
/// [`StoreServer`], folds its delta checkpoint stream, and serves
/// local reads from the folded snapshots.
///
/// [`Store`]: ac_engine::Store
/// [`StoreServer`]: crate::StoreServer
#[derive(Debug)]
pub struct ReplicaNode {
    inner: Arc<ReplicaInner>,
    feed: Option<JoinHandle<()>>,
}

impl ReplicaNode {
    /// Connects to the primary at `addr` with default knobs.
    ///
    /// # Errors
    ///
    /// Everything [`ReplicaNode::connect_with`] returns.
    pub fn connect(addr: impl ToSocketAddrs, identity: Identity) -> Result<ReplicaNode, NetError> {
        ReplicaNode::connect_with(addr, identity, ReplicaConfig::default())
    }

    /// Connects to the primary at `addr`, performing the `HELLO`
    /// handshake in the foreground (so identity mismatches and
    /// unsupported-store refusals surface here, not in a log), then
    /// hands the feed to a background thread.
    ///
    /// # Errors
    ///
    /// Connect failures and handshake refusals.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        identity: Identity,
        config: ReplicaConfig,
    ) -> Result<ReplicaNode, NetError> {
        let addr = addr.to_socket_addrs()?.next().ok_or(NetError::Malformed {
            what: "address resolves to nothing",
        })?;
        let template = identity.spec.build().map_err(|_| NetError::Malformed {
            what: "replica spec does not build",
        })?;
        let mut conn = connect(addr, &identity, Role::Replica, NEW_PRODUCER, 0)?;
        expect_hello_ok(&mut conn)?;
        let inner = Arc::new(ReplicaInner {
            addr,
            identity,
            template,
            config,
            mirror: RwLock::new(Mirror::default()),
            stop: AtomicBool::new(false),
            failed: Mutex::new(None),
        });
        let feed_inner = Arc::clone(&inner);
        let feed = std::thread::Builder::new()
            .name("ac-net-replica".into())
            .spawn(move || feed_loop(&feed_inner, conn))
            .expect("spawn replica feed");
        Ok(ReplicaNode {
            inner,
            feed: Some(feed),
        })
    }

    /// The chain digest of the last segment folded and acknowledged
    /// (0 before the first). Equal digests on primary and replica mean
    /// the replica's state *is* the primary's checkpointed state.
    #[must_use]
    pub fn chain_digest(&self) -> u64 {
        self.inner.mirror.read().expect("mirror").acked_chain
    }

    /// How many segments have been folded since connecting.
    #[must_use]
    pub fn folds(&self) -> u64 {
        self.inner.mirror.read().expect("mirror").folds
    }

    /// The freeze epoch of the folded snapshot (0 before the first
    /// fold) — the epoch the primary cut the mirrored checkpoint at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        let mirror = self.inner.mirror.read().expect("mirror");
        mirror.tip.map_or(0, |t| t.epoch)
    }

    /// Per-key estimate against the folded snapshot; `None` before the
    /// first fold or for a key never seen.
    #[must_use]
    pub fn estimate(&self, key: u64) -> Option<f64> {
        let mirror = self.inner.mirror.read().expect("mirror");
        mirror.snap.as_ref()?.estimate(key)
    }

    /// Exact total events in the folded snapshot (0 before the first
    /// fold).
    #[must_use]
    pub fn total_events(&self) -> u64 {
        let mirror = self.inner.mirror.read().expect("mirror");
        mirror.snap.as_ref().map_or(0, |s| s.total_events())
    }

    /// Distinct keys in the folded snapshot.
    #[must_use]
    pub fn len(&self) -> u64 {
        let mirror = self.inner.mirror.read().expect("mirror");
        mirror.snap.as_ref().map_or(0, |s| s.len() as u64)
    }

    /// True before the first fold or while the mirror holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The merged aggregate estimate of the folded snapshot, seeded
    /// exactly like the primary's [`StoreReader::merged_estimate`] at
    /// the same epoch — a replica and a primary reader pinned to the
    /// same freeze agree on the merge.
    ///
    /// # Errors
    ///
    /// [`NetError::Malformed`] before the first fold;
    /// [`NetError::Remote`] for merge failures (unreachable for a
    /// store's homogeneous counters).
    ///
    /// [`StoreReader::merged_estimate`]: ac_engine::StoreReader::merged_estimate
    pub fn merged_estimate(&self) -> Result<f64, NetError> {
        Ok(self.merged_total()?.estimate())
    }

    /// The merged aggregate counter itself (see
    /// [`ReplicaNode::merged_estimate`] for the determinism contract).
    ///
    /// # Errors
    ///
    /// See [`ReplicaNode::merged_estimate`].
    pub fn merged_total(&self) -> Result<CounterFamily, NetError> {
        let mirror = self.inner.mirror.read().expect("mirror");
        let snap = mirror.snap.as_ref().ok_or(NetError::Malformed {
            what: "replica has not folded a snapshot yet",
        })?;
        let epoch = mirror.tip.map_or(0, |t| t.epoch);
        let mut rng =
            Xoshiro256PlusPlus::seed_from_u64(mix64(self.inner.identity.seed ^ mix64(epoch)));
        snap.merged_total(&mut rng).map_err(|e| NetError::Remote {
            reason: e.to_string(),
        })
    }

    /// Why the feed died, if it did (fold failures and permanent
    /// refusals land here; transient connection losses do not — the
    /// feed retries those).
    #[must_use]
    pub fn failed(&self) -> Option<String> {
        self.inner.failed.lock().expect("failed slot").clone()
    }

    /// Blocks until the folded snapshot reports at least `events`
    /// total events, or `timeout` passes. True on success.
    #[must_use]
    pub fn wait_for_events(&self, events: u64, timeout: Duration) -> bool {
        self.wait(timeout, || self.total_events() >= events)
    }

    /// Blocks until the acknowledged chain digest equals `digest`, or
    /// `timeout` passes. True on success. Pair with the primary's tip
    /// digest to observe convergence.
    #[must_use]
    pub fn wait_for_chain(&self, digest: u64, timeout: Duration) -> bool {
        self.wait(timeout, || self.chain_digest() == digest)
    }

    fn wait(&self, timeout: Duration, done: impl Fn() -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if done() {
                return true;
            }
            if Instant::now() >= deadline || self.failed().is_some() {
                return done();
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops the feed and joins it. The folded state stays readable
    /// through this handle until drop.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(h) = self.feed.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicaNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn feed_loop(inner: &ReplicaInner, mut conn: FrameConn) {
    let stop = || inner.stop.load(Ordering::Acquire);
    loop {
        match conn.recv_interruptible(&stop) {
            Ok(Frame::ReplSegment { bytes }) => {
                let chain = match fold_segment(inner, bytes) {
                    Ok(chain) => chain,
                    Err(e) => {
                        // A segment that does not fold is corruption or
                        // a protocol bug, not weather — stop rather
                        // than ack state we do not hold.
                        fail(inner, &format!("segment fold failed: {e}"));
                        return;
                    }
                };
                if conn.send(&Frame::ReplAck { chain }).is_err() {
                    // Ack lost with the connection; the reconnect
                    // handshake re-presents the digest instead.
                    if !reconnect(inner, &mut conn) {
                        return;
                    }
                }
            }
            Ok(Frame::Bye) => return,
            Ok(_) => {
                fail(inner, "unexpected frame on replication connection");
                return;
            }
            Err(NetError::Closed) if stop() => return,
            Err(_) => {
                if !reconnect(inner, &mut conn) {
                    return;
                }
            }
        }
    }
}

/// Folds one segment into the mirror and returns the digest to ack.
fn fold_segment(inner: &ReplicaInner, bytes: Vec<u8>) -> Result<u64, NetError> {
    let header = read_header(&bytes).map_err(|e| NetError::Remote {
        reason: format!("segment header: {e}"),
    })?;
    let mut mirror = inner.mirror.write().expect("mirror");
    if header.kind == ac_engine::CheckpointKind::Full {
        // A full frame starts a fresh chain — the primary restarted the
        // stream (first contact, or compaction passed our ack).
        mirror.segments.clear();
        mirror.tip = None;
    }
    mirror.segments.push(bytes);
    let refs: Vec<&[u8]> = mirror.segments.iter().map(Vec::as_slice).collect();
    let mut engine =
        restore_checkpoint_chain(&inner.template, &refs).map_err(|e| NetError::Remote {
            reason: format!("chain fold: {e}"),
        })?;
    // Pin the folded snapshot to the primary's freeze epoch so merged
    // reads here agree with a primary reader pinned to the same epoch.
    let snap = engine.snapshot().with_epoch(header.epoch);
    mirror.snap = Some(Arc::new(snap));
    mirror.tip = Some(header);
    mirror.acked_chain = header.chain;
    mirror.folds += 1;
    if mirror.segments.len() > inner.config.max_chain_segments {
        let refs: Vec<&[u8]> = mirror.segments.iter().map(Vec::as_slice).collect();
        match compact_chain_workers(&inner.template, &refs, 0) {
            Ok(base) => mirror.segments = vec![base.into_bytes()],
            Err(e) => {
                // The chain restored moments ago, so compaction cannot
                // really fail — but never trade a working mirror for a
                // tidy one.
                let _ = e;
            }
        }
    }
    Ok(header.chain)
}

fn fail(inner: &ReplicaInner, reason: &str) {
    let mut slot = inner.failed.lock().expect("failed slot");
    if slot.is_none() {
        *slot = Some(reason.to_string());
    }
}

/// Re-dials the primary with the acknowledged digest until it answers
/// or the node is stopped. True when `conn` is a fresh live feed.
fn reconnect(inner: &ReplicaInner, conn: &mut FrameConn) -> bool {
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return false;
        }
        sleep_interruptible(inner, inner.config.retry);
        if inner.stop.load(Ordering::Acquire) {
            return false;
        }
        let acked = inner.mirror.read().expect("mirror").acked_chain;
        if let Ok(mut fresh) = connect(
            inner.addr,
            &inner.identity,
            Role::Replica,
            NEW_PRODUCER,
            acked,
        ) {
            match expect_hello_ok(&mut fresh) {
                Ok(_) => {
                    *conn = fresh;
                    return true;
                }
                Err(NetError::Refused { code, reason }) if code != RefuseCode::Busy => {
                    // Identity or capability refusals will not heal on
                    // retry; record and stop.
                    fail(inner, &format!("refused ({code}): {reason}"));
                    return false;
                }
                Err(_) => {}
            }
        }
    }
}

fn sleep_interruptible(inner: &ReplicaInner, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}
