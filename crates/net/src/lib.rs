//! # ac-net — a wire-protocol front-end and replication layer for `Store`
//!
//! Everything the engine does in-process — exactly-once ingest under
//! per-producer sequence marks, epoch-pinned reads, delta checkpoint
//! chains with digest integrity — this crate carries across a TCP
//! connection without weakening any of it. There are three moving
//! parts:
//!
//! * **Framing** ([`wire`], [`FrameConn`]): length-prefixed binary frames
//!   whose bodies reuse the `ac-bitio` section discipline checkpoints
//!   are written with, each closed by a checksum. A flipped bit, a
//!   truncation, or a reordered batch is always a *typed* error —
//!   never a panic, never a silently wrong frame. Connections open
//!   with a version-negotiating `HELLO` that carries the full
//!   [`CounterSpec`]/engine-config identity; a mismatched peer is
//!   refused at the door, the same rule the manifest applies to
//!   checkpoint frames.
//! * **Serving** ([`StoreServer`]): one listener multiplexing ingest
//!   sessions (each remote writer is a [`Store`] producer; its wire
//!   sequence numbers *are* the durable sequence marks, so
//!   crash/reconnect replay is exactly-once by the same argument the
//!   local ring makes), read sessions (every query answered against a
//!   pinned snapshot, epoch attached), and replication sessions.
//! * **Replicating** ([`ReplicaNode`]): the primary cuts delta
//!   checkpoint frames off its published snapshots and streams them to
//!   replicas, which fold them through `restore_checkpoint_chain` and
//!   acknowledge chain digests; a reconnect resumes from the last
//!   acknowledged digest, or from a fresh full frame when compaction
//!   has passed it.
//!
//! [`StoreClient`] is the writer/reader factory; its [`NetWriter`]
//! mirrors the local nonblocking writer API, [`BackpressurePolicy`]
//! and all.
//!
//! [`Store`]: ac_engine::Store
//! [`CounterSpec`]: ac_core::CounterSpec
//! [`BackpressurePolicy`]: ac_engine::BackpressurePolicy

mod client;
mod conn;
mod error;
mod replica;
mod server;
pub mod wire;

pub use client::{NetSendError, NetWriter, RemoteReader, StoreClient, WriterConfig};
pub use conn::FrameConn;
pub use error::{NetError, RefuseCode};
pub use replica::{ReplicaConfig, ReplicaNode};
pub use server::{ServerConfig, StoreServer};
pub use wire::{Frame, Identity, Query, Reply, Role, PROTO_VERSION};
