//! Frame codec: every message is `[len: u32 LE][body][fnv64: u64 LE]`,
//! where `len` counts the body *and* the trailing checksum. Bodies are
//! `ac-bitio` bit streams — a tag byte, then one length-prefixed
//! section (the same `begin_section` / `read_section` discipline the
//! checkpoint format uses) holding the tag's fields — so a reader can
//! prove the declared payload is exactly the payload it parsed.
//!
//! Integrity story: a flipped bit anywhere in the body fails the FNV
//! checksum; a truncation fails either the length prefix or the
//! section length; a reordered ingest frame fails the per-producer
//! sequence contract one layer up. All three are *typed* rejections
//! ([`NetError`]), never a silently wrong frame.

use crate::error::{NetError, RefuseCode};
use ac_bitio::frame::{begin_section, end_section, read_label, read_section, write_label};
use ac_bitio::{BitReader, BitVec};
use ac_core::CounterSpec;

/// The one protocol version this build speaks. `HELLO` carries it; a
/// disagreement is refused with [`RefuseCode::Version`].
pub const PROTO_VERSION: u16 = 1;

/// Hard cap on a frame body (checkpoint segments ride inside frames,
/// so this bounds replication frame size too).
pub const MAX_FRAME_BYTES: u64 = 1 << 26;

/// The producer-id wildcard a fresh ingest client sends in `HELLO` to
/// ask the server to mint a new producer.
pub const NEW_PRODUCER: u64 = u64::MAX;

/// FNV-1a 64 over the body bytes — cheap, dependency-free, and plenty
/// for *corruption* detection (integrity against tampering is not a
/// goal of the framing layer).
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What a connecting peer claims to be in `HELLO`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A remote writer: streams `Batch` frames, gets `BatchAck`s.
    Ingest,
    /// A remote reader: streams `Query` frames, gets `Reply`s.
    Reader,
    /// A replica: receives checkpoint segments, returns `ReplAck`s.
    Replica,
}

impl Role {
    fn to_bits(self) -> u64 {
        match self {
            Role::Ingest => 0,
            Role::Reader => 1,
            Role::Replica => 2,
        }
    }

    fn from_bits(bits: u64) -> Option<Self> {
        Some(match bits {
            0 => Role::Ingest,
            1 => Role::Reader,
            2 => Role::Replica,
            _ => return None,
        })
    }
}

/// The store identity a connection must agree on before anything else
/// flows: the counter spec (exact parameter words), the shard count,
/// and the shard-placement seed. This mirrors the manifest-identity
/// rule for checkpoint directories — state is only interchangeable
/// between engines built from the same spec words and config.
#[derive(Debug, Clone, PartialEq)]
pub struct Identity {
    /// The counter family and parameters.
    pub spec: CounterSpec,
    /// Shard count of the engine.
    pub shards: u32,
    /// Shard-placement / merge seed.
    pub seed: u64,
}

impl Identity {
    /// The spec's parameter fingerprint (the same digest checkpoint
    /// headers carry), or 0 for a spec that fails to build — such a
    /// spec can never match a live server's.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use ac_core::StateCodec;
        self.spec
            .build()
            .map(|c| c.params_fingerprint())
            .unwrap_or(0)
    }
}

/// A read RPC, served against one pinned snapshot of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Per-key estimate.
    Estimate {
        /// The key to look up.
        key: u64,
    },
    /// The cross-shard merged aggregate's estimate (Remark 2.4).
    MergedEstimate,
    /// The merged aggregate itself, shipped as encoded counter state.
    MergedTotal,
    /// The tiered merged estimate over a ladder of `tiers` rungs.
    MergedEstimateTiered {
        /// Ladder length.
        tiers: u32,
    },
    /// Exact total events at the pinned freeze.
    TotalEvents,
    /// Distinct keys at the pinned freeze.
    Len,
    /// Key/event counts (a small stats summary).
    Stats,
    /// The primary's current replication chain-tip digest (0 if no
    /// chain has been cut yet).
    ReplTip,
}

impl Query {
    fn encode(self, v: &mut BitVec) {
        match self {
            Query::Estimate { key } => {
                v.push_bits(0, 8);
                v.push_bits(key, 64);
            }
            Query::MergedEstimate => v.push_bits(1, 8),
            Query::MergedTotal => v.push_bits(2, 8),
            Query::MergedEstimateTiered { tiers } => {
                v.push_bits(3, 8);
                v.push_bits(u64::from(tiers), 32);
            }
            Query::TotalEvents => v.push_bits(4, 8),
            Query::Len => v.push_bits(5, 8),
            Query::Stats => v.push_bits(6, 8),
            Query::ReplTip => v.push_bits(7, 8),
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, NetError> {
        let kind = take(r, 8)?;
        Ok(match kind {
            0 => Query::Estimate { key: take(r, 64)? },
            1 => Query::MergedEstimate,
            2 => Query::MergedTotal,
            3 => Query::MergedEstimateTiered {
                tiers: take(r, 32)? as u32,
            },
            4 => Query::TotalEvents,
            5 => Query::Len,
            6 => Query::Stats,
            7 => Query::ReplTip,
            _ => {
                return Err(NetError::Malformed {
                    what: "unknown query kind",
                })
            }
        })
    }
}

/// A read RPC's result body.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The key had never been touched.
    Absent,
    /// A floating-point answer.
    F64(f64),
    /// An integer answer.
    U64(u64),
    /// The small stats summary.
    Stats {
        /// Distinct keys.
        keys: u64,
        /// Exact total events.
        events: u64,
    },
    /// Encoded counter state (decode with the identity's spec as the
    /// template).
    State(Vec<u8>),
    /// The server could not serve the query.
    Error(String),
}

impl Reply {
    fn encode(&self, v: &mut BitVec) {
        match self {
            Reply::Absent => v.push_bits(0, 8),
            Reply::F64(x) => {
                v.push_bits(1, 8);
                v.push_bits(x.to_bits(), 64);
            }
            Reply::U64(x) => {
                v.push_bits(2, 8);
                v.push_bits(*x, 64);
            }
            Reply::Stats { keys, events } => {
                v.push_bits(3, 8);
                v.push_bits(*keys, 64);
                v.push_bits(*events, 64);
            }
            Reply::State(bytes) => {
                v.push_bits(4, 8);
                push_bytes(v, bytes);
            }
            Reply::Error(reason) => {
                v.push_bits(5, 8);
                write_label(v, reason);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, NetError> {
        let kind = take(r, 8)?;
        Ok(match kind {
            0 => Reply::Absent,
            1 => Reply::F64(f64::from_bits(take(r, 64)?)),
            2 => Reply::U64(take(r, 64)?),
            3 => Reply::Stats {
                keys: take(r, 64)?,
                events: take(r, 64)?,
            },
            4 => Reply::State(take_bytes(r)?),
            5 => Reply::Error(read_label(r).ok_or(NetError::Malformed {
                what: "undecodable error label",
            })?),
            _ => {
                return Err(NetError::Malformed {
                    what: "unknown reply kind",
                })
            }
        })
    }
}

/// Every message the protocol speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection opener: version + identity + role claims. Everything
    /// else is refused until a `Hello` has been accepted.
    Hello {
        /// The protocol version the peer speaks.
        proto: u16,
        /// What the peer wants to be.
        role: Role,
        /// The peer's spec fingerprint (cheap pre-check).
        fingerprint: u64,
        /// The peer's full identity (authoritative check).
        identity: Identity,
        /// For [`Role::Ingest`]: the producer id to reclaim, or
        /// [`NEW_PRODUCER`] to mint a fresh one.
        producer: u64,
        /// For [`Role::Replica`]: the chain digest of the last segment
        /// the replica folded (0 = nothing yet).
        acked_chain: u64,
    },
    /// Handshake acceptance.
    HelloOk {
        /// The producer id this connection writes under (ingest only;
        /// [`NEW_PRODUCER`] otherwise).
        producer: u64,
        /// The last sequence number the server holds for this producer
        /// — the client replays strictly after it, which is the whole
        /// exactly-once contract.
        resume_after: u64,
        /// The server's published snapshot epoch at accept time.
        epoch: u64,
    },
    /// Handshake (or session) rejection; the connection closes after.
    Refused {
        /// Machine-readable cause.
        code: RefuseCode,
        /// Human-readable explanation.
        reason: String,
    },
    /// One ingest batch under the producer's own sequence numbering.
    Batch {
        /// Per-producer sequence number (starts at 1, gapless).
        seq: u64,
        /// `(key, delta)` pairs; never empty, deltas never zero.
        pairs: Vec<(u64, u64)>,
    },
    /// The server has durably accepted everything up to `seq`.
    BatchAck {
        /// High-water mark of accepted batches.
        seq: u64,
    },
    /// A read RPC request.
    ReadReq {
        /// Client-chosen correlation id.
        id: u64,
        /// The query.
        query: Query,
    },
    /// A read RPC response.
    ReadResp {
        /// Correlation id of the request.
        id: u64,
        /// The snapshot epoch the query was served at.
        epoch: u64,
        /// The result.
        reply: Reply,
    },
    /// One checkpoint segment (full or delta) of the primary's
    /// replication chain, verbatim — the checkpoint format's own
    /// header checksums and chain digests ride along unchanged.
    ReplSegment {
        /// The raw checkpoint bytes.
        bytes: Vec<u8>,
    },
    /// The replica has folded the segment whose chain digest this is.
    ReplAck {
        /// Chain digest of the folded tip.
        chain: u64,
    },
    /// Clean goodbye.
    Bye,
}

const TAG_HELLO: u64 = 1;
const TAG_HELLO_OK: u64 = 2;
const TAG_REFUSED: u64 = 3;
const TAG_BATCH: u64 = 4;
const TAG_BATCH_ACK: u64 = 5;
const TAG_READ_REQ: u64 = 6;
const TAG_READ_RESP: u64 = 7;
const TAG_REPL_SEGMENT: u64 = 8;
const TAG_REPL_ACK: u64 = 9;
const TAG_BYE: u64 = 10;

fn take(r: &mut BitReader<'_>, width: u32) -> Result<u64, NetError> {
    r.try_read_bits(width).ok_or(NetError::Truncated)
}

/// Byte blobs ride as a 32-bit length plus packed 64-bit words (the
/// tail word zero-padded), so multi-megabyte checkpoint segments cost
/// one `push_bits` per eight bytes rather than per byte.
fn push_bytes(v: &mut BitVec, bytes: &[u8]) {
    v.push_bits(bytes.len() as u64, 32);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        v.push_bits(u64::from_le_bytes(word), 64);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut word = [0u8; 8];
        word[..rem.len()].copy_from_slice(rem);
        v.push_bits(u64::from_le_bytes(word), (rem.len() * 8) as u32);
    }
}

fn take_bytes(r: &mut BitReader<'_>) -> Result<Vec<u8>, NetError> {
    let len = take(r, 32)? as usize;
    if len as u64 > MAX_FRAME_BYTES {
        return Err(NetError::Oversize { len: len as u64 });
    }
    let mut out = Vec::with_capacity(len);
    let mut left = len;
    while left >= 8 {
        out.extend_from_slice(&take(r, 64)?.to_le_bytes());
        left -= 8;
    }
    if left > 0 {
        let word = take(r, (left * 8) as u32)?.to_le_bytes();
        out.extend_from_slice(&word[..left]);
    }
    Ok(out)
}

fn push_spec(v: &mut BitVec, spec: &CounterSpec) {
    let words = spec.encode_words();
    v.push_bits(words.len() as u64, 8);
    for w in words {
        v.push_bits(w, 64);
    }
}

fn take_spec(r: &mut BitReader<'_>) -> Result<CounterSpec, NetError> {
    let count = take(r, 8)? as usize;
    if count > 16 {
        return Err(NetError::Malformed {
            what: "implausible spec word count",
        });
    }
    let mut words = Vec::with_capacity(count);
    for _ in 0..count {
        words.push(take(r, 64)?);
    }
    CounterSpec::decode_words(&words).map_err(|_| NetError::Malformed {
        what: "undecodable counter spec",
    })
}

impl Frame {
    /// Serializes the frame into its complete wire bytes:
    /// `[len][body][checksum]`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut v = BitVec::new();
        match self {
            Frame::Hello {
                proto,
                role,
                fingerprint,
                identity,
                producer,
                acked_chain,
            } => {
                v.push_bits(TAG_HELLO, 8);
                let tok = begin_section(&mut v);
                v.push_bits(u64::from(*proto), 16);
                v.push_bits(role.to_bits(), 8);
                v.push_bits(*fingerprint, 64);
                push_spec(&mut v, &identity.spec);
                v.push_bits(u64::from(identity.shards), 32);
                v.push_bits(identity.seed, 64);
                v.push_bits(*producer, 64);
                v.push_bits(*acked_chain, 64);
                end_section(&mut v, tok);
            }
            Frame::HelloOk {
                producer,
                resume_after,
                epoch,
            } => {
                v.push_bits(TAG_HELLO_OK, 8);
                let tok = begin_section(&mut v);
                v.push_bits(*producer, 64);
                v.push_bits(*resume_after, 64);
                v.push_bits(*epoch, 64);
                end_section(&mut v, tok);
            }
            Frame::Refused { code, reason } => {
                v.push_bits(TAG_REFUSED, 8);
                let tok = begin_section(&mut v);
                v.push_bits(code.to_bits(), 8);
                write_label(&mut v, reason);
                end_section(&mut v, tok);
            }
            Frame::Batch { seq, pairs } => {
                v.push_bits(TAG_BATCH, 8);
                let tok = begin_section(&mut v);
                v.push_bits(*seq, 64);
                v.push_bits(pairs.len() as u64, 32);
                for &(key, delta) in pairs {
                    v.push_bits(key, 64);
                    v.push_bits(delta, 64);
                }
                end_section(&mut v, tok);
            }
            Frame::BatchAck { seq } => {
                v.push_bits(TAG_BATCH_ACK, 8);
                let tok = begin_section(&mut v);
                v.push_bits(*seq, 64);
                end_section(&mut v, tok);
            }
            Frame::ReadReq { id, query } => {
                v.push_bits(TAG_READ_REQ, 8);
                let tok = begin_section(&mut v);
                v.push_bits(*id, 64);
                query.encode(&mut v);
                end_section(&mut v, tok);
            }
            Frame::ReadResp { id, epoch, reply } => {
                v.push_bits(TAG_READ_RESP, 8);
                let tok = begin_section(&mut v);
                v.push_bits(*id, 64);
                v.push_bits(*epoch, 64);
                reply.encode(&mut v);
                end_section(&mut v, tok);
            }
            Frame::ReplSegment { bytes } => {
                v.push_bits(TAG_REPL_SEGMENT, 8);
                let tok = begin_section(&mut v);
                push_bytes(&mut v, bytes);
                end_section(&mut v, tok);
            }
            Frame::ReplAck { chain } => {
                v.push_bits(TAG_REPL_ACK, 8);
                let tok = begin_section(&mut v);
                v.push_bits(*chain, 64);
                end_section(&mut v, tok);
            }
            Frame::Bye => {
                v.push_bits(TAG_BYE, 8);
                let tok = begin_section(&mut v);
                end_section(&mut v, tok);
            }
        }
        let mut body = v.to_bytes();
        let sum = checksum(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parses one frame body (`[body][checksum]`, the bytes after the
    /// length prefix).
    ///
    /// # Errors
    ///
    /// [`NetError::ChecksumMismatch`] / [`NetError::Truncated`] /
    /// [`NetError::Malformed`] / [`NetError::UnknownFrame`] — every
    /// corruption is a typed rejection.
    pub fn parse_body(body: &[u8]) -> Result<Frame, NetError> {
        if body.len() < 9 {
            return Err(NetError::Truncated);
        }
        let (payload, sum_bytes) = body.split_at(body.len() - 8);
        let declared = u64::from_le_bytes(sum_bytes.try_into().expect("8-byte checksum"));
        if checksum(payload) != declared {
            return Err(NetError::ChecksumMismatch);
        }
        let v = BitVec::from_bytes(payload);
        let mut r = BitReader::new(&v);
        let tag = take(&mut r, 8)?;
        let section_bits = read_section(&mut r).ok_or(NetError::Truncated)?;
        let start = r.position();
        if section_bits > v.len().saturating_sub(start) {
            return Err(NetError::Truncated);
        }
        let frame = match tag {
            TAG_HELLO => {
                let proto = take(&mut r, 16)? as u16;
                let role = Role::from_bits(take(&mut r, 8)?).ok_or(NetError::Malformed {
                    what: "unknown role",
                })?;
                let fingerprint = take(&mut r, 64)?;
                let spec = take_spec(&mut r)?;
                let shards = take(&mut r, 32)? as u32;
                let seed = take(&mut r, 64)?;
                let producer = take(&mut r, 64)?;
                let acked_chain = take(&mut r, 64)?;
                Frame::Hello {
                    proto,
                    role,
                    fingerprint,
                    identity: Identity { spec, shards, seed },
                    producer,
                    acked_chain,
                }
            }
            TAG_HELLO_OK => Frame::HelloOk {
                producer: take(&mut r, 64)?,
                resume_after: take(&mut r, 64)?,
                epoch: take(&mut r, 64)?,
            },
            TAG_REFUSED => {
                let code = RefuseCode::from_bits(take(&mut r, 8)?).ok_or(NetError::Malformed {
                    what: "unknown refuse code",
                })?;
                let reason = read_label(&mut r).ok_or(NetError::Malformed {
                    what: "undecodable refuse reason",
                })?;
                Frame::Refused { code, reason }
            }
            TAG_BATCH => {
                let seq = take(&mut r, 64)?;
                let count = take(&mut r, 32)? as usize;
                // Each pair costs 128 bits; a count the section cannot
                // hold is corruption, not something to allocate for.
                if count as u64 > section_bits / 128 + 1 {
                    return Err(NetError::Malformed {
                        what: "batch pair count exceeds section",
                    });
                }
                let mut pairs = Vec::with_capacity(count);
                for _ in 0..count {
                    pairs.push((take(&mut r, 64)?, take(&mut r, 64)?));
                }
                Frame::Batch { seq, pairs }
            }
            TAG_BATCH_ACK => Frame::BatchAck {
                seq: take(&mut r, 64)?,
            },
            TAG_READ_REQ => Frame::ReadReq {
                id: take(&mut r, 64)?,
                query: Query::decode(&mut r)?,
            },
            TAG_READ_RESP => {
                let id = take(&mut r, 64)?;
                let epoch = take(&mut r, 64)?;
                let reply = Reply::decode(&mut r)?;
                Frame::ReadResp { id, epoch, reply }
            }
            TAG_REPL_SEGMENT => Frame::ReplSegment {
                bytes: take_bytes(&mut r)?,
            },
            TAG_REPL_ACK => Frame::ReplAck {
                chain: take(&mut r, 64)?,
            },
            TAG_BYE => Frame::Bye,
            other => {
                return Err(NetError::UnknownFrame { tag: other as u8 });
            }
        };
        if r.position() - start != section_bits {
            return Err(NetError::Malformed {
                what: "section length disagrees with fields",
            });
        }
        Ok(frame)
    }
}
