//! `StoreServer`: multi-client exactly-once ingest, epoch-pinned read
//! RPCs, and the replication source — one acceptor thread, one
//! connection thread per peer, one chain-cutter thread.
//!
//! ## Exactly-once ingest
//!
//! A remote writer *is* an [`IngestProducer`]: the producer id and
//! per-producer sequence marks that the durable checkpoint format
//! already records flow over the wire unchanged. The server maps each
//! wire batch to exactly one ring batch
//! ([`StoreWriter::submit_batch`]), so the client's numbering and the
//! durable [`ProducerMark`]s are the same numbering. On reconnect the
//! `HELLO` handshake returns the server-side high-water mark; the
//! client replays strictly after it. Duplicates (≤ the mark) are
//! acknowledged without being applied; a gap is a protocol error —
//! batches can be repeated, never skipped or reordered.
//!
//! After a server restart, writers are recreated in producer-id order
//! from [`RecoveryReport::last_applied`] before the listener opens, so
//! the durable marks and the live ring numbering stay interchangeable
//! ([`Store::writer_resuming`]).
//!
//! ## Replication
//!
//! A cutter thread samples published snapshots and maintains one
//! global chain of checkpoint segments — a full base, then deltas cut
//! with [`checkpoint_delta`], compacted through [`compact_chain`] when
//! the chain grows long. Replica connections stream the chain and
//! resume from the last chain digest the replica acknowledged; a
//! digest that fell out of the chain (compaction) triggers a full
//! resend, which the replica folds as a reset. Chain digests make
//! every segment self-validating, so replication inherits the
//! checkpoint format's integrity story wholesale.
//!
//! [`IngestProducer`]: ac_engine::IngestProducer
//! [`ProducerMark`]: ac_engine::ProducerMark
//! [`RecoveryReport::last_applied`]: ac_engine::RecoveryReport

use crate::conn::FrameConn;
use crate::error::{NetError, RefuseCode};
use crate::wire::{Frame, Identity, Query, Reply, Role, NEW_PRODUCER, PROTO_VERSION};
use ac_bitio::{BitVec, BitWriter};
use ac_core::{CounterFamily, StateCodec};
use ac_engine::{
    checkpoint_delta, checkpoint_snapshot, compact_chain_workers, CheckpointHeader, Store,
    StoreReport, StoreWriter,
};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for the server's replication source.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Cut a delta segment once at least this many new events are
    /// visible past the chain tip. (A quiesced stream — events stopped
    /// advancing between two polls — also cuts, so replicas converge
    /// to the final state without waiting for a full threshold.)
    pub delta_every_events: u64,
    /// How often the cutter samples the published snapshot.
    pub cut_poll: Duration,
    /// Compact the chain into a single full base once it holds more
    /// than this many segments. Replicas whose acknowledged digest
    /// falls out of the chain receive a full resend.
    pub max_chain_segments: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            delta_every_events: 4096,
            cut_poll: Duration::from_millis(2),
            max_chain_segments: 16,
        }
    }
}

/// One segment of the replication chain.
#[derive(Debug, Clone)]
struct Segment {
    chain: u64,
    bytes: Arc<Vec<u8>>,
}

/// The replication source: the chain, its tip header, and a
/// generation counter bumped whenever the chain is rewritten
/// (compaction) rather than appended to.
#[derive(Debug, Default)]
struct ReplChain {
    segments: Vec<Segment>,
    tip: Option<CheckpointHeader>,
    generation: u64,
    failed: Option<String>,
}

#[derive(Debug)]
struct ReplSource {
    chain: Mutex<ReplChain>,
    grew: Condvar,
}

#[derive(Debug)]
struct ServerInner {
    store: Store,
    identity: Identity,
    fingerprint: u64,
    template: CounterFamily,
    tiered: bool,
    config: ServerConfig,
    /// Writer slots not currently attached to a connection, by
    /// producer id.
    parked: Mutex<HashMap<u64, StoreWriter>>,
    /// Producer ids attached to a live connection.
    active: Mutex<std::collections::HashSet<u64>>,
    repl: ReplSource,
    stop: AtomicBool,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// The wire front-end of one [`Store`]: owns the store, accepts
/// ingest / reader / replica connections on a TCP listener, and feeds
/// the replication chain. See the module docs for the protocol.
#[derive(Debug)]
pub struct StoreServer {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    cutter: Option<JoinHandle<()>>,
}

impl StoreServer {
    /// [`StoreServer::start_with`] under the default [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Everything [`StoreServer::start_with`] returns.
    pub fn start(store: Store, addr: impl ToSocketAddrs) -> Result<StoreServer, NetError> {
        StoreServer::start_with(store, addr, ServerConfig::default())
    }

    /// Takes ownership of `store`, recreates writers for every
    /// recovered producer mark (the restart half of exactly-once),
    /// binds `addr`, and starts serving.
    ///
    /// # Errors
    ///
    /// Bind/listen failures as [`NetError::Io`];
    /// [`NetError::Malformed`] if the store's spec cannot rebuild its
    /// counter template (impossible for a store that started).
    pub fn start_with(
        store: Store,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<StoreServer, NetError> {
        let spec = store.spec();
        let template = spec.build().map_err(|_| NetError::Malformed {
            what: "store spec does not rebuild",
        })?;
        let engine_config = store.config();
        let identity = Identity {
            spec,
            shards: engine_config.shards as u32,
            seed: engine_config.seed,
        };
        let fingerprint = template.params_fingerprint();
        let tiered = store.stats().tier_budget_bits.is_some();

        // Recreate a writer per recovered producer mark, in producer-id
        // order, each resuming at its durable applied mark — producer
        // ids are ring-registry indices, so creation order IS identity.
        let mut parked = HashMap::new();
        if let Some(report) = store.recovery() {
            let mut marks = report.last_applied.clone();
            marks.sort_unstable_by_key(|m| m.producer);
            for mark in marks {
                let writer = store.writer_resuming(mark.applied_seq);
                assert_eq!(
                    writer.producer_id(),
                    mark.producer,
                    "recovered producer marks must be dense in id order"
                );
                parked.insert(mark.producer, writer);
            }
        }

        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::new(ServerInner {
            store,
            identity,
            fingerprint,
            template,
            tiered,
            config,
            parked: Mutex::new(parked),
            active: Mutex::new(std::collections::HashSet::new()),
            repl: ReplSource {
                chain: Mutex::new(ReplChain::default()),
                grew: Condvar::new(),
            },
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });

        let cutter = if tiered {
            // Version-2 replication segments have nowhere to put tier
            // tags; replica connections are refused instead.
            None
        } else {
            let inner = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("ac-net-cutter".into())
                    .spawn(move || cutter_loop(&inner))
                    .expect("spawn replication cutter"),
            )
        };

        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ac-net-accept".into())
                .spawn(move || accept_loop(&inner, &listener))
                .expect("spawn acceptor")
        };

        Ok(StoreServer {
            inner,
            addr: local,
            accept: Some(accept),
            cutter,
        })
    }

    /// The bound listen address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The identity connections must present.
    #[must_use]
    pub fn identity(&self) -> Identity {
        self.inner.identity.clone()
    }

    /// The replication chain's current tip digest (0 before the first
    /// segment is cut). Replicas converge to exactly this digest.
    #[must_use]
    pub fn tip_chain(&self) -> u64 {
        let chain = self.inner.repl.chain.lock().expect("repl chain");
        chain.segments.last().map_or(0, |s| s.chain)
    }

    /// A read handle over the served store (in-process fast path).
    #[must_use]
    pub fn reader(&self) -> ac_engine::StoreReader {
        self.inner.store.reader()
    }

    /// Stops accepting, drains every connection thread, and closes the
    /// store (flushing its final checkpoint, for durable stores).
    ///
    /// # Errors
    ///
    /// Store close failures, rendered as [`NetError::Remote`].
    pub fn shutdown(mut self) -> Result<StoreReport, NetError> {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.repl.grew.notify_all();
        // Poke the acceptor out of `accept()`.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.cutter.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .inner
            .conns
            .lock()
            .expect("conn registry")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        // Parked writers hold ring handles; drop them before close so
        // the ingest queue can drain and seal.
        self.inner.parked.lock().expect("parked writers").clear();
        let inner = Arc::try_unwrap(self.inner).expect("all server threads joined");
        inner.store.close().map_err(|e| NetError::Remote {
            reason: e.to_string(),
        })
    }
}

fn accept_loop(inner: &Arc<ServerInner>, listener: &TcpListener) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if inner.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let inner2 = Arc::clone(inner);
        let handle = std::thread::Builder::new()
            .name("ac-net-conn".into())
            .spawn(move || {
                let _ = serve_connection(&inner2, stream);
            })
            .expect("spawn connection thread");
        inner.conns.lock().expect("conn registry").push(handle);
    }
}

/// Validates the peer's `HELLO` against ours; `Err` carries the
/// refusal already sent.
fn check_hello(
    inner: &ServerInner,
    conn: &mut FrameConn,
    proto: u16,
    fingerprint: u64,
    identity: &Identity,
) -> Result<(), NetError> {
    let refuse = |conn: &mut FrameConn, code, reason: &str| {
        let _ = conn.send(&Frame::Refused {
            code,
            reason: reason.into(),
        });
        Err(NetError::Refused {
            code,
            reason: reason.into(),
        })
    };
    if proto != PROTO_VERSION {
        return refuse(conn, RefuseCode::Version, "protocol version mismatch");
    }
    if fingerprint != inner.fingerprint
        || identity.spec != inner.identity.spec
        || identity.shards != inner.identity.shards
        || identity.seed != inner.identity.seed
    {
        return refuse(
            conn,
            RefuseCode::Identity,
            "counter spec / engine config mismatch",
        );
    }
    Ok(())
}

fn serve_connection(inner: &Arc<ServerInner>, stream: TcpStream) -> Result<(), NetError> {
    let mut conn = FrameConn::new(stream)?;
    let stop = || inner.stop.load(Ordering::SeqCst);
    let hello = conn.recv_interruptible(&stop)?;
    let Frame::Hello {
        proto,
        role,
        fingerprint,
        identity,
        producer,
        acked_chain,
    } = hello
    else {
        let _ = conn.send(&Frame::Refused {
            code: RefuseCode::Protocol,
            reason: "expected HELLO".into(),
        });
        return Err(NetError::UnexpectedFrame {
            what: "non-HELLO opener",
        });
    };
    check_hello(inner, &mut conn, proto, fingerprint, &identity)?;
    match role {
        Role::Ingest => serve_ingest(inner, conn, producer),
        Role::Reader => serve_reader(inner, conn),
        Role::Replica => serve_replica(inner, conn, acked_chain),
    }
}

/// Claims (or mints) the writer for `producer`. Producer ids are dense
/// ring indices, so a claim beyond the current population mints
/// writers forward until the id exists — those intermediate producers
/// have no durable state, which is exactly what a fresh mark says.
fn claim_writer(inner: &ServerInner, producer: u64) -> Result<StoreWriter, RefuseCode> {
    let mut active = inner.active.lock().expect("active producers");
    let mut parked = inner.parked.lock().expect("parked writers");
    if producer == NEW_PRODUCER {
        let writer = inner.store.writer();
        active.insert(writer.producer_id());
        return Ok(writer);
    }
    if active.contains(&producer) {
        return Err(RefuseCode::Busy);
    }
    if let Some(writer) = parked.remove(&producer) {
        active.insert(producer);
        return Ok(writer);
    }
    // Mint forward to the claimed id (bounded: a claim absurdly far
    // past the population is a protocol error, not a minting loop).
    let mut minted = Vec::new();
    for _ in 0..4096 {
        let writer = inner.store.writer();
        let id = writer.producer_id();
        if id == producer {
            for w in minted {
                parked.insert(w_id(&w), w);
            }
            active.insert(id);
            return Ok(writer);
        }
        if id > producer {
            // The id existed but is neither parked nor active — only
            // possible via in-process writers the server doesn't own.
            for w in minted {
                parked.insert(w_id(&w), w);
            }
            parked.insert(id, writer);
            return Err(RefuseCode::Busy);
        }
        minted.push(writer);
    }
    for w in minted {
        parked.insert(w_id(&w), w);
    }
    Err(RefuseCode::Protocol)
}

fn w_id(w: &StoreWriter) -> u64 {
    w.producer_id()
}

fn park_writer(inner: &ServerInner, writer: StoreWriter) {
    let id = writer.producer_id();
    inner
        .parked
        .lock()
        .expect("parked writers")
        .insert(id, writer);
    inner.active.lock().expect("active producers").remove(&id);
}

fn serve_ingest(
    inner: &Arc<ServerInner>,
    mut conn: FrameConn,
    producer: u64,
) -> Result<(), NetError> {
    let mut writer = match claim_writer(inner, producer) {
        Ok(w) => w,
        Err(code) => {
            let _ = conn.send(&Frame::Refused {
                code,
                reason: format!("producer {producer} unavailable"),
            });
            return Err(NetError::Refused {
                code,
                reason: "producer unavailable".into(),
            });
        }
    };
    conn.send(&Frame::HelloOk {
        producer: writer.producer_id(),
        resume_after: writer.last_seq(),
        epoch: inner.store.reader().epoch(),
    })?;
    let stop = || inner.stop.load(Ordering::SeqCst);
    let result = loop {
        let frame = match conn.recv_interruptible(&stop) {
            Ok(f) => f,
            Err(e) => break Err(e),
        };
        match frame {
            Frame::Batch { seq, pairs } => {
                let accepted = writer.last_seq();
                if seq <= accepted {
                    // Replay of a batch we already hold: acknowledge,
                    // never re-apply — the dedup half of exactly-once.
                    if conn.send(&Frame::BatchAck { seq: accepted }).is_err() {
                        break Err(NetError::Closed);
                    }
                    continue;
                }
                if seq != accepted + 1 {
                    let _ = conn.send(&Frame::Refused {
                        code: RefuseCode::Protocol,
                        reason: format!("sequence gap: expected {}, got {seq}", accepted + 1),
                    });
                    break Err(NetError::SequenceGap {
                        expected: accepted + 1,
                        got: seq,
                    });
                }
                if pairs.is_empty() || pairs.iter().any(|&(_, d)| d == 0) {
                    let _ = conn.send(&Frame::Refused {
                        code: RefuseCode::Protocol,
                        reason: "batch must carry nonzero events".into(),
                    });
                    break Err(NetError::Malformed {
                        what: "eventless wire batch",
                    });
                }
                match writer.submit_batch(pairs) {
                    Ok(got) => {
                        debug_assert_eq!(got, seq, "wire and ring numbering must agree");
                        if conn.send(&Frame::BatchAck { seq }).is_err() {
                            break Err(NetError::Closed);
                        }
                    }
                    Err(_) => {
                        let _ = conn.send(&Frame::Refused {
                            code: RefuseCode::Shutdown,
                            reason: "store is shutting down".into(),
                        });
                        break Err(NetError::Closed);
                    }
                }
            }
            Frame::Bye => break Ok(()),
            _ => {
                let _ = conn.send(&Frame::Refused {
                    code: RefuseCode::Protocol,
                    reason: "unexpected frame on ingest connection".into(),
                });
                break Err(NetError::UnexpectedFrame {
                    what: "non-batch frame on ingest connection",
                });
            }
        }
    };
    park_writer(inner, writer);
    result
}

fn serve_reader(inner: &Arc<ServerInner>, mut conn: FrameConn) -> Result<(), NetError> {
    conn.send(&Frame::HelloOk {
        producer: NEW_PRODUCER,
        resume_after: 0,
        epoch: inner.store.reader().epoch(),
    })?;
    let mut reader = inner.store.reader();
    let stop = || inner.stop.load(Ordering::SeqCst);
    loop {
        let frame = conn.recv_interruptible(&stop)?;
        match frame {
            Frame::ReadReq { id, query } => {
                // Each query pins the newest published replica; the
                // reply reports the epoch it was served at.
                reader.refresh();
                let reply = serve_query(inner, &reader, query);
                conn.send(&Frame::ReadResp {
                    id,
                    epoch: reader.epoch(),
                    reply,
                })?;
            }
            Frame::Bye => return Ok(()),
            _ => {
                let _ = conn.send(&Frame::Refused {
                    code: RefuseCode::Protocol,
                    reason: "unexpected frame on read connection".into(),
                });
                return Err(NetError::UnexpectedFrame {
                    what: "non-query frame on read connection",
                });
            }
        }
    }
}

fn serve_query(inner: &ServerInner, reader: &ac_engine::StoreReader, query: Query) -> Reply {
    match query {
        Query::Estimate { key } => reader.estimate(key).map_or(Reply::Absent, Reply::F64),
        Query::MergedEstimate => match reader.merged_estimate() {
            Ok(x) => Reply::F64(x),
            Err(e) => Reply::Error(e.to_string()),
        },
        Query::MergedTotal => match reader.merged_total() {
            Ok(counter) => {
                let mut v = BitVec::new();
                let mut w = BitWriter::new(&mut v);
                counter.encode_state(&mut w);
                Reply::State(v.to_bytes())
            }
            Err(e) => Reply::Error(e.to_string()),
        },
        Query::MergedEstimateTiered { tiers } => {
            match reader.merged_estimate_tiered(tiers as usize) {
                Ok(x) => Reply::F64(x),
                Err(e) => Reply::Error(e.to_string()),
            }
        }
        Query::TotalEvents => Reply::U64(reader.total_events()),
        Query::Len => Reply::U64(reader.len() as u64),
        Query::Stats => Reply::Stats {
            keys: reader.len() as u64,
            events: reader.total_events(),
        },
        Query::ReplTip => {
            let chain = inner.repl.chain.lock().expect("repl chain");
            Reply::U64(chain.segments.last().map_or(0, |s| s.chain))
        }
    }
}

fn serve_replica(
    inner: &Arc<ServerInner>,
    mut conn: FrameConn,
    acked_chain: u64,
) -> Result<(), NetError> {
    if inner.tiered {
        let _ = conn.send(&Frame::Refused {
            code: RefuseCode::Unsupported,
            reason: "tiered stores do not replicate".into(),
        });
        return Err(NetError::Refused {
            code: RefuseCode::Unsupported,
            reason: "tiered store".into(),
        });
    }
    conn.send(&Frame::HelloOk {
        producer: NEW_PRODUCER,
        resume_after: 0,
        epoch: inner.store.reader().epoch(),
    })?;
    let stop = || inner.stop.load(Ordering::SeqCst);
    let mut last_acked = acked_chain;
    let (mut cursor, mut generation) = {
        let chain = inner.repl.chain.lock().expect("repl chain");
        (resume_cursor(&chain, last_acked), chain.generation)
    };
    loop {
        let next = {
            let chain = inner.repl.chain.lock().expect("repl chain");
            if let Some(reason) = &chain.failed {
                let reason = reason.clone();
                drop(chain);
                let _ = conn.send(&Frame::Refused {
                    code: RefuseCode::Shutdown,
                    reason: reason.clone(),
                });
                return Err(NetError::Remote { reason });
            }
            if chain.generation != generation {
                // Compaction rewrote the chain under us: resume from
                // the last digest the replica acknowledged, or from
                // the (full) base when that digest was folded away.
                cursor = resume_cursor(&chain, last_acked);
                generation = chain.generation;
            }
            if cursor < chain.segments.len() {
                Some(chain.segments[cursor].clone())
            } else {
                let (guard, _) = inner
                    .repl
                    .grew
                    .wait_timeout(chain, Duration::from_millis(100))
                    .expect("repl chain");
                drop(guard);
                if stop() {
                    return Ok(());
                }
                None
            }
        };
        let Some(segment) = next else { continue };
        conn.send(&Frame::ReplSegment {
            bytes: segment.bytes.as_ref().clone(),
        })?;
        match conn.recv_interruptible(&stop)? {
            Frame::ReplAck { chain } if chain == segment.chain => {
                last_acked = segment.chain;
                cursor += 1;
            }
            Frame::Bye => return Ok(()),
            _ => {
                return Err(NetError::UnexpectedFrame {
                    what: "expected ReplAck",
                })
            }
        }
    }
}

/// Where to resume a replica that has folded up to `acked`: right
/// after that digest if it is still in the chain, else from the start
/// (segment 0 is always a full base, which the replica folds as a
/// reset).
fn resume_cursor(chain: &ReplChain, acked: u64) -> usize {
    if acked == 0 {
        return 0;
    }
    chain
        .segments
        .iter()
        .position(|s| s.chain == acked)
        .map_or(0, |idx| idx + 1)
}

fn cutter_loop(inner: &Arc<ServerInner>) {
    let mut reader = inner.store.reader();
    let mut last_poll_events = u64::MAX;
    while !inner.stop.load(Ordering::SeqCst) {
        std::thread::sleep(inner.config.cut_poll);
        reader.refresh();
        let snap = reader.snapshot();
        let mut chain = inner.repl.chain.lock().expect("repl chain");
        if chain.failed.is_some() {
            return;
        }
        match chain.tip {
            None => {
                let full = checkpoint_snapshot(snap);
                chain.tip = Some(full.header());
                chain.segments.push(Segment {
                    chain: full.header().chain,
                    bytes: Arc::new(full.into_bytes()),
                });
                inner.repl.grew.notify_all();
            }
            Some(tip) => {
                let events = snap.total_events();
                let advanced = events.saturating_sub(tip.events);
                let quiesced = events == last_poll_events;
                if snap.epoch() > tip.epoch
                    && advanced > 0
                    && (advanced >= inner.config.delta_every_events || quiesced)
                {
                    match checkpoint_delta(snap, &tip) {
                        Ok(delta) => {
                            chain.tip = Some(delta.header());
                            chain.segments.push(Segment {
                                chain: delta.header().chain,
                                bytes: Arc::new(delta.into_bytes()),
                            });
                            inner.repl.grew.notify_all();
                        }
                        Err(e) => {
                            chain.failed = Some(format!("delta cut failed: {e}"));
                            inner.repl.grew.notify_all();
                            return;
                        }
                    }
                }
            }
        }
        if chain.segments.len() > inner.config.max_chain_segments {
            let segments: Vec<&[u8]> = chain.segments.iter().map(|s| s.bytes.as_slice()).collect();
            match compact_chain_workers(&inner.template, &segments, 0) {
                Ok(base) => {
                    chain.tip = Some(base.header());
                    chain.segments = vec![Segment {
                        chain: base.header().chain,
                        bytes: Arc::new(base.into_bytes()),
                    }];
                    chain.generation += 1;
                }
                Err(e) => {
                    chain.failed = Some(format!("chain compaction failed: {e}"));
                    inner.repl.grew.notify_all();
                    return;
                }
            }
        }
        last_poll_events = snap.total_events();
    }
}
