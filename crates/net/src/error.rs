//! The typed failure vocabulary of the wire layer.

use std::fmt;

/// Why a peer was turned away at the `HELLO` handshake. Carried inside
/// [`NetError::Refused`] so callers can branch on the cause without
/// string-matching the human-readable reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RefuseCode {
    /// Protocol version disagreement.
    Version,
    /// `CounterSpec` / engine-config fingerprint disagreement — the
    /// peer's counters would not be interchangeable with ours, the same
    /// rule the manifest applies to checkpoint frames.
    Identity,
    /// The claimed producer id is attached to a live connection.
    Busy,
    /// The peer broke the protocol state machine (bad sequence, empty
    /// batch, frame out of place).
    Protocol,
    /// The server is shutting down or the store refused the write.
    Shutdown,
    /// This store cannot serve the requested role (e.g. replication of
    /// a tiered store, whose frames a plain replica cannot fold).
    Unsupported,
}

impl RefuseCode {
    pub(crate) fn to_bits(self) -> u64 {
        match self {
            RefuseCode::Version => 0,
            RefuseCode::Identity => 1,
            RefuseCode::Busy => 2,
            RefuseCode::Protocol => 3,
            RefuseCode::Shutdown => 4,
            RefuseCode::Unsupported => 5,
        }
    }

    pub(crate) fn from_bits(bits: u64) -> Option<Self> {
        Some(match bits {
            0 => RefuseCode::Version,
            1 => RefuseCode::Identity,
            2 => RefuseCode::Busy,
            3 => RefuseCode::Protocol,
            4 => RefuseCode::Shutdown,
            5 => RefuseCode::Unsupported,
            _ => return None,
        })
    }
}

impl fmt::Display for RefuseCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RefuseCode::Version => "version",
            RefuseCode::Identity => "identity",
            RefuseCode::Busy => "busy",
            RefuseCode::Protocol => "protocol",
            RefuseCode::Shutdown => "shutdown",
            RefuseCode::Unsupported => "unsupported",
        };
        f.write_str(s)
    }
}

/// Everything that can go wrong on the wire. Corruption is *always* a
/// typed error, never a panic or a silently wrong frame: a flipped bit
/// fails the frame checksum, a truncation fails the length contract,
/// and a reordered batch fails the sequence contract.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// Transport-level I/O failure.
    Io(std::io::Error),
    /// The peer closed the connection mid-frame, or a frame body ended
    /// before its declared fields did.
    Truncated,
    /// The peer closed the connection cleanly (between frames).
    Closed,
    /// The frame checksum did not match its body.
    ChecksumMismatch,
    /// A declared frame length exceeds the protocol cap.
    Oversize {
        /// The declared body length.
        len: u64,
    },
    /// An unknown frame tag (wire versions are negotiated at `HELLO`,
    /// so this is corruption or a peer bug, not skew).
    UnknownFrame {
        /// The tag byte received.
        tag: u8,
    },
    /// A structurally invalid frame body.
    Malformed {
        /// Which contract the body broke.
        what: &'static str,
    },
    /// A frame that is valid in itself but illegal in the current
    /// protocol state (e.g. a reply before a request).
    UnexpectedFrame {
        /// What arrived.
        what: &'static str,
    },
    /// A batch arrived beyond the next expected sequence number —
    /// frames were lost or reordered in between.
    SequenceGap {
        /// The sequence number the receiver expected next.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
    /// The peer refused the handshake or the session.
    Refused {
        /// The machine-readable cause.
        code: RefuseCode,
        /// The human-readable explanation.
        reason: String,
    },
    /// The background session died; the detail is the root cause's
    /// rendering.
    ConnectionLost {
        /// Rendering of the error that killed the session.
        detail: String,
    },
    /// Events were shed under [`BackpressurePolicy::DropNewest`]
    /// (reported after the fact by `flush`, mirroring the local writer).
    ///
    /// [`BackpressurePolicy::DropNewest`]: ac_engine::BackpressurePolicy::DropNewest
    EventsDropped {
        /// How many events were dropped since the last flush.
        events: u64,
    },
    /// The remote store reported an error serving a query.
    Remote {
        /// The server-side error, rendered.
        reason: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o failure on the wire: {e}"),
            NetError::Truncated => f.write_str("frame truncated"),
            NetError::Closed => f.write_str("connection closed by peer"),
            NetError::ChecksumMismatch => f.write_str("frame checksum mismatch"),
            NetError::Oversize { len } => write!(f, "frame length {len} exceeds protocol cap"),
            NetError::UnknownFrame { tag } => write!(f, "unknown frame tag {tag}"),
            NetError::Malformed { what } => write!(f, "malformed frame: {what}"),
            NetError::UnexpectedFrame { what } => write!(f, "unexpected frame: {what}"),
            NetError::SequenceGap { expected, got } => {
                write!(f, "sequence gap: expected batch {expected}, got {got}")
            }
            NetError::Refused { code, reason } => write!(f, "peer refused ({code}): {reason}"),
            NetError::ConnectionLost { detail } => write!(f, "session lost: {detail}"),
            NetError::EventsDropped { events } => {
                write!(f, "{events} events dropped under the DropNewest policy")
            }
            NetError::Remote { reason } => write!(f, "remote store error: {reason}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::Truncated
        } else {
            NetError::Io(e)
        }
    }
}
