//! `StoreClient`: remote writers with the nonblocking,
//! backpressure-policy-aware API of the local [`StoreWriter`], and
//! remote readers for the epoch-pinned RPCs.
//!
//! [`StoreWriter`]: ac_engine::StoreWriter

use crate::conn::FrameConn;
use crate::error::NetError;
use crate::wire::{Frame, Identity, Query, Reply, Role, NEW_PRODUCER, PROTO_VERSION};
use ac_bitio::{BitReader, BitVec};
use ac_core::{CounterFamily, StateCodec};
use ac_engine::BackpressurePolicy;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Client-side knobs for a [`NetWriter`].
#[derive(Debug, Clone)]
pub struct WriterConfig {
    /// What to do when the outbox is full — the same vocabulary as the
    /// local writer's ring.
    pub policy: BackpressurePolicy,
    /// Pairs per auto-flushed batch.
    pub batch_pairs: usize,
    /// Maximum batches in flight (queued locally + sent-but-unacked).
    pub outbox_batches: usize,
}

impl Default for WriterConfig {
    fn default() -> Self {
        WriterConfig {
            policy: BackpressurePolicy::Block,
            batch_pairs: 256,
            outbox_batches: 64,
        }
    }
}

/// A connection factory bound to one server address and identity.
#[derive(Debug, Clone)]
pub struct StoreClient {
    addr: SocketAddr,
    identity: Identity,
}

impl StoreClient {
    /// Binds the factory to `addr` with the identity every connection
    /// will present (and be checked against).
    ///
    /// # Errors
    ///
    /// Address resolution failures.
    pub fn new(addr: impl ToSocketAddrs, identity: Identity) -> Result<StoreClient, NetError> {
        let addr = addr.to_socket_addrs()?.next().ok_or(NetError::Malformed {
            what: "address resolves to nothing",
        })?;
        Ok(StoreClient { addr, identity })
    }

    /// The identity this client presents.
    #[must_use]
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    /// Opens a writer under a freshly minted producer id.
    ///
    /// # Errors
    ///
    /// Connect/handshake failures, including [`NetError::Refused`] on
    /// identity or version mismatch.
    pub fn writer(&self, config: WriterConfig) -> Result<NetWriter, NetError> {
        NetWriter::open(self.addr, &self.identity, NEW_PRODUCER, config)
    }

    /// Reclaims an existing producer id — the reconnect half of
    /// exactly-once. The returned writer's [`NetWriter::resume_after`]
    /// is the last sequence number the server holds; replay your
    /// stream strictly after it.
    ///
    /// # Errors
    ///
    /// Everything [`StoreClient::writer`] returns, plus
    /// [`NetError::Refused`] with [`RefuseCode::Busy`] when the id is
    /// attached to a live connection.
    ///
    /// [`RefuseCode::Busy`]: crate::RefuseCode::Busy
    pub fn writer_resuming(
        &self,
        producer: u64,
        config: WriterConfig,
    ) -> Result<NetWriter, NetError> {
        NetWriter::open(self.addr, &self.identity, producer, config)
    }

    /// Opens a remote read handle.
    ///
    /// # Errors
    ///
    /// Connect/handshake failures.
    pub fn reader(&self) -> Result<RemoteReader, NetError> {
        let mut conn = connect(self.addr, &self.identity, Role::Reader, NEW_PRODUCER, 0)?;
        let (_, _, epoch) = expect_hello_ok(&mut conn)?;
        Ok(RemoteReader {
            conn,
            template: build_template(&self.identity)?,
            next_id: 1,
            epoch,
        })
    }
}

fn build_template(identity: &Identity) -> Result<CounterFamily, NetError> {
    identity.spec.build().map_err(|_| NetError::Malformed {
        what: "client spec does not build",
    })
}

pub(crate) fn connect(
    addr: SocketAddr,
    identity: &Identity,
    role: Role,
    producer: u64,
    acked_chain: u64,
) -> Result<FrameConn, NetError> {
    let stream = TcpStream::connect(addr)?;
    let mut conn = FrameConn::new(stream)?;
    conn.send(&Frame::Hello {
        proto: PROTO_VERSION,
        role,
        fingerprint: identity.fingerprint(),
        identity: identity.clone(),
        producer,
        acked_chain,
    })?;
    Ok(conn)
}

pub(crate) fn expect_hello_ok(conn: &mut FrameConn) -> Result<(u64, u64, u64), NetError> {
    match conn.recv()? {
        Frame::HelloOk {
            producer,
            resume_after,
            epoch,
        } => Ok((producer, resume_after, epoch)),
        Frame::Refused { code, reason } => Err(NetError::Refused { code, reason }),
        _ => Err(NetError::UnexpectedFrame {
            what: "expected HelloOk",
        }),
    }
}

/// One queued-or-inflight wire batch.
#[derive(Debug)]
struct WireBatch {
    seq: u64,
    pairs: Vec<(u64, u64)>,
}

#[derive(Debug, Default)]
struct WriterState {
    /// Batches not yet written to the socket.
    outbox: VecDeque<WireBatch>,
    /// Batches written but not yet acknowledged — kept whole so a
    /// reconnect can replay them.
    inflight: VecDeque<WireBatch>,
    /// Server-acknowledged high-water mark.
    acked: u64,
    /// Set when the session dies; renders the root cause.
    dead: Option<String>,
    /// Set by `close` so the I/O threads drain and exit.
    closing: bool,
}

#[derive(Debug)]
struct WriterShared {
    state: Mutex<WriterState>,
    /// Signaled when the outbox gains work or the writer is closing.
    work: Condvar,
    /// Signaled when capacity frees up or acks advance.
    room: Condvar,
}

/// A remote [`StoreWriter`]: `record` coalesces into batches,
/// full batches auto-flush under the configured
/// [`BackpressurePolicy`], and a background sender/ack pair keeps the
/// pipe full without blocking the recording thread. Unacknowledged
/// batches are retained, so a dropped connection can be resumed
/// ([`NetWriter::reconnect`]) without losing or duplicating a single
/// event.
///
/// [`StoreWriter`]: ac_engine::StoreWriter
/// [`BackpressurePolicy`]: ac_engine::BackpressurePolicy
#[derive(Debug)]
pub struct NetWriter {
    addr: SocketAddr,
    identity: Identity,
    config: WriterConfig,
    producer: u64,
    resume_after: u64,
    next_seq: u64,
    buf: Vec<(u64, u64)>,
    dropped_events: u64,
    shared: Arc<WriterShared>,
    conn: FrameConn,
    sender: Option<JoinHandle<()>>,
    acker: Option<JoinHandle<()>>,
}

impl NetWriter {
    fn open(
        addr: SocketAddr,
        identity: &Identity,
        producer: u64,
        config: WriterConfig,
    ) -> Result<NetWriter, NetError> {
        let mut conn = connect(addr, identity, Role::Ingest, producer, 0)?;
        let (producer, resume_after, _) = expect_hello_ok(&mut conn)?;
        let shared = Arc::new(WriterShared {
            state: Mutex::new(WriterState {
                acked: resume_after,
                ..WriterState::default()
            }),
            work: Condvar::new(),
            room: Condvar::new(),
        });
        let mut writer = NetWriter {
            addr,
            identity: identity.clone(),
            config,
            producer,
            resume_after,
            next_seq: resume_after + 1,
            buf: Vec::new(),
            dropped_events: 0,
            shared,
            conn,
            sender: None,
            acker: None,
        };
        writer.spawn_io()?;
        Ok(writer)
    }

    fn spawn_io(&mut self) -> Result<(), NetError> {
        let mut send_conn = self.conn.try_clone()?;
        let shared = Arc::clone(&self.shared);
        self.sender = Some(
            std::thread::Builder::new()
                .name("ac-net-sender".into())
                .spawn(move || sender_loop(&shared, &mut send_conn))
                .expect("spawn sender"),
        );
        let mut ack_conn = self.conn.try_clone()?;
        let shared = Arc::clone(&self.shared);
        self.acker = Some(
            std::thread::Builder::new()
                .name("ac-net-acker".into())
                .spawn(move || acker_loop(&shared, &mut ack_conn))
                .expect("spawn acker"),
        );
        Ok(())
    }

    /// The producer id this writer records under — persist it to
    /// resume after a crash ([`StoreClient::writer_resuming`]).
    #[must_use]
    pub fn producer_id(&self) -> u64 {
        self.producer
    }

    /// The server-side high-water mark at handshake time: the last
    /// sequence number the server already holds for this producer.
    /// Replay strictly after it.
    #[must_use]
    pub fn resume_after(&self) -> u64 {
        self.resume_after
    }

    /// The sequence number of the last batch this writer queued.
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Records `delta` increments to `key` (coalesced; full batches
    /// auto-flush under the configured policy).
    pub fn record(&mut self, key: u64, delta: u64) {
        if delta == 0 {
            return;
        }
        if let Some(last) = self.buf.last_mut() {
            if last.0 == key {
                last.1 = last.1.saturating_add(delta);
                return;
            }
        }
        if self.buf.len() >= self.config.batch_pairs {
            self.auto_flush();
        }
        self.buf.push((key, delta));
    }

    fn auto_flush(&mut self) {
        let pairs = std::mem::take(&mut self.buf);
        match self.config.policy {
            BackpressurePolicy::DropNewest => {
                if let Err(NetSendError::Closed(pairs) | NetSendError::Full(pairs)) =
                    self.enqueue(pairs, false)
                {
                    self.dropped_events += events_of(&pairs);
                }
            }
            BackpressurePolicy::Fail => {
                // Mirror the local writer: refusal is surfaced at
                // `try_send`, with the data still in hand — keep
                // buffering past the batch size rather than dropping.
                match self.enqueue(pairs, false) {
                    Ok(()) => {}
                    Err(NetSendError::Full(pairs) | NetSendError::Closed(pairs)) => {
                        self.buf = pairs;
                    }
                }
            }
            // `Block`, and any future policy: waiting is the only
            // choice that loses nothing.
            _ => {
                if let Err(NetSendError::Closed(pairs) | NetSendError::Full(pairs)) =
                    self.enqueue(pairs, true)
                {
                    self.dropped_events += events_of(&pairs);
                }
            }
        }
    }

    /// Queues the buffered batch without blocking — the nonblocking
    /// foreground of the writer API, mirroring the local
    /// [`StoreWriter::try_send`].
    ///
    /// # Errors
    ///
    /// [`NetSendError::Full`] when the outbox is at capacity,
    /// [`NetSendError::Closed`] after the session died — both carry
    /// the batch so the caller can hold, spill, or shed it.
    ///
    /// [`StoreWriter::try_send`]: ac_engine::StoreWriter::try_send
    pub fn try_send(&mut self) -> Result<(), NetSendError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let pairs = std::mem::take(&mut self.buf);
        match self.enqueue(pairs, false) {
            Ok(()) => Ok(()),
            Err(e) => {
                match &e {
                    NetSendError::Full(pairs) | NetSendError::Closed(pairs) => {
                        self.buf = pairs.clone();
                    }
                }
                Err(e)
            }
        }
    }

    /// Queues the buffered batch, blocking while the outbox is full.
    ///
    /// # Errors
    ///
    /// [`NetSendError::Closed`] if the session dies first.
    pub fn send(&mut self) -> Result<(), NetSendError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let pairs = std::mem::take(&mut self.buf);
        self.enqueue(pairs, true)
    }

    /// Queues one *prepared* batch under the next sequence number,
    /// blocking while the outbox is full; returns the sequence number
    /// assigned. (The replay path after a crash: regenerate the
    /// batches past [`NetWriter::resume_after`] and submit them in
    /// order.)
    ///
    /// # Errors
    ///
    /// [`NetSendError::Closed`] if the session dies first.
    pub fn submit_batch(&mut self, pairs: Vec<(u64, u64)>) -> Result<u64, NetSendError> {
        self.send()?;
        let seq = self.next_seq;
        self.enqueue(pairs, true).map(|()| seq)
    }

    fn enqueue(&mut self, mut pairs: Vec<(u64, u64)>, park: bool) -> Result<(), NetSendError> {
        pairs.retain(|&(_, d)| d != 0);
        if pairs.is_empty() {
            return Ok(());
        }
        let mut state = self.shared.state.lock().expect("writer state");
        loop {
            if state.dead.is_some() {
                return Err(NetSendError::Closed(pairs));
            }
            if state.outbox.len() + state.inflight.len() < self.config.outbox_batches {
                break;
            }
            if !park {
                return Err(NetSendError::Full(pairs));
            }
            state = self.shared.room.wait(state).expect("writer state");
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        state.outbox.push_back(WireBatch { seq, pairs });
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Flushes the partial batch, waits until **every** queued batch
    /// is server-acknowledged, then reports any silent losses after
    /// the fact (mirroring the local writer's `flush`).
    ///
    /// # Errors
    ///
    /// [`NetError::EventsDropped`] when the `DropNewest` policy shed
    /// batches since the last flush; [`NetError::ConnectionLost`] when
    /// the session died with batches unacknowledged.
    pub fn flush(&mut self) -> Result<(), NetError> {
        if !self.buf.is_empty() {
            self.auto_flush();
        }
        let mut state = self.shared.state.lock().expect("writer state");
        while state.dead.is_none() && (!state.outbox.is_empty() || !state.inflight.is_empty()) {
            state = self.shared.room.wait(state).expect("writer state");
        }
        if let Some(detail) = &state.dead {
            return Err(NetError::ConnectionLost {
                detail: detail.clone(),
            });
        }
        drop(state);
        if self.dropped_events > 0 {
            let events = std::mem::take(&mut self.dropped_events);
            return Err(NetError::EventsDropped { events });
        }
        Ok(())
    }

    /// Re-dials the server after a connection loss and replays every
    /// unacknowledged batch — exactly-once by construction: the
    /// handshake reports what the server already holds, the replay
    /// starts strictly after it, and the server acknowledges (without
    /// re-applying) anything it had seen.
    ///
    /// # Errors
    ///
    /// Connect/handshake failures; the writer is left dead (but
    /// retryable) on error.
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        self.teardown_io();
        let mut conn = connect(self.addr, &self.identity, Role::Ingest, self.producer, 0)?;
        let (producer, resume_after, _) = expect_hello_ok(&mut conn)?;
        debug_assert_eq!(producer, self.producer, "server must honor the claimed id");
        {
            let mut state = self.shared.state.lock().expect("writer state");
            // Everything at or below the server's mark is durable
            // server-side: drop it. Everything after it replays, in
            // order, ahead of any still-queued batches.
            let mut replay: Vec<WireBatch> = state.inflight.drain(..).collect();
            replay.retain(|b| b.seq > resume_after);
            for batch in replay.into_iter().rev() {
                state.outbox.push_front(batch);
            }
            state.outbox.retain(|b| b.seq > resume_after);
            state.acked = resume_after;
            state.dead = None;
            state.closing = false;
        }
        self.conn = conn;
        self.spawn_io()?;
        self.shared.work.notify_all();
        Ok(())
    }

    fn teardown_io(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("writer state");
            if state.dead.is_none() {
                state.dead = Some("reconnecting".into());
            }
        }
        self.shared.work.notify_all();
        self.shared.room.notify_all();
        self.conn.shutdown();
        if let Some(h) = self.sender.take() {
            let _ = h.join();
        }
        if let Some(h) = self.acker.take() {
            let _ = h.join();
        }
    }

    /// Flushes, says goodbye, and tears the session down.
    ///
    /// # Errors
    ///
    /// Everything [`NetWriter::flush`] returns.
    pub fn close(mut self) -> Result<(), NetError> {
        let flushed = self.flush();
        {
            let mut state = self.shared.state.lock().expect("writer state");
            state.closing = true;
        }
        self.shared.work.notify_all();
        let _ = self.conn.send(&Frame::Bye);
        self.teardown_io();
        flushed
    }
}

impl Drop for NetWriter {
    fn drop(&mut self) {
        self.teardown_io();
    }
}

fn events_of(pairs: &[(u64, u64)]) -> u64 {
    pairs.iter().map(|&(_, d)| d).fold(0, u64::saturating_add)
}

fn sender_loop(shared: &WriterShared, conn: &mut FrameConn) {
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("writer state");
            loop {
                if state.dead.is_some() {
                    return;
                }
                if let Some(batch) = state.outbox.pop_front() {
                    let frame = Frame::Batch {
                        seq: batch.seq,
                        pairs: batch.pairs.clone(),
                    };
                    state.inflight.push_back(batch);
                    break frame;
                }
                if state.closing {
                    return;
                }
                state = shared.work.wait(state).expect("writer state");
            }
        };
        if let Err(e) = conn.send(&batch) {
            let mut state = shared.state.lock().expect("writer state");
            if state.dead.is_none() {
                state.dead = Some(e.to_string());
            }
            drop(state);
            shared.room.notify_all();
            return;
        }
    }
}

fn acker_loop(shared: &WriterShared, conn: &mut FrameConn) {
    loop {
        let outcome = conn.recv();
        let mut state = shared.state.lock().expect("writer state");
        match outcome {
            Ok(Frame::BatchAck { seq }) => {
                state.acked = state.acked.max(seq);
                let acked = state.acked;
                while state.inflight.front().is_some_and(|b| b.seq <= acked) {
                    state.inflight.pop_front();
                }
                drop(state);
                shared.room.notify_all();
            }
            Ok(Frame::Refused { code, reason }) => {
                if state.dead.is_none() {
                    state.dead = Some(format!("refused ({code}): {reason}"));
                }
                drop(state);
                shared.room.notify_all();
                return;
            }
            Ok(_) => {
                if state.dead.is_none() {
                    state.dead = Some("unexpected frame on ingest connection".into());
                }
                drop(state);
                shared.room.notify_all();
                return;
            }
            Err(e) => {
                if state.dead.is_none() {
                    state.dead = Some(e.to_string());
                }
                drop(state);
                shared.room.notify_all();
                return;
            }
        }
    }
}

/// A refused or impossible queue attempt, carrying the batch so the
/// caller decides its fate — the remote mirror of [`SendError`].
///
/// [`SendError`]: ac_engine::SendError
#[derive(Debug)]
pub enum NetSendError {
    /// The outbox is at capacity.
    Full(Vec<(u64, u64)>),
    /// The session is dead (reconnect or shed).
    Closed(Vec<(u64, u64)>),
}

impl NetSendError {
    /// Reclaims the batch.
    #[must_use]
    pub fn into_pairs(self) -> Vec<(u64, u64)> {
        match self {
            NetSendError::Full(p) | NetSendError::Closed(p) => p,
        }
    }

    /// True for the capacity case.
    #[must_use]
    pub fn is_full(&self) -> bool {
        matches!(self, NetSendError::Full(_))
    }
}

impl std::fmt::Display for NetSendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetSendError::Full(_) => f.write_str("outbox full"),
            NetSendError::Closed(_) => f.write_str("session closed"),
        }
    }
}

impl std::error::Error for NetSendError {}

/// A remote read handle: every query is served against one pinned
/// snapshot server-side and the reply's epoch is recorded here
/// ([`RemoteReader::epoch`]).
#[derive(Debug)]
pub struct RemoteReader {
    conn: FrameConn,
    template: CounterFamily,
    next_id: u64,
    epoch: u64,
}

impl RemoteReader {
    fn ask(&mut self, query: Query) -> Result<Reply, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.conn.send(&Frame::ReadReq { id, query })?;
        match self.conn.recv()? {
            Frame::ReadResp {
                id: got,
                epoch,
                reply,
            } => {
                if got != id {
                    return Err(NetError::UnexpectedFrame {
                        what: "reply correlation id mismatch",
                    });
                }
                self.epoch = epoch;
                match reply {
                    Reply::Error(reason) => Err(NetError::Remote { reason }),
                    other => Ok(other),
                }
            }
            Frame::Refused { code, reason } => Err(NetError::Refused { code, reason }),
            _ => Err(NetError::UnexpectedFrame {
                what: "expected ReadResp",
            }),
        }
    }

    /// The snapshot epoch the last reply was served at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Remote [`StoreReader::estimate`].
    ///
    /// # Errors
    ///
    /// Transport and protocol failures.
    ///
    /// [`StoreReader::estimate`]: ac_engine::StoreReader::estimate
    pub fn estimate(&mut self, key: u64) -> Result<Option<f64>, NetError> {
        match self.ask(Query::Estimate { key })? {
            Reply::Absent => Ok(None),
            Reply::F64(x) => Ok(Some(x)),
            _ => Err(NetError::UnexpectedFrame {
                what: "estimate reply shape",
            }),
        }
    }

    /// Remote [`StoreReader::merged_estimate`].
    ///
    /// # Errors
    ///
    /// Transport and protocol failures; [`NetError::Remote`] for
    /// server-side merge failures.
    ///
    /// [`StoreReader::merged_estimate`]: ac_engine::StoreReader::merged_estimate
    pub fn merged_estimate(&mut self) -> Result<f64, NetError> {
        match self.ask(Query::MergedEstimate)? {
            Reply::F64(x) => Ok(x),
            _ => Err(NetError::UnexpectedFrame {
                what: "merged estimate reply shape",
            }),
        }
    }

    /// Remote [`StoreReader::merged_total`]: the merged aggregate
    /// counter itself, decoded with this client's template.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures; [`NetError::Malformed`] if the
    /// shipped state does not decode under the agreed spec.
    ///
    /// [`StoreReader::merged_total`]: ac_engine::StoreReader::merged_total
    pub fn merged_total(&mut self) -> Result<CounterFamily, NetError> {
        match self.ask(Query::MergedTotal)? {
            Reply::State(bytes) => {
                let v = BitVec::from_bytes(&bytes);
                let mut r = BitReader::new(&v);
                self.template
                    .decode_state(&mut r)
                    .map_err(|_| NetError::Malformed {
                        what: "merged counter state does not decode",
                    })
            }
            _ => Err(NetError::UnexpectedFrame {
                what: "merged total reply shape",
            }),
        }
    }

    /// Remote [`StoreReader::merged_estimate_tiered`].
    ///
    /// # Errors
    ///
    /// Transport and protocol failures; [`NetError::Remote`] for
    /// ladder disagreements.
    ///
    /// [`StoreReader::merged_estimate_tiered`]: ac_engine::StoreReader::merged_estimate_tiered
    pub fn merged_estimate_tiered(&mut self, tiers: u32) -> Result<f64, NetError> {
        match self.ask(Query::MergedEstimateTiered { tiers })? {
            Reply::F64(x) => Ok(x),
            _ => Err(NetError::UnexpectedFrame {
                what: "tiered estimate reply shape",
            }),
        }
    }

    /// Remote [`StoreReader::total_events`].
    ///
    /// # Errors
    ///
    /// Transport and protocol failures.
    ///
    /// [`StoreReader::total_events`]: ac_engine::StoreReader::total_events
    pub fn total_events(&mut self) -> Result<u64, NetError> {
        match self.ask(Query::TotalEvents)? {
            Reply::U64(x) => Ok(x),
            _ => Err(NetError::UnexpectedFrame {
                what: "total events reply shape",
            }),
        }
    }

    /// Remote [`StoreReader::len`].
    ///
    /// # Errors
    ///
    /// Transport and protocol failures.
    ///
    /// [`StoreReader::len`]: ac_engine::StoreReader::len
    pub fn len(&mut self) -> Result<u64, NetError> {
        match self.ask(Query::Len)? {
            Reply::U64(x) => Ok(x),
            _ => Err(NetError::UnexpectedFrame {
                what: "len reply shape",
            }),
        }
    }

    /// True when the store holds no keys (remote [`StoreReader::len`]
    /// of zero).
    ///
    /// # Errors
    ///
    /// Transport and protocol failures.
    ///
    /// [`StoreReader::len`]: ac_engine::StoreReader::len
    pub fn is_empty(&mut self) -> Result<bool, NetError> {
        Ok(self.len()? == 0)
    }

    /// Remote stats summary: `(keys, events)`.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures.
    pub fn stats(&mut self) -> Result<(u64, u64), NetError> {
        match self.ask(Query::Stats)? {
            Reply::Stats { keys, events } => Ok((keys, events)),
            _ => Err(NetError::UnexpectedFrame {
                what: "stats reply shape",
            }),
        }
    }

    /// The primary's replication chain-tip digest (0 before the first
    /// cut). Compare against a replica's folded digest to observe
    /// convergence from outside.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures.
    pub fn repl_tip(&mut self) -> Result<u64, NetError> {
        match self.ask(Query::ReplTip)? {
            Reply::U64(x) => Ok(x),
            _ => Err(NetError::UnexpectedFrame {
                what: "repl tip reply shape",
            }),
        }
    }

    /// Says goodbye and closes the connection.
    pub fn close(mut self) {
        let _ = self.conn.send(&Frame::Bye);
        self.conn.shutdown();
    }
}
