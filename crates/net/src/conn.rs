//! One framed TCP connection: accumulate bytes, surface whole frames.
//!
//! Reads keep their own reassembly buffer, so a read timeout never
//! desynchronizes the stream — a frame that arrives in ten pieces
//! across ten timeouts parses exactly once when its last byte lands.
//! That is what lets server threads poll a stop flag between reads
//! without risking a torn frame.

use crate::error::NetError;
use crate::wire::{Frame, MAX_FRAME_BYTES};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// The read-timeout granularity interruptible reads poll at.
const POLL_TICK: Duration = Duration::from_millis(50);

/// A framed connection over one `TcpStream`.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
    acc: Vec<u8>,
}

impl FrameConn {
    /// Wraps a connected stream. `Nagle` is disabled — the protocol is
    /// request/response and acks gate the ingest pipeline.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn new(stream: TcpStream) -> Result<Self, NetError> {
        stream.set_nodelay(true)?;
        Ok(FrameConn {
            stream,
            acc: Vec::new(),
        })
    }

    /// A second handle over the same socket (for split reader/writer
    /// threads). The clone starts with an empty reassembly buffer, so
    /// only ever read from one of the two handles.
    ///
    /// # Errors
    ///
    /// Propagates `TcpStream::try_clone` failures.
    pub fn try_clone(&self) -> Result<Self, NetError> {
        Ok(FrameConn {
            stream: self.stream.try_clone()?,
            acc: Vec::new(),
        })
    }

    /// Writes one frame, flushing it onto the wire.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        let bytes = frame.encode();
        self.stream.write_all(&bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Blocks until one whole frame arrives and parses it.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] on a clean close between frames,
    /// [`NetError::Truncated`] on a mid-frame close, plus every parse
    /// rejection of [`Frame::parse_body`].
    pub fn recv(&mut self) -> Result<Frame, NetError> {
        self.recv_interruptible(&|| false)
    }

    /// [`FrameConn::recv`], polling `stop` between reads; returns
    /// [`NetError::Closed`] once `stop` reports true.
    ///
    /// # Errors
    ///
    /// Everything [`FrameConn::recv`] returns.
    pub fn recv_interruptible(&mut self, stop: &dyn Fn() -> bool) -> Result<Frame, NetError> {
        self.stream.set_read_timeout(Some(POLL_TICK))?;
        let mut tmp = [0u8; 64 * 1024];
        loop {
            if let Some(frame) = self.try_parse()? {
                return Ok(frame);
            }
            if stop() {
                return Err(NetError::Closed);
            }
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    return Err(if self.acc.is_empty() {
                        NetError::Closed
                    } else {
                        NetError::Truncated
                    });
                }
                Ok(n) => self.acc.extend_from_slice(&tmp[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn try_parse(&mut self) -> Result<Option<Frame>, NetError> {
        if self.acc.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.acc[..4].try_into().expect("4-byte prefix")) as u64;
        if len > MAX_FRAME_BYTES {
            return Err(NetError::Oversize { len });
        }
        if len < 9 {
            return Err(NetError::Truncated);
        }
        let total = 4 + len as usize;
        if self.acc.len() < total {
            return Ok(None);
        }
        let frame = Frame::parse_body(&self.acc[4..total])?;
        self.acc.drain(..total);
        Ok(Some(frame))
    }

    /// Shuts the socket down in both directions (unblocks any thread
    /// reading from a clone of this connection).
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}
