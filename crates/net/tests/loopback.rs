//! Loopback integration: exactly-once ingest over TCP, epoch-pinned
//! read RPCs, identity-checked handshakes, and delta-checkpoint
//! replication converging to the primary's chain digests.

use ac_core::{ApproxCounter, CounterSpec};
use ac_engine::{checkpoint_snapshot, IngestConfig, Store};
use ac_net::wire::NEW_PRODUCER;
use ac_net::{
    Frame, FrameConn, Identity, NetError, RefuseCode, ReplicaNode, Role, ServerConfig, StoreClient,
    StoreServer, WriterConfig, PROTO_VERSION,
};
use std::net::TcpStream;
use std::time::Duration;

fn ny_spec() -> CounterSpec {
    CounterSpec::NelsonYu {
        eps: 0.2,
        delta_log2: 8,
    }
}

fn start_server(spec: CounterSpec, seed: u64) -> StoreServer {
    let store = Store::builder(spec)
        .with_shards(4)
        .with_seed(seed)
        .with_ingest(IngestConfig::new().with_batch_pairs(256))
        // Publish a read replica at every batch boundary so RPCs and
        // the replication cutter see progress without close().
        .with_snapshot_every_events(1)
        .start()
        .expect("store starts");
    StoreServer::start_with(
        store,
        "127.0.0.1:0",
        ServerConfig {
            delta_every_events: 512,
            cut_poll: Duration::from_millis(2),
            max_chain_segments: 4,
        },
    )
    .expect("server starts")
}

fn hello(identity: &Identity, role: Role, producer: u64) -> Frame {
    Frame::Hello {
        proto: PROTO_VERSION,
        role,
        fingerprint: identity.fingerprint(),
        identity: identity.clone(),
        producer,
        acked_chain: 0,
    }
}

fn dial(server: &StoreServer) -> FrameConn {
    FrameConn::new(TcpStream::connect(server.local_addr()).expect("connect")).expect("frame conn")
}

#[test]
fn writers_readers_and_replicas_agree_over_loopback() {
    let server = start_server(ny_spec(), 99);
    let identity = server.identity();
    let client = StoreClient::new(server.local_addr(), identity.clone()).expect("client");

    let replica_a = ReplicaNode::connect(server.local_addr(), identity.clone()).expect("replica a");
    let replica_b = ReplicaNode::connect(server.local_addr(), identity.clone()).expect("replica b");

    // Three remote writers, each its own producer, concurrently.
    let mut expected = 0u64;
    let handles: Vec<_> = (0..3u64)
        .map(|w| {
            let client = client.clone();
            std::thread::spawn(move || {
                let mut writer = client.writer(WriterConfig::default()).expect("writer");
                for round in 0..40u64 {
                    for key in 0..25u64 {
                        writer.record(w * 1_000 + key, 1 + (round + key) % 5);
                    }
                }
                writer.close().expect("clean close");
            })
        })
        .collect();
    for w in 0..3u64 {
        for round in 0..40u64 {
            for key in 0..25u64 {
                let _ = w;
                expected += 1 + (round + key) % 5;
            }
        }
    }
    for h in handles {
        h.join().expect("writer thread");
    }

    // Read RPCs see the exact totals once the pipeline drains.
    let mut remote = client.reader().expect("reader");
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while remote.total_events().expect("total") < expected {
        assert!(
            std::time::Instant::now() < deadline,
            "pipeline never drained"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(remote.total_events().expect("total"), expected);
    assert_eq!(remote.len().expect("len"), 75);
    assert_eq!(remote.stats().expect("stats"), (75, expected));

    // The merged aggregate is within the NelsonYu (eps, delta) band —
    // and the shipped merged counter state agrees with the estimate.
    let merged = remote.merged_estimate().expect("merged estimate");
    let rel = (merged - expected as f64).abs() / expected as f64;
    assert!(rel < 0.2, "merged estimate off by {rel}");
    let shipped = remote.merged_total().expect("merged total");
    assert!(
        (shipped.estimate() - merged).abs() < 1e-6 * merged.abs(),
        "shipped state disagrees with served estimate"
    );

    // Per-key reads agree with the in-process reader at the same epoch.
    let local = server.reader();
    let key = 1_007;
    assert_eq!(
        remote.estimate(key).expect("estimate"),
        local.estimate(key),
        "remote and local estimates diverge"
    );
    assert!(remote.estimate(999_999).expect("estimate").is_none());

    // Replicas fold the delta stream to the primary's exact digest and
    // serve the same totals.
    assert!(
        replica_a.wait_for_events(expected, Duration::from_secs(20)),
        "replica a never converged: {:?}",
        replica_a.failed()
    );
    assert!(
        replica_b.wait_for_events(expected, Duration::from_secs(20)),
        "replica b never converged: {:?}",
        replica_b.failed()
    );
    let tip = server.tip_chain();
    assert_ne!(tip, 0, "primary cut no chain");
    assert!(
        replica_a.wait_for_chain(tip, Duration::from_secs(20)),
        "replica a digest {} != primary tip {tip}",
        replica_a.chain_digest()
    );
    assert!(
        replica_b.wait_for_chain(tip, Duration::from_secs(20)),
        "replica b digest {} != primary tip {tip}",
        replica_b.chain_digest()
    );
    assert_eq!(replica_a.total_events(), expected);
    assert_eq!(replica_b.total_events(), expected);
    assert_eq!(replica_a.len(), 75);
    let merged_a = replica_a.merged_estimate().expect("replica merge");
    let merged_b = replica_b.merged_estimate().expect("replica merge");
    assert_eq!(merged_a, merged_b, "replicas at one digest must agree");
    let rel_a = (merged_a - expected as f64).abs() / expected as f64;
    assert!(rel_a < 0.2, "replica estimate off by {rel_a}");

    drop(replica_a);
    drop(replica_b);
    let report = server.shutdown().expect("shutdown");
    assert_eq!(report.stats.events, expected);
}

#[test]
fn reconnect_replays_exactly_once() {
    let server = start_server(ny_spec(), 7);
    let identity = server.identity();

    // Speak the protocol by hand for precise control over sequence
    // numbers: apply batches 1..=3, "crash", then replay 2..=6 — the
    // replayed 2 and 3 must be acknowledged without being re-applied.
    let batch = |seq: u64| Frame::Batch {
        seq,
        pairs: vec![(seq, 10), (100 + seq, 1)],
    };
    let mut conn = dial(&server);
    conn.send(&hello(&identity, Role::Ingest, NEW_PRODUCER))
        .expect("send hello");
    let Frame::HelloOk {
        producer,
        resume_after,
        ..
    } = conn.recv().expect("hello ok")
    else {
        panic!("expected HelloOk");
    };
    assert_eq!(resume_after, 0);
    for seq in 1..=3u64 {
        conn.send(&batch(seq)).expect("send");
        assert_eq!(conn.recv().expect("ack"), Frame::BatchAck { seq });
    }
    conn.shutdown(); // crash: no Bye, acks for nothing lost here

    // Reclaim the producer. The server may need a moment to notice the
    // dead connection and park the writer.
    let mut conn = loop {
        let mut retry = dial(&server);
        retry
            .send(&hello(&identity, Role::Ingest, producer))
            .expect("send hello");
        match retry.recv().expect("handshake") {
            Frame::HelloOk {
                producer: got,
                resume_after,
                ..
            } => {
                assert_eq!(got, producer);
                assert_eq!(resume_after, 3, "server holds exactly batches 1..=3");
                break retry;
            }
            Frame::Refused {
                code: RefuseCode::Busy,
                ..
            } => std::thread::sleep(Duration::from_millis(20)),
            other => panic!("unexpected handshake reply: {other:?}"),
        }
    };
    for seq in 2..=6u64 {
        conn.send(&batch(seq)).expect("send");
        let Frame::BatchAck { seq: acked } = conn.recv().expect("ack") else {
            panic!("expected ack");
        };
        assert!(acked >= seq.min(3), "ack regressed");
    }
    conn.send(&Frame::Bye).expect("bye");

    // Exactly the six distinct batches, no duplicates: 6 * 11 events.
    let mut local = server.reader();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        local.refresh();
        if local.total_events() == 66 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "events settled at {} != 66",
            local.total_events()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    server.shutdown().expect("shutdown");
}

#[test]
fn sequence_gaps_are_refused() {
    let server = start_server(ny_spec(), 11);
    let identity = server.identity();
    let mut conn = dial(&server);
    conn.send(&hello(&identity, Role::Ingest, NEW_PRODUCER))
        .expect("send hello");
    assert!(matches!(
        conn.recv().expect("handshake"),
        Frame::HelloOk { .. }
    ));
    // Skipping seq 1 is a protocol error: batches may repeat, never
    // skip or reorder.
    conn.send(&Frame::Batch {
        seq: 2,
        pairs: vec![(1, 1)],
    })
    .expect("send");
    match conn.recv().expect("refusal") {
        Frame::Refused {
            code: RefuseCode::Protocol,
            ..
        } => {}
        other => panic!("expected protocol refusal, got {other:?}"),
    }
    server.shutdown().expect("shutdown");
}

#[test]
fn mismatched_identities_are_refused_at_hello() {
    let server = start_server(ny_spec(), 5);
    let good = server.identity();

    // A different spec (different parameters) is turned away with the
    // identity code — counters would not be interchangeable.
    let mut wrong_spec = good.clone();
    wrong_spec.spec = CounterSpec::Morris { a: 1.0 };
    let mut conn = dial(&server);
    conn.send(&hello(&wrong_spec, Role::Ingest, NEW_PRODUCER))
        .expect("send");
    match conn.recv().expect("reply") {
        Frame::Refused {
            code: RefuseCode::Identity,
            ..
        } => {}
        other => panic!("expected identity refusal, got {other:?}"),
    }

    // Same spec, different shard count: also identity.
    let mut wrong_shards = good.clone();
    wrong_shards.shards += 1;
    let mut conn = dial(&server);
    conn.send(&hello(&wrong_shards, Role::Reader, NEW_PRODUCER))
        .expect("send");
    match conn.recv().expect("reply") {
        Frame::Refused {
            code: RefuseCode::Identity,
            ..
        } => {}
        other => panic!("expected identity refusal, got {other:?}"),
    }

    // A wrong protocol version is refused before identity is examined.
    let mut conn = dial(&server);
    conn.send(&Frame::Hello {
        proto: PROTO_VERSION + 1,
        role: Role::Reader,
        fingerprint: good.fingerprint(),
        identity: good.clone(),
        producer: NEW_PRODUCER,
        acked_chain: 0,
    })
    .expect("send");
    match conn.recv().expect("reply") {
        Frame::Refused {
            code: RefuseCode::Version,
            ..
        } => {}
        other => panic!("expected version refusal, got {other:?}"),
    }

    // The high-level client surfaces the refusal as a typed error.
    let client = StoreClient::new(server.local_addr(), wrong_spec).expect("client");
    match client.writer(WriterConfig::default()) {
        Err(NetError::Refused {
            code: RefuseCode::Identity,
            ..
        }) => {}
        other => panic!("expected refusal, got {other:?}"),
    }
    server.shutdown().expect("shutdown");
}

/// Replay-after-reconnect must land the store in *byte-identical*
/// checkpoint state for every counter family: the stream with a crash,
/// a reconnect, and duplicate re-sends serializes to the same full
/// checkpoint as the clean run (epochs normalized — flush cadence may
/// differ, state may not).
#[test]
fn replayed_streams_checkpoint_byte_identical_across_families() {
    let families = [
        CounterSpec::Exact,
        CounterSpec::Morris { a: 8.0 },
        CounterSpec::MorrisPlus {
            eps: 0.2,
            delta_log2: 8,
        },
        ny_spec(),
        CounterSpec::Csuros { mantissa_bits: 8 },
    ];
    for spec in families {
        let batch = |seq: u64| Frame::Batch {
            seq,
            pairs: vec![(seq % 7, 3 + seq), (50 + seq, 1)],
        };

        // Clean run: batches 1..=6 on one connection.
        let clean = start_server(spec, 4242);
        let identity = clean.identity();
        let mut conn = dial(&clean);
        conn.send(&hello(&identity, Role::Ingest, NEW_PRODUCER))
            .expect("hello");
        assert!(matches!(conn.recv().expect("ok"), Frame::HelloOk { .. }));
        for seq in 1..=6u64 {
            conn.send(&batch(seq)).expect("send");
            conn.recv().expect("ack");
        }
        conn.send(&Frame::Bye).expect("bye");
        let clean_bytes = settled_checkpoint(&clean, spec);
        clean.shutdown().expect("shutdown");

        // Crashy run: 1..=3, drop the socket, reclaim, replay 2..=6.
        let crashy = start_server(spec, 4242);
        let identity = crashy.identity();
        let mut conn = dial(&crashy);
        conn.send(&hello(&identity, Role::Ingest, NEW_PRODUCER))
            .expect("hello");
        let Frame::HelloOk { producer, .. } = conn.recv().expect("ok") else {
            panic!("expected HelloOk");
        };
        for seq in 1..=3u64 {
            conn.send(&batch(seq)).expect("send");
            conn.recv().expect("ack");
        }
        conn.shutdown();
        let mut conn = loop {
            let mut retry = dial(&crashy);
            retry
                .send(&hello(&identity, Role::Ingest, producer))
                .expect("hello");
            match retry.recv().expect("handshake") {
                Frame::HelloOk { resume_after, .. } => {
                    assert_eq!(resume_after, 3);
                    break retry;
                }
                Frame::Refused {
                    code: RefuseCode::Busy,
                    ..
                } => std::thread::sleep(Duration::from_millis(20)),
                other => panic!("unexpected handshake reply: {other:?}"),
            }
        };
        for seq in 2..=6u64 {
            conn.send(&batch(seq)).expect("send");
            conn.recv().expect("ack");
        }
        conn.send(&Frame::Bye).expect("bye");
        let crashy_bytes = settled_checkpoint(&crashy, spec);
        crashy.shutdown().expect("shutdown");

        assert_eq!(
            clean_bytes, crashy_bytes,
            "family {spec:?}: replayed stream is not byte-identical"
        );
    }
}

/// Waits for the applied stream to settle, then serializes the final
/// snapshot with its epoch normalized to 0 (epochs count flushes, which
/// legitimately differ between a clean and a crashy run).
fn settled_checkpoint(server: &StoreServer, spec: CounterSpec) -> Vec<u8> {
    let expected: u64 = (1..=6u64).map(|seq| 3 + seq + 1).sum();
    let mut reader = server.reader();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        reader.refresh();
        if reader.total_events() == expected {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "family {spec:?}: events settled at {} != {expected}",
            reader.total_events()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let snap = reader.snapshot().clone().with_epoch(0);
    checkpoint_snapshot(&snap).into_bytes()
}

#[test]
fn replica_survives_primary_side_compaction() {
    // A tiny chain cap forces the primary to compact repeatedly; a
    // replica connecting mid-stream and one connected from the start
    // must both converge to the same digest regardless.
    let server = start_server(ny_spec(), 31);
    let identity = server.identity();
    let early = ReplicaNode::connect(server.local_addr(), identity.clone()).expect("early replica");

    let client = StoreClient::new(server.local_addr(), identity.clone()).expect("client");
    let mut writer = client.writer(WriterConfig::default()).expect("writer");
    let mut expected = 0u64;
    for round in 0..30u64 {
        for key in 0..40u64 {
            writer.record(key, 1 + (round * key) % 3);
            expected += 1 + (round * key) % 3;
        }
        writer.flush().expect("flush");
    }
    let late = ReplicaNode::connect(server.local_addr(), identity).expect("late replica");
    writer.close().expect("close");

    assert!(
        early.wait_for_events(expected, Duration::from_secs(20)),
        "early replica stalled: {:?}",
        early.failed()
    );
    assert!(
        late.wait_for_events(expected, Duration::from_secs(20)),
        "late replica stalled: {:?}",
        late.failed()
    );
    let tip = server.tip_chain();
    assert!(early.wait_for_chain(tip, Duration::from_secs(20)));
    assert!(late.wait_for_chain(tip, Duration::from_secs(20)));
    assert_eq!(early.total_events(), late.total_events());
    assert_eq!(
        early.merged_estimate().expect("merge"),
        late.merged_estimate().expect("merge")
    );
    drop(early);
    drop(late);
    server.shutdown().expect("shutdown");
}
