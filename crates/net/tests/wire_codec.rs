//! Property tests for the frame codec: round trips are exact, and
//! every corruption — a flipped bit, a truncation, an oversize
//! declaration, a spliced body — is a *typed* rejection, never a
//! panic and never a silently different frame.

use ac_core::CounterSpec;
use ac_net::wire::{checksum, MAX_FRAME_BYTES};
use ac_net::{Frame, Identity, NetError, Query, RefuseCode, Reply, Role, PROTO_VERSION};
use proptest::prelude::*;

/// Mirrors `FrameConn`'s framing logic on a byte slice (no socket):
/// length prefix, oversize guard, then body parse.
fn parse_wire(bytes: &[u8]) -> Result<Frame, NetError> {
    if bytes.len() < 4 {
        return Err(NetError::Truncated);
    }
    let len = u64::from(u32::from_le_bytes(
        bytes[..4].try_into().expect("4-byte prefix"),
    ));
    if len > MAX_FRAME_BYTES {
        return Err(NetError::Oversize { len });
    }
    if len < 9 || (bytes.len() as u64) < 4 + len {
        return Err(NetError::Truncated);
    }
    Frame::parse_body(&bytes[4..4 + len as usize])
}

fn spec_from(sel: u64) -> CounterSpec {
    match sel % 5 {
        0 => CounterSpec::Exact,
        1 => CounterSpec::Morris {
            a: 1.0 + (sel / 5 % 8) as f64,
        },
        2 => CounterSpec::MorrisPlus {
            eps: 0.1 + 0.1 * (sel / 5 % 3) as f64,
            delta_log2: 4 + (sel / 40 % 6) as u32,
        },
        3 => CounterSpec::NelsonYu {
            eps: 0.1 + 0.1 * (sel / 5 % 3) as f64,
            delta_log2: 4 + (sel / 40 % 6) as u32,
        },
        _ => CounterSpec::Csuros {
            mantissa_bits: 4 + (sel / 5 % 8) as u32,
        },
    }
}

fn label_from(blob: &[u8]) -> String {
    blob.iter()
        .map(|&b| char::from(b'a' + b % 26))
        .collect::<String>()
}

fn refuse_code_from(sel: u64) -> RefuseCode {
    match sel % 6 {
        0 => RefuseCode::Version,
        1 => RefuseCode::Identity,
        2 => RefuseCode::Busy,
        3 => RefuseCode::Protocol,
        4 => RefuseCode::Shutdown,
        _ => RefuseCode::Unsupported,
    }
}

fn query_from(sel: u64, x: u64) -> Query {
    match sel % 8 {
        0 => Query::Estimate { key: x },
        1 => Query::MergedEstimate,
        2 => Query::MergedTotal,
        3 => Query::MergedEstimateTiered {
            tiers: 1 + (x % 8) as u32,
        },
        4 => Query::TotalEvents,
        5 => Query::Len,
        6 => Query::Stats,
        _ => Query::ReplTip,
    }
}

fn reply_from(sel: u64, x: u64, blob: &[u8]) -> Reply {
    match sel % 6 {
        0 => Reply::Absent,
        // Mask the exponent so the value is finite (NaN breaks the
        // round-trip equality this test relies on).
        1 => Reply::F64(f64::from_bits(x & !(0x7ff << 52))),
        2 => Reply::U64(x),
        3 => Reply::Stats {
            keys: x,
            events: x.rotate_left(17),
        },
        4 => Reply::State(blob.to_vec()),
        _ => Reply::Error(label_from(blob)),
    }
}

/// Deterministically builds one frame of any kind from drawn raw
/// material — the stub proptest has no union strategy, so selection
/// rides in `kind`.
fn frame_from(kind: u64, a: u64, b: u64, pairs: &[(u64, u64)], blob: &[u8]) -> Frame {
    match kind % 10 {
        0 => {
            let identity = Identity {
                spec: spec_from(a),
                shards: 1 + (b % 64) as u32,
                seed: a ^ b,
            };
            Frame::Hello {
                proto: PROTO_VERSION,
                role: match b % 3 {
                    0 => Role::Ingest,
                    1 => Role::Reader,
                    _ => Role::Replica,
                },
                fingerprint: identity.fingerprint(),
                identity,
                producer: a,
                acked_chain: b,
            }
        }
        1 => Frame::HelloOk {
            producer: a,
            resume_after: b,
            epoch: a ^ b,
        },
        2 => Frame::Refused {
            code: refuse_code_from(a),
            reason: label_from(blob),
        },
        3 => Frame::Batch {
            seq: a,
            pairs: pairs.to_vec(),
        },
        4 => Frame::BatchAck { seq: a },
        5 => Frame::ReadReq {
            id: a,
            query: query_from(b, a),
        },
        6 => Frame::ReadResp {
            id: a,
            epoch: b,
            reply: reply_from(b, a, blob),
        },
        7 => Frame::ReplSegment {
            bytes: blob.to_vec(),
        },
        8 => Frame::ReplAck { chain: a },
        _ => Frame::Bye,
    }
}

proptest! {
    #[test]
    fn every_frame_round_trips_exactly(
        kind in 0u64..10,
        a in proptest::arbitrary::any::<u64>(),
        b in proptest::arbitrary::any::<u64>(),
        pairs in prop::collection::vec((proptest::arbitrary::any::<u64>(), 1u64..1_000_000), 1..40),
        blob in prop::collection::vec(proptest::arbitrary::any::<u8>(), 0..200),
    ) {
        let frame = frame_from(kind, a, b, &pairs, &blob);
        let bytes = frame.encode();
        let parsed = parse_wire(&bytes).expect("clean bytes parse");
        prop_assert_eq!(parsed, frame);
    }

    /// A single flipped bit anywhere — length prefix, tag, fields,
    /// checksum — surfaces as a typed error. (A length-prefix flip may
    /// also leave the stream waiting for bytes that never arrive,
    /// which the harness reports as `Truncated`.)
    #[test]
    fn any_single_bit_flip_is_rejected(
        kind in 0u64..10,
        a in proptest::arbitrary::any::<u64>(),
        b in proptest::arbitrary::any::<u64>(),
        pairs in prop::collection::vec((proptest::arbitrary::any::<u64>(), 1u64..1_000_000), 1..40),
        blob in prop::collection::vec(proptest::arbitrary::any::<u8>(), 0..200),
        pos_seed in proptest::arbitrary::any::<u64>(),
    ) {
        let frame = frame_from(kind, a, b, &pairs, &blob);
        let mut bytes = frame.encode();
        let bit = (pos_seed % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            parse_wire(&bytes).is_err(),
            "bit {bit} of a {}-byte {:?} frame flipped unnoticed",
            bytes.len(),
            kind % 10
        );
    }

    /// Every strict prefix of a frame is rejected — never a frame.
    #[test]
    fn any_truncation_is_rejected(
        kind in 0u64..10,
        a in proptest::arbitrary::any::<u64>(),
        b in proptest::arbitrary::any::<u64>(),
        pairs in prop::collection::vec((proptest::arbitrary::any::<u64>(), 1u64..1_000_000), 1..40),
        blob in prop::collection::vec(proptest::arbitrary::any::<u8>(), 0..200),
        cut_seed in proptest::arbitrary::any::<u64>(),
    ) {
        let frame = frame_from(kind, a, b, &pairs, &blob);
        let bytes = frame.encode();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(
            parse_wire(&bytes[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte frame parsed",
            bytes.len()
        );
    }

    /// Splicing one frame's length prefix onto another frame's body is
    /// caught by the length contract (and the checksum, which covers
    /// the body the length actually delimits).
    #[test]
    fn spliced_bodies_never_invent_a_third_frame(
        ka in 0u64..10,
        kb in 0u64..10,
        a in proptest::arbitrary::any::<u64>(),
        b in proptest::arbitrary::any::<u64>(),
        blob in prop::collection::vec(proptest::arbitrary::any::<u8>(), 0..60),
    ) {
        let pairs = [(a, 1 + b % 100)];
        let fa = frame_from(ka, a, b, &pairs, &blob);
        let fb = frame_from(kb, b, a, &pairs, &blob);
        let xa = fa.encode();
        let xb = fb.encode();
        let mut spliced = xa[..4].to_vec();
        spliced.extend_from_slice(&xb[4..]);
        // Only a splice that preserves the byte-exact body may parse,
        // and then only to the donor frame.
        if let Ok(parsed) = parse_wire(&spliced) {
            prop_assert_eq!(parsed, fb, "splice invented a third frame");
        }
    }
}

#[test]
fn checksum_is_fnv1a64() {
    // Reference vectors for the FNV-1a 64 constants, so the checksum
    // can never drift silently between protocol versions.
    assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(checksum(b"foobar"), 0x8594_4171_f739_67e8);
}

#[test]
fn oversize_declarations_are_rejected_without_allocation() {
    let mut bytes = (u32::MAX).to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0u8; 16]);
    assert!(matches!(
        parse_wire(&bytes),
        Err(NetError::Oversize { len }) if len == u64::from(u32::MAX)
    ));
}
