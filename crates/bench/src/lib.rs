//! # `ac-bench` — experiment regeneration and microbenchmarks
//!
//! One binary per experiment in `EXPERIMENTS.md` (run with
//! `cargo run --release -p ac-bench --bin <name>`), plus Criterion
//! microbenchmarks (`cargo bench -p ac-bench`).
//!
//! | Binary | Experiment |
//! |--------|------------|
//! | `fig1_error_cdf` | **Figure 1** — error CDFs at a 17-bit budget |
//! | `exp_space_scaling` | E1 — Theorems 1.1/2.3 space scaling |
//! | `exp_morris_plus` | E2 — Theorem 1.2 accuracy/space |
//! | `exp_flajolet_a1` | E3 — `Morris(1)` constant failure probability |
//! | `exp_appendix_a` | E4 — necessity of the Morris+ prefix (exact DP) |
//! | `exp_merge_law` | E5 — Remark 2.4 mergeability |
//! | `exp_lower_bound` | E6 — Theorem 3.1, executable |
//! | `exp_unbiasedness` | E7 — estimator moments vs. closed forms |
//! | `exp_avg_vs_base` | E8 — §1.1 averaging-vs-base ablation |
//! | `exp_many_counters` | E9 — the "many counters" deployment |
//! | `exp_ablations` | E10 — constant `C`, α rounding, promise constant |
//! | `exp_space_tail` | E11 — Theorem 2.3's doubly-exponential tail |
//! | `exp_engine_throughput` | E12 — batched fast-forward speedups + the sharded `ac-engine` workload |
//! | `exp_engine_pipeline` | E13 — the four-layer engine pipeline: ingest throughput, snapshot queries under concurrent writes, checkpoint size/restore fidelity |
//! | `exp_tiering` | E14 — per-key accuracy tiers under a global bit budget: ceiling held all run, hot-key error beats every uniform allocation at equal bits |
//! | `exp_durability` | E15 — durability lifecycle: shard-parallel checkpoint encode/restore (bit-identical), recovery time vs chain length with and without off-thread compaction, steady-state ingest with the compactor live |
//!
//! Every binary accepts `--quick` to run a reduced-size version (used by
//! the integration tests) and prints a self-contained report: parameters,
//! a markdown table, an ASCII chart where the paper has a figure, and a
//! `paper vs. measured` verdict line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::io::Write as _;

/// True when `--quick` was passed (reduced trial counts for CI).
#[must_use]
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Picks `full` or `quick` depending on [`quick_mode`].
#[must_use]
pub fn sized(full: usize, quick: usize) -> usize {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// Prints the standard experiment header.
pub fn header(id: &str, title: &str, paper_claim: &str) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{}", "=".repeat(78));
    let _ = writeln!(out, "{id}: {title}");
    let _ = writeln!(out, "{}", "=".repeat(78));
    let _ = writeln!(out, "paper claim: {paper_claim}");
    let _ = writeln!(out);
}

/// Prints a named section divider.
pub fn section(name: &str) {
    println!("\n--- {name} ---");
}

/// Path passed via `--json <path>`, if any.
///
/// Experiment binaries that support machine-readable output write a
/// [`json::JsonObject`] report here (see [`write_json_report`]).
#[must_use]
pub fn json_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if let Some(path) = a.strip_prefix("--json=") {
            return Some(std::path::PathBuf::from(path));
        }
        if a == "--json" {
            // Loud beats silent: a missing value (or a flag mistaken for
            // one) would otherwise drop the CI artifact without a trace.
            let value = args
                .next()
                .unwrap_or_else(|| panic!("--json requires a path argument"));
            assert!(
                !value.starts_with("--"),
                "--json requires a path argument, got flag '{value}'"
            );
            return Some(std::path::PathBuf::from(value));
        }
    }
    None
}

/// Writes `report` to the `--json` path when one was given.
///
/// Creates parent directories as needed; panics on I/O failure so CI
/// cannot silently drop an artifact.
pub fn write_json_report(report: &json::JsonObject) {
    let Some(path) = json_path() else { return };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create --json parent directory");
        }
    }
    std::fs::write(&path, report.encode() + "\n").expect("write --json report");
    println!("\njson report -> {}", path.display());
}

/// Prints the final verdict line in a stable, grep-able format.
pub fn verdict(ok: bool, summary: &str) {
    println!(
        "\nVERDICT: {} — {summary}",
        if ok { "REPRODUCED" } else { "MISMATCH" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_respects_mode() {
        // Tests run without --quick, so full size is returned.
        assert_eq!(sized(100, 5), 100);
    }
}
