//! Minimal JSON emission for experiment reports.
//!
//! Experiment binaries accept `--json <path>` and write a
//! machine-readable summary next to their human-readable stdout report.
//! CI uploads these files (`BENCH_*.json`) as artifacts, so the
//! perf/accuracy trajectory of every experiment is queryable across
//! commits. The writer is dependency-free and preserves insertion order.

use std::fmt::Write as _;

/// An ordered JSON object under construction.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn encode_f64(v: f64) -> String {
    if v.is_finite() {
        // `{v:?}` round-trips f64 and always includes a decimal point or
        // exponent, so the value re-parses as a float.
        format!("{v:?}")
    } else {
        // JSON has no NaN/Infinity.
        "null".to_string()
    }
}

impl JsonObject {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.to_string(), format!("\"{}\"", escape(value))));
        self
    }

    /// Adds a float field (`null` when not finite).
    #[must_use]
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.fields.push((key.to_string(), encode_f64(value)));
        self
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a nested object field.
    #[must_use]
    pub fn obj(mut self, key: &str, value: JsonObject) -> Self {
        self.fields.push((key.to_string(), value.encode()));
        self
    }

    /// Adds an array-of-objects field.
    #[must_use]
    pub fn rows(mut self, key: &str, values: Vec<JsonObject>) -> Self {
        let body: Vec<String> = values.into_iter().map(|v| v.encode()).collect();
        self.fields
            .push((key.to_string(), format!("[{}]", body.join(","))));
        self
    }

    /// Adds an array-of-floats field.
    #[must_use]
    pub fn nums(mut self, key: &str, values: &[f64]) -> Self {
        let body: Vec<String> = values.iter().map(|&v| encode_f64(v)).collect();
        self.fields
            .push((key.to_string(), format!("[{}]", body.join(","))));
        self
    }

    /// Serializes the object.
    #[must_use]
    pub fn encode(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_scalars_in_order() {
        let obj = JsonObject::new()
            .str("name", "E2")
            .int("trials", 500)
            .num("rate", 0.25)
            .bool("ok", true);
        assert_eq!(
            obj.encode(),
            r#"{"name":"E2","trials":500,"rate":0.25,"ok":true}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let obj = JsonObject::new().str("msg", "a\"b\\c\nd\te");
        assert_eq!(obj.encode(), "{\"msg\":\"a\\\"b\\\\c\\nd\\te\"}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let obj = JsonObject::new()
            .num("nan", f64::NAN)
            .num("inf", f64::INFINITY);
        assert_eq!(obj.encode(), r#"{"nan":null,"inf":null}"#);
    }

    #[test]
    fn nests_rows_and_arrays() {
        let obj = JsonObject::new()
            .rows("rows", vec![JsonObject::new().int("x", 1)])
            .nums("xs", &[1.0, 0.5]);
        assert_eq!(obj.encode(), r#"{"rows":[{"x":1}],"xs":[1.0,0.5]}"#);
    }

    #[test]
    fn floats_round_trip_textually() {
        let obj = JsonObject::new().num("v", 1e-7).num("w", 3.0);
        assert_eq!(obj.encode(), r#"{"v":1e-7,"w":3.0}"#);
    }
}
