//! **E11** — Theorem 2.3's space *tail*: for
//! `S ≥ C₁(log log N + log(1/ε) + log log(1/δ))`, the probability that
//! Algorithm 1 uses more than `S` bits is at most
//! `exp(−exp(C₂S))` — doubly exponentially small.
//!
//! We measure the full distribution of the memory high-water mark over
//! many trials: the mass collapses so fast above the typical value that
//! even millions of trials never witness `typical + 2` bits — exactly
//! the doubly-exponential signature (a singly-exponential tail would
//! still show excursions at these sample sizes).

use ac_bench::{header, section, sized, verdict};
use ac_core::{NelsonYuCounter, NyParams};
use ac_sim::report::{sig, Table};
use ac_sim::{TrialRunner, Workload};

fn main() {
    header(
        "E11",
        "the doubly-exponential space tail (Theorem 2.3)",
        "P(memory > S) < exp(-exp(S)) beyond the bound: the peak-bits distribution \
         has essentially no upper tail",
    );
    let trials = sized(50_000, 5_000);
    let p = NyParams::new(0.2, 10).unwrap();
    let n = 1u64 << 22;
    println!("eps = 0.2, delta = 2^-10, N = 2^22, trials = {trials}\n");

    let results = TrialRunner::new(Workload::fixed(n), trials)
        .with_seed(0xE11)
        .run(&NelsonYuCounter::new(p));

    section("distribution of the memory high-water mark");
    let peaks = results.peak_bits();
    let mut counts = std::collections::BTreeMap::<u64, u64>::new();
    for &b in &peaks {
        *counts.entry(b as u64).or_insert(0) += 1;
    }
    let mut table = Table::new(vec!["peak bits S", "trials at S", "P(peak >= S)"]);
    let total = peaks.len() as f64;
    let mut at_least = peaks.len() as u64;
    for (&bits, &count) in &counts {
        table.row(vec![
            format!("{bits}"),
            format!("{count}"),
            sig(at_least as f64 / total, 3),
        ]);
        at_least -= count;
    }
    print!("{}", table.to_markdown());

    let min_peak = *counts.keys().next().expect("non-empty");
    let max_peak = *counts.keys().last().expect("non-empty");
    let spread = max_peak - min_peak;
    println!(
        "\nentire support of the peak over {trials} trials: [{min_peak}, {max_peak}] \
         — {spread} bit(s) wide."
    );
    println!(
        "a singly-exponential tail calibrated to P(peak > {min_peak}) would predict \
         ~{} trials beyond {} bits; we observe {}.",
        sig(total * 0.5f64.powi(3), 2),
        min_peak + 3,
        peaks.iter().filter(|&&b| b > (min_peak + 3) as f64).count()
    );

    // For contrast: an exact counter's peak is deterministic; a
    // *Chebyshev* Morris at tiny a has the same collapse but at log N
    // scale. The phenomenon to verify here is just the collapse width.
    let ok = spread <= 3;
    verdict(
        ok,
        &format!(
            "peak-bits distribution spans only {spread} bit(s) across {trials} \
             trials — the Theorem 2.3 doubly-exponential collapse, observed"
        ),
    );
}
