//! **E9** — the paper's motivating deployment: "an analytics system may
//! maintain many such counters (for example, the number of visits to
//! each page on Wikipedia)".
//!
//! Two claims from §1 are reproduced side by side:
//!
//! 1. *"cutting the number of bits per counter by even a constant factor
//!    could be of value"* — with large per-key counts, packed optimal
//!    `Morris(a = ε²/(8 ln 1/δ))` registers undercut exact registers;
//! 2. *"requiring log(1/δ) ≥ log M bits per counter may provide no
//!    benefit over a naive log N bit counter"* — the classical Chebyshev
//!    parameterization `a = 2ε²δ` with `δ ≪ 1/M` degenerates to exact
//!    counting (its levels track `N` itself). This is why the paper's
//!    `log log(1/δ)` matters for many-counter systems.
//!
//! Per-key counts are drawn as an exact multinomial via sequential
//! binomial conditioning (BTPE sampler).

use ac_bench::{header, section, sized, verdict};
use ac_core::{ApproxCounter, MorrisCounter, NelsonYuCounter, NyParams};
use ac_randkit::{Binomial, RandomSource, Xoshiro256PlusPlus, Zipf};
use ac_sim::report::{sig, Table};
use ac_streams::{CounterArray, PackState};

/// Draws per-key counts `(n_1, …, n_M) ~ Multinomial(L; w)` exactly, by
/// conditioning: `n_i ~ Binomial(L - n_1 - … - n_{i-1}, w_i / (w_i + … + w_M))`.
fn multinomial_counts(zipf: &Zipf, total: u64, rng: &mut dyn RandomSource) -> Vec<u64> {
    let m = zipf.n();
    let mut counts = Vec::with_capacity(m as usize);
    let mut remaining = total;
    let mut tail_weight = zipf.harmonic();
    for k in 1..=m {
        let w = zipf.pmf(k) * zipf.harmonic(); // unnormalized weight k^-s
        if remaining == 0 || tail_weight <= 0.0 {
            counts.push(0);
            continue;
        }
        let p = (w / tail_weight).clamp(0.0, 1.0);
        let n_k = if k == m {
            remaining
        } else {
            Binomial::new(remaining, p).expect("valid p").sample(rng)
        };
        counts.push(n_k);
        remaining -= n_k;
        tail_weight -= w;
    }
    counts
}

fn main() {
    header(
        "E9",
        "many counters: the Wikipedia-page-views deployment (§1)",
        "constant-factor per-counter savings are valuable at scale; but the \
         classical log(1/delta) cost with delta << 1/M erases them — the \
         log log(1/delta) bound is what makes per-counter guarantees affordable",
    );
    let m = sized(10_000, 500);
    let visits_per_key = 1_000_000u64;
    let l = m as u64 * visits_per_key;
    println!("M = {m} keys, Zipf(s=1.0) popularity, L = {l} total visits\n");

    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xE9_01);
    let zipf = Zipf::new(m as u64, 1.0).unwrap();
    let counts = multinomial_counts(&zipf, l, &mut rng);
    debug_assert_eq!(counts.iter().sum::<u64>(), l);

    // Per-counter guarantee: delta << 1/M.
    let dlog = usize::BITS - m.leading_zeros() + 5;
    let eps = 0.1;
    let a_opt = ac_core::morris_a(eps, dlog).unwrap();
    let a_cheb = 2.0 * eps * eps * (-f64::from(dlog)).exp2();
    println!(
        "per-counter target: eps = {eps}, delta = 2^-{dlog} (1/M ≈ 2^-{});\n\
         optimal a = eps^2/(8 ln 1/delta) = {}; classical Chebyshev a = 2 eps^2 delta = {}\n",
        usize::BITS - m.leading_zeros(),
        sig(a_opt, 3),
        sig(a_cheb, 3)
    );

    // Simulate the optimal-Morris array; the Chebyshev row is computed
    // analytically (its levels track N itself, so simulating it would
    // cost O(L) — the degeneracy IS the point).
    let mut morris_array = CounterArray::new(&MorrisCounter::new(a_opt).unwrap(), m);
    let mut exact_raw = 0u64;
    let mut exact_packed = 0u64;
    let mut cheb_raw = 0u64;
    let mut max_count = 0u64;
    for (k, &c) in counts.iter().enumerate() {
        morris_array.increment_by(k, c, &mut rng);
        exact_raw += u64::from(ac_bitio::bit_len(c));
        exact_packed += u64::from(ac_bitio::codes::delta_len(c + 1));
        let cheb_level = (a_cheb * c as f64).ln_1p() / a_cheb.ln_1p();
        cheb_raw += u64::from(ac_bitio::bit_len(cheb_level.round() as u64));
        max_count = max_count.max(c);
    }
    let morris_raw: u64 = (0..m)
        .map(|k| u64::from(ac_bitio::bit_len(morris_array.counter(k).level())))
        .sum();
    let morris_packed = morris_array.pack().len();

    section("total storage across all M counters");
    println!("(raw = register digit counts; packed = self-delimiting Elias-delta stream)\n");
    let mut table = Table::new(vec![
        "scheme",
        "raw bits/counter",
        "raw vs exact",
        "packed bits/counter",
        "packed vs exact",
    ]);
    let pct = |x: u64, base: u64| sig(100.0 * x as f64 / base as f64, 3);
    table.row(vec![
        "exact registers".to_string(),
        sig(exact_raw as f64 / m as f64, 3),
        "100%".to_string(),
        sig(exact_packed as f64 / m as f64, 3),
        "100%".to_string(),
    ]);
    table.row(vec![
        "Chebyshev Morris(2e^2d), analytic levels".to_string(),
        sig(cheb_raw as f64 / m as f64, 3),
        format!("{}%", pct(cheb_raw, exact_raw)),
        "-".to_string(),
        "-".to_string(),
    ]);
    table.row(vec![
        "optimal Morris(e^2/8ln(1/d))".to_string(),
        sig(morris_raw as f64 / m as f64, 3),
        format!("{}%", pct(morris_raw, exact_raw)),
        sig(morris_packed as f64 / m as f64, 3),
        format!("{}%", pct(morris_packed, exact_packed)),
    ]);
    print!("{}", table.to_markdown());

    section("provisioned fixed-width registers (what an array would allocate)");
    let exact_width = ac_bitio::bit_len(max_count);
    let worst_level = (0..m)
        .map(|k| morris_array.counter(k).level())
        .max()
        .unwrap_or(0);
    let morris_width = ac_bitio::bit_len(worst_level);
    println!(
        "exact: {exact_width} bits/slot; optimal Morris: {morris_width} bits/slot \
         ({}% of exact)",
        sig(100.0 * f64::from(morris_width) / f64::from(exact_width), 3)
    );

    section("head-key accuracy (largest keys)");
    let mut table = Table::new(vec!["key rank", "true count", "Morris estimate", "rel err"]);
    let mut worst_rel: f64 = 0.0;
    for k in [0usize, 1, 9, 99] {
        if k >= m {
            continue;
        }
        let t = counts[k] as f64;
        let e = morris_array.estimate(k);
        let rel = ((e - t) / t).abs();
        worst_rel = worst_rel.max(rel);
        table.row(vec![
            format!("{}", k + 1),
            sig(t, 5),
            sig(e, 5),
            sig(rel, 3),
        ]);
    }
    print!("{}", table.to_markdown());

    section("one Nelson-Yu counter on the head key (constant-factor note)");
    let ny_params = NyParams::new(0.25, dlog).unwrap();
    let mut ny = NelsonYuCounter::new(ny_params);
    ny.increment_by(counts[0], &mut rng);
    println!(
        "NY(eps=0.25, 2^-{dlog}) on n = {}: {} [{}], packed {} bits — the Y \
         register's C/eps^3 constant dominates at this scale; Morris+ shares NY's \
         asymptotics (Thm 1.2) with better constants, which is why the arrays above \
         use Morris",
        counts[0],
        ac_core::ApproxCounter::estimate(&ny),
        ac_bitio::StateBits::memory_audit(&ny).render(),
        ny.packed_bits(),
    );

    let ok = morris_raw < (exact_raw * 92) / 100
        && morris_packed < exact_packed
        && cheb_raw >= (exact_raw * 95) / 100
        && worst_rel < 4.0 * eps;
    verdict(
        ok,
        &format!(
            "optimal Morris registers take {}% of exact (packed: {}%) while \
             Chebyshev's log(1/delta) parameterization stays at {}% (no benefit) \
             — both §1 claims reproduced",
            pct(morris_raw, exact_raw),
            pct(morris_packed, exact_packed),
            pct(cheb_raw, exact_raw)
        ),
    );
}
