//! **E10** — ablations of the design choices `DESIGN.md` calls out:
//!
//! 1. **The universal constant `C`** (Algorithm 1, line 10): accuracy
//!    and space as `C ∈ {1.5, 3, 6, 12, 24}` — the proof wants `C ≳ 3`;
//!    below that the per-epoch Chernoff budget fails and errors blow up,
//!    above it space grows by one bit per doubling for no accuracy gain.
//! 2. **Power-of-two α rounding** (Remark 2.2): the rounded
//!    [`NelsonYuCounter`] vs. the exact-α reference
//!    [`ExactAlphaNelsonYu`] — same accuracy scale, ≤ 1 bit difference.
//! 3. **The promise-problem constant** (§1.2): the standalone decider's
//!    gap is `ε/10`, so its constant must absorb ~10²; measured failure
//!    rates at `C ∈ {6, 75, 300}` make the "constants change from line
//!    to line" remark quantitative.

use ac_bench::{header, section, sized, verdict};
use ac_core::{
    ExactAlphaNelsonYu, NelsonYuCounter, NyParams, PromiseAnswer, PromiseDecider, PROMISE_DEFAULT_C,
};
use ac_randkit::{trial_seed, Xoshiro256PlusPlus};
use ac_sim::report::{sig, Table};
use ac_sim::{TrialRunner, Workload};

fn main() {
    header(
        "E10",
        "design-choice ablations (constant C, alpha rounding, promise constant)",
        "C >= ~3 suffices (Thm 2.1's Chernoff step); power-of-two alpha rounding is \
         free; the standalone promise gap eps/10 needs C ~ 100x larger",
    );
    let trials = sized(4_000, 300);
    let n = 500_000u64;
    let eps = 0.2;
    let dlog = 8u32;

    // ---- Ablation 1: the universal constant C. ----
    section("constant C: failure rate and space at eps = 0.2, delta = 2^-8, N = 5e5");
    let mut table = Table::new(vec![
        "C",
        "P(|N'-N| > 2 eps N)",
        "budget 2*delta",
        "peak bits (max)",
    ]);
    let mut fail_at_c = Vec::new();
    for &c in &[1.5f64, 3.0, 6.0, 12.0, 24.0] {
        let p = NyParams::with_constant(eps, dlog, c).unwrap();
        let r = TrialRunner::new(Workload::fixed(n), trials)
            .with_seed(0xE101)
            .run(&NelsonYuCounter::new(p));
        let rate = r.failure_rate(2.0 * eps);
        fail_at_c.push((c, rate, r.peak_bits_summary().max()));
        table.row(vec![
            sig(c, 3),
            sig(rate, 3),
            sig(2.0 * (-f64::from(dlog)).exp2(), 3),
            sig(r.peak_bits_summary().max(), 4),
        ]);
    }
    print!("{}", table.to_markdown());
    // C >= 6 cells must meet the budget; space must grow ~1 bit per
    // doubling of C.
    let budget = 2.0 * (-f64::from(dlog)).exp2() + 3.0 / trials as f64;
    let c_ok = fail_at_c
        .iter()
        .filter(|(c, _, _)| *c >= 6.0)
        .all(|(_, rate, _)| *rate <= budget);
    let space_growth = fail_at_c.last().unwrap().2 - fail_at_c[2].2;
    println!(
        "\nspace cost of quadrupling C beyond the default: {} bits (theory: ~2)",
        sig(space_growth, 2)
    );

    // ---- Ablation 2: power-of-two alpha rounding. ----
    section("alpha rounding: rounded (Remark 2.2) vs exact-alpha reference");
    let p = NyParams::new(eps, dlog).unwrap();
    let rounded = TrialRunner::new(Workload::fixed(n), trials)
        .with_seed(0xE102)
        .run(&NelsonYuCounter::new(p));
    let exact = TrialRunner::new(Workload::fixed(n), trials)
        .with_seed(0xE102)
        .run(&ExactAlphaNelsonYu::new(p));
    let mut table = Table::new(vec![
        "variant",
        "mean |rel err|",
        "p99 |rel err|",
        "peak bits (max)",
    ]);
    for (name, r) in [("rounded 2^-t", &rounded), ("exact alpha", &exact)] {
        let e = r.error_ecdf();
        table.row(vec![
            name.to_string(),
            sig(ac_stats::Summary::from_slice(&r.abs_rel_errors()).mean(), 3),
            sig(e.quantile(0.99), 3),
            sig(r.peak_bits_summary().max(), 4),
        ]);
    }
    print!("{}", table.to_markdown());
    let err_ratio = {
        let a = ac_stats::Summary::from_slice(&rounded.abs_rel_errors()).mean();
        let b = ac_stats::Summary::from_slice(&exact.abs_rel_errors()).mean();
        (a / b).max(b / a)
    };
    let bit_diff = (rounded.peak_bits_summary().max() - exact.peak_bits_summary().max()).abs();
    let rounding_ok = err_ratio < 1.5 && bit_diff <= 2.0;
    println!(
        "\nrounding cost: error ratio {}x, bit difference {} — the Remark 2.2 \
         simplification is essentially free",
        sig(err_ratio, 3),
        sig(bit_diff, 2)
    );

    // ---- Ablation 3: the promise-problem constant. ----
    section("promise decider (§1.2): failure at the gap boundary vs its constant");
    let t_param = 100_000u64;
    let p_trials = sized(3_000, 300) as u32;
    let below_n = (t_param as f64 * (1.0 - eps / 10.0)) as u64;
    let mut table = Table::new(vec!["C", "boundary failure rate", "eta = 2^-7"]);
    let mut promise_rates = Vec::new();
    for &c in &[6.0, 75.0, PROMISE_DEFAULT_C] {
        let mut wrong = 0u32;
        for i in 0..p_trials {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(trial_seed(0xE103, u64::from(i)));
            let mut d = PromiseDecider::new(t_param, eps, 7, c).unwrap();
            d.increment_by(below_n, &mut rng);
            if d.answer() != PromiseAnswer::Below {
                wrong += 1;
            }
        }
        let rate = f64::from(wrong) / f64::from(p_trials);
        promise_rates.push(rate);
        table.row(vec![sig(c, 3), sig(rate, 3), sig((0.5f64).powi(7), 3)]);
    }
    print!("{}", table.to_markdown());
    let promise_ok = promise_rates[0] > promise_rates[2] * 5.0
        && promise_rates[2] <= (0.5f64).powi(7) + 5.0 / f64::from(p_trials);
    println!(
        "\nthe eps/10 gap needs the big constant: C = 6 fails {}x more often than C = {}",
        sig(promise_rates[0] / promise_rates[2].max(1e-6), 2),
        PROMISE_DEFAULT_C
    );

    verdict(
        c_ok && rounding_ok && promise_ok,
        "C >= 6 meets the failure budget with ~1 bit/doubling space cost, \
         power-of-two alpha rounding is free, and the promise-gap constant \
         behaves as the proof requires",
    );
}
