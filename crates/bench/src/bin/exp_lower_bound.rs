//! **E6** — Theorem 3.1, executable: the space lower bound
//! `Ω(min{log n, log log n + log 1/ε + log log 1/δ})`, traced through
//! every constructive step of the proof.

use ac_automaton::adapter::{csuros_automaton, morris_automaton, morris_freeze_level};
use ac_automaton::exhaustive::{minimal_distinguishing_states, scan_all};
use ac_automaton::pump::{find_witness, verify_witness};
use ac_bench::{header, section, sized, verdict};
use ac_core::{NelsonYuCounter, NyParams};
use ac_sim::report::{sig, Table};
use ac_sim::{TrialRunner, Workload};

fn main() {
    header(
        "E6",
        "the space lower bound, executable (Theorem 3.1)",
        "any counter distinguishing [1, T/2] from [2T, 4T] needs Omega(log T) bits; \
         derandomized counters freeze at a constant level; upper bound matches \
         within a constant factor",
    );

    // ---- Step 1: exhaustive verification for small T. ----
    section("exhaustive scan: minimal states to distinguish [1,T/2] from [2T,4T]");
    let mut table = Table::new(vec![
        "T",
        "automata with m = T/2 states (all fail)",
        "minimal distinguishing m",
        "T/2 + 2",
    ]);
    let mut exhaustive_ok = true;
    for &t in &[4u64, 8, 10, 12] {
        let m_half = (t / 2) as usize;
        let at_half = scan_all(m_half, t);
        let minimal = minimal_distinguishing_states(t, (t / 2 + 3) as usize);
        let expected = (t / 2 + 2) as usize;
        exhaustive_ok &= at_half.distinguishers == 0 && minimal == Some(expected);
        table.row(vec![
            format!("{t}"),
            format!(
                "{} examined, {} distinguish",
                at_half.examined, at_half.distinguishers
            ),
            format!("{minimal:?}"),
            format!("{expected}"),
        ]);
    }
    print!("{}", table.to_markdown());
    println!("\n(the pigeonhole of the proof needs only 2^S <= sqrt(T); the scan shows the");
    println!(" stronger truth: fewer than T/2 + 2 states NEVER suffice, and T/2 + 2 always do)");

    // ---- Step 2: derandomization of the real algorithms. ----
    section("derandomized real counters freeze (the proof's C_det)");
    let mut table = Table::new(vec![
        "automaton",
        "freeze level (theory)",
        "state after 2^40 steps",
        "pump witness vs T = 2^10",
    ]);
    let mut derand_ok = true;
    for (label, auto, theory) in [
        (
            "Morris(a=0.5), 64 levels",
            morris_automaton(0.5, 64),
            morris_freeze_level(0.5),
        ),
        (
            "Morris(a=0.1), 128 levels",
            morris_automaton(0.1, 128),
            morris_freeze_level(0.1),
        ),
        ("Csuros(d=2), 64 registers", csuros_automaton(2, 64), 4),
    ] {
        let det = auto.derandomize();
        let frozen = det.state_at(1 << 40);
        let t_param = 1u64 << 10;
        let witness = find_witness(&det, t_param);
        let w_ok = witness.is_some_and(|w| verify_witness(&det, &w, t_param));
        derand_ok &= w_ok && u64::from(frozen) <= theory;
        table.row(vec![
            label.to_string(),
            format!("{theory}"),
            format!("{frozen}"),
            match witness {
                Some(w) => format!("N1={} N2={} N3={} ok={w_ok}", w.n1, w.n2, w.n3),
                None => "none".to_string(),
            },
        ]);
    }
    print!("{}", table.to_markdown());

    // ---- Step 3: the error-amplification accounting of the proof. ----
    section("error amplification delta * (2^S)^(N+1)");
    let auto = morris_automaton(1.0, 7); // 2^3 states
    let n = 20u64;
    let path_p = auto.derandomized_path_probability(n);
    let amplification = 1.0 / path_p;
    let proof_bound = 8f64.powi(n as i32 + 1);
    println!(
        "P(random execution follows the derandomized path for N = {n}) = {}\n\
         -> conditional error multiplies by {} (proof's worst case (2^S)^(N+1) = {})",
        sig(path_p, 3),
        sig(amplification, 3),
        sig(proof_bound, 3)
    );
    let amp_ok = amplification <= proof_bound;

    // ---- Step 4: upper vs lower bound, constant factor. ----
    section("measured upper bound vs the lower-bound form");
    let trials = sized(100, 10);
    let mut table = Table::new(vec![
        "(n, eps, delta)",
        "NY peak bits (max)",
        "LB form: min{log n, loglog n + log 1/e + loglog 1/d}",
        "ratio",
    ]);
    let mut ratios = Vec::new();
    for &(e, eps, dlog) in &[(20u32, 0.2f64, 8u32), (26, 0.1, 16), (30, 0.05, 32)] {
        let n = 1u64 << e;
        let p = NyParams::new(eps, dlog).unwrap();
        let r = TrialRunner::new(Workload::fixed(n), trials)
            .with_seed(0xE6_04)
            .run(&NelsonYuCounter::new(p));
        let measured = r.peak_bits_summary().max();
        let lb =
            f64::from(e).min(f64::from(e).log2() + (1.0 / eps).log2() + f64::from(dlog).log2());
        let ratio = measured / lb;
        ratios.push(ratio);
        table.row(vec![
            format!("(2^{e}, {eps}, 2^-{dlog})"),
            sig(measured, 4),
            sig(lb, 4),
            sig(ratio, 3),
        ]);
    }
    print!("{}", table.to_markdown());
    let ratio_ok = ratios.iter().all(|&r| r < 8.0);
    println!("\n(Theorem 1.1: the upper bound matches the lower bound up to a constant factor;");
    println!(" the measured constant includes our conservative X+Y+t accounting and C = 6)");

    verdict(
        exhaustive_ok && derand_ok && amp_ok && ratio_ok,
        &format!(
            "distinguishing needs exactly T/2+2 states (exhaustive), derandomized \
             counters freeze and pump, amplification respects (2^S)^(N+1), and the \
             NY counter sits within {}x of the lower-bound form",
            sig(ratios.iter().fold(f64::MIN, |m, &x| m.max(x)), 2)
        ),
    );
}
