//! **Figure 1** — empirical CDFs of relative error at a 17-bit budget.
//!
//! The paper: "we did the following 5,000 times for each algorithm,
//! parameterized to use only 17 bits of memory: pick a uniformly random
//! integer N ∈ [500000, 999999] (thus a 20-bit number) and perform N
//! increments … the two algorithms' empirical performances are nearly
//! identical! … neither algorithm ever had relative error more than
//! 2.37% in 5,000 runs."

use ac_bench::{header, quick_mode, section, sized, verdict};
use ac_core::budget::{plan_csuros, plan_morris, plan_nelson_yu, DEFAULT_SLACK_SIGMAS};
use ac_core::ApproxCounter;
use ac_sim::plot::{ascii_chart, Series};
use ac_sim::report::{sig, Table};
use ac_sim::{TrialResults, TrialRunner, Workload};
use ac_stats::ks::ks_two_sample;

const BITS: u32 = 17;
const N_MAX: u64 = 999_999;

fn run<C: ApproxCounter + Clone + Send + Sync>(
    label: &str,
    counter: &C,
    trials: usize,
) -> (String, TrialResults) {
    let runner = TrialRunner::new(Workload::figure1(), trials).with_seed(0xF161);
    (label.to_string(), runner.run(counter))
}

fn main() {
    header(
        "F1",
        "Figure 1 — error CDFs, Morris vs simplified-Alg.1, 17 bits of memory",
        "the two algorithms' empirical CDFs are nearly identical; max relative \
         error over 5,000 runs ≈ 2.37%",
    );
    let trials = sized(5_000, 300);

    let morris = plan_morris(BITS, N_MAX, DEFAULT_SLACK_SIGMAS).expect("17 bits is feasible");
    let csuros = plan_csuros(BITS, N_MAX, DEFAULT_SLACK_SIGMAS).expect("17 bits is feasible");
    println!(
        "planned Morris(a): a = {:.3e} (level cap 2^{BITS}-1)",
        morris.a()
    );
    println!(
        "planned simplified-NY / Csűrös: mantissa d = {} bits (register cap 2^{BITS}-1)",
        csuros.mantissa_bits()
    );

    let mut curves: Vec<(String, TrialResults)> = vec![
        run("Morris (17 bits)", &morris, trials),
        run("simplified Alg.1 / Csuros (17 bits)", &csuros, trials),
    ];

    // Extension beyond the paper: the *full* Algorithm 1 planned to the
    // same register budget (state = X + Y + t bits).
    match plan_nelson_yu(BITS, N_MAX, 6) {
        Ok(ny) => {
            println!(
                "planned full Nelson-Yu: eps = {:.4}, delta = 2^-6 (extension, not in the paper's figure)",
                ny.params().eps()
            );
            curves.push(run("full Alg.1 / Nelson-Yu (17 bits)", &ny, trials));
        }
        Err(e) => println!("full Nelson-Yu does not fit 17 bits: {e}"),
    }

    section("error percentiles (% relative error)");
    let mut table = Table::new(vec![
        "algorithm",
        "p50",
        "p90",
        "p99",
        "p99.9",
        "max",
        "peak bits (max)",
    ]);
    for (label, results) in &curves {
        let ecdf = results.error_ecdf();
        let peak = results.peak_bits_summary().max();
        table.row(vec![
            label.clone(),
            sig(100.0 * ecdf.quantile(0.50), 3),
            sig(100.0 * ecdf.quantile(0.90), 3),
            sig(100.0 * ecdf.quantile(0.99), 3),
            sig(100.0 * ecdf.quantile(0.999), 3),
            sig(100.0 * ecdf.max(), 3),
            format!("{peak}"),
        ]);
    }
    print!("{}", table.to_markdown());

    section("empirical CDFs (x = % of runs, y = % relative error)");
    let series: Vec<Series> = curves
        .iter()
        .map(|(label, results)| {
            let pts = results
                .error_ecdf()
                .percentile_curve(101)
                .into_iter()
                .map(|(pct, err)| (pct, 100.0 * err))
                .collect();
            Series::new(label.clone(), pts)
        })
        .collect();
    print!("{}", ascii_chart(&series, 64, 20));

    section("similarity of the two paper curves");
    let ks = ks_two_sample(&curves[0].1.abs_rel_errors(), &curves[1].1.abs_rel_errors());
    println!(
        "two-sample KS: D = {:.4}, p = {:.4} (large D / tiny p would mean the \
         curves differ)",
        ks.statistic, ks.p_value
    );

    let max_morris = curves[0].1.error_ecdf().max();
    let max_csuros = curves[1].1.error_ecdf().max();
    let within_budget = curves
        .iter()
        .all(|(_, r)| r.peak_bits_summary().max() <= f64::from(BITS));
    let worst = max_morris.max(max_csuros);
    let scale_ratio = {
        let m = curves[0].1.error_ecdf().quantile(0.9);
        let c = curves[1].1.error_ecdf().quantile(0.9);
        (m / c).max(c / m)
    };
    let ok = within_budget && worst < 0.05 && scale_ratio < 4.0;
    verdict(
        ok,
        &format!(
            "both algorithms fit {BITS} bits; worst error {:.2}% (paper: 2.37%); \
             p90 scale ratio {:.2}x (paper: nearly identical){}",
            100.0 * worst,
            scale_ratio,
            if quick_mode() { " [quick]" } else { "" }
        ),
    );
}
