//! **E1** — Theorems 1.1/2.3: the Nelson–Yu counter's space scales as
//! `O(log log N + log(1/ε) + log log(1/δ))`, with the dependence on the
//! failure probability *doubly* logarithmic — the paper's headline.
//!
//! Three sweeps (N, ε, δ), each holding the other parameters fixed and
//! measuring the peak state bits over repeated trials. The δ sweep also
//! runs Morris+ (same optimal bound, Theorem 1.2) and the classical
//! Chebyshev-parameterized `Morris(a = 2ε²δ)` whose bits grow *singly*
//! logarithmically in `1/δ` until it degenerates into an exact counter —
//! the `min{log n, …}` of the lower bound.

use ac_bench::{header, section, sized, verdict};
use ac_core::{MorrisCounter, MorrisPlus, NelsonYuCounter, NyParams};
use ac_sim::plot::{ascii_chart, Series};
use ac_sim::report::{sig, Table};
use ac_sim::{TrialRunner, Workload};

fn peak_bits<C: ac_core::ApproxCounter + Clone + Send + Sync>(
    counter: &C,
    n: u64,
    trials: usize,
    seed: u64,
) -> (f64, f64) {
    let r = TrialRunner::new(Workload::fixed(n), trials)
        .with_seed(seed)
        .run(counter);
    let s = r.peak_bits_summary();
    (s.mean(), s.max())
}

fn main() {
    header(
        "E1",
        "space scaling of Algorithm 1 (Theorems 1.1 & 2.3)",
        "state bits = O(log log N + log 1/eps + log log 1/delta); \
         doubly-logarithmic in 1/delta where the classical analysis pays log(1/delta)",
    );
    let trials = sized(200, 20);

    // ---- Sweep 1: N at fixed eps = 0.2, delta = 2^-10. ----
    section("N sweep (eps = 0.2, delta = 2^-10)");
    let p = NyParams::new(0.2, 10).unwrap();
    let mut table = Table::new(vec![
        "N",
        "log2 N",
        "log2 log2 N",
        "NY mean bits",
        "NY max bits",
        "exact bits",
    ]);
    let mut ny_pts = Vec::new();
    let mut exact_pts = Vec::new();
    for e in [10u32, 14, 18, 22, 26, 30] {
        let n = 1u64 << e;
        let (mean, max) = peak_bits(&NelsonYuCounter::new(p), n, trials, 0xE1_01);
        let loglog = f64::from(e).log2();
        table.row(vec![
            format!("2^{e}"),
            format!("{e}"),
            sig(loglog, 3),
            sig(mean, 4),
            sig(max, 4),
            format!("{}", e + 1),
        ]);
        ny_pts.push((loglog, max));
        exact_pts.push((loglog, f64::from(e + 1)));
    }
    print!("{}", table.to_markdown());
    println!("\nNY max bits vs log2 log2 N (slope O(1) expected; exact counter for contrast):");
    print!(
        "{}",
        ascii_chart(
            &[
                Series::new("nelson-yu peak bits", ny_pts.clone()),
                Series::new("exact counter bits", exact_pts),
            ],
            60,
            14,
        )
    );
    // Growth from N = 2^10 to 2^30: should be a few bits, not ~20.
    let ny_growth = ny_pts.last().unwrap().1 - ny_pts[0].1;

    // ---- Sweep 2: eps at fixed N = 2^20, delta = 2^-10. ----
    section("eps sweep (N = 2^20, delta = 2^-10)");
    let n = 1u64 << 20;
    let mut table = Table::new(vec!["eps", "log2(1/eps)", "NY mean bits", "NY max bits"]);
    let mut eps_pts = Vec::new();
    for &eps in &[0.4, 0.2, 0.1, 0.05, 0.025] {
        let p = NyParams::new(eps, 10).unwrap();
        let (mean, max) = peak_bits(&NelsonYuCounter::new(p), n, trials, 0xE1_02);
        table.row(vec![
            sig(eps, 3),
            sig((1.0 / eps).log2(), 3),
            sig(mean, 4),
            sig(max, 4),
        ]);
        eps_pts.push(((1.0 / eps).log2(), max));
    }
    print!("{}", table.to_markdown());
    // Theory: ~3 log2(1/eps) slope (the eps^3 in alpha). Measure the
    // average slope across the sweep.
    let eps_slope =
        (eps_pts.last().unwrap().1 - eps_pts[0].1) / (eps_pts.last().unwrap().0 - eps_pts[0].0);
    println!(
        "\nmeasured slope: {} bits per log2(1/eps) (theory: ~3, from alpha ∝ eps^3)",
        sig(eps_slope, 3)
    );

    // ---- Sweep 3: delta at fixed N = 2^20, eps = 0.2. ----
    section("delta sweep (N = 2^20, eps = 0.2): the headline comparison");
    let mut table = Table::new(vec![
        "delta",
        "Delta=log2(1/d)",
        "log2 Delta",
        "NY max bits",
        "Morris+ max bits",
        "Chebyshev Morris(2e^2d) max bits",
    ]);
    let mut ny_d = Vec::new();
    let mut mp_d = Vec::new();
    let mut ch_d = Vec::new();
    for &dlog in &[4u32, 8, 16, 32, 64, 128] {
        let p = NyParams::new(0.2, dlog).unwrap();
        let (_, ny_max) = peak_bits(&NelsonYuCounter::new(p), n, trials, 0xE1_03);
        let (_, mp_max) = peak_bits(&MorrisPlus::new(0.2, dlog).unwrap(), n, trials, 0xE1_04);
        // Classical Chebyshev parameterization a = 2 eps^2 delta.
        let a_cheb = 2.0 * 0.2f64 * 0.2 * (-f64::from(dlog)).exp2();
        let (_, ch_max) = peak_bits(
            &MorrisCounter::new(a_cheb.max(1e-300)).unwrap(),
            n,
            trials,
            0xE1_05,
        );
        let x = f64::from(dlog).log2();
        table.row(vec![
            format!("2^-{dlog}"),
            format!("{dlog}"),
            sig(x, 3),
            sig(ny_max, 4),
            sig(mp_max, 4),
            sig(ch_max, 4),
        ]);
        ny_d.push((f64::from(dlog), ny_max));
        mp_d.push((f64::from(dlog), mp_max));
        ch_d.push((f64::from(dlog), ch_max));
    }
    print!("{}", table.to_markdown());
    println!("\nbits vs Delta = log2(1/delta) — NY/Morris+ flat-ish (log log), Chebyshev linear then capped at ~log2 N:");
    print!(
        "{}",
        ascii_chart(
            &[
                Series::new("nelson-yu", ny_d.clone()),
                Series::new("morris+", mp_d.clone()),
                Series::new("chebyshev morris", ch_d.clone()),
            ],
            60,
            16,
        )
    );

    // Verdict: NY growth over the delta sweep must be tiny compared to
    // the Chebyshev counter's growth (before its exact-counter cap).
    let ny_dgrow = ny_d.last().unwrap().1 - ny_d[0].1;
    let ch_dgrow = ch_d.iter().map(|p| p.1).fold(f64::MIN, f64::max) - ch_d[0].1;
    // Over 2^10..2^30 the exact counter grows by 20 bits; NY must grow by
    // far less (the measured ~9 bits includes the η = δ/X² schedule's
    // log log N term times C and the power-of-two α rounding). In the δ
    // sweep, NY growth must be a fraction of the classical counter's.
    let ok = ny_growth <= 20.0 / 1.8 && ny_dgrow <= 4.0 && ch_dgrow >= 2.0 * ny_dgrow.max(1.0);
    verdict(
        ok,
        &format!(
            "NY bits grew {} over N=2^10..2^30 and {} over delta=2^-4..2^-128; \
             classical Chebyshev Morris grew {} before degenerating (paper: \
             exponential improvement in the delta dependence)",
            sig(ny_growth, 2),
            sig(ny_dgrow, 2),
            sig(ch_dgrow, 2)
        ),
    );
}
