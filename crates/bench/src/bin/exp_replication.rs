//! **E16** — the replicated store over loopback TCP: one primary
//! serving four remote writers under a concurrent Zipf workload, two
//! replica nodes folding delta checkpoint frames as they are cut, and
//! a remote reader querying mid-stream. Gates: exactly-once totals
//! over the wire (the applied total equals the generated total to the
//! event), both replicas converging to the primary's exact chain
//! digest, the merged aggregate staying within the (ε, δ) band of the
//! exact total on primary and replicas alike — and the TCP path's
//! throughput measured against the same workload pushed through
//! in-process writers, so the framing + checksum + ack overhead is a
//! number, not a feeling.
//!
//! Emits `BENCH_replication.json` via `--json` (uploaded by CI).

use ac_bench::{header, json::JsonObject, section, sized, verdict, write_json_report};
use ac_core::CounterSpec;
use ac_engine::{IngestConfig, Store};
use ac_net::{Identity, ReplicaNode, ServerConfig, StoreClient, StoreServer, WriterConfig};
use ac_randkit::SplitMix64;
use ac_sim::ZipfKeys;
use std::time::{Duration, Instant};

const EPS: f64 = 0.2;
const DELTA_LOG2: u32 = 8;
const SHARDS: u32 = 8;
const SEED: u64 = 0xE16;
const WRITERS: u64 = 4;
const ZIPF_S: f64 = 1.1;

fn spec() -> CounterSpec {
    CounterSpec::NelsonYu {
        eps: EPS,
        delta_log2: DELTA_LOG2,
    }
}

fn identity() -> Identity {
    Identity {
        spec: spec(),
        shards: SHARDS,
        seed: SEED,
    }
}

fn start_store() -> Store {
    Store::builder(spec())
        .with_shards(SHARDS as usize)
        .with_seed(SEED)
        .with_ingest(IngestConfig::new().with_batch_pairs(256))
        .with_snapshot_every_events(4_096)
        .start()
        .expect("store starts")
}

/// Pre-draws each writer's key stream (one event per key draw) so the
/// timed sections measure the pipeline, not the Zipf sampler.
fn draw_streams(keys: u64, events_per_writer: u64) -> Vec<Vec<u64>> {
    let zipf = ZipfKeys::new(keys, ZIPF_S, SEED).expect("valid zipf");
    (0..WRITERS)
        .map(|w| {
            let mut rng = SplitMix64::new(0x05EE_DE16 ^ w);
            (0..events_per_writer)
                .map(|_| zipf.key_of_rank(zipf.sample_rank(&mut rng)))
                .collect()
        })
        .collect()
}

/// The same four streams through local `StoreWriter`s — the in-process
/// baseline the TCP path is measured against.
fn run_in_process(streams: &[Vec<u64>]) -> (f64, u64) {
    let store = start_store();
    let start = Instant::now();
    std::thread::scope(|s| {
        for stream in streams {
            let mut writer = store.writer();
            s.spawn(move || {
                for &key in stream {
                    writer.record(key, 1);
                }
                writer.flush().expect("lossless flush");
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let report = store.close().expect("clean close");
    (elapsed, report.stats.events)
}

fn main() {
    header(
        "E16",
        "replicated store over loopback TCP",
        "a merged aggregate served over the wire from a primary and its \
         delta-fed replicas stays within the (eps, delta) band of the exact \
         total under concurrent multi-writer Zipf load, with exactly-once \
         totals and digest-identical replica state",
    );

    let keys = sized(50_000, 5_000) as u64;
    let events_per_writer = sized(1_000_000, 50_000) as u64;
    let expected = WRITERS * events_per_writer;
    println!(
        "{WRITERS} writers x {events_per_writer} events over {keys} Zipf(s={ZIPF_S}) keys, \
         NelsonYu(eps={EPS}, delta=2^-{DELTA_LOG2}), {SHARDS} shards\n"
    );
    let streams = draw_streams(keys, events_per_writer);

    // ----- in-process baseline ------------------------------------------
    section("baseline: four local writers, no wire");
    let (local_s, local_events) = run_in_process(&streams);
    let local_eps = local_events as f64 / local_s;
    println!(
        "{local_events} events in {:.2} s -> {:.2} M events/s",
        local_s,
        local_eps / 1e6
    );
    assert_eq!(local_events, expected, "local ingest lost events");

    // ----- the cluster: primary + 2 replicas + 4 remote writers ---------
    section("cluster: primary + 2 replicas + 4 remote writers over loopback");
    let server = StoreServer::start_with(
        start_store(),
        "127.0.0.1:0",
        ServerConfig {
            delta_every_events: 16_384,
            cut_poll: Duration::from_millis(2),
            max_chain_segments: 16,
        },
    )
    .expect("server starts");
    let addr = server.local_addr();
    let replica_a = ReplicaNode::connect(addr, identity()).expect("replica A");
    let replica_b = ReplicaNode::connect(addr, identity()).expect("replica B");

    let start = Instant::now();
    let mid_estimate = std::thread::scope(|s| {
        for stream in &streams {
            s.spawn(move || {
                let client = StoreClient::new(addr, identity()).expect("client connects");
                let mut writer = client
                    .writer(WriterConfig::default())
                    .expect("writer connects");
                for &key in stream {
                    writer.record(key, 1);
                }
                writer.close().expect("clean close");
            });
        }
        // A reader RPCs mid-stream: reads must be servable while every
        // writer is pushing. Poll until a publish lands so the probe
        // reports a live number, not the pre-traffic empty replica.
        let probe = s.spawn(move || {
            let client = StoreClient::new(addr, identity()).expect("reader client");
            let mut reader = client.reader().expect("reader connects");
            let mut est = 0.0;
            for _ in 0..200 {
                est = reader.merged_estimate().expect("mid-stream merge RPC");
                if est > 0.0 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            reader.close();
            est
        });
        probe.join().expect("probe thread")
    });
    let tcp_s = start.elapsed().as_secs_f64();
    let tcp_eps = expected as f64 / tcp_s;
    println!(
        "{expected} events in {:.2} s -> {:.2} M events/s over TCP \
         ({:.1}% of in-process; mid-stream merged estimate RPC answered {mid_estimate:.0})",
        tcp_s,
        tcp_eps / 1e6,
        100.0 * tcp_eps / local_eps,
    );

    // ----- exactly-once totals ------------------------------------------
    section("convergence: exactly-once totals, replicas at the tip digest");
    let mut local = server.reader();
    let deadline = Instant::now() + Duration::from_secs(120);
    while local.total_events() < expected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
        local.refresh();
    }
    let applied = local.total_events();
    let exactly_once = applied == expected;
    println!("primary applied {applied} of {expected} generated (exactly once: {exactly_once})");

    let replicas_converged = replica_a.wait_for_events(expected, Duration::from_secs(120))
        && replica_b.wait_for_events(expected, Duration::from_secs(120))
        && replica_a.wait_for_chain(server.tip_chain(), Duration::from_secs(120))
        && replica_b.wait_for_chain(server.tip_chain(), Duration::from_secs(120));
    let digests_identical = replicas_converged
        && replica_a.chain_digest() == server.tip_chain()
        && replica_b.chain_digest() == server.tip_chain();
    println!(
        "replica A: {} events, chain {:#018x}, {} folds; replica B: {} events, \
         chain {:#018x}, {} folds (digest-identical to primary: {digests_identical})",
        replica_a.total_events(),
        replica_a.chain_digest(),
        replica_a.folds(),
        replica_b.total_events(),
        replica_b.chain_digest(),
        replica_b.folds(),
    );

    // ----- the (eps, delta) band ----------------------------------------
    section("accuracy: merged aggregate vs exact total, primary and replicas");
    let client = StoreClient::new(addr, identity()).expect("reader client");
    let mut reader = client.reader().expect("reader connects");
    let primary_est = reader.merged_estimate().expect("merge RPC");
    let a_est = replica_a.merged_estimate().expect("replica A merge");
    let b_est = replica_b.merged_estimate().expect("replica B merge");
    reader.close();
    let rel = |est: f64| (est - expected as f64).abs() / expected as f64;
    let in_band = rel(primary_est) <= EPS && rel(a_est) <= EPS && rel(b_est) <= EPS;
    println!(
        "exact {expected}: primary {primary_est:.0} ({:+.2}%), replica A {a_est:.0} \
         ({:+.2}%), replica B {b_est:.0} ({:+.2}%) — all within eps={EPS}: {in_band}",
        100.0 * (primary_est / expected as f64 - 1.0),
        100.0 * (a_est / expected as f64 - 1.0),
        100.0 * (b_est / expected as f64 - 1.0),
    );

    let (a_folds, b_folds) = (replica_a.folds(), replica_b.folds());
    drop(replica_a);
    drop(replica_b);
    let report = server.shutdown().expect("server shutdown");
    let server_total_ok = report.stats.events == expected;

    // ----- Report -------------------------------------------------------
    let ok = exactly_once && replicas_converged && digests_identical && in_band && server_total_ok;
    let json = JsonObject::new()
        .str("experiment", "E16")
        .str("title", "replicated store over loopback TCP")
        .bool("quick", ac_bench::quick_mode())
        .obj(
            "workload",
            JsonObject::new()
                .int("writers", WRITERS)
                .int("events_per_writer", events_per_writer)
                .int("events_total", expected)
                .int("keys", keys)
                .num("zipf_s", ZIPF_S)
                .num("eps", EPS)
                .int("delta_log2", u64::from(DELTA_LOG2)),
        )
        .obj(
            "throughput",
            JsonObject::new()
                .num("in_process_events_per_second", local_eps)
                .num("tcp_events_per_second", tcp_eps)
                .num("tcp_to_in_process_ratio", tcp_eps / local_eps),
        )
        .obj(
            "replication",
            JsonObject::new()
                .int("replicas", 2)
                .int("replica_a_folds", a_folds)
                .int("replica_b_folds", b_folds)
                .bool("converged", replicas_converged)
                .bool("digest_identical", digests_identical),
        )
        .obj(
            "accuracy",
            JsonObject::new()
                .num("primary_estimate", primary_est)
                .num("replica_a_estimate", a_est)
                .num("replica_b_estimate", b_est)
                .num("primary_rel_error", rel(primary_est))
                .bool("within_band", in_band),
        )
        .bool("exactly_once", exactly_once && server_total_ok)
        .bool("reproduced", ok);
    write_json_report(&json);

    verdict(
        ok,
        "four remote writers, one primary, two delta-fed replicas: totals are \
         exactly-once over the wire, replicas converge to the primary's chain \
         digest, and every node's merged aggregate lands within the (eps, \
         delta) band of the exact total",
    );
    if !ok {
        std::process::exit(1);
    }
}
