//! **E7** — §1.2 estimator moments: `Morris(a)` is unbiased with
//! `Var = a·N(N−1)/2`; the Csűrös estimator is unbiased; the Nelson–Yu
//! query concentrates on `N` (it is a quantized `T`, not an unbiased
//! estimator — the paper's Eq. (1) is a concentration, not a moment,
//! statement).

use ac_bench::{header, section, sized, verdict};
use ac_core::{CsurosCounter, MorrisCounter, NelsonYuCounter, NyParams};
use ac_sim::report::{sig, Table};
use ac_sim::{TrialRunner, Workload};
use ac_stats::theory::{morris_estimator_variance, morris_section22_failure};

fn main() {
    header(
        "E7",
        "estimator moments vs closed forms (§1.2, §2.2)",
        "E[a^-1((1+a)^X - 1)] = N and Var = a N(N-1)/2; \
         section 2.2 tail bound 2 exp(-eps^2/(8a))",
    );
    let trials = sized(40_000, 1_000);

    section("Morris(a): sample mean and variance vs theory");
    let mut table = Table::new(vec![
        "a",
        "N",
        "mean/N",
        "z(mean)",
        "var/theory",
        "theory Var",
    ]);
    let mut ok = true;
    for &(a, n) in &[(1.0f64, 1_000u64), (0.25, 5_000), (0.01, 100_000)] {
        let results = TrialRunner::new(Workload::fixed(n), trials)
            .with_seed(0xE7_01)
            .run(&MorrisCounter::new(a).unwrap());
        let est: Vec<f64> = results.estimates();
        let s = ac_stats::Summary::from_slice(&est);
        let theory_var = morris_estimator_variance(a, n);
        let z = (s.mean() - n as f64) / s.std_error();
        let var_ratio = s.variance() / theory_var;
        // The estimator (1+a)^X is heavy-tailed for large a, so the
        // sample variance converges slowly: the acceptance band scales
        // with the trial count.
        let band = 0.10 + 40.0 / (trials as f64).sqrt();
        ok &= z.abs() < 5.0 && (var_ratio - 1.0).abs() < band;
        table.row(vec![
            sig(a, 3),
            format!("{n}"),
            sig(s.mean() / n as f64, 5),
            sig(z, 2),
            sig(var_ratio, 3),
            sig(theory_var, 3),
        ]);
    }
    print!("{}", table.to_markdown());

    section("Csuros(d): unbiasedness");
    let mut table = Table::new(vec!["d", "N", "mean/N", "z(mean)"]);
    for &(d, n) in &[(4u32, 10_000u64), (8, 100_000)] {
        let results = TrialRunner::new(Workload::fixed(n), trials)
            .with_seed(0xE7_02)
            .run(&CsurosCounter::new(d).unwrap());
        let s = ac_stats::Summary::from_slice(&results.estimates());
        let z = (s.mean() - n as f64) / s.std_error();
        ok &= z.abs() < 5.0;
        table.row(vec![
            format!("{d}"),
            format!("{n}"),
            sig(s.mean() / n as f64, 5),
            sig(z, 2),
        ]);
    }
    print!("{}", table.to_markdown());

    section("section 2.2 tail bound for Morris(a)");
    // P(|N' - N| > 2 eps N) <= 2 exp(-eps^2/(8a)) for N >= 8/a.
    let (a, n, eps) = (0.002, 200_000u64, 0.15);
    let results = TrialRunner::new(Workload::fixed(n), sized(40_000, 1_000))
        .with_seed(0xE7_03)
        .run(&MorrisCounter::new(a).unwrap());
    let measured = results.failure_rate(2.0 * eps);
    let bound = morris_section22_failure(a, eps);
    println!(
        "a = {a}, N = {n}, eps = {eps}: measured P(|N'-N| > 2 eps N) = {} <= \
         theory bound {}",
        sig(measured, 3),
        sig(bound, 3)
    );
    ok &= measured <= bound;

    section("Nelson-Yu: concentration of the quantized query");
    let p = NyParams::new(0.1, 10).unwrap();
    let n = 1_000_000u64;
    let results = TrialRunner::new(Workload::fixed(n), sized(4_000, 200))
        .with_seed(0xE7_04)
        .run(&NelsonYuCounter::new(p));
    let s = results.rel_error_summary();
    println!(
        "eps = 0.1: mean relative error = {} (|.| <= ~eps expected: the query returns \
         the epoch threshold T, biased by up to (1+eps) within an epoch), sd = {}",
        sig(s.mean(), 3),
        sig(s.stddev(), 3)
    );
    ok &= s.mean().abs() < 0.15 && s.stddev() < 0.15;

    verdict(
        ok,
        "all moments match the paper's closed forms within statistical resolution",
    );
}
