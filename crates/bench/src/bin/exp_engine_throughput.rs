//! **E12** — the batched path at fleet scale: every counter family
//! fast-forwards `increment_by(n)` in transition-count-proportional time
//! (≥100× over the increment loop at `n = 10⁷`), and the `ac-engine`
//! sharded registry sustains a million-key, ten-million-event workload
//! whose cross-shard merged aggregate agrees with the exact event total
//! within the configured `(ε, δ)`.
//!
//! Emits `BENCH_engine.json` via `--json` (uploaded by CI).

use ac_bench::{header, json::JsonObject, section, sized, verdict, write_json_report};
use ac_core::{ApproxCounter, CsurosCounter, MorrisCounter, MorrisPlus, NelsonYuCounter, NyParams};
use ac_engine::{CounterEngine, EngineConfig};
use ac_randkit::{RandomSource, SplitMix64, Xoshiro256PlusPlus};
use ac_sim::report::Table;
use std::time::Instant;

/// One family's loop-vs-batched measurement.
struct FamilyRow {
    family: &'static str,
    params: &'static str,
    loop_s: f64,
    batched_s: f64,
    speedup: f64,
}

/// Times `n` single increments once, and `increment_by(n)` over `reps`
/// fresh counters, on independent seeded streams.
fn time_family<C, F>(make: F, n: u64, reps: u32) -> (f64, f64)
where
    C: ApproxCounter,
    F: Fn() -> C,
{
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xE12);
    let mut c = make();
    let start = Instant::now();
    for _ in 0..n {
        c.increment(&mut rng);
    }
    let loop_s = start.elapsed().as_secs_f64();
    // Keep the estimate observable so the loop cannot be optimized away.
    assert!(c.estimate() >= 0.0);

    let start = Instant::now();
    let mut acc = 0.0;
    for _ in 0..reps {
        let mut c = make();
        c.increment_by(n, &mut rng);
        acc += c.estimate();
    }
    let batched_s = start.elapsed().as_secs_f64() / f64::from(reps);
    assert!(acc >= 0.0);
    (loop_s, batched_s)
}

fn main() {
    header(
        "E12",
        "batched fast-forward + sharded engine throughput",
        "increment_by(n) costs O(transitions), not O(n) coin flips, for every \
         counter family; a sharded engine of per-key counters absorbs 1M keys / \
         10M events and its merged aggregate matches the exact total within (eps, delta)",
    );

    // ----- Part 1: per-family batched vs loop ---------------------------
    let n = sized(10_000_000, 1_000_000) as u64;
    let reps = 200u32;
    section("per-family increment loop vs increment_by (fast-forward)");
    println!("n = {n} increments per measurement, batched averaged over {reps} calls\n");

    let ny_params = NyParams::new(0.1, 10).unwrap();
    let rows: Vec<FamilyRow> = vec![
        {
            let (l, b) = time_family(|| MorrisCounter::new(0.01).unwrap(), n, reps);
            FamilyRow {
                family: "morris",
                params: "a=0.01",
                loop_s: l,
                batched_s: b,
                speedup: l / b,
            }
        },
        {
            // ε=0.2, Δ=6 — the accuracy-test configuration. Batched cost
            // is O(levels) and the level count scales as 1/a, so tighter
            // (ε, δ) trades batched speed for accuracy in both paths.
            let (l, b) = time_family(|| MorrisPlus::new(0.2, 6).unwrap(), n, reps);
            FamilyRow {
                family: "morris+",
                params: "eps=0.2 delta=2^-6",
                loop_s: l,
                batched_s: b,
                speedup: l / b,
            }
        },
        {
            let (l, b) = time_family(|| NelsonYuCounter::new(ny_params), n, reps);
            FamilyRow {
                family: "nelson-yu",
                params: "eps=0.1 delta=2^-10",
                loop_s: l,
                batched_s: b,
                speedup: l / b,
            }
        },
        {
            let (l, b) = time_family(|| CsurosCounter::new(8).unwrap(), n, reps);
            FamilyRow {
                family: "csuros-float",
                params: "d=8",
                loop_s: l,
                batched_s: b,
                speedup: l / b,
            }
        },
    ];

    let mut table = Table::new(vec!["family", "params", "loop", "batched", "speedup"]);
    for r in &rows {
        table.row(vec![
            r.family.to_string(),
            r.params.to_string(),
            format!("{:.1} ms", r.loop_s * 1e3),
            format!("{:.2} us", r.batched_s * 1e6),
            format!("{:.0}x", r.speedup),
        ]);
    }
    print!("{}", table.to_markdown());
    let min_speedup = rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
    // The ≥100× claim is stated at n = 10⁷. Batched cost is O(levels)
    // (independent of n) while loop cost is O(n), so the quick smoke run
    // at n = 10⁶ checks a proportionally lower floor.
    let speedup_floor = if ac_bench::quick_mode() { 10.0 } else { 100.0 };
    let fast_ok = min_speedup >= speedup_floor;
    println!("\nmin speedup {min_speedup:.0}x (floor {speedup_floor:.0}x at n = {n})");

    // ----- Part 2: the sharded engine workload --------------------------
    let keys = sized(1_000_000, 100_000) as u64;
    let events_target = sized(10_000_000, 1_000_000) as u64;
    section("ac-engine: sharded keyed workload");
    println!(
        "{keys} distinct keys, {events_target} increments, NelsonYu(eps=0.2, delta=2^-8) cells\n"
    );

    let eps = 0.2;
    let engine_params = NyParams::new(eps, 8).unwrap();
    let mut engine = CounterEngine::new(
        NelsonYuCounter::new(engine_params),
        EngineConfig::new().with_shards(32).with_seed(0xE12),
    );

    // Workload: every key is touched at least once, then the remaining
    // budget lands on hashed keys with small per-pair deltas — the
    // "many counters" regime where most counters see light traffic.
    let mut pairs: Vec<(u64, u64)> = Vec::with_capacity(keys as usize);
    let mut remaining = events_target - keys;
    for key in 0..keys {
        pairs.push((key, 1));
    }
    let mut keygen = SplitMix64::new(0x5EED);
    while remaining > 0 {
        let key = keygen.next_u64() % keys;
        let delta = (1 + keygen.next_u64() % 32).min(remaining);
        pairs.push((key, delta));
        remaining -= delta;
    }

    let start = Instant::now();
    for chunk in pairs.chunks(1 << 16) {
        engine.apply_parallel(chunk);
    }
    let apply_s = start.elapsed().as_secs_f64();
    let stats = engine.stats();
    assert_eq!(stats.events, events_target, "exact event bookkeeping");
    assert_eq!(stats.keys as u64, keys, "every key materialized");
    let events_per_sec = events_target as f64 / apply_s;
    let pairs_per_sec = pairs.len() as f64 / apply_s;

    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["keys".into(), format!("{}", stats.keys)]);
    table.row(vec!["events".into(), format!("{}", stats.events)]);
    table.row(vec!["batch pairs".into(), format!("{}", pairs.len())]);
    table.row(vec!["apply wall time".into(), format!("{apply_s:.3} s")]);
    table.row(vec![
        "throughput".into(),
        format!(
            "{:.1} M events/s ({:.2} M pairs/s)",
            events_per_sec / 1e6,
            pairs_per_sec / 1e6
        ),
    ]);
    table.row(vec![
        "counter state".into(),
        format!(
            "{} bits total ({:.1} bits/key)",
            stats.state_bits_total,
            stats.state_bits_total as f64 / stats.keys as f64
        ),
    ]);
    table.row(vec![
        "max shard load".into(),
        format!("{} keys", stats.max_shard_keys),
    ]);
    print!("{}", table.to_markdown());

    section("cross-shard aggregation (merge law)");
    let mut merge_rng = Xoshiro256PlusPlus::seed_from_u64(0xE12_A66);
    let start = Instant::now();
    let total = engine.merged_total(&mut merge_rng).unwrap();
    let merge_s = start.elapsed().as_secs_f64();
    let exact = engine.total_events() as f64;
    let rel = (total.estimate() - exact).abs() / exact;
    let agg_ok = rel <= 2.0 * eps;
    println!(
        "merged {} counters in {:.3} s: estimate {:.3e} vs exact {:.3e} (rel err {:.4}, bound {})",
        stats.keys,
        merge_s,
        total.estimate(),
        exact,
        rel,
        2.0 * eps
    );

    // ----- Report -------------------------------------------------------
    let ok = fast_ok && agg_ok;
    let family_rows = rows
        .iter()
        .map(|r| {
            JsonObject::new()
                .str("family", r.family)
                .str("params", r.params)
                .num("loop_seconds", r.loop_s)
                .num("batched_seconds", r.batched_s)
                .num("speedup", r.speedup)
        })
        .collect();
    let report = JsonObject::new()
        .str("experiment", "E12")
        .str("title", "batched fast-forward + sharded engine throughput")
        .bool("quick", ac_bench::quick_mode())
        .int("n_per_family", n)
        .rows("families", family_rows)
        .num("min_speedup", min_speedup)
        .num("speedup_floor", speedup_floor)
        .obj(
            "engine",
            JsonObject::new()
                .int("shards", stats.shards as u64)
                .int("keys", keys)
                .int("events", events_target)
                .int("batch_pairs", pairs.len() as u64)
                .num("apply_seconds", apply_s)
                .num("events_per_second", events_per_sec)
                .int("state_bits_total", stats.state_bits_total)
                .num("bits_per_key", stats.bits_per_key())
                .num("merge_seconds", merge_s)
                .num("merged_estimate", total.estimate())
                .num("exact_total", exact)
                .num("relative_error", rel)
                .num("epsilon", eps)
                .bool("within_eps", agg_ok),
        )
        .bool("reproduced", ok);
    write_json_report(&report);

    verdict(
        ok,
        "all counter families fast-forward in O(transitions) (>=100x over the \
         loop) and the sharded engine's merged aggregate matches the exact \
         total within (eps, delta)",
    );
    if !ok {
        std::process::exit(1);
    }
}
