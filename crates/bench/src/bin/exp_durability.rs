//! **E15** — the durability lifecycle: shard-parallel checkpoint encode
//! and chain restore (bit-identical to the serial paths, measured at a
//! million keys), recovery time as a function of chain length with and
//! without off-thread compaction (compacted recovery is bounded by state
//! size, not history), and steady-state ingest throughput with the
//! compactor running against the same store with compaction disabled.
//!
//! Emits `BENCH_durability.json` via `--json` (uploaded by CI).
//!
//! Parallel-speedup and ingest-overhead gates only bind on hosts with at
//! least 4 cores — on smaller runners (CI is often 1-2 vCPUs) the worker
//! pool cannot beat the serial path, so those legs are recorded but the
//! verdict rests on the identity and flat-recovery gates.

use ac_bench::{header, json::JsonObject, section, sized, verdict, write_json_report};
use ac_core::{CounterSpec, NelsonYuCounter, NyParams};
use ac_engine::{
    checkpoint_delta, checkpoint_snapshot_workers, compact_chain_workers, restore_checkpoint,
    restore_checkpoint_chain_workers, CheckpointKind, CounterEngine, EngineConfig, IngestConfig,
    Manifest, Store,
};
use ac_randkit::{RandomSource, SplitMix64};
use ac_sim::report::Table;
use std::time::Instant;

const EPS: f64 = 0.2;
const DELTA_LOG2: u32 = 8;

fn template() -> NelsonYuCounter {
    NelsonYuCounter::new(NyParams::new(EPS, DELTA_LOG2).unwrap())
}

fn engine_config() -> EngineConfig {
    EngineConfig::new().with_shards(32).with_seed(0xE15)
}

fn spec() -> CounterSpec {
    CounterSpec::NelsonYu {
        eps: EPS,
        delta_log2: DELTA_LOG2,
    }
}

/// Minimum wall time over `n` runs of `f` (loaded hosts deschedule
/// single runs; the minimum is the least-noisy estimator of true cost).
fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut value = None;
    for _ in 0..n {
        let start = Instant::now();
        let v = f();
        best = best.min(start.elapsed().as_secs_f64());
        value = Some(v);
    }
    (best, value.expect("n >= 1"))
}

/// Drives `events` through a durable store one record at a time and
/// returns events/s over record + flush + close (the close drains the
/// queue and the checkpoint writer, so a lagging compactor shows up).
fn run_store_ingest(tag: &str, events: u64, keys: u64, compact: bool) -> (f64, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("ac-e15-{tag}-{}-{compact}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut builder = Store::builder(spec())
        .with_shards(32)
        .with_seed(0xE15A)
        .with_ingest(IngestConfig::default())
        .with_snapshot_every_events(events / 16)
        .with_durability(&dir)
        .with_checkpoint_every_events(events / 16)
        .with_max_deltas_per_base(1_000);
    if compact {
        builder = builder.with_max_chain_len(4);
    }
    let store = builder.start().expect("fresh durable store");
    let mut writer = store.writer();
    let mut gen = SplitMix64::new(0x05EE_DE15);
    let start = Instant::now();
    let mut remaining = events;
    while remaining > 0 {
        let key = gen.next_u64() % keys;
        let delta = (1 + gen.next_u64() % 8).min(remaining);
        writer.record(key, delta);
        remaining -= delta;
    }
    writer.flush().expect("final flush");
    let report = store.close().expect("clean close");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(report.stats.events, events, "ingest lost events");
    (events as f64 / elapsed, dir)
}

#[allow(clippy::too_many_lines)]
fn main() {
    header(
        "E15",
        "durability: parallel encode/restore + off-thread chain compaction",
        "checkpoint encode and chain restore parallelize over shard sections \
         with bit-identical output; an off-thread compactor folds base+delta \
         chains into a fresh base behind an atomic manifest swap, so recovery \
         time is bounded by state size, not history length, at steady-state \
         ingest cost within 5% of the uncompacted store",
    );

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let keys = sized(1_000_000, 50_000) as u64;
    let max_chain = sized(16, 8);
    let reps = sized(3, 2);
    println!("{keys} keys, NelsonYu(eps={EPS}, delta=2^-{DELTA_LOG2}), {cores} cores\n");

    // ----- the shared chain: one base + deltas over real traffic --------
    let mut engine = CounterEngine::new(template(), engine_config());
    let seed_batch: Vec<(u64, u64)> = (0..keys).map(|k| (k, 1 + k % 7)).collect();
    engine.apply(&seed_batch);
    let snap = engine.snapshot();

    // ----- Part 1: parallel encode, bit-identical -----------------------
    section("encode: per-shard sections on a worker pool, spliced to one frame");
    let (serial_encode_s, serial_frame) = best_of(reps, || checkpoint_snapshot_workers(&snap, 1));
    let (parallel_encode_s, parallel_frame) =
        best_of(reps, || checkpoint_snapshot_workers(&snap, 0));
    let encode_identical = serial_frame.bytes() == parallel_frame.bytes();
    let encode_speedup = serial_encode_s / parallel_encode_s.max(1e-12);
    println!(
        "{keys} keys -> {} bytes: serial {:.1} ms, parallel {:.1} ms ({encode_speedup:.2}x, \
         bytes identical: {encode_identical})",
        serial_frame.bytes().len(),
        serial_encode_s * 1e3,
        parallel_encode_s * 1e3,
    );

    // Deltas extend the chain to max_chain frames, each touching ~5% of
    // the key space so every frame carries real per-shard sections.
    let mut segments: Vec<Vec<u8>> = vec![serial_frame.bytes().to_vec()];
    let mut parent = serial_frame.header();
    let mut gen = SplitMix64::new(0xD0_E15);
    for _ in 1..max_chain {
        let delta_batch: Vec<(u64, u64)> = (0..keys / 20)
            .map(|_| (gen.next_u64() % keys, 1 + gen.next_u64() % 16))
            .collect();
        engine.apply(&delta_batch);
        let delta = checkpoint_delta(&engine.snapshot(), &parent).expect("own lineage");
        parent = delta.header();
        segments.push(delta.bytes().to_vec());
    }
    let refs: Vec<&[u8]> = segments.iter().map(Vec::as_slice).collect();

    // ----- Part 2: parallel chain restore, bit-identical ----------------
    section("restore: shard-parallel section decode over the full chain");
    let (serial_restore_s, mut serial_engine) = best_of(reps, || {
        restore_checkpoint_chain_workers(&template(), &refs, 1).expect("serial restore")
    });
    let (parallel_restore_s, mut parallel_engine) = best_of(reps, || {
        restore_checkpoint_chain_workers(&template(), &refs, 0).expect("parallel restore")
    });
    // Bit-identity via re-encode: same counters, same shard RNG streams,
    // same epoch clock -> the serial snapshot of both engines matches.
    let restore_identical = serial_engine.total_events() == engine.total_events()
        && checkpoint_snapshot_workers(&serial_engine.snapshot(), 1).bytes()
            == checkpoint_snapshot_workers(&parallel_engine.snapshot(), 1).bytes();
    let restore_speedup = serial_restore_s / parallel_restore_s.max(1e-12);
    println!(
        "{}-frame chain: serial {:.1} ms, parallel {:.1} ms ({restore_speedup:.2}x, \
         restored state identical: {restore_identical})",
        refs.len(),
        serial_restore_s * 1e3,
        parallel_restore_s * 1e3,
    );

    // ----- Part 3: recovery time vs chain length, +/- compaction --------
    section("recovery curve: chain walk vs compacted base, by chain length");
    let lens: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&l| l <= max_chain)
        .collect();
    let mut curve: Vec<JsonObject> = Vec::new();
    let mut table = Table::new(vec![
        "chain frames",
        "restore (chain)",
        "compact (fold)",
        "restore (compacted)",
    ]);
    let mut compact_identical = true;
    let mut compacted_restore: Vec<f64> = Vec::new();
    let mut chain_restore: Vec<f64> = Vec::new();
    for &len in &lens {
        let prefix = &refs[..len];
        let (chain_s, mut folded) = best_of(reps, || {
            restore_checkpoint_chain_workers(&template(), prefix, 0).expect("chain restore")
        });
        let (compact_s, cbase) = best_of(1, || {
            compact_chain_workers(&template(), prefix, 0).expect("fold")
        });
        let (cbase_s, mut via_cbase) = best_of(reps, || {
            restore_checkpoint(&template(), cbase.bytes()).expect("compacted restore")
        });
        compact_identical &= via_cbase.total_events() == folded.total_events()
            && checkpoint_snapshot_workers(&via_cbase.snapshot(), 1).bytes()
                == checkpoint_snapshot_workers(&folded.snapshot(), 1).bytes();
        table.row(vec![
            format!("{len}"),
            format!("{:.1} ms", chain_s * 1e3),
            format!("{:.1} ms", compact_s * 1e3),
            format!("{:.1} ms", cbase_s * 1e3),
        ]);
        curve.push(
            JsonObject::new()
                .int("chain_frames", len as u64)
                .int(
                    "chain_bytes",
                    prefix.iter().map(|s| s.len() as u64).sum::<u64>(),
                )
                .num("chain_restore_seconds", chain_s)
                .num("compact_seconds", compact_s)
                .int("compacted_bytes", cbase.bytes().len() as u64)
                .num("compacted_restore_seconds", cbase_s),
        );
        chain_restore.push(chain_s);
        compacted_restore.push(cbase_s);
    }
    print!("{}", table.to_markdown());
    // Flat after compaction: every compacted restore decodes one frame of
    // ~the same state, so the slowest point stays within noise (2x) of
    // the fastest — while the chain walk grows with history.
    let flat_min = compacted_restore
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let flat_max = compacted_restore.iter().copied().fold(0.0f64, f64::max);
    let flat_ratio = flat_max / flat_min.max(1e-12);
    let longest_cut = chain_restore.last().copied().unwrap_or(0.0)
        / compacted_restore.last().copied().unwrap_or(1.0).max(1e-12);
    let flat_ok = flat_ratio <= 2.0 && compacted_restore.last() <= chain_restore.last();
    println!(
        "\ncompacted recovery spread {flat_ratio:.2}x across chain lengths (gate <=2x); at \
         {} frames the compacted base restores {longest_cut:.2}x faster than the chain walk \
         (compacted state identical to the serial fold: {compact_identical})",
        lens.last().unwrap_or(&0),
    );

    // ----- Part 4: steady-state ingest with the compactor live ----------
    section("ingest: durable store, compactor on vs off");
    let ingest_events = sized(4_000_000, 400_000) as u64;
    let ingest_keys = keys.min(200_000);
    let (plain_eps, plain_dir) = run_store_ingest("plain", ingest_events, ingest_keys, false);
    let (compact_eps, compact_dir) = run_store_ingest("compact", ingest_events, ingest_keys, true);
    let ingest_ratio = compact_eps / plain_eps.max(1e-12);

    // The compactor must actually have fired: the manifest opens on a
    // folded base and lists fewer frames than the cadence cut.
    let plain_frames = Manifest::load(&plain_dir).expect("plain manifest").frames;
    let compact_manifest = Manifest::load(&compact_dir).expect("compacted manifest");
    let compaction_fired = compact_manifest.frames[0].kind == CheckpointKind::Full
        && compact_manifest.frames[0].file.contains("-c")
        && compact_manifest.frames.len() < plain_frames.len();

    // End-to-end recovery: reopening the compacted directory walks a
    // short chain; the uncompacted one replays the whole session.
    let (plain_open_s, plain_store) = best_of(1, || Store::open(&plain_dir).expect("reopen plain"));
    let plain_events = plain_store.reader().total_events();
    plain_store.kill();
    let (compact_open_s, compact_store) =
        best_of(1, || Store::open(&compact_dir).expect("reopen compacted"));
    let compact_events = compact_store.reader().total_events();
    compact_store.kill();
    let recovery_identical = plain_events == ingest_events && compact_events == ingest_events;
    println!(
        "{ingest_events} events / {ingest_keys} keys: compactor off {:.2} M events/s, on \
         {:.2} M events/s ({:.1}% of uncompacted); manifest {} -> {} frames \
         (compaction fired: {compaction_fired}); reopen: uncompacted {:.1} ms, compacted \
         {:.1} ms, both recover every event: {recovery_identical}",
        plain_eps / 1e6,
        compact_eps / 1e6,
        ingest_ratio * 100.0,
        plain_frames.len(),
        compact_manifest.frames.len(),
        plain_open_s * 1e3,
        compact_open_s * 1e3,
    );
    let _ = std::fs::remove_dir_all(&plain_dir);
    let _ = std::fs::remove_dir_all(&compact_dir);

    // ----- Report -------------------------------------------------------
    // Identity and flatness are host-independent hard gates; the >=2x
    // restore speedup and <=5% ingest overhead are stated at full size
    // (a million keys) and only bind there, on hosts with >=4 cores —
    // quick-mode chains are too small to measure the worker pool.
    let parallel_binds = cores >= 4 && !ac_bench::quick_mode();
    let parallel_ok = !parallel_binds || (restore_speedup >= 2.0 && ingest_ratio >= 0.95);
    let ok = encode_identical
        && restore_identical
        && compact_identical
        && flat_ok
        && compaction_fired
        && recovery_identical
        && parallel_ok;
    let report = JsonObject::new()
        .str("experiment", "E15")
        .str(
            "title",
            "durability: parallel encode/restore + off-thread compaction",
        )
        .bool("quick", ac_bench::quick_mode())
        .int("cores", cores as u64)
        .obj(
            "encode",
            JsonObject::new()
                .int("keys", keys)
                .int("bytes", serial_frame.bytes().len() as u64)
                .num("serial_seconds", serial_encode_s)
                .num("parallel_seconds", parallel_encode_s)
                .num("speedup", encode_speedup)
                .bool("bytes_identical", encode_identical),
        )
        .obj(
            "restore",
            JsonObject::new()
                .int("keys", keys)
                .int("frames", refs.len() as u64)
                .num("serial_seconds", serial_restore_s)
                .num("parallel_seconds", parallel_restore_s)
                .num("speedup", restore_speedup)
                .bool("state_identical", restore_identical),
        )
        .rows("recovery_curve", curve)
        .obj(
            "compaction",
            JsonObject::new()
                .num("flat_ratio", flat_ratio)
                .num("longest_chain_speedup", longest_cut)
                .bool("flat_after_compaction", flat_ok)
                .bool("byte_identical_to_serial_fold", compact_identical),
        )
        .obj(
            "ingest",
            JsonObject::new()
                .int("events", ingest_events)
                .int("keys", ingest_keys)
                .num("uncompacted_events_per_second", plain_eps)
                .num("compacted_events_per_second", compact_eps)
                .num("compact_to_plain_ratio", ingest_ratio)
                .int("uncompacted_frames", plain_frames.len() as u64)
                .int("compacted_frames", compact_manifest.frames.len() as u64)
                .bool("compaction_fired", compaction_fired)
                .num("uncompacted_open_seconds", plain_open_s)
                .num("compacted_open_seconds", compact_open_s)
                .bool("recovery_identical", recovery_identical),
        )
        .bool("parallel_gates_bind", parallel_binds)
        .bool("reproduced", ok);
    write_json_report(&report);

    verdict(
        ok,
        "parallel encode and restore are bit-identical to the serial paths, \
         the compacted base matches the serial fold and keeps recovery time \
         flat across chain lengths, the compactor fires under live ingest \
         and both directories reopen losslessly (speedup/overhead gates \
         bind at full size on >=4 cores)",
    );
    if !ok {
        std::process::exit(1);
    }
}
