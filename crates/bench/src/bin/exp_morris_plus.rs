//! **E2** — Theorem 1.2: Morris+ with `a = ε²/(8 ln(1/δ))` achieves
//! `P(|N̂ − N| > 2εN) ≤ 2δ` in `O(log log N + log 1/ε + log log 1/δ)`
//! bits.
//!
//! Sweeps δ at fixed ε and measures the empirical failure rate (with a
//! Wilson 95% interval) against the `2δ` budget, plus the space used.

use ac_bench::json::JsonObject;
use ac_bench::{header, section, sized, verdict, write_json_report};
use ac_core::{morris_a, MorrisPlus};
use ac_sim::report::{sig, Table};
use ac_sim::{TrialRunner, Workload};
use ac_stats::wilson_interval;

fn main() {
    let t_start = std::time::Instant::now();
    header(
        "E2",
        "Morris+ accuracy and space (Theorem 1.2)",
        "P(|N'-N| > 2 eps N) <= 2 delta at O(log log N + log 1/eps + log log 1/delta) bits",
    );
    let eps = 0.1;
    let n = 1_000_000u64;
    let trials = sized(20_000, 500);
    println!("eps = {eps}, N = {n}, trials per delta = {trials}\n");

    section("failure rate vs delta");
    let mut table = Table::new(vec![
        "delta",
        "a = eps^2/(8 ln 1/d)",
        "cutoff N_a",
        "failures",
        "rate",
        "wilson 95% hi",
        "budget 2*delta",
        "peak bits (max)",
        "ok",
    ]);
    let mut all_ok = true;
    let mut json_rows = Vec::new();
    for &dlog in &[3u32, 5, 7, 9, 12] {
        let counter = MorrisPlus::new(eps, dlog).unwrap();
        let a = morris_a(eps, dlog).unwrap();
        let results = TrialRunner::new(Workload::fixed(n), trials)
            .with_seed(0xE2_00 + u64::from(dlog))
            .run(&counter);
        let failures = results.failures(2.0 * eps);
        let rate = results.failure_rate(2.0 * eps);
        let (_, hi) = wilson_interval(failures, trials as u64, 0.95);
        let budget = 2.0 * (-f64::from(dlog)).exp2();
        let peak = results.peak_bits_summary().max();
        // Accept when the observed failure *count* is consistent with the
        // budget: at most budget·trials expected failures plus Poisson
        // slack. (A pure Wilson-bound criterion is resolution-limited
        // when budget·trials < 1.)
        let expected_budget = budget * trials as f64;
        let ok = (failures as f64) <= expected_budget.ceil() + 3.0;
        all_ok &= ok;
        table.row(vec![
            format!("2^-{dlog}"),
            sig(a, 3),
            format!("{}", counter.cutoff()),
            format!("{failures}"),
            sig(rate, 3),
            sig(hi, 3),
            sig(budget, 3),
            format!("{peak}"),
            format!("{}", if ok { "yes" } else { "NO" }),
        ]);
        json_rows.push(
            JsonObject::new()
                .int("delta_log2", u64::from(dlog))
                .num("a", a)
                .int("cutoff", counter.cutoff())
                .int("failures", failures)
                .num("failure_rate", rate)
                .num("wilson_hi", hi)
                .num("budget", budget)
                .num("peak_bits_max", peak)
                .bool("ok", ok),
        );
    }
    print!("{}", table.to_markdown());

    section("exactness below the cutoff");
    // Below N_a the answer is exact by construction; verify at a sample
    // point.
    let counter = MorrisPlus::new(eps, 7).unwrap();
    let small_n = counter.cutoff() / 2;
    let small = TrialRunner::new(Workload::fixed(small_n), sized(2_000, 100))
        .with_seed(0xE2_FF)
        .run(&counter);
    let exact_ok = small.failure_rate(0.0) == 0.0;
    println!(
        "N = {small_n} (= N_a/2): all {} trials exact: {}",
        small.len(),
        exact_ok
    );

    verdict(
        all_ok && exact_ok,
        "Morris+ meets the Theorem 1.2 failure budget at every delta and is exact below N_a",
    );

    write_json_report(
        &JsonObject::new()
            .str("experiment", "E2")
            .str("bin", "exp_morris_plus")
            .str("claim", "Theorem 1.2: P(|N'-N| > 2 eps N) <= 2 delta")
            .num("eps", eps)
            .int("n", n)
            .int("trials_per_delta", trials as u64)
            .bool("exact_below_cutoff", exact_ok)
            .bool("reproduced", all_ok && exact_ok)
            .num("wall_seconds", t_start.elapsed().as_secs_f64())
            .rows("deltas", json_rows),
    );
}
