//! **E8** — §1.1 ablation: averaging `k` independent base-2 Morris
//! counters vs changing the base to `1 + Θ(ε²)`.
//!
//! Flajolet noted the two have "an effect similar to" each other
//! statistically; the paper's point is that they are computationally very
//! different: averaging needs `k = Θ(1/ε²)` copies (a `1/ε²`
//! multiplicative space blow-up) while changing base costs `O(log(1/ε))`
//! additive bits.

use ac_bench::{header, section, sized, verdict};
use ac_core::{AveragedMorris, MorrisCounter, NelsonYuCounter, NyParams};
use ac_sim::plot::{ascii_chart, Series};
use ac_sim::report::{sig, Table};
use ac_sim::{TrialRunner, Workload};

fn main() {
    header(
        "E8",
        "averaging copies vs changing base (§1.1)",
        "matching a target relative sd eps: averaging k = 1/(2 eps^2) copies of \
         Morris(1) multiplies space by 1/eps^2; base a = 2 eps^2 adds O(log 1/eps) bits",
    );
    let n = 1u64 << 20;
    let trials = sized(3_000, 200);
    println!("N = 2^20, trials per cell = {trials}\n");

    section("matched-accuracy space comparison");
    let mut table = Table::new(vec![
        "target eps (rel sd)",
        "averaged: k copies",
        "avg measured sd",
        "avg total bits (max)",
        "base-change a=2eps^2",
        "base measured sd",
        "base bits (max)",
        "NY bits (max, delta=2^-7)",
    ]);
    let mut avg_bits_pts = Vec::new();
    let mut base_bits_pts = Vec::new();
    let mut ok = true;
    for &eps in &[0.5f64, 0.25, 0.1, 0.05] {
        // Averaging k copies of Morris(1): Var_k = N^2/(2k) -> rel sd
        // 1/sqrt(2k) = eps  =>  k = 1/(2 eps^2).
        let k = (1.0 / (2.0 * eps * eps)).ceil() as usize;
        let avg = TrialRunner::new(Workload::fixed(n), trials)
            .with_seed(0xE8_01)
            .run(&AveragedMorris::new(k, 1.0).unwrap());
        let avg_sd = avg.rel_error_summary().stddev();
        let avg_bits = avg.peak_bits_summary().max();

        // Changing base: Var = a N^2/2 -> rel sd sqrt(a/2) = eps  =>
        // a = 2 eps^2.
        let a = 2.0 * eps * eps;
        let base = TrialRunner::new(Workload::fixed(n), trials)
            .with_seed(0xE8_02)
            .run(&MorrisCounter::new(a).unwrap());
        let base_sd = base.rel_error_summary().stddev();
        let base_bits = base.peak_bits_summary().max();

        // Nelson-Yu reference at the same eps.
        let ny = TrialRunner::new(Workload::fixed(n), trials.min(500))
            .with_seed(0xE8_03)
            .run(&NelsonYuCounter::new(
                NyParams::new(eps.min(0.49), 7).unwrap(),
            ));
        let ny_bits = ny.peak_bits_summary().max();

        // Both should hit the target sd within a factor ~1.5.
        ok &= (avg_sd / eps) < 1.5 && (base_sd / eps) < 1.5;
        avg_bits_pts.push(((1.0 / eps).log2(), avg_bits));
        base_bits_pts.push(((1.0 / eps).log2(), base_bits));
        table.row(vec![
            sig(eps, 3),
            format!("{k}"),
            sig(avg_sd, 3),
            sig(avg_bits, 4),
            sig(a, 3),
            sig(base_sd, 3),
            sig(base_bits, 4),
            sig(ny_bits, 4),
        ]);
    }
    print!("{}", table.to_markdown());

    section("total bits vs log2(1/eps)");
    print!(
        "{}",
        ascii_chart(
            &[
                Series::new("averaged k copies", avg_bits_pts.clone()),
                Series::new("base-changed single counter", base_bits_pts.clone()),
            ],
            60,
            16,
        )
    );

    // Averaging space explodes ~4x per halving of eps; base-change adds
    // ~2 bits per halving.
    let avg_growth = avg_bits_pts.last().unwrap().1 / avg_bits_pts[0].1;
    let base_growth = base_bits_pts.last().unwrap().1 - base_bits_pts[0].1;
    ok &= avg_growth > 10.0 && base_growth < 15.0;
    verdict(
        ok,
        &format!(
            "averaging grew {}x in bits from eps=0.5 to eps=0.05 while changing \
             base added only {} bits — the paper's computational-complexity \
             distinction, reproduced",
            sig(avg_growth, 3),
            sig(base_growth, 2)
        ),
    );
}
