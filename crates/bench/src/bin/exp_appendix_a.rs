//! **E4** — Appendix A: the Morris+ tweak is *necessary*. Vanilla
//! `Morris(a)` with the optimal `a = ε²/(8 ln(1/δ))` under-estimates
//! small counts (`N = c·ε^{4/3}/a`) with probability `≫ δ`.
//!
//! The failure probabilities involved are ~`√δ`-scale (e.g. `10⁻⁵`…
//! `10⁻⁹`) — far below Monte Carlo reach — so this experiment evaluates
//! them *exactly* with the forward DP
//! [`ac_core::exact_level_distribution`].

use ac_bench::{header, section, verdict};
use ac_core::{exact_level_distribution, morris_a, morris_plus_cutoff};
use ac_sim::report::{sig, Table};

/// Exact `P(N̂ < (1−ε)N)` for vanilla `Morris(a)` after `n` increments.
fn exact_under_probability(a: f64, n: u64, eps: f64) -> f64 {
    let dist = exact_level_distribution(a, n);
    let ln1a = a.ln_1p();
    dist.iter()
        .enumerate()
        .filter(|(j, _)| {
            let estimate = ((*j as f64) * ln1a).exp_m1() / a;
            estimate < (1.0 - eps) * n as f64
        })
        .map(|(_, &p)| p)
        .sum()
}

fn main() {
    header(
        "E4",
        "the Morris+ deterministic prefix is necessary (Appendix A)",
        "vanilla Morris(a), a = eps^2/(8 ln 1/delta), fails with probability >> delta \
         at N = c*eps^(4/3)/a when delta < eps^(8/3) c^2 / 16; Morris+ answers exactly there",
    );

    // The paper's parameterization: eps = 1/8, c = 2^-8 requires
    // delta < eps^(8/3) c^2/16 = 2^-28; take delta = 2^-30.
    let eps = 0.125f64;
    let c = (0.5f64).powi(8);
    let dlog = 30u32;
    let delta = (-f64::from(dlog)).exp2();
    let a = morris_a(eps, dlog).unwrap();
    let n_star = (c * eps.powf(4.0 / 3.0) / a).ceil().max(2.0) as u64;
    println!(
        "eps = {eps}, c = 2^-8, delta = 2^-{dlog}; a = {}; paper's failure point \
         N* = ceil(c*eps^(4/3)/a) = {n_star}; Morris+ cutoff N_a = 8/a = {}",
        sig(a, 4),
        morris_plus_cutoff(a)
    );

    section("exact failure probability of vanilla Morris(a) at small N");
    let mut table = Table::new(vec![
        "N",
        "P(N' < (1-eps)N)  [exact DP]",
        "delta",
        "ratio P/delta",
        "Morris+ answer",
    ]);
    let mut worst_ratio = 0.0f64;
    let n_a = morris_plus_cutoff(a);
    for n in [2u64, n_star, 10, 100, 1_000, 10_000] {
        let p_fail = exact_under_probability(a, n, eps);
        let ratio = p_fail / delta;
        worst_ratio = worst_ratio.max(ratio);
        table.row(vec![
            format!("{n}"),
            sig(p_fail, 3),
            format!("2^-{dlog}"),
            sig(ratio, 3),
            if n <= n_a {
                "exact (prefix)".to_string()
            } else {
                "Morris estimator".to_string()
            },
        ]);
    }
    print!("{}", table.to_markdown());

    section("theory cross-check at N*");
    let p_star = exact_under_probability(a, n_star, eps);
    // Appendix A's lower bound on P[E]: (eps^(4/3) c / 4) * sqrt(delta).
    let bound = eps.powf(4.0 / 3.0) * c / 4.0 * delta.sqrt();
    println!(
        "exact P(fail at N*) = {}  >=  paper's event bound {}  >>  delta = {}",
        sig(p_star, 3),
        sig(bound, 3),
        sig(delta, 3)
    );

    section("where vanilla Morris(a) becomes delta-safe");
    // Scan N for the point where the exact failure probability finally
    // drops below delta — compare with the paper's cutoff 8/a.
    let mut safe_at: Option<u64> = None;
    let mut n = 2u64;
    while n <= 60_000 {
        if exact_under_probability(a, n, eps) < delta {
            safe_at = Some(n);
            break;
        }
        n = (n * 3) / 2 + 1;
    }
    match safe_at {
        Some(n) => println!(
            "first scanned N with P(fail) < delta: ~{n} (paper's prefix covers N <= {n_a})"
        ),
        None => println!("still unsafe at N = 60000 (paper's prefix covers N <= {n_a})"),
    }

    let ok = p_star > 100.0 * delta && p_star >= bound * 0.5;
    verdict(
        ok,
        &format!(
            "at N* = {n_star}, vanilla Morris(a) fails with exact probability {} \
             = {}x delta — the guarantee Eq. (1) is violated without the prefix; \
             Morris+ is exact for all N <= {}",
            sig(p_star, 3),
            sig(worst_ratio, 3),
            n_a
        ),
    );
}
