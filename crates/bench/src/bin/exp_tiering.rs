//! **E14** — tiered accuracy under a global memory budget: on a
//! heavy-tailed keyed workload, a [`Store`] running the default tier
//! ladder under a hard `state_bits_total` ceiling keeps the whole-run
//! footprint under the budget while cutting the hot keys' relative error
//! far below every *uniform* (untiered) allocation that fits the same
//! budget.
//!
//! The workload sits in the paper's motivating regime — many counters,
//! large counts — where exact counters for everyone would blow the
//! budget but a flat approximate tier wastes accuracy on the heavy hits
//! that dominate queries. Tiering spends the budget where the mass is.
//!
//! Emits `BENCH_tiering.json` via `--json` (gated by CI).

use ac_bench::{header, json::JsonObject, section, sized, verdict, write_json_report};
use ac_core::{ApproxCounter, TierPolicy};
use ac_engine::{CounterEngine, EngineConfig, Store};
use ac_randkit::{UniformU64, Xoshiro256PlusPlus};
use ac_sim::{report::Table, ZipfKeys};

/// Zipf exponent of the key-popularity law.
const THETA: f64 = 1.1;
/// The global ceiling, expressed per key of the universe.
const BUDGET_BITS_PER_KEY: u64 = 8;
/// Hot ranks whose error the experiment scores.
const TOP_RANKS: u64 = 100;
/// Acceptance band on the merged aggregate's relative error (the tier-1
/// rung's ε — the aggregate must do no worse than the first approximate
/// promotion rung even though most keys sit in the cheaper tier 0).
const AGGREGATE_BAND: f64 = 0.25;
/// Per-pair coalesced delta range: pairs arrive pre-aggregated (the
/// batched amortized model), pushing per-key counts into the regime
/// where exact counters for everyone exceed the budget.
const DELTA_RANGE: (u64, u64) = (1, 2_000);
/// Pairs per ingest flush / baseline apply chunk.
const CHUNK: usize = 1 << 16;

/// One configuration's measured footprint and hot-key error.
struct ConfigRow {
    label: String,
    state_bits_total: u64,
    bits_per_key: f64,
    feasible: bool,
    mean_rel_err: f64,
    max_rel_err: f64,
}

/// Mean and max relative error over the scored hot ranks.
fn score_top(
    workload: &ZipfKeys,
    exact: &[u64],
    estimate: impl Fn(u64) -> Option<f64>,
) -> (f64, f64) {
    let (mut sum, mut max, mut scored) = (0.0f64, 0.0f64, 0u32);
    for rank in 1..=TOP_RANKS.min(workload.keys()) {
        let truth = exact[(rank - 1) as usize];
        if truth == 0 {
            continue;
        }
        let est = estimate(workload.key_of_rank(rank)).unwrap_or(0.0);
        let rel = (est - truth as f64).abs() / truth as f64;
        sum += rel;
        max = max.max(rel);
        scored += 1;
    }
    assert!(scored > 0, "no hot rank received any events");
    (sum / f64::from(scored), max)
}

fn main() {
    let keys = sized(1_000_000, 50_000) as u64;
    let pairs = sized(10_000_000, 500_000) as u64;
    let ladder = TierPolicy::default_ladder();
    let store_spec = *ladder.default_spec();

    header(
        "E14",
        "tiered accuracy: per-key counter tiers under a global memory budget",
        "under one state_bits_total ceiling, promoting detected heavy hitters up \
         an estimate-preserving accuracy ladder beats every uniform allocation \
         that fits the same budget on hot-key error, without ever exceeding the \
         ceiling",
    );

    // ----- The workload: one deterministic stream, replayed per config --
    let workload = ZipfKeys::new(keys, THETA, 0xE14_5A17).expect("valid Zipf workload");
    let delta_dist = UniformU64::new(DELTA_RANGE.0, DELTA_RANGE.1).expect("valid delta range");
    let mut gen_rng = Xoshiro256PlusPlus::seed_from_u64(0xE14_5EED);
    let mut stream: Vec<(u32, u32)> = Vec::with_capacity(pairs as usize);
    let mut exact = vec![0u64; keys as usize];
    let mut total_events = 0u64;
    for _ in 0..pairs {
        let rank = workload.sample_rank(&mut gen_rng);
        let delta = delta_dist.sample(&mut gen_rng);
        stream.push((rank as u32, delta as u32));
        exact[(rank - 1) as usize] += delta;
        total_events += delta;
    }
    // The budget is "bits per key" over the keys that actually exist:
    // the engine materializes a counter only on first touch, so sizing
    // the ceiling off the universe would hand every config free slack
    // for counters that are never allocated.
    let live_keys = exact.iter().filter(|&&n| n > 0).count() as u64;
    let budget_bits = live_keys * BUDGET_BITS_PER_KEY;
    println!(
        "{keys} keys ({live_keys} touched), Zipf({THETA}) popularity, {pairs} \
         coalesced pairs with delta ~ Uniform[{}, {}], budget {budget_bits} bits \
         ({BUDGET_BITS_PER_KEY} bits per live key)",
        DELTA_RANGE.0, DELTA_RANGE.1
    );
    println!("ladder: {:?}", ladder.specs());

    // ----- Tiered run: the Store under the ladder + budget --------------
    section("tiered store (default ladder, hard ceiling)");
    let snapshot_every = (total_events / 64).max(1);
    let store = Store::builder(store_spec)
        .with_shards(16)
        .with_seed(0xE14)
        .with_snapshot_every_events(snapshot_every)
        .with_tiering(ladder.clone(), budget_bits)
        .start()
        .expect("start tiered store");
    let mut writer = store.writer();
    let mut max_observed_bits = 0u64;
    let mut ceiling_breaches = 0u32;
    for chunk in stream.chunks(CHUNK) {
        for &(rank, delta) in chunk {
            writer.record(workload.key_of_rank(u64::from(rank)), u64::from(delta));
        }
        writer.flush().expect("flush tiered batch");
        // Poll the published replica's footprint: the ceiling must hold
        // at every observation, not just at the end.
        let bits = store.stats().engine.state_bits_total;
        max_observed_bits = max_observed_bits.max(bits);
        if bits > budget_bits {
            ceiling_breaches += 1;
        }
    }
    let reader = store.reader();
    let report = store.close().expect("close tiered store");
    let mut reader = reader;
    reader.refresh();

    let final_stats = report.stats;
    max_observed_bits = max_observed_bits.max(final_stats.state_bits_total);
    if final_stats.state_bits_total > budget_bits {
        ceiling_breaches += 1;
    }
    let within_budget = ceiling_breaches == 0;
    let (tiered_mean, tiered_max) = score_top(&workload, &exact, |key| reader.estimate(key));
    let merged = reader
        .merged_estimate_tiered(ladder.tiers())
        .expect("merged aggregate");
    let aggregate_rel = (merged - total_events as f64).abs() / total_events as f64;
    let aggregate_ok = aggregate_rel <= AGGREGATE_BAND;

    println!(
        "applied {} events over {} keys; state bits {} (max observed {}, ceiling {})",
        final_stats.events,
        final_stats.keys,
        final_stats.state_bits_total,
        max_observed_bits,
        budget_bits
    );
    println!(
        "tier occupancy {:?}; top-{TOP_RANKS} rel err mean {:.4} max {:.4}; \
         aggregate rel err {:.4} (band {AGGREGATE_BAND})",
        final_stats.tier_keys, tiered_mean, tiered_max, aggregate_rel
    );
    assert_eq!(final_stats.events, total_events, "exact event bookkeeping");

    let tiered_row = ConfigRow {
        label: format!("tiered ({} rungs)", ladder.tiers()),
        state_bits_total: final_stats.state_bits_total,
        bits_per_key: final_stats.bits_per_key(),
        feasible: within_budget,
        mean_rel_err: tiered_mean,
        max_rel_err: tiered_max,
    };

    // ----- Untiered baselines: each rung as a uniform allocation --------
    section("untiered baselines (one rung for every key, same stream)");
    let mut baselines: Vec<ConfigRow> = Vec::new();
    for spec in ladder.specs() {
        let template = spec.build().expect("ladder rung builds");
        let mut engine = CounterEngine::new(
            template,
            EngineConfig::new().with_shards(16).with_seed(0xE14),
        );
        let mut buf: Vec<(u64, u64)> = Vec::with_capacity(CHUNK);
        for chunk in stream.chunks(CHUNK) {
            buf.clear();
            buf.extend(
                chunk.iter().map(|&(rank, delta)| {
                    (workload.key_of_rank(u64::from(rank)), u64::from(delta))
                }),
            );
            engine.apply_parallel(&buf);
        }
        let stats = engine.stats();
        let (mean, max) = score_top(&workload, &exact, |key| {
            engine.counter(key).map(ApproxCounter::estimate)
        });
        baselines.push(ConfigRow {
            label: format!("{} {spec:?}", spec.family_name()),
            state_bits_total: stats.state_bits_total,
            bits_per_key: stats.bits_per_key(),
            feasible: stats.state_bits_total <= budget_bits,
            mean_rel_err: mean,
            max_rel_err: max,
        });
    }

    let mut table = Table::new(vec![
        "config",
        "state bits",
        "bits/key",
        "fits budget",
        "top-100 mean err",
        "top-100 max err",
    ]);
    for row in std::iter::once(&tiered_row).chain(baselines.iter()) {
        table.row(vec![
            row.label.clone(),
            format!("{}", row.state_bits_total),
            format!("{:.2}", row.bits_per_key),
            if row.feasible { "yes" } else { "no" }.into(),
            format!("{:.4}", row.mean_rel_err),
            format!("{:.4}", row.max_rel_err),
        ]);
    }
    print!("{}", table.to_markdown());

    let best_feasible = baselines
        .iter()
        .filter(|row| row.feasible)
        .map(|row| row.mean_rel_err)
        .fold(f64::INFINITY, f64::min);
    let beats_untiered = best_feasible.is_finite() && tiered_mean < best_feasible;
    println!(
        "\nbest feasible untiered top-{TOP_RANKS} mean err {best_feasible:.4} \
         vs tiered {tiered_mean:.4}"
    );

    // ----- Report -------------------------------------------------------
    let ok = within_budget && aggregate_ok && beats_untiered;
    let config_json = |row: &ConfigRow| {
        JsonObject::new()
            .str("config", &row.label)
            .int("state_bits_total", row.state_bits_total)
            .num("bits_per_key", row.bits_per_key)
            .bool("fits_budget", row.feasible)
            .num("top_mean_rel_error", row.mean_rel_err)
            .num("top_max_rel_error", row.max_rel_err)
    };
    let report = JsonObject::new()
        .str("experiment", "E14")
        .str("title", "tiered accuracy under a global memory budget")
        .bool("quick", ac_bench::quick_mode())
        .int("keys", keys)
        .int("pairs", pairs)
        .int("events", total_events)
        .num("theta", THETA)
        .int("budget_bits", budget_bits)
        .int("budget_bits_per_key", BUDGET_BITS_PER_KEY)
        .int("top_ranks", TOP_RANKS)
        .obj(
            "tiered",
            config_json(&tiered_row)
                .int("max_observed_state_bits", max_observed_bits)
                .int("ceiling_breaches", u64::from(ceiling_breaches))
                .bool("within_budget", within_budget)
                .rows(
                    "tier_occupancy",
                    final_stats
                        .tier_keys
                        .iter()
                        .enumerate()
                        .map(|(tier, &count)| {
                            JsonObject::new()
                                .int("tier", tier as u64)
                                .int("keys", count)
                        })
                        .collect(),
                )
                .num("aggregate_relative_error", aggregate_rel)
                .num("aggregate_band", AGGREGATE_BAND)
                .bool("aggregate_ok", aggregate_ok),
        )
        .rows("untiered", baselines.iter().map(config_json).collect())
        .num("best_feasible_untiered_error", best_feasible)
        .bool("tiered_beats_untiered", beats_untiered)
        .bool("reproduced", ok);
    write_json_report(&report);

    verdict(
        ok,
        "the tiered store held state_bits_total under the ceiling for the whole \
         run, kept the merged aggregate inside the band, and beat every uniform \
         allocation that fits the same budget on hot-key error",
    );
    if !ok {
        std::process::exit(1);
    }
}
