//! **E5** — Remark 2.4: the Nelson–Yu counter is *fully mergeable* —
//! `merge(C(N₁), C(N₂))` has the same distribution as `C(N₁ + N₂)` — and
//! so is the Morris counter `[CY20 §2.1]`.
//!
//! Validated with two-sample KS tests between merged and sequential
//! populations, on both the level `X` and the estimate, across several
//! `(N₁, N₂)` splits.

use ac_bench::{header, section, sized, verdict};
use ac_core::{ApproxCounter, MorrisCounter, NelsonYuCounter, NyParams};
use ac_randkit::{trial_seed, Xoshiro256PlusPlus};
use ac_sim::report::{sig, Table};
use ac_stats::ks::ks_two_sample;
use ac_stats::Summary;

fn main() {
    header(
        "E5",
        "full mergeability (Remark 2.4)",
        "merged counters follow the same distribution as a single counter over \
         N1 + N2 increments; nothing is lost in eps or delta",
    );
    let trials = sized(8_000, 400);

    section("Nelson-Yu merge vs sequential (KS tests on the level X)");
    let p = NyParams::new(0.25, 8).unwrap();
    let mut table = Table::new(vec![
        "N1",
        "N2",
        "KS D",
        "KS p",
        "mean merged",
        "mean sequential",
        "ok",
    ]);
    let mut all_ok = true;
    for (case, &(n1, n2)) in [
        (1_000u64, 1_000u64), // both likely in/near the exact epoch
        (30_000, 50_000),     // both sampled
        (500, 200_000),       // asymmetric
        (200_000, 500),       // asymmetric, reversed
    ]
    .iter()
    .enumerate()
    {
        let mut merged_levels = Vec::with_capacity(trials);
        let mut seq_levels = Vec::with_capacity(trials);
        let mut merged_mean = Summary::new();
        let mut seq_mean = Summary::new();
        for i in 0..trials {
            let mut rng =
                Xoshiro256PlusPlus::seed_from_u64(trial_seed(0xE5_00 + case as u64, i as u64));
            let mut c1 = NelsonYuCounter::new(p);
            c1.increment_by(n1, &mut rng);
            let mut c2 = NelsonYuCounter::new(p);
            c2.increment_by(n2, &mut rng);
            c1.merge_from(&c2, &mut rng).unwrap();
            merged_levels.push(c1.level() as f64);
            merged_mean.push(c1.estimate());

            let mut c = NelsonYuCounter::new(p);
            c.increment_by(n1 + n2, &mut rng);
            seq_levels.push(c.level() as f64);
            seq_mean.push(c.estimate());
        }
        let ks = ks_two_sample(&merged_levels, &seq_levels);
        let ok = ks.p_value > 0.001;
        all_ok &= ok;
        table.row(vec![
            format!("{n1}"),
            format!("{n2}"),
            sig(ks.statistic, 3),
            sig(ks.p_value, 3),
            sig(merged_mean.mean(), 4),
            sig(seq_mean.mean(), 4),
            format!("{}", if ok { "yes" } else { "NO" }),
        ]);
    }
    print!("{}", table.to_markdown());

    section("Morris merge vs sequential [CY20 §2.1]");
    let a = 0.5;
    let mut table = Table::new(vec!["N1", "N2", "KS D", "KS p", "ok"]);
    for (case, &(n1, n2)) in [(300u64, 700u64), (5_000, 5_000), (50, 20_000)]
        .iter()
        .enumerate()
    {
        let mut merged_levels = Vec::with_capacity(trials);
        let mut seq_levels = Vec::with_capacity(trials);
        for i in 0..trials {
            let mut rng =
                Xoshiro256PlusPlus::seed_from_u64(trial_seed(0xE5_80 + case as u64, i as u64));
            let mut c1 = MorrisCounter::new(a).unwrap();
            c1.increment_by(n1, &mut rng);
            let mut c2 = MorrisCounter::new(a).unwrap();
            c2.increment_by(n2, &mut rng);
            c1.merge_from(&c2, &mut rng).unwrap();
            merged_levels.push(c1.level() as f64);

            let mut c = MorrisCounter::new(a).unwrap();
            c.increment_by(n1 + n2, &mut rng);
            seq_levels.push(c.level() as f64);
        }
        let ks = ks_two_sample(&merged_levels, &seq_levels);
        let ok = ks.p_value > 0.001;
        all_ok &= ok;
        table.row(vec![
            format!("{n1}"),
            format!("{n2}"),
            sig(ks.statistic, 3),
            sig(ks.p_value, 3),
            format!("{}", if ok { "yes" } else { "NO" }),
        ]);
    }
    print!("{}", table.to_markdown());

    verdict(
        all_ok,
        "merged and sequential level distributions are statistically \
         indistinguishable for both algorithms across all tested splits",
    );
}
