//! **E3** — §1.1: the classic `Morris(1)` counter *cannot* achieve low
//! failure probability — `P(X ∉ [log₂N − C, log₂N + C])` is a constant
//! (Flajolet 1985, Proposition 3) — whereas `Morris(a = Θ(1/log N))`
//! gets failure probability `1/poly(N)` "for free" (same `Θ(log log N)`
//! space).

use ac_bench::{header, section, sized, verdict};
use ac_core::MorrisCounter;
use ac_sim::report::{sig, Table};
use ac_sim::{TrialRunner, Workload};

fn main() {
    header(
        "E3",
        "Morris(a=1) has constant failure probability ([Fla85] Prop. 3 via §1.1)",
        "P(X outside [log2 N - C, log2 N + C]) is a constant for a = 1, not o(1); \
         a = Theta(1/log N) fixes this at the same Theta(log log N) space",
    );
    let trials = sized(50_000, 2_000);

    section("level concentration of Morris(1) across N");
    let mut table = Table::new(vec![
        "N",
        "P(|X - log2 N| > 1)",
        "P(|X - log2 N| > 2)",
        "P(|X - log2 N| > 3)",
    ]);
    let mut p1_by_n = Vec::new();
    for e in [12u32, 16, 20] {
        let n = 1u64 << e;
        let results = TrialRunner::new(Workload::fixed(n), trials)
            .with_seed(0xE3_00 + u64::from(e))
            .run(&MorrisCounter::classic());
        let mut exceed = [0u32; 3];
        for o in results.outcomes() {
            // level = log2(estimate + 1) for a = 1.
            let level = (o.estimate + 1.0).log2();
            let dev = (level - f64::from(e)).abs();
            for (c, slot) in exceed.iter_mut().enumerate() {
                if dev > (c + 1) as f64 {
                    *slot += 1;
                }
            }
        }
        let probs: Vec<f64> = exceed
            .iter()
            .map(|&x| f64::from(x) / trials as f64)
            .collect();
        p1_by_n.push(probs[0]);
        table.row(vec![
            format!("2^{e}"),
            sig(probs[0], 3),
            sig(probs[1], 3),
            sig(probs[2], 3),
        ]);
    }
    print!("{}", table.to_markdown());
    let spread = p1_by_n.iter().fold(f64::MIN, |m, &x| m.max(x))
        - p1_by_n.iter().fold(f64::MAX, |m, &x| m.min(x));
    println!(
        "\nP(dev > 1) across N: {:?} — flat in N (constant, not o(1))",
        p1_by_n.iter().map(|&x| sig(x, 2)).collect::<Vec<_>>()
    );

    section("the fix: a = 1/log2(N) at the same space scale");
    let e = 20u32;
    let n = 1u64 << e;
    let eps = 0.5;
    let mut table = Table::new(vec!["counter", "P(|N'-N| > N/2)", "peak bits (max)"]);
    let mut rates = Vec::new();
    for (label, a) in [("Morris(1)", 1.0), ("Morris(1/log2 N)", 1.0 / f64::from(e))] {
        let results = TrialRunner::new(Workload::fixed(n), trials)
            .with_seed(0xE3_AA)
            .run(&MorrisCounter::new(a).unwrap());
        let rate = results.failure_rate(eps);
        rates.push(rate);
        table.row(vec![
            label.to_string(),
            sig(rate, 3),
            format!("{}", results.peak_bits_summary().max()),
        ]);
    }
    print!("{}", table.to_markdown());

    let ok = p1_by_n.iter().all(|&p| p > 0.05) // constant failure for a=1
        && spread < 0.1 // flat in N
        && rates[0] > 0.05 // a=1 fails the eps=1/2 task at a constant rate
        && rates[1] < rates[0] / 20.0; // smaller base crushes the failure rate
    verdict(
        ok,
        &format!(
            "Morris(1) misses [log2 N +- 1] with constant probability ~{} at every N, \
             and fails eps=0.5 at rate {}; Morris(1/log2 N) fails at rate {} in \
             comparable space",
            sig(p1_by_n[0], 2),
            sig(rates[0], 2),
            sig(rates[1], 2)
        ),
    );
}
