//! **E13** — the four-layer engine pipeline end to end: a writer-API
//! shoot-out (raw apply vs the retired mutex+condvar queue vs the
//! lock-free per-producer rings vs producer-routed per-(producer, shard)
//! lanes, gated on rings >= legacy and routed >= pooled, with a
//! `burst_batches` sweep, a routed-vs-pooled checkpoint byte-identity
//! check, and the hot-key `fold_runs` fast path); multi-producer
//! ingest throughput with coalescing and bounded backpressure; a
//! mid-ingest freeze measured both ways (legacy `O(keys)` deep clone vs
//! the copy-on-write `O(shards)` epoch freeze, acceptance ≥ 10×);
//! snapshot queries served with zero writer contention while ingest keeps
//! running; a background checkpointer cutting a base + deltas chain on a
//! cadence without blocking the applier; checkpoint/restore through
//! `ac-bitio` whose on-disk size tracks `counter_state_bits` (within 2×
//! plus framing) and whose restore is bit-identical for every key; and a
//! delta checkpoint after dirtying ≤ 1 % of shards that costs ≤ 10 % of
//! the full checkpoint, chain-restored bit-identically with RNG streams
//! intact.
//!
//! Emits `BENCH_pipeline.json` via `--json` (uploaded by CI).

use ac_bench::{header, json::JsonObject, section, sized, verdict, write_json_report};
use ac_core::{ApproxCounter, NelsonYuCounter, NyParams, StateBits};
#[allow(deprecated)]
use ac_engine::LegacyIngestQueue;
use ac_engine::{
    checkpoint_delta, checkpoint_snapshot, restore_checkpoint, restore_checkpoint_chain,
    BackgroundCheckpointer, CheckpointCadence, CheckpointKind, CheckpointerConfig, CounterEngine,
    EngineConfig, EngineSnapshot, IngestConfig, IngestQueue,
};
use ac_randkit::{RandomSource, SplitMix64, Xoshiro256PlusPlus};
use ac_sim::report::Table;
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

const EPS: f64 = 0.2;
const DELTA_LOG2: u32 = 8;

fn engine_config() -> EngineConfig {
    EngineConfig::new().with_shards(32).with_seed(0xE13)
}

fn template() -> NelsonYuCounter {
    NelsonYuCounter::new(NyParams::new(EPS, DELTA_LOG2).unwrap())
}

/// The fleet workload: every key touched once, then the remaining budget
/// on hashed keys with small deltas, pre-split into per-producer slices.
fn producer_streams(keys: u64, events: u64, producers: u64) -> Vec<Vec<(u64, u64)>> {
    let mut streams: Vec<Vec<(u64, u64)>> = (0..producers).map(|_| Vec::new()).collect();
    for key in 0..keys {
        streams[(key % producers) as usize].push((key, 1));
    }
    let mut remaining = events - keys;
    let mut gen = SplitMix64::new(0x5EEDE13);
    let mut turn = 0usize;
    while remaining > 0 {
        let key = gen.next_u64() % keys;
        let delta = (1 + gen.next_u64() % 32).min(remaining);
        streams[turn % producers as usize].push((key, delta));
        turn += 1;
        remaining -= delta;
    }
    streams
}

/// Baseline for the ingest shoot-out: the same pairs applied straight to
/// the engine, no queue at all — the bound any ingest path chases.
fn run_raw_apply(streams: &[Vec<(u64, u64)>], expected_events: u64) -> f64 {
    let mut engine = CounterEngine::new(template(), engine_config());
    let start = Instant::now();
    for stream in streams {
        for chunk in stream.chunks(4096) {
            engine.apply(chunk);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(
        engine.total_events(),
        expected_events,
        "raw apply lost events"
    );
    expected_events as f64 / elapsed
}

/// The retired design: one global mutex+condvar queue, every producer
/// contending on the same lock, scoped thread-per-shard applier.
#[allow(deprecated)]
fn run_legacy_queue(streams: &[Vec<(u64, u64)>], expected_events: u64) -> f64 {
    let mut engine = CounterEngine::new(template(), engine_config());
    let queue = LegacyIngestQueue::new(IngestConfig::default());
    let start = Instant::now();
    let applied = thread::scope(|s| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let q = queue.clone();
                s.spawn(move || {
                    let mut p = q.producer();
                    for &(key, delta) in stream {
                        p.record(key, delta);
                    }
                })
            })
            .collect();
        s.spawn(|| {
            for h in handles {
                h.join().expect("producer thread");
            }
            queue.close();
        });
        queue.drain_parallel(&mut engine)
    });
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(applied, expected_events, "legacy queue lost events");
    expected_events as f64 / elapsed
}

/// The redesign: one lock-free SPSC ring per producer, doorbell parking,
/// persistent thread-per-shard applier pool (optionally folding repeated
/// keys within a drained burst into single `increment_by` calls).
fn run_ring_queue(
    streams: &[Vec<(u64, u64)>],
    expected_events: u64,
    fold_runs: bool,
) -> (f64, u64) {
    let mut engine = CounterEngine::new(template(), engine_config());
    let queue = IngestQueue::new(IngestConfig::default().with_fold_runs(fold_runs));
    let start = Instant::now();
    let applied = thread::scope(|s| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let q = queue.clone();
                s.spawn(move || {
                    let mut p = q.producer();
                    for &(key, delta) in stream {
                        p.record(key, delta);
                    }
                })
            })
            .collect();
        s.spawn(|| {
            for h in handles {
                h.join().expect("producer thread");
            }
            queue.close();
        });
        queue.drain_pooled(&mut engine)
    });
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(applied, expected_events, "ring queue lost events");
    (expected_events as f64 / elapsed, queue.stats().folded_pairs)
}

/// The tentpole: producer-side shard routing. Producers Lemire-route
/// every pair into per-(producer, shard) lanes at `send` time, each
/// persistent shard worker drains its own lane set directly, and the
/// dispatcher's re-hash-and-copy of every pair disappears — the drain
/// thread shrinks to a burst coordinator.
fn run_routed_queue(
    streams: &[Vec<(u64, u64)>],
    expected_events: u64,
    burst_batches: usize,
) -> f64 {
    let mut engine = CounterEngine::new(template(), engine_config());
    let queue = IngestQueue::new_routed(
        IngestConfig::default().with_burst_batches(burst_batches),
        engine.router(),
    );
    let start = Instant::now();
    let applied = thread::scope(|s| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let q = queue.clone();
                s.spawn(move || {
                    let mut p = q.producer();
                    for &(key, delta) in stream {
                        p.record(key, delta);
                    }
                })
            })
            .collect();
        s.spawn(|| {
            for h in handles {
                h.join().expect("producer thread");
            }
            queue.close();
        });
        queue.drain_routed(&mut engine)
    });
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(applied, expected_events, "routed queue lost events");
    expected_events as f64 / elapsed
}

/// The routed path's determinism gate, run inline on a single-producer
/// stream: pooled and routed drains must serialize to identical
/// checkpoint *bytes* (per-producer FIFO per shard + per-shard RNG
/// streams make the two applications the same state machine).
fn routed_checkpoint_matches_pooled(events: &[(u64, u64)]) -> bool {
    let drain = |routed: bool| {
        let mut engine = CounterEngine::new(template(), engine_config());
        let queue = if routed {
            IngestQueue::new_routed(IngestConfig::default(), engine.router())
        } else {
            IngestQueue::new(IngestConfig::default())
        };
        let mut p = queue.producer();
        for &(key, delta) in events {
            p.record(key, delta);
        }
        drop(p);
        queue.close();
        if routed {
            queue.drain_routed(&mut engine);
        } else {
            queue.drain_pooled(&mut engine);
        }
        checkpoint_snapshot(&engine.snapshot()).bytes().to_vec()
    };
    drain(false) == drain(true)
}

/// What the snapshot-serving thread measures while the applier writes.
struct QueryReport {
    frozen_events: u64,
    queries: u64,
    hits: u64,
    elapsed_s: f64,
    merged_estimate: f64,
}

fn main() {
    header(
        "E13",
        "ingest / snapshot / checkpoint pipeline",
        "the sharded engine absorbs a multi-producer stream through a bounded \
         coalescing queue, freezes mid-ingest replicas in O(shards) via \
         copy-on-write epochs (>=10x over the deep-clone freeze), checkpoints \
         a million keys at ~counter_state_bits with a background base+delta \
         chain writer, and restores bit-identically — deltas at O(dirty data)",
    );

    let keys = sized(1_000_000, 100_000) as u64;
    let events = sized(10_000_000, 1_000_000) as u64;
    let producers = 4u64;

    // ----- Part 0: the writer-API shoot-out -----------------------------
    section("shoot-out: raw apply vs legacy queue vs pooled rings vs routed lanes");
    let so_events = sized(4_000_000, 500_000) as u64;
    let so_keys = sized(200_000, 50_000) as u64;
    let so_streams = producer_streams(so_keys, so_events, producers);
    let raw_eps = run_raw_apply(&so_streams, so_events);
    let legacy_eps = run_legacy_queue(&so_streams, so_events);
    // The gated pooled-vs-routed comparison takes the best of three runs
    // per leg: on a loaded (or single-core CI) host one descheduled
    // burst can swing a single run by more than the true gap.
    let best = |f: &dyn Fn() -> f64| (0..3).map(|_| f()).fold(0.0f64, f64::max);
    let ring_eps = best(&|| run_ring_queue(&so_streams, so_events, false).0);

    // The routed lanes, with a burst_batches sweep around the default:
    // the knob trades burst-boundary hook latency (small bursts) against
    // coordination amortization (large bursts).
    let routed_b16_eps = run_routed_queue(&so_streams, so_events, 16);
    let routed_eps = best(&|| run_routed_queue(&so_streams, so_events, 64));
    let routed_b256_eps = run_routed_queue(&so_streams, so_events, 256);
    let routed_vs_pooled = routed_eps / ring_eps;
    let routed_beats_pooled = routed_eps >= ring_eps;
    let identity_stream = producer_streams(10_000, 100_000, 1);
    let routed_bytes_identical = routed_checkpoint_matches_pooled(&identity_stream[0]);

    // The batch-level fast path: a handful of hot keys recur in every
    // batch of a drained burst; `fold_runs` sorts each shard's burst and
    // pays one `increment_by` per key-run instead of one per pair.
    let hot_events = sized(2_000_000, 250_000) as u64;
    let hot_streams = producer_streams(64, hot_events, producers);
    let (hot_plain_eps, _) = run_ring_queue(&hot_streams, hot_events, false);
    let (hot_fold_eps, folded_pairs) = run_ring_queue(&hot_streams, hot_events, true);

    let ring_vs_legacy = ring_eps / legacy_eps;
    let raw_vs_ring = raw_eps / ring_eps;
    let within_2x = raw_vs_ring <= 2.0;
    let shootout_ok =
        ring_eps >= legacy_eps && folded_pairs > 0 && routed_beats_pooled && routed_bytes_identical;
    let meps = |v: f64| format!("{:.2} M events/s", v / 1e6);
    let mut table = Table::new(vec!["ingest path", "throughput", "vs raw apply"]);
    table.row(vec![
        "raw apply (no queue; upper bound)".into(),
        meps(raw_eps),
        "1.00x".into(),
    ]);
    table.row(vec![
        "legacy mutex+condvar queue (before)".into(),
        meps(legacy_eps),
        format!("{:.2}x", legacy_eps / raw_eps),
    ]);
    table.row(vec![
        "per-producer rings, pooled dispatch".into(),
        meps(ring_eps),
        format!("{:.2}x", ring_eps / raw_eps),
    ]);
    table.row(vec![
        "producer-routed shard lanes (after)".into(),
        meps(routed_eps),
        format!("{:.2}x", routed_eps / raw_eps),
    ]);
    table.row(vec![
        "routed, burst_batches=16".into(),
        meps(routed_b16_eps),
        "-".into(),
    ]);
    table.row(vec![
        "routed, burst_batches=256".into(),
        meps(routed_b256_eps),
        "-".into(),
    ]);
    table.row(vec![
        "rings, hot keys, fold off".into(),
        meps(hot_plain_eps),
        "-".into(),
    ]);
    table.row(vec![
        "rings, hot keys, fold_runs on".into(),
        meps(hot_fold_eps),
        "-".into(),
    ]);
    print!("{}", table.to_markdown());
    println!(
        "\n{so_events} events / {so_keys} keys / {producers} producers: rings are \
         {ring_vs_legacy:.2}x the legacy queue; routed lanes are {routed_vs_pooled:.2}x the \
         pooled dispatcher (dispatch copies per event: pooled 1, routed 0; checkpoint bytes \
         identical: {routed_bytes_identical}); raw apply is {raw_vs_ring:.2}x the ring \
         pipeline (target <=2x: {}). Hot-key fold elided {folded_pairs} pairs.",
        if within_2x { "met" } else { "missed" }
    );

    // ----- Part 1 + 2: ingest with a mid-stream snapshot reader ---------
    section("ingest: bounded multi-producer queue, coalesced batches");
    println!(
        "{keys} keys, {events} events, {producers} producers -> 1 parallel applier, \
         NelsonYu(eps={EPS}, delta=2^-{DELTA_LOG2}) cells\n"
    );
    let streams = producer_streams(keys, events, producers);
    let batch_pairs: u64 = streams.iter().map(|s| s.len() as u64).sum();
    // The background checkpointer: the applier hands it O(shards)
    // snapshots every `cadence` events; serialization happens off-thread.
    let cadence = events / 8;
    // Cap routed bursts (bounded in batches) at the cadence so the
    // burst-boundary hook (the mid-ingest publish + checkpoint submits
    // below) actually fires that often — on a single-core host the
    // applier can otherwise swallow the producers' whole backlog in one
    // burst.
    let mut engine = CounterEngine::new(template(), engine_config());
    let ingest_cfg = IngestConfig::default().with_burst_events(cadence);
    // Routed bursts are bounded in batches per producer, so convert the
    // event cadence through this workload's real batch weight: a full
    // coalesced batch carries batch_pairs distinct keys times the mean
    // delta (events / pre-coalescing pairs), not batch_pairs events.
    let events_per_batch = (events * ingest_cfg.batch_pairs as u64 / batch_pairs.max(1)).max(1);
    let cadence_batches = usize::try_from((cadence / (producers * events_per_batch)).max(1))
        .unwrap_or(usize::MAX)
        .min(ingest_cfg.burst_batches);
    let queue = IngestQueue::new_routed(
        ingest_cfg.with_burst_batches(cadence_batches),
        engine.router(),
    );
    let (snap_tx, snap_rx) = mpsc::channel::<EngineSnapshot<NelsonYuCounter>>();
    let checkpointer: BackgroundCheckpointer<NelsonYuCounter> = BackgroundCheckpointer::spawn(
        CheckpointerConfig::new()
            .with_every_events(cadence)
            .with_retain_bytes(false),
    );

    let ingest_start = Instant::now();
    let (applied, apply_s, deep_freeze_ns, cow_freeze_ns, query_report) = thread::scope(|s| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let q = queue.clone();
                s.spawn(move || {
                    let mut p = q.producer();
                    for &(key, delta) in stream {
                        p.record(key, delta);
                    }
                })
            })
            .collect();

        let engine_ref = &mut engine;
        let queue_ref = &queue;
        let ckpt_ref = &checkpointer;
        let applier = s.spawn(move || {
            let mut published = false;
            let mut deep_ns = 0u64;
            let mut cow_ns = 0u64;
            let mut ckpt_cadence = CheckpointCadence::new(cadence);
            let applied = queue_ref.drain_routed_with(engine_ref, |engine, applied| {
                if !published && applied >= events / 2 {
                    // The freeze shoot-out, at full mid-ingest scale: the
                    // legacy deep clone copies every counter; the CoW
                    // freeze bumps O(shards) Arcs. The deep replica is
                    // dropped immediately (it exists only to be timed);
                    // the CoW replica goes to the query thread, so the
                    // applier really does pay the copy-on-write splits
                    // for the rest of the run.
                    let t = Instant::now();
                    let deep = engine.snapshot_deep();
                    deep_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    drop(deep);
                    let t = Instant::now();
                    let snap = engine.snapshot();
                    cow_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    snap_tx.send(snap).expect("query thread alive");
                    published = true;
                }
                if ckpt_cadence.is_due(applied) {
                    // Snapshot-at-batch-boundary, handed to the writer
                    // thread: durability never blocks this applier (the
                    // same cadence policy drain_parallel_checkpointed
                    // uses, composed here with the mid-ingest publish).
                    ckpt_ref.submit(engine.snapshot());
                }
            });
            (
                applied,
                ingest_start.elapsed().as_secs_f64(),
                deep_ns,
                cow_ns,
            )
        });

        // The serving thread hammers the mid-ingest snapshot while the
        // applier keeps writing. Zero shared locks: the replica is
        // immutable; unwritten slabs are shared with the engine, written
        // ones split off copy-on-write.
        let query = s.spawn(move || {
            let snap = snap_rx.recv().expect("mid-ingest snapshot");
            let frozen_events = snap.total_events();
            let queries = 200_000u64;
            let mut gen = SplitMix64::new(0xE13A);
            let mut hits = 0u64;
            let start = Instant::now();
            for _ in 0..queries {
                if snap.estimate(gen.next_u64() % keys).is_some() {
                    hits += 1;
                }
            }
            let elapsed_s = start.elapsed().as_secs_f64();
            // The merged aggregate folds here, on the reader's time —
            // the freeze path never pays this O(keys) scan.
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xE135A9);
            let merged_estimate = snap.merged_total(&mut rng).unwrap().estimate();
            QueryReport {
                frozen_events,
                queries,
                hits,
                elapsed_s,
                merged_estimate,
            }
        });

        for h in handles {
            h.join().expect("producer thread");
        }
        queue.close();
        let (applied, apply_s, deep_ns, cow_ns) = applier.join().expect("applier thread");
        let query_report = query.join().expect("query thread");
        (applied, apply_s, deep_ns, cow_ns, query_report)
    });

    let ckpt_stats = checkpointer.stats();
    let ingest_stats = queue.stats();
    let stats = engine
        .stats()
        .with_ingest(&ingest_stats)
        .with_checkpointer(&ckpt_stats);
    let ingest_ok = applied == events
        && stats.events == events
        && stats.keys as u64 == keys
        && stats.dropped_batches == 0;
    let events_per_sec = events as f64 / apply_s;

    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["keys".into(), format!("{}", stats.keys)]);
    table.row(vec!["events".into(), format!("{}", stats.events)]);
    table.row(vec![
        "producer pairs".into(),
        format!("{batch_pairs} (pre-coalescing)"),
    ]);
    table.row(vec![
        "coalesced batches".into(),
        format!("{}", ingest_stats.enqueued_batches),
    ]);
    table.row(vec![
        "dropped batches".into(),
        format!("{}", stats.dropped_batches),
    ]);
    table.row(vec![
        "end-to-end wall time".into(),
        format!("{apply_s:.3} s"),
    ]);
    table.row(vec![
        "throughput".into(),
        format!("{:.1} M events/s", events_per_sec / 1e6),
    ]);
    table.row(vec![
        "counter state".into(),
        format!(
            "{} bits total ({:.1} bits/key)",
            stats.state_bits_total,
            stats.state_bits_total as f64 / stats.keys as f64
        ),
    ]);
    table.row(vec![
        "dirty shards (current epoch)".into(),
        format!("{}/{}", stats.dirty_shards, stats.shards),
    ]);
    table.row(vec![
        "last freeze".into(),
        format!("{} ns", stats.last_freeze_ns),
    ]);
    table.row(vec![
        "checkpoint lag".into(),
        format!(
            "{} events (mid-flight reading; durable frontier below)",
            stats.checkpoint_lag_events
        ),
    ]);
    print!("{}", table.to_markdown());

    // ----- Part 2: the freeze shoot-out ---------------------------------
    section("freeze: copy-on-write O(shards) vs legacy O(keys) deep clone");
    let freeze_speedup = deep_freeze_ns as f64 / cow_freeze_ns.max(1) as f64;
    let freeze_ok = freeze_speedup >= 10.0;
    println!(
        "mid-ingest freeze at ~{} keys: deep clone {:.3} ms vs CoW {:.1} us -> {:.0}x \
         (acceptance: >=10x)",
        keys,
        deep_freeze_ns as f64 / 1e6,
        cow_freeze_ns as f64 / 1e3,
        freeze_speedup
    );

    section("snapshot: queries served mid-ingest, zero writer contention");
    let q = &query_report;
    let per_query_ns = q.elapsed_s * 1e9 / q.queries as f64;
    let merged_rel = (q.merged_estimate - q.frozen_events as f64).abs() / q.frozen_events as f64;
    let snapshot_ok = q.hits > 0 && q.frozen_events < events && merged_rel <= 2.0 * EPS;
    println!(
        "snapshot frozen at {} events (mid-ingest); {} point queries in {:.3} s \
         ({:.0} ns/query, {:.1} M queries/s) while the applier kept writing",
        q.frozen_events,
        q.queries,
        q.elapsed_s,
        per_query_ns,
        q.queries as f64 / q.elapsed_s / 1e6
    );
    println!(
        "merged aggregate (folded on the reader thread): {:.3e} vs frozen exact {:.3e} \
         (rel err {:.4}, bound {})",
        q.merged_estimate,
        q.frozen_events as f64,
        merged_rel,
        2.0 * EPS
    );

    // ----- Part 3: the background checkpointer's chain ------------------
    section("background checkpointer: base + deltas cut on cadence, off-thread");
    let ckpt_probe = checkpointer.probe();
    let ckpt_report = checkpointer.finish();
    let frames = ckpt_report.records.len();
    let full_frames = ckpt_report
        .records
        .iter()
        .filter(|r| r.kind == CheckpointKind::Full)
        .count();
    let avg_write_s = if frames == 0 {
        0.0
    } else {
        ckpt_report
            .records
            .iter()
            .map(|r| r.write_seconds)
            .sum::<f64>()
            / frames as f64
    };
    let chain_bytes: u64 = ckpt_report.records.iter().map(|r| r.bytes_len).sum();
    // Once the writer thread has drained, the durable frontier is the
    // last frame's event count (the live `checkpoint_lag_events` above is
    // a mid-flight reading and can lag behind it).
    let final_lag_events = stats
        .events
        .saturating_sub(ckpt_report.records.last().map_or(0, |r| r.events));
    // Refold the engine stats against the drained writer: the Part 1
    // gauge was read while frames were still in flight, so the JSON must
    // report the durable frontier instead of the mid-flight snapshot.
    let durable_stats = engine
        .stats()
        .with_ingest(&ingest_stats)
        .with_checkpointer(&ckpt_probe.stats());
    let checkpointer_ok = frames >= 2 && full_frames >= 1 && ckpt_stats.submitted == frames as u64;
    let mut table = Table::new(vec![
        "frame",
        "kind",
        "events",
        "dirty shards",
        "bytes",
        "write",
    ]);
    for r in &ckpt_report.records {
        table.row(vec![
            format!("{}", r.seq),
            format!("{:?}", r.kind),
            format!("{}", r.events),
            format!("{}", r.shards_written),
            format!("{}", r.bytes_len),
            format!("{:.1} ms", r.write_seconds * 1e3),
        ]);
    }
    print!("{}", table.to_markdown());
    println!(
        "\n{frames} frames ({full_frames} full) on a {cadence}-event cadence: {chain_bytes} \
         bytes total, {:.1} ms avg serialize, all off the applier thread \
         (final durability lag {} events)",
        avg_write_s * 1e3,
        final_lag_events
    );

    // ----- Part 4: checkpoint size vs counter_state_bits ----------------
    section("checkpoint: ac-bitio serialization of the final snapshot");
    let final_snap = engine.snapshot();
    let ck_start = Instant::now();
    let ck = checkpoint_snapshot(&final_snap);
    let write_s = ck_start.elapsed().as_secs_f64();
    let cs = ck.stats();
    let path = std::env::temp_dir().join("ac_engine_pipeline_checkpoint.bin");
    std::fs::write(&path, ck.bytes()).expect("write checkpoint file");

    let size_bound_bits = 2 * cs.counter_state_bits + cs.header_bits;
    let checkpoint_ok =
        cs.total_bits <= size_bound_bits && cs.counter_state_bits == stats.state_bits_total;
    let mut table = Table::new(vec!["component", "bits", "per key"]);
    let per_key = |bits: u64| format!("{:.1}", bits as f64 / cs.keys as f64);
    table.row(vec![
        "counter states (encoded)".into(),
        format!("{}", cs.state_code_bits),
        per_key(cs.state_code_bits),
    ]);
    table.row(vec![
        "keys (rice gaps)".into(),
        format!("{}", cs.key_bits),
        per_key(cs.key_bits),
    ]);
    table.row(vec![
        "framing (header+sections)".into(),
        format!("{}", cs.header_bits),
        per_key(cs.header_bits),
    ]);
    table.row(vec![
        "total".into(),
        format!("{}", cs.total_bits),
        per_key(cs.total_bits),
    ]);
    table.row(vec![
        "live counter_state_bits".into(),
        format!("{}", cs.counter_state_bits),
        per_key(cs.counter_state_bits),
    ]);
    print!("{}", table.to_markdown());
    println!(
        "\n{} keys -> {} bytes on disk in {:.3} s ({:.2} bytes/key); bound: \
         2 x state_bits + framing = {} bits ({})",
        cs.keys,
        cs.bytes(),
        write_s,
        cs.bytes() as f64 / cs.keys as f64,
        size_bound_bits,
        if checkpoint_ok { "met" } else { "EXCEEDED" }
    );

    // ----- Part 5: restore, bit-identically -----------------------------
    section("restore: every key bit-identical, RNG stream continued");
    let bytes = std::fs::read(&path).expect("read checkpoint file");
    let rs_start = Instant::now();
    let restored = restore_checkpoint(&template(), &bytes).expect("restore");
    let restore_s = rs_start.elapsed().as_secs_f64();
    let mut mismatches = 0u64;
    for (key, counter) in engine.iter() {
        let back = restored.counter(key);
        if back.map(NelsonYuCounter::state_parts) != Some(counter.state_parts())
            || back.map(ApproxCounter::estimate) != Some(counter.estimate())
            || back.map(StateBits::state_bits) != Some(counter.state_bits())
        {
            mismatches += 1;
        }
    }
    let restore_ok = mismatches == 0
        && restored.len() == engine.len()
        && restored.total_events() == engine.total_events()
        && restored.config() == engine.config();
    println!(
        "restored {} keys from {} bytes in {restore_s:.3} s: {} state mismatches, \
         events {} vs {}",
        restored.len(),
        bytes.len(),
        mismatches,
        restored.total_events(),
        engine.total_events()
    );
    let _ = std::fs::remove_file(&path);

    // ----- Part 6: delta checkpoint at <=1% dirty shards ----------------
    section("delta checkpoint: O(dirty data) bytes, chain-restored bit-identically");
    let delta_shards = 256usize;
    let mut fleet = CounterEngine::new(
        template(),
        EngineConfig::new()
            .with_shards(delta_shards)
            .with_seed(0xE13D),
    );
    let fleet_batch: Vec<(u64, u64)> = (0..keys).map(|k| (k, 1 + k % 32)).collect();
    fleet.apply(&fleet_batch);
    let full_start = Instant::now();
    let base = checkpoint_snapshot(&fleet.snapshot());
    let full_write_s = full_start.elapsed().as_secs_f64();

    // Dirty at most 2 of 256 shards (0.78 %): touch only keys that route
    // to shards 0 and 1.
    let hot_keys: Vec<u64> = (0..keys)
        .filter(|&k| fleet.shard_of(k) < 2)
        .take(500)
        .collect();
    let hot_batch: Vec<(u64, u64)> = hot_keys.iter().map(|&k| (k, 100)).collect();
    fleet.apply(&hot_batch);
    let delta_start = Instant::now();
    let delta = checkpoint_delta(&fleet.snapshot(), &base.header()).expect("own lineage");
    let delta_write_s = delta_start.elapsed().as_secs_f64();

    let dirty = delta.stats().shards_written;
    let dirty_fraction = dirty as f64 / delta_shards as f64;
    let byte_ratio = delta.bytes().len() as f64 / base.bytes().len() as f64;

    // Chain restore must equal the live engine bit for bit — and keep
    // producing the same random stream afterwards.
    let mut via_chain =
        restore_checkpoint_chain(&template(), &[base.bytes(), delta.bytes()]).expect("chain");
    let mut chain_mismatches = 0u64;
    let follow_up: Vec<(u64, u64)> = (0..2_000u64).map(|k| (k * 17 % keys, 3 + k % 9)).collect();
    via_chain.apply(&follow_up);
    fleet.apply(&follow_up);
    for (key, counter) in fleet.iter() {
        if via_chain.counter(key).map(NelsonYuCounter::state_parts) != Some(counter.state_parts()) {
            chain_mismatches += 1;
        }
    }
    let delta_ok = dirty_fraction <= 0.01
        && byte_ratio <= 0.10
        && chain_mismatches == 0
        && via_chain.total_events() == fleet.total_events();
    println!(
        "{delta_shards}-shard fleet, {} keys: full checkpoint {} bytes ({:.3} s); after \
         touching {} keys in {dirty} shards ({:.2} % of shards), delta = {} bytes \
         ({:.2} % of full, {:.3} s) — chain restore + {} follow-up events: \
         {chain_mismatches} mismatches",
        keys,
        base.bytes().len(),
        full_write_s,
        hot_keys.len(),
        dirty_fraction * 100.0,
        delta.bytes().len(),
        byte_ratio * 100.0,
        delta_write_s,
        follow_up.len(),
    );

    // ----- Report -------------------------------------------------------
    let ok = shootout_ok
        && ingest_ok
        && freeze_ok
        && snapshot_ok
        && checkpointer_ok
        && checkpoint_ok
        && restore_ok
        && delta_ok;
    let report = JsonObject::new()
        .str("experiment", "E13")
        .str("title", "ingest / snapshot / checkpoint pipeline")
        .bool("quick", ac_bench::quick_mode())
        .obj(
            "shootout",
            JsonObject::new()
                .int("events", so_events)
                .int("keys", so_keys)
                .int("producers", producers)
                .num("raw_apply_events_per_second", raw_eps)
                .num("legacy_queue_events_per_second", legacy_eps)
                .num("ring_events_per_second", ring_eps)
                .num("routed_events_per_second", routed_eps)
                .num("routed_burst16_events_per_second", routed_b16_eps)
                .num("routed_burst64_events_per_second", routed_eps)
                .num("routed_burst256_events_per_second", routed_b256_eps)
                .num("routed_vs_pooled", routed_vs_pooled)
                .num("dispatch_copies_per_event_pooled", 1.0)
                .num("dispatch_copies_per_event_routed", 0.0)
                .bool("routed_beats_pooled", routed_beats_pooled)
                .bool("routed_checkpoint_bytes_identical", routed_bytes_identical)
                .num("ring_vs_legacy", ring_vs_legacy)
                .num("raw_vs_ring", raw_vs_ring)
                .bool("within_2x_of_raw", within_2x)
                .num("hot_key_events_per_second", hot_plain_eps)
                .num("hot_key_folded_events_per_second", hot_fold_eps)
                .int("folded_pairs", folded_pairs)
                .bool("ok", shootout_ok),
        )
        .obj(
            "ingest",
            JsonObject::new()
                .int("keys", keys)
                .int("events", events)
                .int("producers", producers)
                .int("producer_pairs", batch_pairs)
                .int("coalesced_batches", ingest_stats.enqueued_batches)
                .int("dropped_batches", stats.dropped_batches)
                .num("apply_seconds", apply_s)
                .num("events_per_second", events_per_sec)
                .int("state_bits_total", stats.state_bits_total)
                .num("bits_per_key", stats.bits_per_key())
                .int("dirty_shards", stats.dirty_shards as u64)
                .int("last_freeze_ns", stats.last_freeze_ns)
                .int("checkpoint_lag_events", durable_stats.checkpoint_lag_events)
                .int(
                    "checkpoint_lag_events_mid_flight",
                    stats.checkpoint_lag_events,
                )
                .bool("ok", ingest_ok),
        )
        .obj(
            "freeze",
            JsonObject::new()
                .int("deep_clone_ns", deep_freeze_ns)
                .int("cow_ns", cow_freeze_ns)
                .num("freeze_ns_per_snapshot_old", deep_freeze_ns as f64)
                .num("freeze_ns_per_snapshot_new", cow_freeze_ns as f64)
                .num("speedup", freeze_speedup)
                .bool("ok", freeze_ok),
        )
        .obj(
            "snapshot",
            JsonObject::new()
                .int("frozen_events", q.frozen_events)
                .int("queries", q.queries)
                .int("hits", q.hits)
                .num("query_seconds", q.elapsed_s)
                .num("ns_per_query", per_query_ns)
                .num("merged_estimate", q.merged_estimate)
                .num("merged_relative_error", merged_rel)
                .bool("ok", snapshot_ok),
        )
        .obj(
            "checkpointer",
            JsonObject::new()
                .int("cadence_events", cadence)
                .int("frames", frames as u64)
                .int("full_frames", full_frames as u64)
                .int("delta_frames", (frames - full_frames) as u64)
                .int("chain_bytes", chain_bytes)
                .num("avg_write_seconds", avg_write_s)
                .int("final_lag_events", final_lag_events)
                .bool("ok", checkpointer_ok),
        )
        .obj(
            "checkpoint",
            JsonObject::new()
                .int("keys", cs.keys)
                .int("bytes", cs.bytes())
                .int("total_bits", cs.total_bits)
                .int("state_code_bits", cs.state_code_bits)
                .int("key_bits", cs.key_bits)
                .int("header_bits", cs.header_bits)
                .int("counter_state_bits", cs.counter_state_bits)
                .int("size_bound_bits", size_bound_bits)
                .num("write_seconds", write_s)
                .bool("ok", checkpoint_ok),
        )
        .obj(
            "restore",
            JsonObject::new()
                .int("mismatches", mismatches)
                .num("restore_seconds", restore_s)
                .bool("ok", restore_ok),
        )
        .obj(
            "delta",
            JsonObject::new()
                .int("fleet_shards", delta_shards as u64)
                .int("dirty_shards", dirty as u64)
                .num("dirty_shard_fraction", dirty_fraction)
                .int("full_bytes", base.bytes().len() as u64)
                .int("delta_bytes", delta.bytes().len() as u64)
                .num("delta_to_full_ratio", byte_ratio)
                .num("full_write_seconds", full_write_s)
                .num("delta_write_seconds", delta_write_s)
                .int("chain_mismatches", chain_mismatches)
                .bool("ok", delta_ok),
        )
        .bool("reproduced", ok);
    write_json_report(&report);

    verdict(
        ok,
        "the lock-free rings beat the retired mutex queue, the producer-routed \
         shard lanes beat the pooled dispatcher with zero dispatch copies and \
         bit-identical checkpoints (and the hot-key \
         fold fires), multi-producer ingest is lossless and fast, the CoW \
         freeze beats the \
         deep clone >=10x, a mid-ingest snapshot serves queries without \
         touching the writers, the background checkpointer cuts a base+delta \
         chain off-thread, the checkpoint restores bit-identically at \
         ~counter_state_bits on disk, and a <=1%-dirty delta costs <=10% of \
         the full checkpoint with a bit-identical chain restore",
    );
    if !ok {
        std::process::exit(1);
    }
}
