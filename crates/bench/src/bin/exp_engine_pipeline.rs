//! **E13** — the four-layer engine pipeline end to end: multi-producer
//! ingest throughput with coalescing and bounded backpressure; snapshot
//! queries served with zero writer contention while ingest keeps running;
//! and checkpoint/restore through `ac-bitio` whose on-disk size tracks
//! `counter_state_bits` (within 2× plus framing) and whose restore is
//! bit-identical for every key.
//!
//! Emits `BENCH_pipeline.json` via `--json` (uploaded by CI).

use ac_bench::{header, json::JsonObject, section, sized, verdict, write_json_report};
use ac_core::{ApproxCounter, NelsonYuCounter, NyParams, StateBits};
use ac_engine::{
    checkpoint_snapshot, restore_checkpoint, CounterEngine, EngineConfig, EngineSnapshot,
    IngestConfig, IngestQueue,
};
use ac_randkit::{RandomSource, SplitMix64, Xoshiro256PlusPlus};
use ac_sim::report::Table;
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

const EPS: f64 = 0.2;
const DELTA_LOG2: u32 = 8;

fn engine_config() -> EngineConfig {
    EngineConfig {
        shards: 32,
        seed: 0xE13,
    }
}

fn template() -> NelsonYuCounter {
    NelsonYuCounter::new(NyParams::new(EPS, DELTA_LOG2).unwrap())
}

/// The fleet workload: every key touched once, then the remaining budget
/// on hashed keys with small deltas, pre-split into per-producer slices.
fn producer_streams(keys: u64, events: u64, producers: u64) -> Vec<Vec<(u64, u64)>> {
    let mut streams: Vec<Vec<(u64, u64)>> = (0..producers).map(|_| Vec::new()).collect();
    for key in 0..keys {
        streams[(key % producers) as usize].push((key, 1));
    }
    let mut remaining = events - keys;
    let mut gen = SplitMix64::new(0x5EEDE13);
    let mut turn = 0usize;
    while remaining > 0 {
        let key = gen.next_u64() % keys;
        let delta = (1 + gen.next_u64() % 32).min(remaining);
        streams[turn % producers as usize].push((key, delta));
        turn += 1;
        remaining -= delta;
    }
    streams
}

/// What the snapshot-serving thread measures while the applier writes.
struct QueryReport {
    frozen_events: u64,
    queries: u64,
    hits: u64,
    elapsed_s: f64,
    merged_estimate: f64,
}

fn main() {
    header(
        "E13",
        "ingest / snapshot / checkpoint pipeline",
        "the sharded engine absorbs a multi-producer stream through a bounded \
         coalescing queue, serves snapshot queries with zero writer contention \
         mid-ingest, and checkpoints a million keys at ~counter_state_bits \
         (restored bit-identically)",
    );

    let keys = sized(1_000_000, 100_000) as u64;
    let events = sized(10_000_000, 1_000_000) as u64;
    let producers = 4u64;

    // ----- Part 1 + 2: ingest with a mid-stream snapshot reader ---------
    section("ingest: bounded multi-producer queue, coalesced batches");
    println!(
        "{keys} keys, {events} events, {producers} producers -> 1 parallel applier, \
         NelsonYu(eps={EPS}, delta=2^-{DELTA_LOG2}) cells\n"
    );
    let streams = producer_streams(keys, events, producers);
    let batch_pairs: u64 = streams.iter().map(|s| s.len() as u64).sum();
    let queue = IngestQueue::new(IngestConfig::default());
    let mut engine = CounterEngine::new(template(), engine_config());
    let (snap_tx, snap_rx) = mpsc::channel::<EngineSnapshot<NelsonYuCounter>>();

    let ingest_start = Instant::now();
    let (applied, apply_s, query_report) = thread::scope(|s| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let q = queue.clone();
                s.spawn(move || {
                    let mut p = q.producer();
                    for &(key, delta) in stream {
                        p.record(key, delta);
                    }
                })
            })
            .collect();

        let engine_ref = &mut engine;
        let queue_ref = &queue;
        let applier = s.spawn(move || {
            let mut applied = 0u64;
            let mut published = false;
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xE135A9);
            while let Some(batch) = queue_ref.next_batch() {
                applied += batch.iter().map(|&(_, d)| d).sum::<u64>();
                engine_ref.apply_parallel(&batch);
                if !published && applied >= events / 2 {
                    // Freeze a replica mid-ingest and hand it to the
                    // query thread; writes continue immediately after.
                    snap_tx
                        .send(engine_ref.snapshot(&mut rng).unwrap())
                        .expect("query thread alive");
                    published = true;
                }
            }
            (applied, ingest_start.elapsed().as_secs_f64())
        });

        // The serving thread hammers the mid-ingest snapshot while the
        // applier keeps writing. Zero shared locks: the replica is
        // immutable and wholly owned.
        let query = s.spawn(move || {
            let snap = snap_rx.recv().expect("mid-ingest snapshot");
            let frozen_events = snap.total_events();
            let queries = 200_000u64;
            let mut gen = SplitMix64::new(0xE13A);
            let mut hits = 0u64;
            let start = Instant::now();
            for _ in 0..queries {
                if snap.estimate(gen.next_u64() % keys).is_some() {
                    hits += 1;
                }
            }
            let elapsed_s = start.elapsed().as_secs_f64();
            QueryReport {
                frozen_events,
                queries,
                hits,
                elapsed_s,
                merged_estimate: snap.merged_total().estimate(),
            }
        });

        for h in handles {
            h.join().expect("producer thread");
        }
        queue.close();
        let (applied, apply_s) = applier.join().expect("applier thread");
        let query_report = query.join().expect("query thread");
        (applied, apply_s, query_report)
    });

    let ingest_stats = queue.stats();
    let stats = engine.stats().with_ingest(&ingest_stats);
    let ingest_ok = applied == events
        && stats.events == events
        && stats.keys as u64 == keys
        && stats.dropped_batches == 0;
    let events_per_sec = events as f64 / apply_s;

    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["keys".into(), format!("{}", stats.keys)]);
    table.row(vec!["events".into(), format!("{}", stats.events)]);
    table.row(vec![
        "producer pairs".into(),
        format!("{batch_pairs} (pre-coalescing)"),
    ]);
    table.row(vec![
        "coalesced batches".into(),
        format!("{}", ingest_stats.enqueued_batches),
    ]);
    table.row(vec![
        "dropped batches".into(),
        format!("{}", stats.dropped_batches),
    ]);
    table.row(vec![
        "end-to-end wall time".into(),
        format!("{apply_s:.3} s"),
    ]);
    table.row(vec![
        "throughput".into(),
        format!("{:.1} M events/s", events_per_sec / 1e6),
    ]);
    table.row(vec![
        "counter state".into(),
        format!(
            "{} bits total ({:.1} bits/key)",
            stats.counter_state_bits,
            stats.counter_state_bits as f64 / stats.keys as f64
        ),
    ]);
    print!("{}", table.to_markdown());

    section("snapshot: queries served mid-ingest, zero writer contention");
    let q = &query_report;
    let per_query_ns = q.elapsed_s * 1e9 / q.queries as f64;
    let merged_rel = (q.merged_estimate - q.frozen_events as f64).abs() / q.frozen_events as f64;
    let snapshot_ok = q.hits > 0 && q.frozen_events < events && merged_rel <= 2.0 * EPS;
    println!(
        "snapshot frozen at {} events (mid-ingest); {} point queries in {:.3} s \
         ({:.0} ns/query, {:.1} M queries/s) while the applier kept writing",
        q.frozen_events,
        q.queries,
        q.elapsed_s,
        per_query_ns,
        q.queries as f64 / q.elapsed_s / 1e6
    );
    println!(
        "merged aggregate (one field read): {:.3e} vs frozen exact {:.3e} (rel err {:.4}, bound {})",
        q.merged_estimate,
        q.frozen_events as f64,
        merged_rel,
        2.0 * EPS
    );

    // ----- Part 3: checkpoint size vs counter_state_bits ----------------
    section("checkpoint: ac-bitio serialization of the final snapshot");
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xE13C4);
    let final_snap = engine.snapshot(&mut rng).unwrap();
    let ck_start = Instant::now();
    let ck = checkpoint_snapshot(&final_snap);
    let write_s = ck_start.elapsed().as_secs_f64();
    let cs = ck.stats();
    let path = std::env::temp_dir().join("ac_engine_pipeline_checkpoint.bin");
    std::fs::write(&path, ck.bytes()).expect("write checkpoint file");

    let size_bound_bits = 2 * cs.counter_state_bits + cs.header_bits;
    let checkpoint_ok =
        cs.total_bits <= size_bound_bits && cs.counter_state_bits == stats.counter_state_bits;
    let mut table = Table::new(vec!["component", "bits", "per key"]);
    let per_key = |bits: u64| format!("{:.1}", bits as f64 / cs.keys as f64);
    table.row(vec![
        "counter states (encoded)".into(),
        format!("{}", cs.state_code_bits),
        per_key(cs.state_code_bits),
    ]);
    table.row(vec![
        "keys (rice gaps)".into(),
        format!("{}", cs.key_bits),
        per_key(cs.key_bits),
    ]);
    table.row(vec![
        "framing (header+sections)".into(),
        format!("{}", cs.header_bits),
        per_key(cs.header_bits),
    ]);
    table.row(vec![
        "total".into(),
        format!("{}", cs.total_bits),
        per_key(cs.total_bits),
    ]);
    table.row(vec![
        "live counter_state_bits".into(),
        format!("{}", cs.counter_state_bits),
        per_key(cs.counter_state_bits),
    ]);
    print!("{}", table.to_markdown());
    println!(
        "\n{} keys -> {} bytes on disk in {:.3} s ({:.2} bytes/key); bound: \
         2 x state_bits + framing = {} bits ({})",
        cs.keys,
        cs.bytes(),
        write_s,
        cs.bytes() as f64 / cs.keys as f64,
        size_bound_bits,
        if checkpoint_ok { "met" } else { "EXCEEDED" }
    );

    // ----- Part 4: restore, bit-identically -----------------------------
    section("restore: every key bit-identical, RNG stream continued");
    let bytes = std::fs::read(&path).expect("read checkpoint file");
    let rs_start = Instant::now();
    let restored = restore_checkpoint(&template(), &bytes).expect("restore");
    let restore_s = rs_start.elapsed().as_secs_f64();
    let mut mismatches = 0u64;
    for (key, counter) in engine.iter() {
        let back = restored.counter(key);
        if back.map(NelsonYuCounter::state_parts) != Some(counter.state_parts())
            || back.map(ApproxCounter::estimate) != Some(counter.estimate())
            || back.map(StateBits::state_bits) != Some(counter.state_bits())
        {
            mismatches += 1;
        }
    }
    let restore_ok = mismatches == 0
        && restored.len() == engine.len()
        && restored.total_events() == engine.total_events()
        && restored.config() == engine.config();
    println!(
        "restored {} keys from {} bytes in {restore_s:.3} s: {} state mismatches, \
         events {} vs {}",
        restored.len(),
        bytes.len(),
        mismatches,
        restored.total_events(),
        engine.total_events()
    );
    let _ = std::fs::remove_file(&path);

    // ----- Report -------------------------------------------------------
    let ok = ingest_ok && snapshot_ok && checkpoint_ok && restore_ok;
    let report = JsonObject::new()
        .str("experiment", "E13")
        .str("title", "ingest / snapshot / checkpoint pipeline")
        .bool("quick", ac_bench::quick_mode())
        .obj(
            "ingest",
            JsonObject::new()
                .int("keys", keys)
                .int("events", events)
                .int("producers", producers)
                .int("producer_pairs", batch_pairs)
                .int("coalesced_batches", ingest_stats.enqueued_batches)
                .int("dropped_batches", stats.dropped_batches)
                .num("apply_seconds", apply_s)
                .num("events_per_second", events_per_sec)
                .int("counter_state_bits", stats.counter_state_bits)
                .bool("ok", ingest_ok),
        )
        .obj(
            "snapshot",
            JsonObject::new()
                .int("frozen_events", q.frozen_events)
                .int("queries", q.queries)
                .int("hits", q.hits)
                .num("query_seconds", q.elapsed_s)
                .num("ns_per_query", per_query_ns)
                .num("merged_estimate", q.merged_estimate)
                .num("merged_relative_error", merged_rel)
                .bool("ok", snapshot_ok),
        )
        .obj(
            "checkpoint",
            JsonObject::new()
                .int("keys", cs.keys)
                .int("bytes", cs.bytes())
                .int("total_bits", cs.total_bits)
                .int("state_code_bits", cs.state_code_bits)
                .int("key_bits", cs.key_bits)
                .int("header_bits", cs.header_bits)
                .int("counter_state_bits", cs.counter_state_bits)
                .int("size_bound_bits", size_bound_bits)
                .num("write_seconds", write_s)
                .bool("ok", checkpoint_ok),
        )
        .obj(
            "restore",
            JsonObject::new()
                .int("mismatches", mismatches)
                .num("restore_seconds", restore_s)
                .bool("ok", restore_ok),
        )
        .bool("reproduced", ok);
    write_json_report(&report);

    verdict(
        ok,
        "multi-producer ingest is lossless and fast, a mid-ingest snapshot \
         serves queries without touching the writers, and the checkpoint \
         restores bit-identically at ~counter_state_bits on disk",
    );
    if !ok {
        std::process::exit(1);
    }
}
