//! Criterion microbenchmarks for the `ac-randkit` substrate: generator
//! and sampler throughput (the inner loop of every experiment).

use ac_randkit::{
    Bernoulli, BernoulliPow2, Binomial, Geometric, RandomSource, SplitMix64, Xoshiro256PlusPlus,
    Zipf,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.throughput(Throughput::Elements(1));

    group.bench_function("xoshiro256pp_next_u64", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    group.bench_function("splitmix64_next_u64", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    group.bench_function("next_f64", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        b.iter(|| black_box(rng.next_f64()));
    });
    group.bench_function("next_below_1000", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        b.iter(|| black_box(rng.next_below(1_000)));
    });
    group.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("distribution");
    group.throughput(Throughput::Elements(1));
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);

    let bern = Bernoulli::new(0.3).unwrap();
    group.bench_function("bernoulli", |b| b.iter(|| black_box(bern.sample(&mut rng))));

    let pow2 = BernoulliPow2::new(10);
    group.bench_function("bernoulli_pow2_t10", |b| {
        b.iter(|| black_box(pow2.sample(&mut rng)))
    });

    let geo = Geometric::new(0.01).unwrap();
    group.bench_function("geometric_p0.01", |b| {
        b.iter(|| black_box(geo.sample(&mut rng)))
    });

    let binv = Binomial::new(100, 0.05).unwrap(); // BINV regime
    group.bench_function("binomial_binv", |b| {
        b.iter(|| black_box(binv.sample(&mut rng)))
    });

    let btpe = Binomial::new(1 << 20, 0.3).unwrap(); // BTPE regime
    group.bench_function("binomial_btpe", |b| {
        b.iter(|| black_box(btpe.sample(&mut rng)))
    });

    let zipf = Zipf::new(1_000_000, 1.0).unwrap();
    group.bench_function("zipf_1e6_alias", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_distributions);
criterion_main!(benches);
