//! Criterion microbenchmarks: per-increment and bulk throughput of every
//! counter, plus query cost.
//!
//! These are the numbers behind the paper's practical motivation: an
//! analytics system updating millions of counters cares about both bits
//! *and* nanoseconds per increment.

use ac_core::{
    ApproxCounter, CsurosCounter, ExactCounter, MorrisCounter, MorrisPlus, NelsonYuCounter,
    NyParams,
};
use ac_randkit::Xoshiro256PlusPlus;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn bench_single_increment(c: &mut Criterion) {
    let mut group = c.benchmark_group("increment");
    group.throughput(Throughput::Elements(1));

    macro_rules! bench_counter {
        ($name:literal, $make:expr) => {
            group.bench_function($name, |b| {
                let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
                let mut counter = $make;
                // Pre-warm so the counter sits in its steady state (low
                // advance probability) rather than the deterministic head.
                counter.increment_by(1_000_000, &mut rng);
                b.iter(|| {
                    counter.increment(&mut rng);
                    black_box(&counter);
                });
            });
        };
    }

    bench_counter!("exact", ExactCounter::new());
    bench_counter!("morris_classic", MorrisCounter::classic());
    bench_counter!("morris_a1e-3", MorrisCounter::new(1e-3).unwrap());
    bench_counter!("morris_plus", MorrisPlus::new(0.1, 10).unwrap());
    bench_counter!("csuros_d8", CsurosCounter::new(8).unwrap());
    bench_counter!(
        "nelson_yu_eps0.1",
        NelsonYuCounter::new(NyParams::new(0.1, 10).unwrap())
    );
    group.finish();
}

fn bench_bulk_fast_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("increment_by_1e6");
    group.throughput(Throughput::Elements(1_000_000));
    group.sample_size(20);

    macro_rules! bench_counter {
        ($name:literal, $make:expr) => {
            group.bench_function($name, |b| {
                let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
                b.iter_batched(
                    || $make,
                    |mut counter| {
                        counter.increment_by(1_000_000, &mut rng);
                        black_box(counter.estimate())
                    },
                    BatchSize::SmallInput,
                );
            });
        };
    }

    bench_counter!("exact", ExactCounter::new());
    bench_counter!("morris_classic", MorrisCounter::classic());
    bench_counter!("morris_a1e-3", MorrisCounter::new(1e-3).unwrap());
    bench_counter!("morris_plus", MorrisPlus::new(0.1, 10).unwrap());
    bench_counter!("csuros_d8", CsurosCounter::new(8).unwrap());
    bench_counter!(
        "nelson_yu_eps0.1",
        NelsonYuCounter::new(NyParams::new(0.1, 10).unwrap())
    );
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate");
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);

    let mut morris = MorrisCounter::new(1e-3).unwrap();
    morris.increment_by(1_000_000, &mut rng);
    group.bench_function("morris", |b| b.iter(|| black_box(morris.estimate())));

    let mut ny = NelsonYuCounter::new(NyParams::new(0.1, 10).unwrap());
    ny.increment_by(1_000_000, &mut rng);
    group.bench_function("nelson_yu", |b| b.iter(|| black_box(ny.estimate())));

    let mut cs = CsurosCounter::new(8).unwrap();
    cs.increment_by(1_000_000, &mut rng);
    group.bench_function("csuros", |b| b.iter(|| black_box(cs.estimate())));
    group.finish();
}

criterion_group!(
    benches,
    bench_single_increment,
    bench_bulk_fast_forward,
    bench_query
);
criterion_main!(benches);
