//! Criterion microbenchmarks for merging (Remark 2.4) and counter-array
//! packing — the operations behind distributed deployments.

use ac_core::{ApproxCounter, MorrisCounter, NelsonYuCounter, NyParams};
use ac_randkit::Xoshiro256PlusPlus;
use ac_streams::CounterArray;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    group.sample_size(30);

    let p = NyParams::new(0.2, 10).unwrap();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
    let mut a = NelsonYuCounter::new(p);
    a.increment_by(500_000, &mut rng);
    let mut b2 = NelsonYuCounter::new(p);
    b2.increment_by(300_000, &mut rng);

    group.bench_function("nelson_yu_500k_300k", |bch| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        bch.iter_batched(
            || a.clone(),
            |mut merged| {
                merged.merge_from(&b2, &mut rng).unwrap();
                black_box(merged.estimate())
            },
            BatchSize::SmallInput,
        );
    });

    let mut m1 = MorrisCounter::new(0.01).unwrap();
    m1.increment_by(500_000, &mut rng);
    let mut m2 = MorrisCounter::new(0.01).unwrap();
    m2.increment_by(300_000, &mut rng);
    group.bench_function("morris_500k_300k", |bch| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        bch.iter_batched(
            || m1.clone(),
            |mut merged| {
                merged.merge_from(&m2, &mut rng).unwrap();
                black_box(merged.estimate())
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack");
    group.sample_size(30);
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);

    let mut array = CounterArray::new(&MorrisCounter::new(0.05).unwrap(), 10_000);
    for k in 0..10_000 {
        array.increment_by(k, 1 + (k as u64 * 37) % 100_000, &mut rng);
    }
    group.bench_function("pack_10k_morris", |b| {
        b.iter(|| black_box(array.pack().len()))
    });

    let packed = array.pack();
    group.bench_function("unpack_10k_morris", |b| {
        b.iter(|| {
            let restored =
                CounterArray::unpack(&MorrisCounter::new(0.05).unwrap(), 10_000, &packed);
            black_box(restored.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_merge, bench_pack);
criterion_main!(benches);
