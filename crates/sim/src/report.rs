//! Markdown and CSV table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple column-oriented table that renders to GitHub-flavored
/// markdown or CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders as a GitHub-flavored markdown table with aligned columns.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(out, " {cell:<w$} |");
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{:-<width$}|", "", width = w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (naive quoting: cells containing commas or quotes
    /// are double-quoted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let mut render = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        render(&self.headers);
        for row in &self.rows {
            render(row);
        }
        out
    }
}

/// Formats a float with `digits` significant digits, trimming noise —
/// the standard cell format in experiment reports.
#[must_use]
pub fn sig(x: f64, digits: usize) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    let magnitude = x.abs().log10().floor() as i32;
    let decimals = (digits as i32 - 1 - magnitude).max(0) as usize;
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = Table::new(vec!["algo", "bits"]);
        t.row(vec!["morris", "17"]);
        t.row(vec!["nelson-yu", "17"]);
        let md = t.to_markdown();
        assert!(md.contains("| algo      | bits |"));
        assert!(md.contains("|-----------|------|"));
        assert!(md.contains("| morris    | 17   |"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn csv_renders_and_quotes() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["plain", "with,comma"]);
        t.row(vec!["quote\"d", "x"]);
        let csv = t.to_csv();
        assert!(csv.contains("plain,\"with,comma\""));
        assert!(csv.contains("\"quote\"\"d\",x"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn sig_formats_sensibly() {
        assert_eq!(sig(0.0, 3), "0");
        assert_eq!(sig(1234.6, 3), "1235"); // rounds at integer scale
        assert_eq!(sig(0.02371, 3), "0.0237");
        assert_eq!(sig(-0.5, 2), "-0.50");
        assert_eq!(sig(f64::INFINITY, 3), "inf");
    }
}
