//! Trial workloads: how many increments a trial performs, and — for the
//! engine-scale experiments — *which key* each increment lands on.

use ac_randkit::{mix64, DistError, RandomSource, UniformU64, Zipf};

/// The per-trial increment count distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Every trial performs exactly `n` increments.
    Fixed(
        /// The increment count.
        u64,
    ),
    /// Each trial draws `N` uniformly from `[lo, hi]` (inclusive) — the
    /// Figure 1 workload is `Uniform(500000, 999999)`.
    Uniform {
        /// Smallest count (inclusive).
        lo: u64,
        /// Largest count (inclusive).
        hi: u64,
    },
}

impl Workload {
    /// Every trial performs exactly `n` increments.
    #[must_use]
    pub fn fixed(n: u64) -> Self {
        Workload::Fixed(n)
    }

    /// Per-trial `N ~ Uniform[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn uniform(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "empty workload range");
        Workload::Uniform { lo, hi }
    }

    /// The Figure 1 workload: "pick a uniformly random integer
    /// `N ∈ [500000, 999999]` (thus a 20-bit number)".
    #[must_use]
    pub fn figure1() -> Self {
        Workload::Uniform {
            lo: 500_000,
            hi: 999_999,
        }
    }

    /// Draws this trial's increment count.
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            Workload::Fixed(n) => n,
            Workload::Uniform { lo, hi } => UniformU64::new(lo, hi)
                .expect("validated at construction")
                .sample(rng),
        }
    }

    /// The largest count this workload can produce (for planners).
    #[must_use]
    pub fn max_n(&self) -> u64 {
        match *self {
            Workload::Fixed(n) => n,
            Workload::Uniform { hi, .. } => hi,
        }
    }
}

/// A Zipf-popular **keyed** workload: each event's key is drawn by rank
/// popularity `P[rank] ∝ rank^{-s}` (via [`Zipf`]'s exact alias table)
/// and mapped to an opaque stable key id through the bijective
/// [`mix64`] finalizer — so hot keys are scattered across the `u64` key
/// space instead of clustering at small integers, and a keyed engine's
/// shard routing cannot accidentally correlate with popularity rank.
///
/// Distinct ranks always map to distinct keys (`mix64` is a bijection),
/// so [`ZipfKeys::key_of_rank`] both generates the stream and names the
/// ground-truth hot set when measuring per-key error.
#[derive(Debug, Clone)]
pub struct ZipfKeys {
    zipf: Zipf,
    salt: u64,
}

impl ZipfKeys {
    /// A workload over `keys` distinct keys with exponent `s`, scattered
    /// with `salt` (two workloads with different salts share no key ids).
    ///
    /// # Errors
    ///
    /// Propagates [`Zipf::new`]'s validation: `keys` must be in
    /// `1..=u32::MAX` and `s` finite and non-negative.
    pub fn new(keys: u64, s: f64, salt: u64) -> Result<Self, DistError> {
        Ok(Self {
            zipf: Zipf::new(keys, s)?,
            salt,
        })
    }

    /// Number of distinct keys.
    #[must_use]
    pub fn keys(&self) -> u64 {
        self.zipf.n()
    }

    /// The Zipf exponent `s`.
    #[must_use]
    pub fn s(&self) -> f64 {
        self.zipf.s()
    }

    /// The rank distribution itself (for exact pmf queries).
    #[must_use]
    pub fn rank_dist(&self) -> &Zipf {
        &self.zipf
    }

    /// The stable key id of popularity rank `rank` (1-based, rank 1
    /// hottest).
    #[must_use]
    pub fn key_of_rank(&self, rank: u64) -> u64 {
        mix64(self.salt ^ rank)
    }

    /// Draws one event's popularity rank in `{1, …, keys}`.
    #[inline]
    pub fn sample_rank<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        self.zipf.sample(rng)
    }

    /// Draws one event's key id.
    #[inline]
    pub fn sample_key<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        self.key_of_rank(self.sample_rank(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_randkit::Xoshiro256PlusPlus;

    #[test]
    fn fixed_always_returns_n() {
        let w = Workload::fixed(42);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(w.sample(&mut rng), 42);
        }
        assert_eq!(w.max_n(), 42);
    }

    #[test]
    fn uniform_stays_in_range() {
        let w = Workload::uniform(10, 20);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for _ in 0..1_000 {
            let n = w.sample(&mut rng);
            assert!((10..=20).contains(&n));
        }
        assert_eq!(w.max_n(), 20);
    }

    #[test]
    fn figure1_matches_paper() {
        let w = Workload::figure1();
        assert_eq!(w.max_n(), 999_999);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let n = w.sample(&mut rng);
        assert!((500_000..=999_999).contains(&n));
    }

    #[test]
    #[should_panic(expected = "empty workload range")]
    fn rejects_inverted_range() {
        let _ = Workload::uniform(5, 4);
    }

    #[test]
    fn zipf_keys_rejects_bad_params() {
        assert!(ZipfKeys::new(0, 1.1, 7).is_err());
        assert!(ZipfKeys::new(100, -0.5, 7).is_err());
    }

    #[test]
    fn zipf_keys_ranks_map_to_distinct_stable_ids() {
        let w = ZipfKeys::new(10_000, 1.1, 0xE14).unwrap();
        let ids: std::collections::HashSet<u64> =
            (1..=w.keys()).map(|r| w.key_of_rank(r)).collect();
        assert_eq!(ids.len(), 10_000, "mix64 is a bijection: no collisions");
        // Stable: the same rank always names the same key.
        assert_eq!(w.key_of_rank(1), w.key_of_rank(1));
        // Different salts shear the mapping.
        let other = ZipfKeys::new(10_000, 1.1, 0xBEEF).unwrap();
        assert_ne!(w.key_of_rank(1), other.key_of_rank(1));
    }

    #[test]
    fn zipf_keys_samples_live_in_the_declared_id_set() {
        let w = ZipfKeys::new(500, 1.1, 3).unwrap();
        let ids: std::collections::HashSet<u64> =
            (1..=w.keys()).map(|r| w.key_of_rank(r)).collect();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        for _ in 0..5_000 {
            assert!(ids.contains(&w.sample_key(&mut rng)));
        }
    }

    #[test]
    fn zipf_keys_rank_one_dominates() {
        let w = ZipfKeys::new(1_000, 1.1, 9).unwrap();
        let hot = w.key_of_rank(1);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let n = 100_000;
        let hits = (0..n).filter(|_| w.sample_key(&mut rng) == hot).count();
        let p1 = w.rank_dist().pmf(1);
        let freq = hits as f64 / f64::from(n);
        assert!((freq - p1).abs() < 0.01, "freq={freq}, pmf={p1}");
    }
}
