//! Trial workloads: how many increments a trial performs.

use ac_randkit::{RandomSource, UniformU64};

/// The per-trial increment count distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Every trial performs exactly `n` increments.
    Fixed(
        /// The increment count.
        u64,
    ),
    /// Each trial draws `N` uniformly from `[lo, hi]` (inclusive) — the
    /// Figure 1 workload is `Uniform(500000, 999999)`.
    Uniform {
        /// Smallest count (inclusive).
        lo: u64,
        /// Largest count (inclusive).
        hi: u64,
    },
}

impl Workload {
    /// Every trial performs exactly `n` increments.
    #[must_use]
    pub fn fixed(n: u64) -> Self {
        Workload::Fixed(n)
    }

    /// Per-trial `N ~ Uniform[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn uniform(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "empty workload range");
        Workload::Uniform { lo, hi }
    }

    /// The Figure 1 workload: "pick a uniformly random integer
    /// `N ∈ [500000, 999999]` (thus a 20-bit number)".
    #[must_use]
    pub fn figure1() -> Self {
        Workload::Uniform {
            lo: 500_000,
            hi: 999_999,
        }
    }

    /// Draws this trial's increment count.
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            Workload::Fixed(n) => n,
            Workload::Uniform { lo, hi } => UniformU64::new(lo, hi)
                .expect("validated at construction")
                .sample(rng),
        }
    }

    /// The largest count this workload can produce (for planners).
    #[must_use]
    pub fn max_n(&self) -> u64 {
        match *self {
            Workload::Fixed(n) => n,
            Workload::Uniform { hi, .. } => hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_randkit::Xoshiro256PlusPlus;

    #[test]
    fn fixed_always_returns_n() {
        let w = Workload::fixed(42);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(w.sample(&mut rng), 42);
        }
        assert_eq!(w.max_n(), 42);
    }

    #[test]
    fn uniform_stays_in_range() {
        let w = Workload::uniform(10, 20);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for _ in 0..1_000 {
            let n = w.sample(&mut rng);
            assert!((10..=20).contains(&n));
        }
        assert_eq!(w.max_n(), 20);
    }

    #[test]
    fn figure1_matches_paper() {
        let w = Workload::figure1();
        assert_eq!(w.max_n(), 999_999);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let n = w.sample(&mut rng);
        assert!((500_000..=999_999).contains(&n));
    }

    #[test]
    #[should_panic(expected = "empty workload range")]
    fn rejects_inverted_range() {
        let _ = Workload::uniform(5, 4);
    }
}
