//! Terminal ASCII charts — every "figure" in this reproduction renders
//! in plain text.

/// A named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The points, in any order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }
}

/// Plot symbols assigned to series in order.
const SYMBOLS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Renders series onto a `width × height` character grid with axis
/// annotations and a legend. Returns a multi-line string.
///
/// # Panics
///
/// Panics if no series has any finite point, or dimensions are tiny.
#[must_use]
pub fn ascii_chart(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    let finite: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    assert!(!finite.is_empty(), "nothing to plot");

    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &finite {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Degenerate ranges widen symmetrically so the points land mid-chart.
    if x_min == x_max {
        x_min -= 0.5;
        x_max += 0.5;
    }
    if y_min == y_max {
        y_min -= 0.5;
        y_max += 0.5;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let symbol = SYMBOLS[si % SYMBOLS.len()];
        for &(x, y) in &s.points {
            if !(x.is_finite() && y.is_finite()) {
                continue;
            }
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            // Later series overwrite earlier ones at collisions; that is
            // visible in the legend ordering.
            grid[row][col] = symbol;
        }
    }

    let mut out = String::new();
    let y_label_w = 10;
    for (r, row) in grid.iter().enumerate() {
        let y_val = y_max - (y_max - y_min) * r as f64 / (height - 1) as f64;
        let label = if r == 0 || r == height - 1 || r == height / 2 {
            format!("{y_val:>9.3} ")
        } else {
            " ".repeat(y_label_w)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(y_label_w));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&" ".repeat(y_label_w + 1));
    let x_lo = format!("{x_min:.3}");
    let x_hi = format!("{x_max:.3}");
    let pad = width.saturating_sub(x_lo.len() + x_hi.len());
    out.push_str(&x_lo);
    out.push_str(&" ".repeat(pad));
    out.push_str(&x_hi);
    out.push('\n');
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{}  {} {}\n",
            " ".repeat(y_label_w),
            SYMBOLS[si % SYMBOLS.len()],
            s.label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_single_series() {
        let s = Series::new("line", (0..20).map(|i| (i as f64, i as f64)).collect());
        let chart = ascii_chart(&[s], 40, 10);
        assert!(chart.contains('*'));
        assert!(chart.contains("line"));
        assert!(chart.contains("0.000"));
        assert!(chart.contains("19.000"));
    }

    #[test]
    fn renders_two_series_with_distinct_symbols() {
        let a = Series::new("A", vec![(0.0, 0.0), (1.0, 1.0)]);
        let b = Series::new("B", vec![(0.0, 1.0), (1.0, 0.0)]);
        let chart = ascii_chart(&[a, b], 30, 8);
        assert!(chart.contains('*') && chart.contains('o'));
        assert!(chart.contains("A") && chart.contains("B"));
    }

    #[test]
    fn handles_constant_series() {
        let s = Series::new("flat", vec![(0.0, 5.0), (10.0, 5.0)]);
        let chart = ascii_chart(&[s], 30, 6);
        assert!(chart.contains('*'));
    }

    #[test]
    fn skips_non_finite_points() {
        let s = Series::new(
            "gappy",
            vec![
                (0.0, 1.0),
                (f64::NAN, 2.0),
                (2.0, f64::INFINITY),
                (3.0, 2.0),
            ],
        );
        let chart = ascii_chart(&[s], 30, 6);
        assert!(chart.contains('*'));
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn rejects_all_nan() {
        let s = Series::new("bad", vec![(f64::NAN, f64::NAN)]);
        let _ = ascii_chart(&[s], 30, 6);
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn rejects_tiny_grid() {
        let s = Series::new("x", vec![(0.0, 0.0)]);
        let _ = ascii_chart(&[s], 5, 2);
    }
}
