//! Trial outcomes and their aggregation.

use ac_stats::{Ecdf, Summary};

/// The outcome of one trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialOutcome {
    /// The true increment count of this trial.
    pub n: u64,
    /// The counter's estimate at the end of the trial.
    pub estimate: f64,
    /// State bits at the end of the trial.
    pub final_bits: u64,
    /// Memory high-water mark over the trial.
    pub peak_bits: u64,
}

impl TrialOutcome {
    /// Signed relative error `(N̂ − N)/N` (0 for `n = 0`).
    #[must_use]
    pub fn rel_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.estimate - self.n as f64) / self.n as f64
        }
    }

    /// Absolute relative error `|N̂ − N|/N`.
    #[must_use]
    pub fn abs_rel_error(&self) -> f64 {
        self.rel_error().abs()
    }
}

/// The outcomes of a batch of independent trials.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrialResults {
    outcomes: Vec<TrialOutcome>,
}

impl TrialResults {
    /// Wraps a vector of outcomes.
    #[must_use]
    pub fn new(outcomes: Vec<TrialOutcome>) -> Self {
        Self { outcomes }
    }

    /// Number of trials.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True when no trials were run.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// The raw outcomes.
    #[must_use]
    pub fn outcomes(&self) -> &[TrialOutcome] {
        &self.outcomes
    }

    /// Absolute relative errors, one per trial.
    #[must_use]
    pub fn abs_rel_errors(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(TrialOutcome::abs_rel_error)
            .collect()
    }

    /// Signed relative errors, one per trial.
    #[must_use]
    pub fn rel_errors(&self) -> Vec<f64> {
        self.outcomes.iter().map(TrialOutcome::rel_error).collect()
    }

    /// Estimates, one per trial.
    #[must_use]
    pub fn estimates(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.estimate).collect()
    }

    /// Peak state bits, one per trial.
    #[must_use]
    pub fn peak_bits(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.peak_bits as f64).collect()
    }

    /// Fraction of trials with `|N̂ − N| > ε·N` — the paper's failure
    /// event, Eq. (1).
    #[must_use]
    pub fn failure_rate(&self, eps: f64) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let failures = self
            .outcomes
            .iter()
            .filter(|o| o.abs_rel_error() > eps)
            .count();
        failures as f64 / self.outcomes.len() as f64
    }

    /// Number of trials with `|N̂ − N| > ε·N`.
    #[must_use]
    pub fn failures(&self, eps: f64) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| o.abs_rel_error() > eps)
            .count() as u64
    }

    /// ECDF of the absolute relative errors — the Figure 1 curve.
    ///
    /// # Panics
    ///
    /// Panics when no trials were run.
    #[must_use]
    pub fn error_ecdf(&self) -> Ecdf {
        Ecdf::new(self.abs_rel_errors())
    }

    /// Summary of signed relative errors (bias check).
    #[must_use]
    pub fn rel_error_summary(&self) -> Summary {
        Summary::from_slice(&self.rel_errors())
    }

    /// Summary of peak state bits (space-theorem check).
    #[must_use]
    pub fn peak_bits_summary(&self) -> Summary {
        Summary::from_slice(&self.peak_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(n: u64, estimate: f64) -> TrialOutcome {
        TrialOutcome {
            n,
            estimate,
            final_bits: 5,
            peak_bits: 6,
        }
    }

    #[test]
    fn rel_error_signs() {
        assert_eq!(outcome(100, 110.0).rel_error(), 0.10);
        assert_eq!(outcome(100, 90.0).rel_error(), -0.10);
        assert_eq!(outcome(0, 0.0).rel_error(), 0.0);
        assert_eq!(outcome(100, 90.0).abs_rel_error(), 0.10);
    }

    #[test]
    fn failure_rate_counts_exceedances() {
        let r = TrialResults::new(vec![
            outcome(100, 100.0),
            outcome(100, 120.0),
            outcome(100, 95.0),
            outcome(100, 70.0),
        ]);
        assert_eq!(r.failure_rate(0.10), 0.5); // 120 and 70 fail
        assert_eq!(r.failures(0.10), 2);
        assert_eq!(r.failure_rate(0.5), 0.0);
        assert!(TrialResults::default().failure_rate(0.1) == 0.0);
    }

    #[test]
    fn ecdf_max_is_worst_error() {
        let r = TrialResults::new(vec![
            outcome(100, 101.0),
            outcome(100, 99.0),
            outcome(100, 102.37),
        ]);
        let e = r.error_ecdf();
        assert!((e.max() - 0.0237).abs() < 1e-12);
    }

    #[test]
    fn summaries_aggregate() {
        let r = TrialResults::new(vec![outcome(100, 110.0), outcome(100, 90.0)]);
        let s = r.rel_error_summary();
        assert!((s.mean() - 0.0).abs() < 1e-12, "unbiased sample");
        let p = r.peak_bits_summary();
        assert_eq!(p.mean(), 6.0);
    }
}
