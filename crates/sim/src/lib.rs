//! # `ac-sim` — the experiment harness
//!
//! Turns counters plus workloads into the numbers the paper reports:
//!
//! * [`Workload`] — how many increments a trial performs (Figure 1 uses
//!   `Uniform[500000, 999999]`); [`ZipfKeys`] — *which key* each event
//!   lands on in the engine-scale keyed workloads (heavy-tailed rank
//!   popularity, scattered stable key ids).
//! * [`TrialRunner`] — runs `m` independent trials, in parallel across
//!   threads, with bit-reproducible per-trial seeds derived from a master
//!   seed via [`ac_randkit::trial_seed`]; collects estimates, relative
//!   errors and memory high-water marks.
//! * [`report`] — markdown/CSV tables for `EXPERIMENTS.md`.
//! * [`plot`] — terminal ASCII charts, so every "figure" renders in CI
//!   logs.
//!
//! ```
//! use ac_core::{MorrisCounter};
//! use ac_sim::{ExecutionMode, TrialRunner, Workload};
//!
//! let runner = TrialRunner::new(Workload::fixed(100_000), 200)
//!     .with_seed(7)
//!     .with_mode(ExecutionMode::FastForward);
//! let results = runner.run(&MorrisCounter::classic());
//! assert_eq!(results.len(), 200);
//! // Base-2 Morris: typical relative error is large but finite.
//! assert!(results.abs_rel_errors().iter().all(|e| e.is_finite()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plot;
pub mod report;
mod results;
mod runner;
mod workload;

pub use results::{TrialOutcome, TrialResults};
pub use runner::{ExecutionMode, TrialRunner};
pub use workload::{Workload, ZipfKeys};
