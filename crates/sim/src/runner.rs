//! The parallel trial runner.

use crate::{TrialOutcome, TrialResults, Workload};
use ac_core::ApproxCounter;
use ac_randkit::{trial_seed, Xoshiro256PlusPlus};

/// Whether trials step one increment at a time or use the counters'
/// transition-count-proportional fast-forward.
///
/// The two modes produce identically *distributed* outcomes (verified by
/// KS tests in `ac-core`); fast-forward is orders of magnitude faster for
/// large `N` and is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Use [`ApproxCounter::increment_by`].
    #[default]
    FastForward,
    /// Call [`ApproxCounter::increment`] `N` times (for validation runs).
    StepByStep,
}

/// Runs batches of independent counter trials.
///
/// Each trial `i` uses its own generator seeded with
/// `trial_seed(master_seed, i)`, so results are bit-reproducible
/// regardless of thread count or scheduling.
#[derive(Debug, Clone)]
pub struct TrialRunner {
    workload: Workload,
    trials: usize,
    master_seed: u64,
    mode: ExecutionMode,
    threads: usize,
}

impl TrialRunner {
    /// Creates a runner for `trials` independent trials of `workload`.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    #[must_use]
    pub fn new(workload: Workload, trials: usize) -> Self {
        assert!(trials > 0, "need at least one trial");
        Self {
            workload,
            trials,
            master_seed: 0xACC0_FFEE,
            mode: ExecutionMode::FastForward,
            threads: std::thread::available_parallelism().map_or(1, usize::from),
        }
    }

    /// Sets the master seed (default: a fixed constant, so runs are
    /// reproducible out of the box).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Sets the execution mode.
    #[must_use]
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Caps the number of worker threads (default: all available).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// The workload.
    #[must_use]
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Runs all trials of `template` (cloned and reset per trial) and
    /// collects the outcomes in trial-index order.
    ///
    /// Trial `i`'s outcome depends only on `(master_seed, i)`, so the
    /// result is byte-identical for any thread count.
    #[must_use]
    pub fn run<C>(&self, template: &C) -> TrialResults
    where
        C: ApproxCounter + Clone + Send + Sync,
    {
        let threads = self.threads.min(self.trials).max(1);
        let mut outcomes: Vec<Option<TrialOutcome>> = vec![None; self.trials];
        let base = self.trials / threads;
        let extra = self.trials % threads;
        std::thread::scope(|scope| {
            let mut rest: &mut [Option<TrialOutcome>] = &mut outcomes;
            let mut offset = 0usize;
            for w in 0..threads {
                let take = base + usize::from(w < extra);
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let start = offset;
                offset += take;
                let runner = &*self;
                scope.spawn(move || {
                    for (j, slot) in head.iter_mut().enumerate() {
                        *slot = Some(runner.run_one(template, (start + j) as u64));
                    }
                });
            }
        });
        TrialResults::new(
            outcomes
                .into_iter()
                .map(|o| o.expect("every slot filled"))
                .collect(),
        )
    }

    /// Runs a single trial (used by `run` and directly by tests).
    #[must_use]
    pub fn run_one<C>(&self, template: &C, trial_index: u64) -> TrialOutcome
    where
        C: ApproxCounter + Clone,
    {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(trial_seed(self.master_seed, trial_index));
        let mut counter = template.clone();
        counter.reset();
        let n = self.workload.sample(&mut rng);
        match self.mode {
            ExecutionMode::FastForward => counter.increment_by(n, &mut rng),
            ExecutionMode::StepByStep => {
                for _ in 0..n {
                    counter.increment(&mut rng);
                }
            }
        }
        TrialOutcome {
            n,
            estimate: counter.estimate(),
            final_bits: counter.state_bits(),
            peak_bits: counter.peak_state_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::{ExactCounter, MorrisCounter};

    #[test]
    fn exact_counter_trials_have_zero_error() {
        let runner = TrialRunner::new(Workload::fixed(12_345), 8).with_seed(1);
        let results = runner.run(&ExactCounter::new());
        assert_eq!(results.len(), 8);
        for o in results.outcomes() {
            assert_eq!(o.n, 12_345);
            assert_eq!(o.estimate, 12_345.0);
            assert_eq!(o.abs_rel_error(), 0.0);
        }
    }

    #[test]
    fn results_are_reproducible_across_thread_counts() {
        let template = MorrisCounter::classic();
        let base = TrialRunner::new(Workload::figure1(), 64).with_seed(42);
        let one = base.clone().with_threads(1).run(&template);
        let many = base.with_threads(8).run(&template);
        assert_eq!(one, many, "seeding must make threading invisible");
    }

    #[test]
    fn different_seeds_differ() {
        let template = MorrisCounter::classic();
        let a = TrialRunner::new(Workload::fixed(10_000), 16)
            .with_seed(1)
            .run(&template);
        let b = TrialRunner::new(Workload::fixed(10_000), 16)
            .with_seed(2)
            .run(&template);
        assert_ne!(a, b);
    }

    #[test]
    fn step_mode_matches_fast_forward_for_exact_counter() {
        let runner = TrialRunner::new(Workload::fixed(500), 4).with_seed(3);
        let ff = runner.clone().with_mode(ExecutionMode::FastForward);
        let step = runner.with_mode(ExecutionMode::StepByStep);
        // The exact counter is deterministic, so the outcomes agree
        // exactly (for randomized counters they agree in distribution;
        // that is tested in ac-core).
        assert_eq!(ff.run(&ExactCounter::new()), step.run(&ExactCounter::new()));
    }

    #[test]
    fn uniform_workload_varies_n() {
        let runner = TrialRunner::new(Workload::figure1(), 32).with_seed(4);
        let results = runner.run(&ExactCounter::new());
        let distinct: std::collections::HashSet<u64> =
            results.outcomes().iter().map(|o| o.n).collect();
        assert!(distinct.len() > 16, "N should vary across trials");
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let runner = TrialRunner::new(Workload::fixed(10), 3)
            .with_seed(5)
            .with_threads(64);
        let results = runner.run(&ExactCounter::new());
        assert_eq!(results.len(), 3);
    }
}
