//! The [`StateCodec`] trait: bit-exact, self-delimiting counter state
//! serialization — the contract the `ac-engine` checkpoint layer (and the
//! `ac-streams` packed arrays) build on.
//!
//! The paper's thesis is that counter *state* is a handful of bits; this
//! trait makes persistence honor that. Every family encodes exactly its
//! persistent registers (Remark 2.2's storage model: program constants
//! like `ε`, `a`, `d` are *not* state and are never written) with the
//! Elias/Golomb codes from [`ac_bitio::codes`], so a million checkpointed
//! counters really cost on the order of their summed
//! [`StateBits::state_bits`](ac_bitio::StateBits::state_bits) — not a
//! million fixed-width records.
//!
//! Decoding is template-driven: the decoder is an already-constructed
//! counter whose parameter schedule supplies everything the bits leave
//! implicit. [`StateCodec::params_fingerprint`] lets containers verify up
//! front that writer and reader agree on that schedule — the `ac-engine`
//! checkpoint embeds it in its versioned header and refuses mismatched
//! restores.
//!
//! | family | encoded state |
//! |--------|---------------|
//! | `exact` | `N` (δ) |
//! | `morris` | level `X` (δ) |
//! | `morris+` | prefix (δ), level `X` (δ) |
//! | `nelson-yu` | `X − X₀` (δ), `Y` (δ), `t` (γ) |
//! | `csuros-float` | register `x` (δ) |

use crate::{
    ApproxCounter, CoreError, CsurosCounter, ExactCounter, MorrisCounter, MorrisPlus,
    NelsonYuCounter,
};
use ac_bitio::codes::{
    decode_delta0, decode_gamma0, delta_len, encode_delta0, encode_gamma0, gamma_len,
};
use ac_bitio::{BitReader, BitWriter};

/// Bit-exact state serialization for a counter family.
///
/// Implementations must uphold:
///
/// * **round trip** — `decode_state` over `encode_state`'s output, under a
///   template with the same parameters, yields a counter with identical
///   persistent state (same estimate, same `state_bits`, equal observable
///   registers);
/// * **self-delimitation** — `encode_state` writes exactly
///   [`StateCodec::encoded_state_bits`] bits and `decode_state` consumes
///   exactly that many, so states can be streamed back to back;
/// * **fingerprint discipline** — two counters share a
///   [`StateCodec::params_fingerprint`] iff their encoded states are
///   mutually decodable.
///
/// Decoders *validate*: a bit pattern that no reachable counter state
/// produces (a level above the register cap, `Y` above its epoch
/// threshold, …) returns [`CoreError::InvalidState`] instead of a
/// corrupted counter. Truncated input — fewer bits than one codeword —
/// panics like the underlying [`ac_bitio::codes`] decoders; containers
/// are expected to length-check their frames first (see
/// [`ac_bitio::frame`]).
pub trait StateCodec: ApproxCounter + Sized {
    /// A 64-bit digest of the family and its parameter schedule (the
    /// program constants). Equal fingerprints ⇔ interchangeable encodings.
    fn params_fingerprint(&self) -> u64;

    /// Appends the counter's persistent state to `w`.
    fn encode_state(&self, w: &mut BitWriter<'_>);

    /// Decodes one state written by [`StateCodec::encode_state`] under
    /// the same schedule, with `self` as the template. The template's own
    /// registers are ignored; only its parameters matter.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidState`] for well-formed bit strings
    /// that violate the schedule's invariants.
    fn decode_state(&self, r: &mut BitReader<'_>) -> Result<Self, CoreError>;

    /// The exact number of bits [`StateCodec::encode_state`] writes for
    /// the current state.
    fn encoded_state_bits(&self) -> u64;
}

/// Order-sensitive fold of parameter words into one fingerprint, built on
/// the canonical [`ac_randkit::mix64`] finalizer. The first word is the
/// family tag, so distinct families never collide even on identical
/// parameter lists.
fn fingerprint(parts: &[u64]) -> u64 {
    let mut acc = 0x5EED_C0DE_0DEC_0DE5u64;
    for &p in parts {
        acc = ac_randkit::mix64(acc ^ p);
    }
    acc
}

/// Encodes an optional register cap as two words (presence, value), so
/// `None` can never collide with a real cap value.
fn cap_parts(cap: Option<u64>) -> [u64; 2] {
    match cap {
        Some(v) => [1, v],
        None => [0, 0],
    }
}

impl StateCodec for ExactCounter {
    fn params_fingerprint(&self) -> u64 {
        fingerprint(&[0x01])
    }

    fn encode_state(&self, w: &mut BitWriter<'_>) {
        encode_delta0(w, self.count());
    }

    fn decode_state(&self, r: &mut BitReader<'_>) -> Result<Self, CoreError> {
        let n = decode_delta0(r);
        let mut c = ExactCounter::new();
        // Replaying n exact increments costs O(1): the register is n.
        c.increment_by(n, &mut NullSource);
        Ok(c)
    }

    fn encoded_state_bits(&self) -> u64 {
        u64::from(delta_len(self.count() + 1))
    }
}

/// The exact counter consumes no randomness; feed its decode replay a
/// source that proves it (panics if sampled).
struct NullSource;

impl ac_randkit::RandomSource for NullSource {
    fn next_u64(&mut self) -> u64 {
        unreachable!("exact counter decode must not draw randomness")
    }
}

impl StateCodec for MorrisCounter {
    fn params_fingerprint(&self) -> u64 {
        let cap = cap_parts(self.cap());
        fingerprint(&[0x02, self.a().to_bits(), cap[0], cap[1]])
    }

    fn encode_state(&self, w: &mut BitWriter<'_>) {
        encode_delta0(w, self.level());
    }

    fn decode_state(&self, r: &mut BitReader<'_>) -> Result<Self, CoreError> {
        let x = decode_delta0(r);
        if self.cap().is_some_and(|cap| x > cap) {
            return Err(CoreError::InvalidState {
                what: "Morris level above register cap",
            });
        }
        let mut c = self.clone();
        c.reset();
        c.set_level(x);
        Ok(c)
    }

    fn encoded_state_bits(&self) -> u64 {
        u64::from(delta_len(self.level() + 1))
    }
}

impl StateCodec for MorrisPlus {
    fn params_fingerprint(&self) -> u64 {
        fingerprint(&[0x03, self.a().to_bits(), self.cutoff()])
    }

    fn encode_state(&self, w: &mut BitWriter<'_>) {
        encode_delta0(w, self.prefix());
        encode_delta0(w, self.morris().level());
    }

    fn decode_state(&self, r: &mut BitReader<'_>) -> Result<Self, CoreError> {
        let prefix = decode_delta0(r);
        let level = decode_delta0(r);
        if prefix > self.cutoff() + 1 {
            return Err(CoreError::InvalidState {
                what: "Morris+ prefix beyond its saturation point",
            });
        }
        let mut c = self.clone();
        c.reset();
        c.restore_parts(prefix, level);
        Ok(c)
    }

    fn encoded_state_bits(&self) -> u64 {
        u64::from(delta_len(self.prefix() + 1)) + u64::from(delta_len(self.morris().level() + 1))
    }
}

impl StateCodec for NelsonYuCounter {
    fn params_fingerprint(&self) -> u64 {
        let p = self.params();
        fingerprint(&[
            0x04,
            p.eps().to_bits(),
            u64::from(p.delta_log2()),
            p.c().to_bits(),
        ])
    }

    fn encode_state(&self, w: &mut BitWriter<'_>) {
        let (x, y, t) = self.state_parts();
        // X is stored relative to X₀ (absolute level implied by the
        // schedule); t is tiny, γ-coded; Y δ-coded.
        encode_delta0(w, x - self.params().x0());
        encode_delta0(w, y);
        encode_gamma0(w, u64::from(t));
    }

    fn decode_state(&self, r: &mut BitReader<'_>) -> Result<Self, CoreError> {
        let dx = decode_delta0(r);
        let y = decode_delta0(r);
        let t = decode_gamma0(r);
        let t = u32::try_from(t).map_err(|_| CoreError::InvalidState {
            what: "sampling exponent does not fit u32",
        })?;
        let x = self
            .params()
            .x0()
            .checked_add(dx)
            .ok_or(CoreError::InvalidState {
                what: "level overflows u64",
            })?;
        let mut c = NelsonYuCounter::new(*self.params());
        c.try_restore_parts(x, y, t)?;
        Ok(c)
    }

    fn encoded_state_bits(&self) -> u64 {
        let (x, y, t) = self.state_parts();
        u64::from(delta_len(x - self.params().x0() + 1))
            + u64::from(delta_len(y + 1))
            + u64::from(gamma_len(u64::from(t) + 1))
    }
}

impl StateCodec for CsurosCounter {
    fn params_fingerprint(&self) -> u64 {
        let cap = cap_parts(self.cap());
        fingerprint(&[0x05, u64::from(self.mantissa_bits()), cap[0], cap[1]])
    }

    fn encode_state(&self, w: &mut BitWriter<'_>) {
        encode_delta0(w, self.register());
    }

    fn decode_state(&self, r: &mut BitReader<'_>) -> Result<Self, CoreError> {
        let x = decode_delta0(r);
        if self.cap().is_some_and(|cap| x > cap) {
            return Err(CoreError::InvalidState {
                what: "Csűrös register above cap",
            });
        }
        let mut c = self.clone();
        c.reset();
        c.set_register(x);
        Ok(c)
    }

    fn encoded_state_bits(&self) -> u64 {
        u64::from(delta_len(self.register() + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NyParams;
    use ac_bitio::{BitVec, StateBits};
    use ac_randkit::Xoshiro256PlusPlus;

    /// Encodes `original`, decodes through `template`, and checks the
    /// round-trip contract: exact bit accounting, identical estimate and
    /// state bits.
    fn round_trip<C: StateCodec>(original: &C, template: &C) -> C {
        assert_eq!(
            original.params_fingerprint(),
            template.params_fingerprint(),
            "test setup: template must share the schedule"
        );
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            original.encode_state(&mut w);
        }
        assert_eq!(v.len(), original.encoded_state_bits(), "length accounting");
        let mut r = BitReader::new(&v);
        let decoded = template.decode_state(&mut r).expect("valid state");
        assert_eq!(r.remaining(), 0, "all bits consumed");
        assert_eq!(original.estimate(), decoded.estimate(), "estimate");
        assert_eq!(original.state_bits(), decoded.state_bits(), "state bits");
        decoded
    }

    #[test]
    fn exact_round_trips() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for n in [0u64, 1, 1_000, u64::MAX / 2] {
            let mut c = ExactCounter::new();
            c.increment_by(n, &mut rng);
            let back = round_trip(&c, &ExactCounter::new());
            assert_eq!(back.count(), n);
        }
    }

    #[test]
    fn morris_round_trips_including_caps() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut c = MorrisCounter::new(0.25).unwrap();
        c.increment_by(100_000, &mut rng);
        round_trip(&c, &MorrisCounter::new(0.25).unwrap());

        let mut c = MorrisCounter::with_cap(1.0, 12).unwrap();
        c.increment_by(1 << 20, &mut rng);
        let back = round_trip(&c, &MorrisCounter::with_cap(1.0, 12).unwrap());
        assert!(back.saturated());
    }

    #[test]
    fn morris_plus_round_trips_across_the_cutoff() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for n in [0u64, 50, 5_000, 300_000] {
            let mut c = MorrisPlus::new(0.2, 8).unwrap();
            c.increment_by(n, &mut rng);
            let back = round_trip(&c, &MorrisPlus::new(0.2, 8).unwrap());
            assert_eq!(back.prefix(), c.prefix());
            assert_eq!(back.in_exact_regime(), c.in_exact_regime());
        }
    }

    #[test]
    fn nelson_yu_round_trips_across_epochs() {
        let p = NyParams::new(0.2, 10).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        for n in [0u64, 5, 1_000, 500_000] {
            let mut c = NelsonYuCounter::new(p);
            c.increment_by(n, &mut rng);
            let back = round_trip(&c, &NelsonYuCounter::new(p));
            assert_eq!(back.state_parts(), c.state_parts());
        }
    }

    #[test]
    fn csuros_round_trips() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut c = CsurosCounter::new(8).unwrap();
        c.increment_by(123_456, &mut rng);
        round_trip(&c, &CsurosCounter::new(8).unwrap());
    }

    #[test]
    fn encoded_size_tracks_state_bits() {
        // The raison d'être: encoding costs ~state_bits, not a fixed
        // record. A counter holding a million increments must encode in
        // well under a machine word.
        let p = NyParams::new(0.1, 10).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut c = NelsonYuCounter::new(p);
        c.increment_by(1_000_000, &mut rng);
        assert!(
            c.encoded_state_bits() <= 2 * c.state_bits() + 16,
            "encoded {} vs state {}",
            c.encoded_state_bits(),
            c.state_bits()
        );
        assert!(c.encoded_state_bits() < 64);
    }

    #[test]
    fn fingerprints_separate_families_and_parameters() {
        let p1 = NyParams::new(0.1, 10).unwrap();
        let p2 = NyParams::new(0.2, 10).unwrap();
        let fps = [
            ExactCounter::new().params_fingerprint(),
            MorrisCounter::new(0.5).unwrap().params_fingerprint(),
            MorrisCounter::new(0.25).unwrap().params_fingerprint(),
            MorrisCounter::with_cap(0.5, 17)
                .unwrap()
                .params_fingerprint(),
            MorrisPlus::with_base(0.5).unwrap().params_fingerprint(),
            NelsonYuCounter::new(p1).params_fingerprint(),
            NelsonYuCounter::new(p2).params_fingerprint(),
            CsurosCounter::new(8).unwrap().params_fingerprint(),
            CsurosCounter::new(9).unwrap().params_fingerprint(),
            CsurosCounter::with_cap(8, 100)
                .unwrap()
                .params_fingerprint(),
        ];
        for (i, a) in fps.iter().enumerate() {
            for (j, b) in fps.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "fingerprint collision between {i} and {j}");
                }
            }
        }
        // And stability across equal constructions.
        assert_eq!(
            MorrisCounter::new(0.5).unwrap().params_fingerprint(),
            MorrisCounter::new(0.5).unwrap().params_fingerprint()
        );
    }

    #[test]
    fn decode_rejects_unreachable_states() {
        // Morris: level above the cap.
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            encode_delta0(&mut w, 100);
        }
        let template = MorrisCounter::with_cap(1.0, 10).unwrap();
        assert!(matches!(
            template.decode_state(&mut BitReader::new(&v)),
            Err(CoreError::InvalidState { .. })
        ));

        // Nelson–Yu: Y far above any epoch threshold.
        let p = NyParams::new(0.2, 8).unwrap();
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            encode_delta0(&mut w, 0); // dx
            encode_delta0(&mut w, u64::MAX / 4); // absurd Y
            encode_gamma0(&mut w, 0); // t
        }
        let template = NelsonYuCounter::new(p);
        assert!(matches!(
            template.decode_state(&mut BitReader::new(&v)),
            Err(CoreError::InvalidState { .. })
        ));

        // Morris+: prefix beyond saturation.
        let template = MorrisPlus::with_base_and_cutoff(0.5, 100).unwrap();
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            encode_delta0(&mut w, 500); // prefix > cutoff + 1
            encode_delta0(&mut w, 3);
        }
        assert!(matches!(
            template.decode_state(&mut BitReader::new(&v)),
            Err(CoreError::InvalidState { .. })
        ));
    }

    #[test]
    fn states_stream_back_to_back() {
        // Self-delimitation: many states in one bit vector, no separators.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let template = MorrisCounter::new(0.1).unwrap();
        let counters: Vec<MorrisCounter> = (0..50)
            .map(|i| {
                let mut c = template.clone();
                c.increment_by(i * 997, &mut rng);
                c
            })
            .collect();
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            for c in &counters {
                c.encode_state(&mut w);
            }
        }
        let mut r = BitReader::new(&v);
        for c in &counters {
            let back = template.decode_state(&mut r).unwrap();
            assert_eq!(back.level(), c.level());
        }
        assert_eq!(r.remaining(), 0);
    }
}
