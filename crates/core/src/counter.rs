//! The [`ApproxCounter`] and [`Mergeable`] traits.

use crate::CoreError;
use ac_bitio::StateBits;
use ac_randkit::RandomSource;

/// A (possibly randomized) counter supporting increments and approximate
/// queries — the abstract object whose space complexity the paper pins
/// down.
///
/// The trait is object safe; heterogeneous collections of counters (as in
/// the Figure 1 harness, which runs several algorithms side by side) can
/// hold `Box<dyn ApproxCounter>`.
///
/// # Memory model
///
/// [`StateBits::state_bits`] (a supertrait requirement) reports the bits of
/// *persistent program state* under the storage model of the paper's
/// Remark 2.2: program constants (`ε`, `Δ`, the universal constant `C`, the
/// Morris base `a`) live in the transition function, not in state; `O(log
/// N)`-bit scratch registers during an update are free; only the
/// registers that survive between operations are charged.
pub trait ApproxCounter: StateBits {
    /// A short stable identifier, e.g. `"morris"`, `"nelson-yu"`.
    fn name(&self) -> &'static str;

    /// Processes one increment (`N ← N + 1`).
    fn increment(&mut self, rng: &mut dyn RandomSource);

    /// Processes `n` increments, with a state distribution identical to
    /// calling [`ApproxCounter::increment`] `n` times.
    ///
    /// Every counter family in this crate overrides the looping default
    /// with a transition-count-proportional fast-forward — the batched
    /// path is the intended default for heavy workloads:
    ///
    /// * `Morris(a)` / Morris+ — one geometric draw per level reached
    ///   (the §2.2 `Z_i` decomposition);
    /// * Nelson–Yu — one `Binomial(n, α)` subsampling draw, plus one
    ///   re-thinning draw per epoch crossed;
    /// * Csűrös — one `Binomial(n, 2^{-u})` draw, plus one halving draw
    ///   per exponent crossed.
    ///
    /// Cost is `O(state transitions + epochs crossed)` — never `O(n)` —
    /// and cross-family property tests pin the resulting state
    /// distribution to the step-by-step one (chi²/KS over a seed grid).
    fn increment_by(&mut self, n: u64, rng: &mut dyn RandomSource) {
        for _ in 0..n {
            self.increment(rng);
        }
    }

    /// Returns the current estimate `N̂` of the number of increments.
    fn estimate(&self) -> f64;

    /// The largest value [`StateBits::state_bits`] has attained so far —
    /// the "memory high-water mark" that the space theorems bound.
    /// (Tracking it is experiment instrumentation, not counter state.)
    fn peak_state_bits(&self) -> u64;

    /// Returns the counter to its freshly initialized state.
    fn reset(&mut self);
}

/// Counters whose states can be combined: after
/// [`Mergeable::merge_from`], `self` is distributed as if it had processed
/// the increment streams of *both* counters.
///
/// This is the paper's Remark 2.4 ("fully mergeable") for the Nelson–Yu
/// counter, `[CY20 §2.1]` for the Morris family, and exact addition for
/// [`ExactCounter`](crate::ExactCounter) — the law that lets sharded
/// deployments (e.g. `ac-engine`) aggregate per-shard counters into a
/// global one without touching the raw stream.
pub trait Mergeable: Sized {
    /// Merges `other` into `self`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MergeMismatch`] when the two counters'
    /// parameter schedules are incompatible.
    fn merge_from(&mut self, other: &Self, rng: &mut dyn RandomSource) -> Result<(), CoreError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_bitio::MemoryAudit;

    /// A minimal implementation exercising the default `increment_by`.
    struct Toy {
        n: u64,
        peak: u64,
    }

    impl StateBits for Toy {
        fn state_bits(&self) -> u64 {
            u64::from(ac_bitio::bit_len(self.n))
        }

        fn memory_audit(&self) -> MemoryAudit {
            let mut a = MemoryAudit::new();
            a.field("n", self.state_bits());
            a
        }
    }

    impl ApproxCounter for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }

        fn increment(&mut self, _rng: &mut dyn RandomSource) {
            self.n += 1;
            self.peak = self.peak.max(self.state_bits());
        }

        fn estimate(&self) -> f64 {
            self.n as f64
        }

        fn peak_state_bits(&self) -> u64 {
            self.peak
        }

        fn reset(&mut self) {
            self.n = 0;
            self.peak = 0;
        }
    }

    #[test]
    fn default_increment_by_loops() {
        let mut t = Toy { n: 0, peak: 0 };
        let mut rng = ac_randkit::Xoshiro256PlusPlus::seed_from_u64(1);
        t.increment_by(10, &mut rng);
        assert_eq!(t.estimate(), 10.0);
        assert_eq!(t.peak_state_bits(), 4);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut t: Box<dyn ApproxCounter> = Box::new(Toy { n: 0, peak: 0 });
        let mut rng = ac_randkit::Xoshiro256PlusPlus::seed_from_u64(2);
        t.increment(&mut rng);
        assert_eq!(t.estimate(), 1.0);
    }
}
