//! The Csűrös floating-point counter — the "simplified version" of
//! Algorithm 1 used in the paper's Figure 1 experiment.
//!
//! Section 4 of the paper compares the Morris Counter against "(a
//! simplified version of) the algorithm of Subsection 2.1 (and this
//! simplified algorithm is itself similar to the algorithm of [Csu10])".
//! That simplification is exactly the floating-point counter of Csűrös
//! (COCOON 2010): replace the `(1+ε)`-geometric epoch schedule with
//! power-of-two epochs of fixed length `2^d`.

use crate::{ApproxCounter, CoreError};
use ac_bitio::{bit_len, MemoryAudit, StateBits};
use ac_randkit::{BernoulliPow2, RandomSource};

/// Largest permitted mantissa width. Two constraints meet here: the
/// estimator needs `2^d + v` exactly representable in an `f64` (`d ≤ 52`
/// would suffice for the mantissa alone; 58 keeps the full `(2^d + v)·2^u`
/// product exact in every experiment's range), and every mask/boundary
/// shift `1u64 << d` must be well-defined (`d < 64` — for `d ≥ 64` the
/// shift would panic in debug builds and silently wrap in release).
const MAX_MANTISSA_BITS: u32 = 58;

/// The floating-point counter: a single register `x`, interpreted as an
/// exponent `u = x >> d` and a `d`-bit mantissa `v = x & (2^d − 1)`;
/// increments succeed with probability `2^{-u}` and the estimator is
/// `N̂ = (2^d + v)·2^u − 2^d`, which is unbiased.
///
/// Structurally this is Algorithm 1 with `1 + ε = 2^{1/2^d}`-style
/// resolution: each exponent-`u` epoch consists of `2^d` survivor steps at
/// sampling rate `α = 2^{-u}`, and the deterministic initial epoch covers
/// `N ≤ 2^d`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsurosCounter {
    /// The combined exponent/mantissa register.
    x: u64,
    /// Mantissa width in bits.
    d: u32,
    /// Optional register cap (fixed-width hardware register model).
    x_cap: Option<u64>,
    /// Memory high-water mark (instrumentation, not state).
    peak: u64,
}

impl CsurosCounter {
    /// Creates the counter with a `d`-bit mantissa, unbounded register.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstant`] if
    /// `d > MAX_MANTISSA_BITS = 58`. The bound both keeps the
    /// estimator exact in `f64` and guarantees every internal
    /// `1u64 << d` mask/boundary computation is well-defined (`d ≥ 64`
    /// would panic in debug builds and wrap in release).
    pub fn new(d: u32) -> Result<Self, CoreError> {
        if d > MAX_MANTISSA_BITS {
            return Err(CoreError::InvalidConstant { got: f64::from(d) });
        }
        let mut this = Self {
            x: 0,
            d,
            x_cap: None,
            peak: 0,
        };
        this.peak = this.state_bits();
        Ok(this)
    }

    /// Creates the counter with a register saturating at `x_cap`.
    ///
    /// # Errors
    ///
    /// Same as [`CsurosCounter::new`].
    pub fn with_cap(d: u32, x_cap: u64) -> Result<Self, CoreError> {
        let mut c = Self::new(d)?;
        c.x_cap = Some(x_cap);
        Ok(c)
    }

    /// The mantissa width `d`.
    #[must_use]
    pub fn mantissa_bits(&self) -> u32 {
        self.d
    }

    /// The raw register value `x`.
    #[must_use]
    pub fn register(&self) -> u64 {
        self.x
    }

    /// The current exponent `u = x >> d`.
    #[must_use]
    pub fn exponent(&self) -> u64 {
        self.x >> self.d
    }

    /// The mantissa mask `2^d − 1`. Construction guarantees
    /// `d ≤ `[`MAX_MANTISSA_BITS`], so the shift cannot overflow.
    #[inline]
    fn mantissa_mask(&self) -> u64 {
        debug_assert!(self.d <= MAX_MANTISSA_BITS);
        (1u64 << self.d) - 1
    }

    /// The current mantissa `v = x & (2^d − 1)`.
    #[must_use]
    pub fn mantissa(&self) -> u64 {
        self.x & self.mantissa_mask()
    }

    /// The register cap, if any.
    #[must_use]
    pub fn cap(&self) -> Option<u64> {
        self.x_cap
    }

    /// True when a capped register has saturated.
    #[must_use]
    pub fn saturated(&self) -> bool {
        self.x_cap.is_some_and(|cap| self.x >= cap)
    }

    /// The register value the counter concentrates around after `n`
    /// increments (inverse of the unbiased estimator).
    #[must_use]
    pub fn expected_register(d: u32, n: u64) -> f64 {
        let scale = (1u64 << d) as f64;
        let q = n as f64 / scale + 1.0; // (N + 2^d)/2^d
        let u = q.log2().floor().max(0.0);
        let v = (q / u.exp2() - 1.0) * scale;
        u * scale + v
    }

    /// Forces the register (testing/diagnostics; respects the cap).
    pub fn set_register(&mut self, x: u64) {
        self.x = match self.x_cap {
            Some(cap) => x.min(cap),
            None => x,
        };
        self.peak = self.peak.max(self.state_bits());
    }

    /// Merges another floating-point counter into this one, in the style
    /// of Remark 2.4: the counter's exponent epochs use non-increasing
    /// sampling rates `2^{-u}`, and the per-epoch survivor counts are
    /// explicit in the register (`2^d` per completed exponent, the
    /// mantissa for the current one), so the lower counter's survivors
    /// can be re-subsampled into the higher one at rate
    /// `2^{u_i − u_current}`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MergeMismatch`] if mantissa widths or caps
    /// differ.
    pub fn merge_from(
        &mut self,
        other: &CsurosCounter,
        rng: &mut dyn RandomSource,
    ) -> Result<(), CoreError> {
        if self.d != other.d {
            return Err(CoreError::MergeMismatch {
                what: "mantissa width d",
            });
        }
        if self.x_cap != other.x_cap {
            return Err(CoreError::MergeMismatch {
                what: "register cap",
            });
        }
        // Work on the higher register; replay the lower one's survivors.
        let lo_x = if self.x >= other.x {
            other.x
        } else {
            std::mem::replace(&mut self.x, other.x)
        };
        let (lo_u, lo_v) = (lo_x >> self.d, lo_x & self.mantissa_mask());
        for u_i in 0..=lo_u {
            if self.saturated() {
                break;
            }
            let survivors = if u_i == lo_u { lo_v } else { 1u64 << self.d };
            self.absorb_survivors(survivors, u_i, rng);
        }
        self.peak = self.peak.max(self.state_bits());
        Ok(())
    }

    /// Absorbs `count` survivors that were accepted at rate `2^{-u_src}`
    /// (with `u_src ≤ u`) into the register, re-thinning by `1/2` at every
    /// exponent boundary crossed.
    ///
    /// Binomial thinning composes — a survivor at rate `2^{-u_src}` kept
    /// with probability `2^{-(u − u_src)}` is exactly a survivor at rate
    /// `2^{-u}` — so one bulk draw per exponent stretch reproduces the
    /// per-trial dynamics. Raw increments are survivors at rate 1
    /// (`u_src = 0`); the Remark 2.4-style merge feeds each completed
    /// exponent's `2^d` survivors through the same path.
    fn absorb_survivors(&mut self, count: u64, u_src: u64, rng: &mut dyn RandomSource) {
        debug_assert!(u_src <= self.exponent(), "rates must be non-increasing");
        let dt = self.exponent() - u_src;
        let mut pending = if dt == 0 {
            count
        } else {
            BernoulliPow2::new(dt.min(u64::from(u32::MAX)) as u32).sample_n(count, rng)
        };
        while pending > 0 && !self.saturated() {
            // Fill up to the next exponent boundary (or the cap).
            let boundary = (self.exponent() + 1).saturating_mul(1u64 << self.d);
            let take = pending.min(boundary - self.x).min(
                self.x_cap
                    .map_or(u64::MAX, |cap| cap.saturating_sub(self.x)),
            );
            self.x += take;
            pending -= take;
            if pending > 0 && self.x == boundary && !self.saturated() {
                // Crossed into exponent u+1: the sampling rate halves, so
                // each not-yet-landed survivor is kept with probability
                // 1/2 — one Binomial(pending, 1/2) draw.
                pending = BernoulliPow2::new(1).sample_n(pending, rng);
            }
        }
        self.peak = self.peak.max(self.state_bits());
    }
}

impl crate::Mergeable for CsurosCounter {
    fn merge_from(&mut self, other: &Self, rng: &mut dyn RandomSource) -> Result<(), CoreError> {
        CsurosCounter::merge_from(self, other, rng)
    }
}

impl StateBits for CsurosCounter {
    fn state_bits(&self) -> u64 {
        // The whole state is the single register x (d is a program
        // constant).
        u64::from(bit_len(self.x))
    }

    fn memory_audit(&self) -> MemoryAudit {
        let mut audit = MemoryAudit::new();
        audit.field("x", self.state_bits());
        audit
    }
}

impl ApproxCounter for CsurosCounter {
    fn name(&self) -> &'static str {
        "csuros-float"
    }

    #[inline]
    fn increment(&mut self, rng: &mut dyn RandomSource) {
        if self.saturated() {
            return;
        }
        let u = self.exponent();
        // u ≤ 64 − d in any reachable configuration; the register caps
        // far earlier in every experiment.
        let coin = BernoulliPow2::new(u.min(u64::from(u32::MAX)) as u32);
        if coin.sample(rng) {
            self.x += 1;
            self.peak = self.peak.max(self.state_bits());
        }
    }

    /// Fast-forward by per-exponent binomial subsampling: one
    /// `Binomial(n, 2^{-u})` draw resolves the whole batch at the current
    /// rate, and each exponent boundary crossed re-thins the remainder by
    /// `1/2` with one more draw — `O(1 + exponents crossed)` bulk draws,
    /// versus `n` coins for the loop (or `2^d` geometric draws per
    /// exponent stretch).
    fn increment_by(&mut self, n: u64, rng: &mut dyn RandomSource) {
        self.absorb_survivors(n, 0, rng);
    }

    fn estimate(&self) -> f64 {
        let scale = (1u64 << self.d) as f64;
        (scale + self.mantissa() as f64) * (self.exponent() as f64).exp2() - scale
    }

    fn peak_state_bits(&self) -> u64 {
        self.peak
    }

    fn reset(&mut self) {
        self.x = 0;
        self.peak = self.state_bits();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_randkit::Xoshiro256PlusPlus;
    use ac_stats::Summary;

    #[test]
    fn rejects_oversized_mantissa() {
        assert!(CsurosCounter::new(59).is_err());
        assert!(CsurosCounter::new(58).is_ok());
    }

    #[test]
    fn mantissa_width_boundary_cannot_reach_shift_overflow() {
        // d ≥ 64 would make `1u64 << d` overflow; construction must reject
        // everything past MAX_MANTISSA_BITS on both constructors, so no
        // reachable counter can hit the overflowing shift.
        for d in [59u32, 63, 64, 65, 1_000, u32::MAX] {
            assert!(
                matches!(
                    CsurosCounter::new(d),
                    Err(CoreError::InvalidConstant { .. })
                ),
                "d={d} must be rejected"
            );
            assert!(CsurosCounter::with_cap(d, 100).is_err(), "d={d} via cap");
        }
        // The accepted boundary still has well-defined masks.
        let mut c = CsurosCounter::new(58).unwrap();
        c.set_register((1u64 << 58) | 5);
        assert_eq!(c.exponent(), 1);
        assert_eq!(c.mantissa(), 5);
    }

    #[test]
    fn exact_until_mantissa_overflows() {
        // With exponent 0 the counter is deterministic: N̂ = N for
        // N ≤ 2^d.
        let d = 6;
        let mut c = CsurosCounter::new(d).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for i in 1..=(1u64 << d) {
            c.increment(&mut rng);
            assert_eq!(c.estimate(), i as f64, "exact while u = 0");
        }
        assert_eq!(c.exponent(), 1);
        assert_eq!(c.mantissa(), 0);
    }

    #[test]
    fn estimator_matches_closed_form() {
        let mut c = CsurosCounter::new(4).unwrap();
        // x = (u=2)<<4 | v=5 -> estimate = (16+5)*4 - 16 = 68.
        c.set_register((2 << 4) | 5);
        assert_eq!(c.estimate(), 68.0);
    }

    #[test]
    fn estimator_is_unbiased() {
        let d = 4;
        let n = 1_000u64;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut s = Summary::new();
        for _ in 0..30_000 {
            let mut c = CsurosCounter::new(d).unwrap();
            c.increment_by(n, &mut rng);
            s.push(c.estimate());
        }
        let tol = 6.0 * s.std_error();
        assert!(
            (s.mean() - n as f64).abs() < tol,
            "mean {} vs {n}, tol {tol}",
            s.mean()
        );
    }

    #[test]
    fn bigger_mantissa_means_smaller_variance() {
        let n = 100_000u64;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut sds = Vec::new();
        for d in [4u32, 8, 12] {
            let mut s = Summary::new();
            for _ in 0..2_000 {
                let mut c = CsurosCounter::new(d).unwrap();
                c.increment_by(n, &mut rng);
                s.push(c.estimate());
            }
            sds.push(s.stddev());
        }
        assert!(sds[0] > sds[1] && sds[1] > sds[2], "sds={sds:?}");
    }

    #[test]
    fn fast_forward_matches_step_distribution() {
        let d = 5;
        let n = 5_000u64;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let trials = 5_000;
        let mut ff = Vec::with_capacity(trials);
        let mut step = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut c = CsurosCounter::new(d).unwrap();
            c.increment_by(n, &mut rng);
            ff.push(c.register() as f64);

            let mut c = CsurosCounter::new(d).unwrap();
            for _ in 0..n {
                c.increment(&mut rng);
            }
            step.push(c.register() as f64);
        }
        let ks = ac_stats::ks::ks_two_sample(&ff, &step);
        assert!(ks.p_value > 0.001, "KS p={} D={}", ks.p_value, ks.statistic);
    }

    #[test]
    fn expected_register_tracks_simulation() {
        let d = 8;
        let n = 200_000u64;
        let expect = CsurosCounter::expected_register(d, n);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut s = Summary::new();
        for _ in 0..1_000 {
            let mut c = CsurosCounter::new(d).unwrap();
            c.increment_by(n, &mut rng);
            s.push(c.register() as f64);
        }
        let rel = (s.mean() - expect).abs() / expect;
        assert!(rel < 0.05, "mean {} vs {expect}", s.mean());
    }

    #[test]
    fn cap_saturates() {
        let mut c = CsurosCounter::with_cap(3, 20).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        c.increment_by(1 << 20, &mut rng);
        assert_eq!(c.register(), 20);
        assert!(c.saturated());
        c.increment(&mut rng);
        assert_eq!(c.register(), 20);
    }

    #[test]
    fn state_bits_is_register_width() {
        let mut c = CsurosCounter::new(4).unwrap();
        assert_eq!(c.state_bits(), 1);
        c.set_register(255);
        assert_eq!(c.state_bits(), 8);
        assert_eq!(c.peak_state_bits(), 8);
        c.reset();
        assert_eq!(c.state_bits(), 1);
    }

    #[test]
    fn merge_requires_same_parameters() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let mut a = CsurosCounter::new(4).unwrap();
        let b = CsurosCounter::new(5).unwrap();
        assert!(a.merge_from(&b, &mut rng).is_err());
    }

    #[test]
    fn merge_in_exact_regime_is_exact_addition() {
        // Both counters still at exponent 0: registers add exactly.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let d = 8;
        let mut a = CsurosCounter::new(d).unwrap();
        a.increment_by(100, &mut rng);
        let mut b = CsurosCounter::new(d).unwrap();
        b.increment_by(50, &mut rng);
        a.merge_from(&b, &mut rng).unwrap();
        assert_eq!(a.estimate(), 150.0);
    }

    #[test]
    fn merge_mean_is_additive() {
        let (n1, n2) = (30_000u64, 90_000u64);
        let d = 6;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        let mut s = Summary::new();
        for _ in 0..5_000 {
            let mut a = CsurosCounter::new(d).unwrap();
            a.increment_by(n1, &mut rng);
            let mut b = CsurosCounter::new(d).unwrap();
            b.increment_by(n2, &mut rng);
            a.merge_from(&b, &mut rng).unwrap();
            s.push(a.estimate());
        }
        let total = (n1 + n2) as f64;
        let tol = 6.0 * s.std_error();
        assert!(
            (s.mean() - total).abs() < tol,
            "merged mean {} vs {total} (tol {tol})",
            s.mean()
        );
    }

    #[test]
    fn merge_matches_sequential_distribution() {
        let (n1, n2) = (5_000u64, 12_000u64);
        let d = 5;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let trials = 6_000;
        let mut merged = Vec::with_capacity(trials);
        let mut sequential = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut a = CsurosCounter::new(d).unwrap();
            a.increment_by(n1, &mut rng);
            let mut b = CsurosCounter::new(d).unwrap();
            b.increment_by(n2, &mut rng);
            a.merge_from(&b, &mut rng).unwrap();
            merged.push(a.register() as f64);

            let mut c = CsurosCounter::new(d).unwrap();
            c.increment_by(n1 + n2, &mut rng);
            sequential.push(c.register() as f64);
        }
        let ks = ac_stats::ks::ks_two_sample(&merged, &sequential);
        assert!(ks.p_value > 0.001, "KS p={} D={}", ks.p_value, ks.statistic);
    }

    #[test]
    fn merge_order_does_not_matter_in_distribution() {
        let (n1, n2) = (2_000u64, 40_000u64);
        let d = 5;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(12);
        let mut ab = Summary::new();
        let mut ba = Summary::new();
        for _ in 0..4_000 {
            let mut a = CsurosCounter::new(d).unwrap();
            a.increment_by(n1, &mut rng);
            let mut b = CsurosCounter::new(d).unwrap();
            b.increment_by(n2, &mut rng);
            let mut m1 = a.clone();
            m1.merge_from(&b, &mut rng).unwrap();
            ab.push(m1.estimate());
            let mut m2 = b;
            m2.merge_from(&a, &mut rng).unwrap();
            ba.push(m2.estimate());
        }
        let rel = (ab.mean() - ba.mean()).abs() / ab.mean();
        assert!(rel < 0.03, "asymmetry {rel}");
    }

    #[test]
    fn deterministic_stretch_respects_cap() {
        // Cap inside the u = 0 stretch: bulk path must not overshoot.
        let mut c = CsurosCounter::with_cap(6, 10).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        c.increment_by(1_000, &mut rng);
        assert_eq!(c.register(), 10);
    }
}
