//! Parameter planning: from a target `(ε, δ)` to concrete algorithm
//! parameters, following the paper's prescriptions.
//!
//! Throughout the workspace the failure probability is specified as the
//! exponent `Δ` with `δ = 2^{-Δ}`, following Remark 2.2: "δ is never
//! stored or even given to the algorithm, but rather the input should be
//! ∆ such that δ = 2^{−∆}".

use crate::CoreError;

/// The universal constant `C` of Algorithm 1. The paper leaves it
/// unspecified ("universal positive constants, which may change from line
/// to line"); the Chernoff step of Theorem 2.1 needs roughly `C ≥ 3`, and
/// `C = 6` gives comfortable slack without inflating the `Y` register by
/// more than three bits. Configurable via [`NyParams::with_constant`].
pub const DEFAULT_C: f64 = 6.0;

/// The paper's §2.2 prescription `a = ε²/(8 ln(1/δ))` for `Morris(a)`,
/// with `δ = 2^{-Δ}`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidEpsilon`] / [`CoreError::InvalidDeltaLog2`]
/// on out-of-range inputs (theorems assume `ε, δ ∈ (0, 1/2)`).
pub fn morris_a(eps: f64, delta_log2: u32) -> Result<f64, CoreError> {
    validate_eps(eps)?;
    validate_delta(delta_log2)?;
    Ok(eps * eps / (8.0 * f64::from(delta_log2) * std::f64::consts::LN_2))
}

/// The Morris+ switchover point `N_a = ⌈8/a⌉`: below it a deterministic
/// counter is exact; above it `Morris(a)`'s §2.2 analysis applies
/// (`N ≥ 8/a`).
#[must_use]
pub fn morris_plus_cutoff(a: f64) -> u64 {
    assert!(a > 0.0 && a.is_finite(), "base parameter must be positive");
    (8.0 / a).ceil() as u64
}

fn validate_eps(eps: f64) -> Result<(), CoreError> {
    if !(eps.is_finite() && eps > 0.0 && eps < 0.5) {
        return Err(CoreError::InvalidEpsilon { got: eps });
    }
    Ok(())
}

fn validate_delta(delta_log2: u32) -> Result<(), CoreError> {
    if delta_log2 < 1 {
        return Err(CoreError::InvalidDeltaLog2 { got: delta_log2 });
    }
    Ok(())
}

/// The full parameter schedule of Algorithm 1.
///
/// Everything the counter needs at any level `X` — the epoch threshold
/// `T = ⌈(1+ε)^X⌉`, the per-epoch failure budget `η = δ/X²`, and the
/// sampling exponent `t` with `α = 2^{-t}` — is a *pure function* of
/// `(ε, Δ, C, X)` computed here. This realizes Remark 2.2: `η` and `α`
/// are never stored; only `X`, `Y` (and, conservatively, `t`) are state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NyParams {
    eps: f64,
    delta_log2: u32,
    c: f64,
    /// Cached `ln(1+ε)`.
    ln1e: f64,
    /// Cached initial level `X₀`.
    x0: u64,
}

impl NyParams {
    /// Creates the schedule for accuracy `ε` and failure probability
    /// `δ = 2^{-Δ}`, with the default universal constant
    /// [`DEFAULT_C`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidEpsilon`] / [`CoreError::InvalidDeltaLog2`]
    /// on out-of-range inputs.
    pub fn new(eps: f64, delta_log2: u32) -> Result<Self, CoreError> {
        Self::with_constant(eps, delta_log2, DEFAULT_C)
    }

    /// Like [`NyParams::new`] with an explicit universal constant `C ≥ 1`.
    ///
    /// # Errors
    ///
    /// Additionally returns [`CoreError::InvalidConstant`] for `C < 1`.
    pub fn with_constant(eps: f64, delta_log2: u32, c: f64) -> Result<Self, CoreError> {
        validate_eps(eps)?;
        validate_delta(delta_log2)?;
        if !(c.is_finite() && c >= 1.0) {
            return Err(CoreError::InvalidConstant { got: c });
        }
        let ln1e = eps.ln_1p();
        // X₀ = ⌈ln_{1+ε}(C·ln(1/η)/ε³)⌉ with η = δ (Algorithm 1, Init).
        let delta_ln = f64::from(delta_log2) * std::f64::consts::LN_2; // ln(1/δ)
        let arg = (c * delta_ln / (eps * eps * eps)).max(1.0 + eps);
        let x0 = (arg.ln() / ln1e).ceil() as u64;
        Ok(Self {
            eps,
            delta_log2,
            c,
            ln1e,
            x0: x0.max(1),
        })
    }

    /// The accuracy parameter `ε`.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The failure exponent `Δ` (`δ = 2^{-Δ}`).
    #[must_use]
    pub fn delta_log2(&self) -> u32 {
        self.delta_log2
    }

    /// The failure probability `δ = 2^{-Δ}` as a float (0 for `Δ > 1074`).
    #[must_use]
    pub fn delta(&self) -> f64 {
        (-f64::from(self.delta_log2)).exp2()
    }

    /// The universal constant `C`.
    #[must_use]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The initial level `X₀` (Algorithm 1, line 3).
    #[must_use]
    pub fn x0(&self) -> u64 {
        self.x0
    }

    /// The epoch threshold `T = ⌈(1+ε)^X⌉` for level `x` (line 9).
    ///
    /// Returned as `f64` — per Remark 2.2, `T` is never *stored*; it is a
    /// scratch value recomputed from `X`, and for counts near `2^64` it
    /// exceeds the exactly-representable integer range. The `±1`-level
    /// rounding this costs is within the analysis' `±O(1)` slack.
    #[must_use]
    pub fn t_value(&self, x: u64) -> f64 {
        ((x as f64) * self.ln1e).exp().ceil()
    }

    /// `ln(1/η)` for the epoch at level `x`, where `η = δ/X²` (line 9).
    #[must_use]
    pub fn ln_inv_eta(&self, x: u64) -> f64 {
        let delta_ln = f64::from(self.delta_log2) * std::f64::consts::LN_2;
        delta_ln + 2.0 * (x as f64).ln()
    }

    /// The sampling exponent `t` for the epoch at level `x`, such that
    /// `α = 2^{-t}` is line 10's value rounded **up** to an inverse power
    /// of two (Remark 2.2): the largest `t` with
    /// `2^{-t} ≥ C·ln(1/η)/(ε³T)`, clamped to `t ≥ 0`.
    ///
    /// At the initial level (`x ≤ X₀`) the rate is `α = 1` (`t = 0`).
    #[must_use]
    pub fn alpha_exponent(&self, x: u64) -> u32 {
        if x <= self.x0 {
            return 0;
        }
        let alpha = self.c * self.ln_inv_eta(x) / (self.eps.powi(3) * self.t_value(x));
        if alpha >= 1.0 {
            return 0;
        }
        // Largest t with 2^-t >= alpha: t = floor(log2(1/alpha)).
        (1.0 / alpha).log2().floor() as u32
    }

    /// The epoch-advance threshold for level `x` under sampling exponent
    /// `t`: `⌊T(x)·2^{-t}⌋` (the counter advances when `Y` exceeds it).
    ///
    /// `t` is passed explicitly because the counter enforces monotone
    /// non-increasing `α` (required for mergeability, Remark 2.4), which
    /// can hold `t` above [`NyParams::alpha_exponent`] in degenerate
    /// corners.
    #[must_use]
    pub fn threshold_for(&self, x: u64, t: u32) -> u64 {
        let thresh = self.t_value(x) * (-f64::from(t)).exp2();
        // A zero threshold would advance epochs on every survivor; the
        // schedule never produces it for valid parameters, but clamp for
        // safety.
        (thresh.floor() as u64).max(1)
    }

    /// Number of survivors (accepted `Y`-increments) a *completed* epoch
    /// at level `x` contributes, together with the epoch's starting `Y`
    /// value. Used by the Remark 2.4 merge to reconstruct per-epoch
    /// survivor counts, which are deterministic functions of the schedule.
    ///
    /// Returns `(y_start, y_end)` where `y_end = threshold + 1` is the
    /// value that triggered the advance.
    #[must_use]
    pub fn epoch_y_span(&self, x: u64) -> (u64, u64) {
        let t = self.monotone_exponent(x);
        let y_end = self.threshold_for(x, t) + 1;
        let y_start = if x <= self.x0 {
            0
        } else {
            let prev_t = self.monotone_exponent(x - 1);
            let prev_end = self.threshold_for(x - 1, prev_t) + 1;
            prev_end >> (t - prev_t)
        };
        (y_start.min(y_end), y_end)
    }

    /// The sampling exponent with monotonicity enforced along the
    /// schedule: `t*(x) = max_{X₀ ≤ x' ≤ x} alpha_exponent(x')`.
    ///
    /// For all sane parameters `alpha_exponent` is itself nondecreasing
    /// and this is the identity; the fold guarantees it even in corner
    /// cases. O(x − X₀) — only used on merge paths, never per increment.
    #[must_use]
    pub fn monotone_exponent(&self, x: u64) -> u32 {
        let mut t = 0;
        for level in self.x0..=x {
            t = t.max(self.alpha_exponent(level));
        }
        t
    }

    /// Theorem 1.1's space form
    /// `log₂log₂ n + log₂(1/ε) + log₂ Δ` (no constant), for experiment
    /// axes.
    #[must_use]
    pub fn space_form(&self, n: u64) -> f64 {
        assert!(n >= 2);
        ((n as f64).log2()).log2() + (1.0 / self.eps).log2() + f64::from(self.delta_log2).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morris_a_matches_formula() {
        // Δ = 10 → δ = 2^-10, ln(1/δ) = 10 ln 2.
        let a = morris_a(0.1, 10).unwrap();
        let expected = 0.01 / (8.0 * 10.0 * std::f64::consts::LN_2);
        assert!((a - expected).abs() < 1e-15);
    }

    #[test]
    fn morris_a_validates() {
        assert!(morris_a(0.0, 10).is_err());
        assert!(morris_a(0.5, 10).is_err());
        assert!(morris_a(0.1, 0).is_err());
        assert!(morris_a(f64::NAN, 10).is_err());
    }

    #[test]
    fn cutoff_is_ceil_8_over_a() {
        assert_eq!(morris_plus_cutoff(1.0), 8);
        assert_eq!(morris_plus_cutoff(0.5), 16);
        assert_eq!(morris_plus_cutoff(3.0), 3);
    }

    #[test]
    fn ny_params_validate() {
        assert!(NyParams::new(0.0, 10).is_err());
        assert!(NyParams::new(0.5, 10).is_err());
        assert!(NyParams::new(0.1, 0).is_err());
        assert!(NyParams::with_constant(0.1, 10, 0.5).is_err());
        assert!(NyParams::new(0.1, 10).is_ok());
    }

    #[test]
    fn x0_matches_init_line() {
        let p = NyParams::with_constant(0.25, 10, 6.0).unwrap();
        // X0 = ceil(ln_{1.25}(C ln(1/δ)/ε³))
        let arg = 6.0 * 10.0 * std::f64::consts::LN_2 / 0.25f64.powi(3);
        let expected = (arg.ln() / 1.25f64.ln()).ceil() as u64;
        assert_eq!(p.x0(), expected);
    }

    #[test]
    fn t_value_is_geometric() {
        let p = NyParams::new(0.1, 10).unwrap();
        let x = p.x0() + 5;
        let ratio = p.t_value(x + 1) / p.t_value(x);
        assert!((ratio - 1.1).abs() < 0.01, "ratio={ratio}");
    }

    #[test]
    fn epoch0_has_rate_one() {
        let p = NyParams::new(0.2, 10).unwrap();
        assert_eq!(p.alpha_exponent(p.x0()), 0);
        assert_eq!(p.alpha_exponent(p.x0().saturating_sub(1)), 0);
    }

    #[test]
    fn alpha_exponent_rounds_up_to_inverse_power_of_two() {
        let p = NyParams::new(0.2, 10).unwrap();
        for x in (p.x0() + 1)..(p.x0() + 100) {
            let t = p.alpha_exponent(x);
            let alpha_formula = p.c() * p.ln_inv_eta(x) / (p.eps().powi(3) * p.t_value(x));
            if alpha_formula < 1.0 {
                let alpha = (-f64::from(t)).exp2();
                assert!(alpha >= alpha_formula, "x={x}: 2^-{t} < formula");
                // And one more halving would undershoot:
                assert!(alpha / 2.0 < alpha_formula, "x={x}: t not maximal");
            } else {
                assert_eq!(t, 0);
            }
        }
    }

    #[test]
    fn alpha_exponent_is_monotone_for_typical_parameters() {
        for &(eps, d) in &[(0.1, 7u32), (0.25, 20), (0.02, 4), (0.4, 40)] {
            let p = NyParams::new(eps, d).unwrap();
            let mut prev = 0;
            for x in p.x0()..(p.x0() + 2_000) {
                let t = p.alpha_exponent(x);
                assert!(t >= prev, "eps={eps} Δ={d} x={x}: t dropped {prev}->{t}");
                prev = t;
            }
        }
    }

    #[test]
    fn thresholds_are_positive_and_grow_modestly() {
        let p = NyParams::new(0.1, 10).unwrap();
        // Within an epoch schedule, threshold ≈ C ln(1/η)/ε³ up to the
        // power-of-two rounding of α: bounded by a constant multiple.
        for x in (p.x0() + 5)..(p.x0() + 200) {
            let t = p.alpha_exponent(x);
            let thresh = p.threshold_for(x, t);
            let scale = p.c() * p.ln_inv_eta(x) / p.eps().powi(3);
            assert!(thresh >= 1);
            assert!(
                (thresh as f64) < 4.0 * scale,
                "x={x}: threshold {thresh} vs scale {scale}"
            );
        }
    }

    #[test]
    fn epoch_y_span_is_consistent() {
        let p = NyParams::new(0.15, 12).unwrap();
        // Epoch at X0 starts from Y = 0.
        let (s0, e0) = p.epoch_y_span(p.x0());
        assert_eq!(s0, 0);
        assert!(e0 >= 1);
        // Later epochs start at the rescaled previous end.
        for x in (p.x0() + 1)..(p.x0() + 50) {
            let (s, e) = p.epoch_y_span(x);
            assert!(s <= e, "x={x}: start {s} > end {e}");
            let t = p.monotone_exponent(x);
            let tp = p.monotone_exponent(x - 1);
            let (_, prev_e) = p.epoch_y_span(x - 1);
            assert_eq!(s, (prev_e >> (t - tp)).min(e));
        }
    }

    #[test]
    fn space_form_reflects_parameters() {
        let tight = NyParams::new(0.01, 40).unwrap();
        let loose = NyParams::new(0.25, 3).unwrap();
        let n = 1 << 30;
        assert!(tight.space_form(n) > loose.space_form(n));
    }

    #[test]
    fn delta_accessor() {
        let p = NyParams::new(0.1, 10).unwrap();
        assert!((p.delta() - 1.0 / 1024.0).abs() < 1e-18);
    }
}
