//! "Morris+": `Morris(a)` with the deterministic-prefix tweak the paper
//! proves both sufficient (Theorem 1.2) and necessary (Appendix A).

use crate::params::{morris_a, morris_plus_cutoff};
use crate::{ApproxCounter, CoreError, MorrisCounter};
use ac_bitio::{bit_len, MemoryAudit, StateBits};
use ac_randkit::RandomSource;

/// Morris+ (§1, §2.2, Appendix A): run a deterministic counter saturating
/// at `N_a + 1` *in parallel* with `Morris(a)`; answer queries from the
/// deterministic counter while it is exact (`≤ N_a`) and from the Morris
/// estimator afterwards.
///
/// With `a = ε²/(8 ln(1/δ))` and `N_a = ⌈8/a⌉` this achieves
/// `P(|N̂ − N| > 2εN) ≤ 2δ` in
/// `O(log log N + log(1/ε) + log log(1/δ))` bits (Theorem 1.2).
/// Appendix A shows the prefix is *necessary*: vanilla `Morris(a)` fails
/// with probability `≫ δ` at `N = Θ(ε^{4/3}/a)` (experiment E4).
#[derive(Debug, Clone, PartialEq)]
pub struct MorrisPlus {
    /// Deterministic prefix counter; saturates at `cutoff + 1`.
    prefix: u64,
    /// `N_a`: largest count answered deterministically.
    cutoff: u64,
    /// The underlying `Morris(a)`.
    morris: MorrisCounter,
    peak: u64,
}

impl MorrisPlus {
    /// Creates Morris+ for target accuracy `ε` and failure probability
    /// `δ = 2^{-Δ}`, using the paper's `a = ε²/(8 ln(1/δ))` and
    /// `N_a = ⌈8/a⌉`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn new(eps: f64, delta_log2: u32) -> Result<Self, CoreError> {
        Self::with_base(morris_a(eps, delta_log2)?)
    }

    /// Creates Morris+ directly from the base parameter `a`, with the
    /// standard cutoff `N_a = ⌈8/a⌉`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBase`] for invalid `a`.
    pub fn with_base(a: f64) -> Result<Self, CoreError> {
        let cutoff = morris_plus_cutoff(a);
        Self::with_base_and_cutoff(a, cutoff)
    }

    /// Creates Morris+ with an explicit switchover point (used by the
    /// Appendix A experiment, which studies *wrong* cutoffs like
    /// `c·ε^{4/3}/a`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBase`] for invalid `a`.
    pub fn with_base_and_cutoff(a: f64, cutoff: u64) -> Result<Self, CoreError> {
        let morris = MorrisCounter::new(a)?;
        let mut this = Self {
            prefix: 0,
            cutoff,
            morris,
            peak: 0,
        };
        this.peak = this.state_bits();
        Ok(this)
    }

    /// The base parameter `a`.
    #[must_use]
    pub fn a(&self) -> f64 {
        self.morris.a()
    }

    /// The switchover point `N_a`.
    #[must_use]
    pub fn cutoff(&self) -> u64 {
        self.cutoff
    }

    /// True while queries are still answered exactly by the prefix
    /// counter.
    #[must_use]
    pub fn in_exact_regime(&self) -> bool {
        self.prefix <= self.cutoff
    }

    /// The inner Morris counter (for diagnostics).
    #[must_use]
    pub fn morris(&self) -> &MorrisCounter {
        &self.morris
    }

    /// The deterministic prefix register's current value.
    #[must_use]
    pub fn prefix(&self) -> u64 {
        self.prefix
    }

    /// Restores the two-register state `(prefix, level)` captured via
    /// [`MorrisPlus::prefix`] and `morris().level()` (deserialization).
    pub fn restore_parts(&mut self, prefix: u64, level: u64) {
        self.prefix = prefix.min(self.cutoff + 1);
        self.morris.set_level(level);
        self.peak = self.peak.max(self.state_bits());
    }

    /// Merges another Morris+ counter into this one.
    ///
    /// The deterministic prefixes add exactly (saturating at `N_a + 1`,
    /// which is correct because each prefix equals `min(N_i, N_a + 1)`
    /// and the merged count is `N₁ + N₂`); the Morris parts merge by
    /// `[CY20 §2.1]` via [`MorrisCounter::merge_from`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MergeMismatch`] if base parameters or
    /// cutoffs differ.
    pub fn merge_from(
        &mut self,
        other: &MorrisPlus,
        rng: &mut dyn RandomSource,
    ) -> Result<(), CoreError> {
        if self.cutoff != other.cutoff {
            return Err(CoreError::MergeMismatch {
                what: "Morris+ cutoff",
            });
        }
        self.morris.merge_from(&other.morris, rng)?;
        self.prefix = self
            .prefix
            .saturating_add(other.prefix)
            .min(self.cutoff + 1);
        self.peak = self.peak.max(self.state_bits());
        Ok(())
    }
}

impl crate::Mergeable for MorrisPlus {
    fn merge_from(&mut self, other: &Self, rng: &mut dyn RandomSource) -> Result<(), CoreError> {
        MorrisPlus::merge_from(self, other, rng)
    }
}

impl StateBits for MorrisPlus {
    fn state_bits(&self) -> u64 {
        // The prefix register and the Morris level are both live state.
        u64::from(bit_len(self.prefix)) + self.morris.state_bits()
    }

    fn memory_audit(&self) -> MemoryAudit {
        let mut audit = MemoryAudit::new();
        audit.field("prefix", u64::from(bit_len(self.prefix)));
        audit.field("X", self.morris.state_bits());
        audit
    }
}

impl ApproxCounter for MorrisPlus {
    fn name(&self) -> &'static str {
        "morris+"
    }

    #[inline]
    fn increment(&mut self, rng: &mut dyn RandomSource) {
        // "we process the increment both by Morris(a) and by
        // deterministically incrementing X′, unless its value is Na + 1"
        // (Appendix A).
        if self.prefix <= self.cutoff {
            self.prefix += 1;
        }
        self.morris.increment(rng);
        self.peak = self.peak.max(self.state_bits());
    }

    /// Fast-forward by delegating to each sub-counter's batched path: the
    /// deterministic prefix advances in O(1) arithmetic and the Morris
    /// part rides [`MorrisCounter::increment_by`]'s §2.2 geometric
    /// decomposition, so the whole update is O(levels), never O(n).
    fn increment_by(&mut self, n: u64, rng: &mut dyn RandomSource) {
        self.prefix = self.prefix.saturating_add(n).min(self.cutoff + 1);
        self.morris.increment_by(n, rng);
        self.peak = self.peak.max(self.state_bits());
    }

    fn estimate(&self) -> f64 {
        if self.in_exact_regime() {
            self.prefix as f64
        } else {
            self.morris.estimate()
        }
    }

    fn peak_state_bits(&self) -> u64 {
        self.peak
    }

    fn reset(&mut self) {
        self.prefix = 0;
        self.morris.reset();
        self.peak = self.state_bits();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_randkit::Xoshiro256PlusPlus;
    use ac_stats::Summary;

    #[test]
    fn exact_below_cutoff() {
        let mut c = MorrisPlus::with_base_and_cutoff(1.0, 100).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for i in 1..=100u64 {
            c.increment(&mut rng);
            assert_eq!(c.estimate(), i as f64, "must be exact up to N_a");
        }
        assert!(c.in_exact_regime());
        c.increment(&mut rng);
        assert!(!c.in_exact_regime());
    }

    #[test]
    fn switches_to_morris_after_cutoff() {
        let mut c = MorrisPlus::with_base(0.1).unwrap();
        let cutoff = c.cutoff();
        assert_eq!(cutoff, 80);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        c.increment_by(cutoff + 1, &mut rng);
        assert!(!c.in_exact_regime());
        // The estimate now comes from Morris; it should be within a few
        // multiples of the true count (a = 0.1 => sd ~ 22 % at this N).
        let rel = (c.estimate() - (cutoff + 1) as f64).abs() / (cutoff + 1) as f64;
        assert!(rel < 1.5, "rel={rel}");
    }

    #[test]
    fn default_cutoff_matches_paper() {
        let eps = 0.1;
        let delta_log2 = 10;
        let c = MorrisPlus::new(eps, delta_log2).unwrap();
        let a = morris_a(eps, delta_log2).unwrap();
        assert_eq!(c.cutoff(), (8.0 / a).ceil() as u64);
        assert!((c.a() - a).abs() < 1e-18);
    }

    #[test]
    fn bulk_and_step_prefix_agree() {
        let mut a = MorrisPlus::with_base_and_cutoff(1.0, 50).unwrap();
        let mut b = MorrisPlus::with_base_and_cutoff(1.0, 50).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        a.increment_by(200, &mut rng);
        for _ in 0..200 {
            b.increment(&mut rng);
        }
        assert_eq!(a.prefix, b.prefix);
        assert_eq!(a.prefix, 51, "prefix saturates at N_a + 1");
    }

    #[test]
    fn accuracy_at_target_parameters() {
        // ε = 0.2, δ = 2^-6: failure rate P(|N̂-N| > 2εN) should be ≲ 2δ ≈ 3 %.
        let (eps, dlog) = (0.2, 6u32);
        let n = 500_000u64;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let trials = 2_000;
        let mut failures = 0u32;
        let mut s = Summary::new();
        for _ in 0..trials {
            let mut c = MorrisPlus::new(eps, dlog).unwrap();
            c.increment_by(n, &mut rng);
            let rel = (c.estimate() - n as f64).abs() / n as f64;
            s.push(rel);
            if rel > 2.0 * eps {
                failures += 1;
            }
        }
        let rate = f64::from(failures) / f64::from(trials);
        assert!(rate <= 0.05, "failure rate {rate}");
    }

    #[test]
    fn state_bits_counts_both_registers() {
        let mut c = MorrisPlus::with_base_and_cutoff(1.0, 100).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        c.increment_by(101, &mut rng);
        let audit = c.memory_audit();
        assert_eq!(audit.fields().len(), 2);
        assert_eq!(audit.total_bits(), c.state_bits());
        // prefix = 101 needs 7 bits.
        assert_eq!(audit.fields()[0].1, 7);
    }

    #[test]
    fn merge_requires_matching_cutoffs() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut a = MorrisPlus::with_base_and_cutoff(0.5, 100).unwrap();
        let b = MorrisPlus::with_base_and_cutoff(0.5, 200).unwrap();
        assert!(a.merge_from(&b, &mut rng).is_err());
        let c = MorrisPlus::with_base_and_cutoff(0.25, 100).unwrap();
        assert!(a.merge_from(&c, &mut rng).is_err());
    }

    #[test]
    fn merge_below_cutoff_is_exact_addition() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let mut a = MorrisPlus::with_base_and_cutoff(0.5, 1_000).unwrap();
        a.increment_by(300, &mut rng);
        let mut b = MorrisPlus::with_base_and_cutoff(0.5, 1_000).unwrap();
        b.increment_by(450, &mut rng);
        a.merge_from(&b, &mut rng).unwrap();
        assert_eq!(a.estimate(), 750.0, "prefix regime merge is exact");
        assert!(a.in_exact_regime());
    }

    #[test]
    fn merge_crossing_cutoff_switches_to_morris() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut a = MorrisPlus::with_base_and_cutoff(0.1, 500).unwrap();
        a.increment_by(400, &mut rng);
        let mut b = MorrisPlus::with_base_and_cutoff(0.1, 500).unwrap();
        b.increment_by(400, &mut rng);
        a.merge_from(&b, &mut rng).unwrap();
        assert!(!a.in_exact_regime(), "merged count 800 > cutoff 500");
        // Estimate now comes from the merged Morris part: sane scale.
        let rel = (a.estimate() - 800.0).abs() / 800.0;
        assert!(rel < 2.0, "rel {rel}");
    }

    #[test]
    fn merge_mean_is_additive_above_cutoff() {
        let (n1, n2) = (20_000u64, 60_000u64);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        let mut s = Summary::new();
        for _ in 0..5_000 {
            let mut a = MorrisPlus::new(0.2, 6).unwrap();
            a.increment_by(n1, &mut rng);
            let mut b = MorrisPlus::new(0.2, 6).unwrap();
            b.increment_by(n2, &mut rng);
            a.merge_from(&b, &mut rng).unwrap();
            s.push(a.estimate());
        }
        let total = (n1 + n2) as f64;
        let tol = 6.0 * s.std_error();
        assert!(
            (s.mean() - total).abs() < tol,
            "merged mean {} vs {total}",
            s.mean()
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut c = MorrisPlus::with_base(0.5).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        c.increment_by(1_000, &mut rng);
        c.reset();
        assert_eq!(c.estimate(), 0.0);
        assert!(c.in_exact_regime());
        assert_eq!(c.state_bits(), 2); // prefix:1 + X:1
    }
}
