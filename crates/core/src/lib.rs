//! # `ac-core` — Optimal Bounds for Approximate Counting
//!
//! A faithful, production-quality implementation of every algorithm in
//! Nelson & Yu, *Optimal Bounds for Approximate Counting* (PODS 2022,
//! arXiv:2010.02116), plus the baselines it compares against:
//!
//! | Type | Paper object | Space (bits, w.h.p.) |
//! |------|--------------|----------------------|
//! | [`ExactCounter`] | the naive counter | `log₂ N` |
//! | [`MorrisCounter`] | `Morris(a)` (§1.2, §2.2) | `O(log log N + log 1/a)` |
//! | [`MorrisPlus`] | "Morris+" (§1, Appendix A) | `O(log log N + log 1/ε + log log 1/δ)` |
//! | [`NelsonYuCounter`] | **Algorithm 1** | `O(log log N + log 1/ε + log log 1/δ)` |
//! | [`CsurosCounter`] | the "simplified version" of Alg. 1 run in Figure 1 (≈ \[Csu10\]) | `O(log log N + d)` |
//! | [`AveragedMorris`] | the §1.1 averaging ablation | `k ×` Morris |
//!
//! All counters implement [`ApproxCounter`] and [`StateBits`] (exact
//! bit-level memory accounting, following the storage model of the paper's
//! Remark 2.2) and draw randomness through
//! [`ac_randkit::RandomSource`], so experiments are deterministic given
//! a seed.
//!
//! ## Quick start
//!
//! ```
//! use ac_core::{ApproxCounter, NelsonYuCounter, NyParams};
//! use ac_randkit::Xoshiro256PlusPlus;
//!
//! // ε = 10 % relative error, δ = 2⁻¹⁰ failure probability.
//! let params = NyParams::new(0.1, 10).unwrap();
//! let mut counter = NelsonYuCounter::new(params);
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
//!
//! counter.increment_by(1_000_000, &mut rng);
//! let estimate = counter.estimate();
//! assert!((estimate - 1.0e6).abs() < 2.0e5);
//! ```
//!
//! ## Fast-forwarding
//!
//! [`ApproxCounter::increment_by`] advances a counter by `n` increments in
//! time proportional to the number of *state transitions*, not `n`,
//! using the geometric-variable decomposition from the paper's §2.2 (the
//! `Z_i` variables). The resulting state has exactly the same distribution
//! as `n` calls to [`ApproxCounter::increment`]; property tests in this
//! crate verify that claim statistically.
//!
//! ## Merging
//!
//! [`NelsonYuCounter::merge_from`] implements Remark 2.4 (the counter is
//! *fully mergeable*), and [`MorrisCounter::merge_from`] the classical
//! Morris merge `[CY20, §2.1]`. Experiment E5 validates both against the
//! sequential distribution with a KS test.
//!
//! ## Serialization
//!
//! Every family implements [`StateCodec`]: bit-exact, self-delimiting
//! encode/decode of the persistent registers (and only those — program
//! constants stay in the transition function, per Remark 2.2), with a
//! parameter-schedule fingerprint so containers such as the `ac-engine`
//! checkpoint can refuse mismatched restores up front.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod averaged;
pub mod budget;
mod codec;
mod counter;
mod csuros;
mod error;
mod exact;
mod exact_alpha;
mod morris;
mod morris_plus;
mod nelson_yu;
pub mod params;
mod promise;
mod spec;
pub mod tier;

pub use averaged::AveragedMorris;
pub use codec::StateCodec;
pub use counter::{ApproxCounter, Mergeable};
pub use csuros::CsurosCounter;
pub use error::CoreError;
pub use exact::ExactCounter;
pub use exact_alpha::{exact_alpha_counter, ExactAlphaNelsonYu};
pub use morris::{exact_level_distribution, MorrisCounter};
pub use morris_plus::MorrisPlus;
pub use nelson_yu::NelsonYuCounter;
pub use params::{morris_a, morris_plus_cutoff, NyParams};
pub use promise::{PromiseAnswer, PromiseDecider, PROMISE_DEFAULT_C};
pub use spec::{CounterFamily, CounterSpec};
pub use tier::{BudgetController, MigrationPlan, TierMove, TierPolicy};

// Re-export the two traits users need alongside the counters.
pub use ac_bitio::StateBits;
pub use ac_randkit::RandomSource;
