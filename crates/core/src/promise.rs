//! The promise decision problem of §1.2 — the building block from which
//! Algorithm 1 is assembled.
//!
//! "First, we consider a promise decision problem: given some `T > 1` and
//! `ε ∈ (0,1)`, decide whether `N < (1 − ε/10)T` or `N > (1 + ε/10)T`
//! when promised that one of the two holds. … We store a counter `Y` in
//! memory, initialized to 0. Set `α = min{1, C log(1/η)/(ε²T)}`. For each
//! increment to `N`, if `Y ≤ αT` then increment `Y` with probability `α`;
//! else do nothing. At query time, we declare `N > (1 + ε/10)T` iff
//! `Y > αT`. A Chernoff bound shows that this procedure is correct with
//! probability at least `1 − η`. Furthermore the memory consumed is
//! guaranteed to be `O(log(αT)) = O(log(1/ε) + log log(1/η))`."

use crate::CoreError;
use ac_bitio::{bit_len, MemoryAudit, StateBits};
use ac_randkit::{Bernoulli, Geometric, RandomSource};

/// Default universal constant for the *standalone* promise problem.
///
/// The decision gap here is `ε/10`, so the Chernoff exponent is
/// `(ε/10)²·αT/(2+o(1)) = C·ln(1/η)/(200+o(1))` — the constant must
/// absorb the `10²` from the gap, hence `C ≈ 300` (vs. `C ≈ 6` for the
/// full Algorithm 1, whose epochs have gap `ε` and an extra `ε` in the
/// rate). The paper's "universal positive constants … may change from
/// line to line" is doing real work here; this is it, measured.
pub const PROMISE_DEFAULT_C: f64 = 300.0;

/// The answer to the promise problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromiseAnswer {
    /// Declares `N < (1 − ε/10)·T`.
    Below,
    /// Declares `N > (1 + ε/10)·T`.
    Above,
}

/// A one-shot threshold decider: distinguishes `N < (1 − ε/10)T` from
/// `N > (1 + ε/10)T` with failure probability `η`, in
/// `O(log(1/ε) + log log(1/η))` bits.
///
/// The paper uses a sequence of these (with geometrically growing `T`)
/// to build the full counter; [`PromiseDecider`] packages the standalone
/// version, with its own Chernoff-bound validation in the tests.
#[derive(Debug, Clone, PartialEq)]
pub struct PromiseDecider {
    /// Sampled counter `Y`; stops moving once past the threshold (the
    /// "else do nothing" branch — the register never needs more than
    /// `bit_len(⌊αT⌋ + 1)` bits).
    y: u64,
    /// The decision threshold `⌊αT⌋`.
    threshold: u64,
    /// The sampling probability `α = min{1, C·ln(1/η)/(ε²T)}`.
    alpha: f64,
    /// Memory high-water mark (instrumentation).
    peak: u64,
}

impl PromiseDecider {
    /// Creates the decider for threshold `t_param`, accuracy `ε`, and
    /// failure probability `η = 2^{-eta_log2}`, with universal constant
    /// `c` (use [`PROMISE_DEFAULT_C`]; the `ε/10` decision gap requires
    /// `C ≈ 300`, see the constant's docs).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] variants for out-of-range parameters.
    pub fn new(t_param: u64, eps: f64, eta_log2: u32, c: f64) -> Result<Self, CoreError> {
        if !(eps.is_finite() && eps > 0.0 && eps < 1.0) {
            return Err(CoreError::InvalidEpsilon { got: eps });
        }
        if eta_log2 < 1 {
            return Err(CoreError::InvalidDeltaLog2 { got: eta_log2 });
        }
        if !(c.is_finite() && c >= 1.0) {
            return Err(CoreError::InvalidConstant { got: c });
        }
        if t_param < 2 {
            return Err(CoreError::BudgetInfeasible {
                bits: 0,
                n_max: t_param,
                reason: "promise problem needs T > 1",
            });
        }
        let ln_inv_eta = f64::from(eta_log2) * std::f64::consts::LN_2;
        let alpha = (c * ln_inv_eta / (eps * eps * t_param as f64)).min(1.0);
        let threshold = (alpha * t_param as f64).floor() as u64;
        let mut this = Self {
            y: 0,
            threshold,
            alpha,
            peak: 0,
        };
        this.peak = this.state_bits();
        Ok(this)
    }

    /// The sampling probability `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The decision threshold `⌊αT⌋`.
    #[must_use]
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// The current sampled counter `Y`.
    #[must_use]
    pub fn y(&self) -> u64 {
        self.y
    }

    /// Processes one increment of `N`.
    #[inline]
    pub fn increment(&mut self, rng: &mut dyn RandomSource) {
        // "if Y ≤ αT then increment Y with probability α; else do
        // nothing" — once the threshold is crossed the state freezes, so
        // the Y register is bounded by threshold + 1 forever.
        if self.y > self.threshold {
            return;
        }
        if Bernoulli::new(self.alpha)
            .expect("alpha in (0,1]")
            .sample(rng)
        {
            self.y += 1;
            self.peak = self.peak.max(self.state_bits());
        }
    }

    /// Fast-forwards `n` increments (geometric jumps between survivors,
    /// identical in distribution to `n` calls of
    /// [`PromiseDecider::increment`]).
    pub fn increment_by(&mut self, n: u64, rng: &mut dyn RandomSource) {
        let mut budget = n;
        while budget > 0 && self.y <= self.threshold {
            if self.alpha >= 1.0 {
                let room = self.threshold + 2 - self.y; // +1 to cross, +1 slack
                let take = budget.min(room);
                self.y += take;
                budget -= take;
            } else {
                match Geometric::new(self.alpha)
                    .expect("alpha in (0,1)")
                    .sample_within(budget, rng)
                {
                    Some(z) => {
                        budget -= z;
                        self.y += 1;
                    }
                    None => budget = 0,
                }
            }
        }
        self.peak = self.peak.max(self.state_bits());
    }

    /// Answers the promise query: `Above` iff `Y > αT`.
    #[must_use]
    pub fn answer(&self) -> PromiseAnswer {
        if self.y > self.threshold {
            PromiseAnswer::Above
        } else {
            PromiseAnswer::Below
        }
    }

    /// Memory high-water mark.
    #[must_use]
    pub fn peak_state_bits(&self) -> u64 {
        self.peak
    }
}

impl StateBits for PromiseDecider {
    fn state_bits(&self) -> u64 {
        // Only Y is state; α and the threshold are program constants
        // derived from (T, ε, η, C).
        u64::from(bit_len(self.y))
    }

    fn memory_audit(&self) -> MemoryAudit {
        let mut audit = MemoryAudit::new();
        audit.field("Y", self.state_bits());
        audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_randkit::{trial_seed, Xoshiro256PlusPlus};

    #[test]
    fn validates_parameters() {
        assert!(PromiseDecider::new(100, 0.0, 4, PROMISE_DEFAULT_C).is_err());
        assert!(PromiseDecider::new(100, 1.5, 4, PROMISE_DEFAULT_C).is_err());
        assert!(PromiseDecider::new(100, 0.2, 0, PROMISE_DEFAULT_C).is_err());
        assert!(PromiseDecider::new(100, 0.2, 4, 0.5).is_err());
        assert!(PromiseDecider::new(1, 0.2, 4, PROMISE_DEFAULT_C).is_err());
        assert!(PromiseDecider::new(100, 0.2, 4, PROMISE_DEFAULT_C).is_ok());
    }

    #[test]
    fn alpha_capped_at_one_for_small_t() {
        // Small T: the formula exceeds 1 and is clamped — the decider
        // counts exactly.
        let d = PromiseDecider::new(10, 0.3, 10, PROMISE_DEFAULT_C).unwrap();
        assert_eq!(d.alpha(), 1.0);
        assert_eq!(d.threshold(), 10);
    }

    #[test]
    fn exact_counting_when_alpha_one() {
        let mut d = PromiseDecider::new(10, 0.3, 10, PROMISE_DEFAULT_C).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        d.increment_by(10, &mut rng);
        assert_eq!(d.answer(), PromiseAnswer::Below);
        d.increment(&mut rng);
        assert_eq!(d.answer(), PromiseAnswer::Above);
    }

    #[test]
    fn decides_the_promise_with_eta_confidence() {
        // T = 100_000, eps = 0.2, eta = 2^-7 ≈ 0.78 %: over many trials
        // at the promise boundary N = (1 ± ε/10)T the answer must be
        // wrong with rate at most ~eta.
        let t_param = 100_000u64;
        let eps = 0.2;
        let eta_log2 = 7;
        let trials = 3_000u32;
        let below_n = (t_param as f64 * (1.0 - eps / 10.0)) as u64;
        let above_n = (t_param as f64 * (1.0 + eps / 10.0)).ceil() as u64;
        let mut wrong_below = 0;
        let mut wrong_above = 0;
        for i in 0..trials {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(trial_seed(77, u64::from(i)));
            let mut d = PromiseDecider::new(t_param, eps, eta_log2, PROMISE_DEFAULT_C).unwrap();
            d.increment_by(below_n, &mut rng);
            if d.answer() != PromiseAnswer::Below {
                wrong_below += 1;
            }
            let mut d = PromiseDecider::new(t_param, eps, eta_log2, PROMISE_DEFAULT_C).unwrap();
            d.increment_by(above_n, &mut rng);
            if d.answer() != PromiseAnswer::Above {
                wrong_above += 1;
            }
        }
        let eta = (0.5f64).powi(eta_log2 as i32);
        let budget = (eta * f64::from(trials)).ceil() + 5.0;
        assert!(
            f64::from(wrong_below) <= budget,
            "below-side errors {wrong_below} vs budget {budget}"
        );
        assert!(
            f64::from(wrong_above) <= budget,
            "above-side errors {wrong_above} vs budget {budget}"
        );
    }

    #[test]
    fn memory_is_log_eps_plus_loglog_eta() {
        // The paper's bound: O(log(1/ε) + log log(1/η)) bits, independent
        // of T. Check the register stays small even for huge T.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for &t_param in &[1u64 << 24, 1 << 32, 1 << 40] {
            let mut d = PromiseDecider::new(t_param, 0.1, 20, PROMISE_DEFAULT_C).unwrap();
            d.increment_by(2 * t_param, &mut rng);
            // threshold = C ln(1/η)/ε² ≈ 300·13.9/0.01 ≈ 416k → 19 bits,
            // independent of T (which spans 2^24..2^40 here).
            assert!(
                d.peak_state_bits() <= 20,
                "T = {t_param}: {} bits",
                d.peak_state_bits()
            );
        }
    }

    #[test]
    fn state_freezes_after_crossing() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut d = PromiseDecider::new(1 << 20, 0.2, 8, PROMISE_DEFAULT_C).unwrap();
        d.increment_by(1 << 22, &mut rng);
        assert_eq!(d.answer(), PromiseAnswer::Above);
        let frozen_y = d.y();
        d.increment_by(1 << 22, &mut rng);
        assert_eq!(d.y(), frozen_y, "Y must freeze past the threshold");
    }

    #[test]
    fn fast_forward_matches_step_distribution() {
        let t_param = 50_000u64;
        let n = 45_000u64;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let trials = 4_000;
        let mut ff = Vec::with_capacity(trials);
        let mut step = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut d = PromiseDecider::new(t_param, 0.3, 6, PROMISE_DEFAULT_C).unwrap();
            d.increment_by(n, &mut rng);
            ff.push(d.y() as f64);
            let mut d = PromiseDecider::new(t_param, 0.3, 6, PROMISE_DEFAULT_C).unwrap();
            for _ in 0..n {
                d.increment(&mut rng);
            }
            step.push(d.y() as f64);
        }
        let ks = ac_stats::ks::ks_two_sample(&ff, &step);
        assert!(ks.p_value > 0.001, "KS p = {}", ks.p_value);
    }
}
