//! **Algorithm 1** of Nelson & Yu: the optimal approximate counter.
//!
//! The counter runs a sequence of promise decision problems: in the epoch
//! at level `X`, it samples increments into an auxiliary counter `Y` at
//! rate `α = 2^{-t}` and advances to the next epoch (incrementing `X`)
//! when `Y` exceeds the threshold `⌊αT⌋` with `T = ⌈(1+ε)^X⌉`. Queries
//! return `Y` during the initial exact epoch and `T` afterwards.
//!
//! Storage follows Remark 2.2 exactly: only `X`, `Y` and the sampling
//! exponent `t` are program state; `T`, `η` and `α` are recomputed from
//! `X` and the program constants `(ε, Δ, C)`; the `Bernoulli(2^{-t})` coin
//! is realized by `t` fair coin flips
//! ([`BernoulliPow2`](ac_randkit::BernoulliPow2)); `α` is rounded up to an
//! inverse power of two so the `Y`-rescale on epoch change
//! (`Y ← ⌊Y·α_new/α_old⌋`) is a right shift.
//!
//! Batch updates ([`ApproxCounter::increment_by`]) and merges run on the
//! same per-epoch decomposition, replacing per-trial coins with one
//! `Binomial` subsampling draw per epoch (see
//! [`BernoulliPow2::sample_n`](ac_randkit::BernoulliPow2::sample_n)).

use crate::params::NyParams;
use crate::{ApproxCounter, CoreError};
use ac_bitio::{bit_len, MemoryAudit, StateBits};
use ac_randkit::{BernoulliPow2, RandomSource};

/// The Nelson–Yu counter (Algorithm 1), achieving
/// `O(log log N + log(1/ε) + log log(1/δ))` bits with the
/// doubly-exponential space tail of Theorem 2.3.
#[derive(Debug, Clone, PartialEq)]
pub struct NelsonYuCounter {
    params: NyParams,
    /// The level `X` (starts at `X₀`).
    x: u64,
    /// The auxiliary sampled counter `Y`.
    y: u64,
    /// Sampling exponent: `α = 2^{-t}`. Monotone nondecreasing over the
    /// counter's lifetime (required for mergeability, Remark 2.4).
    t: u32,
    /// Cached epoch threshold `⌊T(X)·2^{-t}⌋` (scratch, recomputed on
    /// epoch change; not counted as state).
    threshold: u64,
    /// Memory high-water mark (instrumentation, not state).
    peak: u64,
}

impl NelsonYuCounter {
    /// Creates the counter for the given parameter schedule (Init lines
    /// 3–4 of Algorithm 1).
    #[must_use]
    pub fn new(params: NyParams) -> Self {
        let x0 = params.x0();
        let threshold = params.threshold_for(x0, 0);
        let mut this = Self {
            params,
            x: x0,
            y: 0,
            t: 0,
            threshold,
            peak: 0,
        };
        this.peak = this.state_bits();
        this
    }

    /// The parameter schedule.
    #[must_use]
    pub fn params(&self) -> &NyParams {
        &self.params
    }

    /// The current level `X`.
    #[must_use]
    pub fn level(&self) -> u64 {
        self.x
    }

    /// The current auxiliary counter `Y`.
    #[must_use]
    pub fn y(&self) -> u64 {
        self.y
    }

    /// The current sampling exponent `t` (`α = 2^{-t}`).
    #[must_use]
    pub fn sampling_exponent(&self) -> u32 {
        self.t
    }

    /// The current sampling rate `α = 2^{-t}`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        (-f64::from(self.t)).exp2()
    }

    /// The current epoch index `k = X − X₀` (0 = the exact epoch).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.x - self.params.x0()
    }

    /// True while queries are answered exactly (`X = X₀`, `α = 1`).
    #[must_use]
    pub fn in_exact_epoch(&self) -> bool {
        self.x == self.params.x0()
    }

    /// The epoch-advance threshold currently in force.
    #[must_use]
    pub fn current_threshold(&self) -> u64 {
        self.threshold
    }

    /// The full persistent state `(X, Y, t)` for serialization.
    #[must_use]
    pub fn state_parts(&self) -> (u64, u64, u32) {
        (self.x, self.y, self.t)
    }

    /// Restores a state captured by [`NelsonYuCounter::state_parts`]
    /// (deserialization, e.g. unpacking a packed counter array).
    ///
    /// # Panics
    ///
    /// Panics if the state violates the schedule invariants
    /// (`x < X₀`, a sampling exponent below the schedule's, or `Y` above
    /// the epoch threshold).
    pub fn restore_parts(&mut self, x: u64, y: u64, t: u32) {
        self.try_restore_parts(x, y, t)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// The checked form of [`NelsonYuCounter::restore_parts`], for decode
    /// paths where an invalid state must surface as an error (corrupt or
    /// mismatched serialized data) rather than a panic.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidState`] when the parts violate the
    /// schedule invariants.
    pub fn try_restore_parts(&mut self, x: u64, y: u64, t: u32) -> Result<(), CoreError> {
        if x < self.params.x0() {
            return Err(CoreError::InvalidState {
                what: "level below X0",
            });
        }
        if t < self.params.alpha_exponent(x) {
            return Err(CoreError::InvalidState {
                what: "sampling exponent below schedule",
            });
        }
        let threshold = self.params.threshold_for(x, t);
        if y > threshold {
            return Err(CoreError::InvalidState {
                what: "Y above epoch threshold",
            });
        }
        self.x = x;
        self.y = y;
        self.t = t;
        self.threshold = threshold;
        self.peak = self.peak.max(self.state_bits());
        Ok(())
    }

    /// Lines 8–12 of Algorithm 1: enter the next epoch and rescale `Y`.
    fn advance_epoch(&mut self) {
        self.x += 1;
        // α rounded up to an inverse power of two (Remark 2.2), clamped
        // monotone so the sampling rate never increases (Remark 2.4).
        let t_new = self.params.alpha_exponent(self.x).max(self.t);
        // Y ← ⌊Y · α_new/α_old⌋ is exactly a right shift.
        self.y >>= t_new - self.t;
        self.t = t_new;
        self.threshold = self.params.threshold_for(self.x, self.t);
    }

    /// Restores the `Y ≤ threshold` invariant after a survivor landed.
    #[inline]
    fn settle(&mut self) {
        while self.y > self.threshold {
            self.advance_epoch();
        }
        self.peak = self.peak.max(self.state_bits());
    }

    /// Absorbs `count` survivors that were accepted at sampling rate
    /// `2^{-t_src}` (with `t_src ≤ t`) into `Y`, re-thinning across every
    /// epoch advance.
    ///
    /// This is the batched engine behind both [`ApproxCounter::increment_by`]
    /// (raw increments are "survivors at rate 1", `t_src = 0`) and the
    /// Remark 2.4 merge replay. Correctness rests on the fact that
    /// Bernoulli thinning composes: a trial that survived rate `2^{-t_src}`
    /// and an independent keep with probability `2^{-(t − t_src)}` is
    /// exactly a survivor at rate `2^{-t}`, so one `Binomial` draw per
    /// epoch reproduces the per-trial dynamics — the pending survivors
    /// past an epoch boundary are precisely the trials the sequential
    /// counter would have flipped at the new, lower rate.
    fn absorb_survivors(&mut self, count: u64, t_src: u32, rng: &mut dyn RandomSource) {
        debug_assert!(t_src <= self.t, "sampling rate must be non-increasing");
        // Bring the batch to the current rate in a single bulk draw.
        let mut pending = if self.t > t_src {
            BernoulliPow2::new(self.t - t_src).sample_n(count, rng)
        } else {
            count
        };
        while pending > 0 {
            // Survivors up to `threshold + 1` land at the current rate;
            // the one reaching `threshold + 1` triggers the advance.
            let take = pending.min(self.threshold + 1 - self.y);
            self.y += take;
            pending -= take;
            while self.y > self.threshold {
                let t_before = self.t;
                self.advance_epoch();
                if pending > 0 && self.t > t_before {
                    pending = BernoulliPow2::new(self.t - t_before).sample_n(pending, rng);
                }
            }
        }
        self.peak = self.peak.max(self.state_bits());
    }

    /// Merges `other` into `self` (Remark 2.4: the counter is *fully
    /// mergeable* — nothing is lost in `ε` or `δ`).
    ///
    /// The per-epoch survivor counts of the lower counter are
    /// deterministic functions of the schedule (every epoch ends exactly
    /// at `threshold + 1`), so they can be replayed into the higher
    /// counter: a survivor accepted at rate `α_i` is re-accepted at the
    /// current rate `α` with probability `α/α_i = 2^{-(t − t_i)}`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MergeMismatch`] if the schedules differ.
    pub fn merge_from(
        &mut self,
        other: &NelsonYuCounter,
        rng: &mut dyn RandomSource,
    ) -> Result<(), CoreError> {
        if self.params != other.params {
            return Err(CoreError::MergeMismatch {
                what: "NyParams schedule",
            });
        }
        // Identify the lower counter; its survivors get replayed into the
        // higher one. On ties either order is valid.
        let (lo_x, lo_y, lo_t) = if self.x >= other.x {
            (other.x, other.y, other.t)
        } else {
            let prev = (self.x, self.y, self.t);
            // Adopt the higher counter's state, then replay our own
            // survivors into it.
            self.x = other.x;
            self.y = other.y;
            self.t = other.t;
            self.threshold = other.threshold;
            prev
        };

        let x0 = self.params.x0();
        // Replay full epochs x0..lo_x, then the partial current epoch.
        // Each epoch's survivors were accepted at rate 2^-t_i and are
        // re-absorbed with one binomial thinning draw per epoch crossed.
        for level in x0..=lo_x {
            let (survivors, t_i) = if level == lo_x {
                let (y_start, _) = self.params.epoch_y_span(level);
                (lo_y.saturating_sub(y_start), lo_t)
            } else {
                let (y_start, y_end) = self.params.epoch_y_span(level);
                (y_end - y_start, self.params.monotone_exponent(level))
            };
            self.absorb_survivors(survivors, t_i, rng);
        }
        self.peak = self.peak.max(self.state_bits());
        Ok(())
    }
}

impl crate::Mergeable for NelsonYuCounter {
    fn merge_from(&mut self, other: &Self, rng: &mut dyn RandomSource) -> Result<(), CoreError> {
        NelsonYuCounter::merge_from(self, other, rng)
    }
}

impl StateBits for NelsonYuCounter {
    fn state_bits(&self) -> u64 {
        // Conservative accounting per the Theorem 2.3 proof:
        // O(log X + log Y + log log(1/α)) — we charge the exact digit
        // counts of X, Y and t. (t is in fact derivable from X, so this
        // over-counts by bit_len(t); see params::alpha_exponent.)
        u64::from(bit_len(self.x))
            + u64::from(bit_len(self.y))
            + u64::from(bit_len(u64::from(self.t)))
    }

    fn memory_audit(&self) -> MemoryAudit {
        let mut audit = MemoryAudit::new();
        audit.field("X", u64::from(bit_len(self.x)));
        audit.field("Y", u64::from(bit_len(self.y)));
        audit.field("t", u64::from(bit_len(u64::from(self.t))));
        audit
    }
}

impl ApproxCounter for NelsonYuCounter {
    fn name(&self) -> &'static str {
        "nelson-yu"
    }

    #[inline]
    fn increment(&mut self, rng: &mut dyn RandomSource) {
        // Line 6: with probability α = 2^-t, Y ← Y + 1.
        let survived = self.t == 0 || BernoulliPow2::new(self.t).sample(rng);
        if survived {
            self.y += 1;
            self.settle();
        }
    }

    /// Fast-forward by per-epoch binomial subsampling: the whole batch is
    /// subsampled into `Y` with one `Binomial(n, 2^{-t})` draw, and every
    /// epoch boundary re-thins the not-yet-landed survivors to the new
    /// rate with one more draw — `O(1 + epochs crossed)` bulk draws total,
    /// versus `n` coins for the loop (or one geometric draw per survivor,
    /// of which there are `Θ(threshold)` per epoch).
    fn increment_by(&mut self, n: u64, rng: &mut dyn RandomSource) {
        self.absorb_survivors(n, 0, rng);
    }

    fn estimate(&self) -> f64 {
        // Query (lines 14–19): Y during the exact epoch, T afterwards.
        if self.in_exact_epoch() {
            self.y as f64
        } else {
            self.params.t_value(self.x)
        }
    }

    fn peak_state_bits(&self) -> u64 {
        self.peak
    }

    fn reset(&mut self) {
        let fresh = NelsonYuCounter::new(self.params);
        *self = fresh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_randkit::Xoshiro256PlusPlus;
    use ac_stats::Summary;

    fn params(eps: f64, d: u32) -> NyParams {
        NyParams::new(eps, d).unwrap()
    }

    #[test]
    fn starts_in_exact_epoch() {
        let c = NelsonYuCounter::new(params(0.2, 10));
        assert!(c.in_exact_epoch());
        assert_eq!(c.epoch(), 0);
        assert_eq!(c.alpha(), 1.0);
        assert_eq!(c.estimate(), 0.0);
    }

    #[test]
    fn exact_epoch_counts_exactly() {
        let mut c = NelsonYuCounter::new(params(0.2, 10));
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let t0 = c.current_threshold();
        for i in 1..=t0 {
            c.increment(&mut rng);
            assert_eq!(c.estimate(), i as f64, "exact while in epoch 0");
        }
        assert!(c.in_exact_epoch());
        // One more increment crosses into epoch 1.
        c.increment(&mut rng);
        assert!(!c.in_exact_epoch());
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn epoch_boundary_estimate_is_continuous_within_eps() {
        let eps = 0.2;
        let mut c = NelsonYuCounter::new(params(eps, 10));
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let t0 = c.current_threshold();
        c.increment_by(t0 + 1, &mut rng);
        let n = (t0 + 1) as f64;
        let rel = (c.estimate() - n).abs() / n;
        assert!(rel <= 2.0 * eps, "boundary jump {rel}");
    }

    #[test]
    fn estimates_are_nondecreasing_in_increments() {
        let mut c = NelsonYuCounter::new(params(0.3, 8));
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut prev = 0.0;
        for _ in 0..200_000 {
            c.increment(&mut rng);
            let e = c.estimate();
            assert!(e >= prev, "estimate regressed: {prev} -> {e}");
            prev = e;
        }
    }

    #[test]
    fn y_respects_threshold_invariant() {
        let mut c = NelsonYuCounter::new(params(0.25, 10));
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        for _ in 0..100_000 {
            c.increment(&mut rng);
            assert!(c.y() <= c.current_threshold());
        }
    }

    #[test]
    fn sampling_exponent_is_monotone() {
        let mut c = NelsonYuCounter::new(params(0.15, 12));
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut prev_t = 0;
        for _ in 0..300_000 {
            c.increment(&mut rng);
            assert!(c.sampling_exponent() >= prev_t);
            prev_t = c.sampling_exponent();
        }
        assert!(prev_t > 0, "sampling should have kicked in");
    }

    #[test]
    fn accuracy_at_target_parameters() {
        // ε = 0.2, δ = 2^-7: empirical failure rate of
        // P(|N̂-N| > 2εN) should be well under a few percent.
        let eps = 0.2;
        let p = params(eps, 7);
        let n = 300_000u64;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let trials = 2_000u32;
        let mut failures = 0u32;
        for _ in 0..trials {
            let mut c = NelsonYuCounter::new(p);
            c.increment_by(n, &mut rng);
            let rel = (c.estimate() - n as f64).abs() / n as f64;
            if rel > 2.0 * eps {
                failures += 1;
            }
        }
        let rate = f64::from(failures) / f64::from(trials);
        assert!(rate < 0.03, "failure rate {rate}");
    }

    #[test]
    fn estimates_concentrate_around_n() {
        let p = params(0.1, 10);
        let n = 1_000_000u64;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut s = Summary::new();
        for _ in 0..500 {
            let mut c = NelsonYuCounter::new(p);
            c.increment_by(n, &mut rng);
            s.push(c.estimate() / n as f64);
        }
        // Mean relative estimate within 10 % of 1, spread below ε-scale.
        assert!((s.mean() - 1.0).abs() < 0.1, "mean ratio {}", s.mean());
        assert!(s.stddev() < 0.1, "sd {}", s.stddev());
    }

    #[test]
    fn fast_forward_matches_step_distribution() {
        let p = params(0.3, 6);
        let n = 20_000u64;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let trials = 4_000;
        let mut ff = Vec::with_capacity(trials);
        let mut step = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut c = NelsonYuCounter::new(p);
            c.increment_by(n, &mut rng);
            ff.push(c.level() as f64);

            let mut c = NelsonYuCounter::new(p);
            for _ in 0..n {
                c.increment(&mut rng);
            }
            step.push(c.level() as f64);
        }
        let ks = ac_stats::ks::ks_two_sample(&ff, &step);
        assert!(ks.p_value > 0.001, "KS p={} D={}", ks.p_value, ks.statistic);
    }

    #[test]
    fn space_stays_near_theorem_bound() {
        // 10 million increments at ε=0.1, δ=2^-10: state should be tens
        // of bits, nowhere near log2(N) ≈ 23 for the Y register alone...
        // more precisely: X ≈ log_{1.1}(10^7) ≈ 169 (8 bits),
        // Y ≤ threshold ≈ C·ln(1/η)/ε² ≈ tens of thousands (17 bits).
        let p = params(0.1, 10);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut c = NelsonYuCounter::new(p);
        c.increment_by(10_000_000, &mut rng);
        assert!(
            c.peak_state_bits() < 40,
            "peak bits {} too large",
            c.peak_state_bits()
        );
        let audit = c.memory_audit();
        assert_eq!(audit.total_bits(), c.state_bits());
        assert_eq!(audit.fields().len(), 3);
    }

    #[test]
    fn merge_requires_same_schedule() {
        let mut a = NelsonYuCounter::new(params(0.1, 10));
        let b = NelsonYuCounter::new(params(0.2, 10));
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        assert!(matches!(
            a.merge_from(&b, &mut rng),
            Err(CoreError::MergeMismatch { .. })
        ));
    }

    #[test]
    fn merge_in_exact_epochs_is_exact_addition() {
        let p = params(0.2, 8);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut a = NelsonYuCounter::new(p);
        let mut b = NelsonYuCounter::new(p);
        a.increment_by(100, &mut rng);
        b.increment_by(50, &mut rng);
        a.merge_from(&b, &mut rng).unwrap();
        assert_eq!(a.estimate(), 150.0, "both in epoch 0: merge is exact");
    }

    #[test]
    fn merge_mean_is_additive() {
        let p = params(0.2, 8);
        let (n1, n2) = (60_000u64, 140_000u64);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(12);
        let mut s = Summary::new();
        for _ in 0..3_000 {
            let mut c1 = NelsonYuCounter::new(p);
            c1.increment_by(n1, &mut rng);
            let mut c2 = NelsonYuCounter::new(p);
            c2.increment_by(n2, &mut rng);
            c1.merge_from(&c2, &mut rng).unwrap();
            s.push(c1.estimate());
        }
        let total = (n1 + n2) as f64;
        assert!(
            (s.mean() - total).abs() / total < 0.05,
            "merged mean {} vs {total}",
            s.mean()
        );
    }

    #[test]
    fn merge_matches_sequential_distribution() {
        // The Remark 2.4 claim, checked on levels with a KS test.
        let p = params(0.3, 6);
        let (n1, n2) = (30_000u64, 50_000u64);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(13);
        let trials = 4_000;
        let mut merged = Vec::with_capacity(trials);
        let mut sequential = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut c1 = NelsonYuCounter::new(p);
            c1.increment_by(n1, &mut rng);
            let mut c2 = NelsonYuCounter::new(p);
            c2.increment_by(n2, &mut rng);
            c1.merge_from(&c2, &mut rng).unwrap();
            merged.push(c1.level() as f64);

            let mut c = NelsonYuCounter::new(p);
            c.increment_by(n1 + n2, &mut rng);
            sequential.push(c.level() as f64);
        }
        let ks = ac_stats::ks::ks_two_sample(&merged, &sequential);
        assert!(ks.p_value > 0.001, "KS p={} D={}", ks.p_value, ks.statistic);
    }

    #[test]
    fn merge_is_symmetric_in_distribution() {
        // merge(a, b) and merge(b, a) must agree in distribution; check
        // the means closely.
        let p = params(0.25, 8);
        let (n1, n2) = (10_000u64, 80_000u64);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(14);
        let mut ab = Summary::new();
        let mut ba = Summary::new();
        for _ in 0..2_000 {
            let mut c1 = NelsonYuCounter::new(p);
            c1.increment_by(n1, &mut rng);
            let mut c2 = NelsonYuCounter::new(p);
            c2.increment_by(n2, &mut rng);
            let mut m1 = c1.clone();
            m1.merge_from(&c2, &mut rng).unwrap();
            ab.push(m1.estimate());
            let mut m2 = c2;
            m2.merge_from(&c1, &mut rng).unwrap();
            ba.push(m2.estimate());
        }
        let rel = (ab.mean() - ba.mean()).abs() / ab.mean();
        assert!(rel < 0.03, "asymmetry {rel}");
    }

    #[test]
    fn reset_restores_fresh_state() {
        let p = params(0.2, 10);
        let mut c = NelsonYuCounter::new(p);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(15);
        c.increment_by(1_000_000, &mut rng);
        c.reset();
        assert_eq!(c, NelsonYuCounter::new(p));
    }

    #[test]
    fn bulk_zero_is_a_noop() {
        let p = params(0.2, 10);
        let mut c = NelsonYuCounter::new(p);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(16);
        c.increment_by(0, &mut rng);
        assert_eq!(c, NelsonYuCounter::new(p));
    }
}
