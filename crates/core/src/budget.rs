//! Fixed-bit-budget planning — the Figure 1 parameterization.
//!
//! The paper's experiment runs both algorithms "parameterized to use only
//! 17 bits of memory" on counts up to `10^6 − 1`. This module turns a
//! `(bit budget, maximum count)` pair into concrete counters:
//!
//! * [`plan_morris`] — the smallest base `a` (best accuracy) whose level
//!   register stays within the budget with a comfortable safety margin;
//! * [`plan_csuros`] — the widest mantissa `d` that fits;
//! * [`plan_nelson_yu`] — the smallest `ε` whose `(X, Y, t)` state fits.
//!
//! Planning margins are expressed in standard deviations of the relevant
//! register; the defaults ([`DEFAULT_SLACK_SIGMAS`]) make overflow a
//! `< 10⁻⁸` event per run. Counters are returned with hard register caps,
//! so even a pathological run cannot exceed the budget — it saturates
//! instead, exactly like a fixed-width hardware register.

use crate::{CoreError, CsurosCounter, MorrisCounter, NelsonYuCounter, NyParams};

/// Default planning margin, in standard deviations of the register being
/// sized (6σ ⇒ overflow probability ≈ 10⁻⁹ per trial).
pub const DEFAULT_SLACK_SIGMAS: f64 = 6.0;

/// Plans a [`MorrisCounter`] that uses at most `bits` bits of state for
/// counts up to `n_max`: the smallest (most accurate) base parameter `a`
/// such that the level `X` stays below `2^bits` with `slack_sigmas`
/// margin.
///
/// # Errors
///
/// Returns [`CoreError::BudgetInfeasible`] when even `a = 1` (the classic
/// counter) cannot fit.
pub fn plan_morris(bits: u32, n_max: u64, slack_sigmas: f64) -> Result<MorrisCounter, CoreError> {
    if bits == 0 || bits >= 63 {
        return Err(CoreError::BudgetInfeasible {
            bits,
            n_max,
            reason: "budget must be in 1..=62 bits",
        });
    }
    let cap = (1u64 << bits) - 1;
    // Required head-room: expected level + slack·sd(level). The level's
    // standard deviation is ≈ sqrt(1/(2a)) (the estimator's relative sd
    // sqrt(a/2) divided by the log-slope ln(1+a) ≈ a).
    let fits = |a: f64| -> bool {
        let expected = MorrisCounter::expected_level(a, n_max);
        let sd = (1.0 / (2.0 * a)).sqrt();
        expected + slack_sigmas * sd <= cap as f64
    };
    if !fits(1.0) {
        return Err(CoreError::BudgetInfeasible {
            bits,
            n_max,
            reason: "even the classic base-2 counter exceeds the budget",
        });
    }
    // fits(a) is monotone in a (larger a → smaller level and smaller
    // spread). Binary search the smallest feasible a.
    let (mut lo, mut hi) = (1e-15f64, 1.0f64);
    for _ in 0..200 {
        let mid = (lo * hi).sqrt(); // geometric bisection over 15 decades
        if fits(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    MorrisCounter::with_cap(hi, cap)
}

/// Plans a [`CsurosCounter`] that uses at most `bits` bits of state for
/// counts up to `n_max`: the widest mantissa `d` (best accuracy) whose
/// register stays below `2^bits` with `slack_sigmas` margin.
///
/// # Errors
///
/// Returns [`CoreError::BudgetInfeasible`] when no mantissa width fits.
pub fn plan_csuros(bits: u32, n_max: u64, slack_sigmas: f64) -> Result<CsurosCounter, CoreError> {
    if bits == 0 || bits >= 63 {
        return Err(CoreError::BudgetInfeasible {
            bits,
            n_max,
            reason: "budget must be in 1..=62 bits",
        });
    }
    let cap = (1u64 << bits) - 1;
    // Register sd ≈ 2^{(d-1)/2} (estimator relative sd 2^{-(d+1)/2}
    // times the register-per-relative-unit slope ≈ 2^d).
    for d in (0..=bits.min(58)).rev() {
        let expected = CsurosCounter::expected_register(d, n_max);
        let sd = ((f64::from(d) - 1.0) / 2.0).exp2();
        if expected + slack_sigmas * sd <= cap as f64 {
            return CsurosCounter::with_cap(d, cap);
        }
    }
    Err(CoreError::BudgetInfeasible {
        bits,
        n_max,
        reason: "even a 0-bit mantissa exceeds the budget",
    })
}

/// Plans a [`NelsonYuCounter`] that uses at most `bits` bits of state for
/// counts up to `n_max` at failure exponent `delta_log2`: the smallest
/// feasible `ε`.
///
/// The state estimate is analytical
/// (`bit_len(X_final) + bit_len(max threshold + 1) + bit_len(t_final)`);
/// the returned counter's `peak_state_bits` should be verified post-hoc by
/// the caller's experiment, which `fig1_error_cdf` does.
///
/// # Errors
///
/// Returns [`CoreError::BudgetInfeasible`] when even `ε` close to `1/2`
/// does not fit.
pub fn plan_nelson_yu(
    bits: u32,
    n_max: u64,
    delta_log2: u32,
) -> Result<NelsonYuCounter, CoreError> {
    let fits = |eps: f64| -> Option<u64> {
        let p = NyParams::new(eps, delta_log2).ok()?;
        Some(ny_state_estimate(&p, n_max))
    };
    let budget = u64::from(bits);
    if fits(0.49).is_none_or(|b| b > budget) {
        return Err(CoreError::BudgetInfeasible {
            bits,
            n_max,
            reason: "even eps = 0.49 exceeds the budget",
        });
    }
    // Feasibility is monotone in ε: smaller ε means more bits. Geometric
    // bisection for the smallest feasible ε.
    let (mut lo, mut hi) = (1e-6f64, 0.49f64);
    for _ in 0..120 {
        let mid = (lo * hi).sqrt();
        match fits(mid) {
            Some(b) if b <= budget => hi = mid,
            _ => lo = mid,
        }
    }
    Ok(NelsonYuCounter::new(NyParams::new(hi, delta_log2)?))
}

/// Analytic estimate of the Nelson–Yu counter's worst-case state bits over
/// a run of `n_max` increments: the per-level maximum of
/// `bit_len(X) + bit_len(threshold(X) + 1) + bit_len(t(X))` across the
/// schedule, with a few levels of head-room for the upward fluctuation of
/// `X` (the level concentrates within `O(ε)` relative error, so +4 levels
/// is generous).
fn ny_state_estimate(p: &NyParams, n_max: u64) -> u64 {
    let x_final = (((n_max.max(2)) as f64).ln() / p.eps().ln_1p()).ceil() as u64;
    let x_final = x_final.max(p.x0() + 1) + 4;
    let mut worst = 0u64;
    let mut t = 0u32;
    for level in p.x0()..=x_final {
        t = t.max(p.alpha_exponent(level));
        let y_max = p.threshold_for(level, t) + 1;
        let bits = u64::from(ac_bitio::bit_len(level))
            + u64::from(ac_bitio::bit_len(y_max))
            + u64::from(ac_bitio::bit_len(u64::from(t)));
        worst = worst.max(bits);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproxCounter;
    use ac_randkit::Xoshiro256PlusPlus;

    const FIG1_BITS: u32 = 17;
    const FIG1_NMAX: u64 = 999_999;

    #[test]
    fn morris_plan_fits_and_fills_figure1_budget() {
        let c = plan_morris(FIG1_BITS, FIG1_NMAX, DEFAULT_SLACK_SIGMAS).unwrap();
        // Expected level must be within budget but use most of it (at
        // least half the register range, else the plan wasted accuracy).
        let cap = (1u64 << FIG1_BITS) - 1;
        let expected = MorrisCounter::expected_level(c.a(), FIG1_NMAX);
        assert!(expected < cap as f64);
        assert!(expected > cap as f64 / 8.0, "under-utilized: {expected}");
        assert_eq!(c.cap(), Some(cap));
    }

    #[test]
    fn morris_plan_respects_budget_in_simulation() {
        let mut c = plan_morris(FIG1_BITS, FIG1_NMAX, DEFAULT_SLACK_SIGMAS).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..20 {
            c.reset();
            c.increment_by(FIG1_NMAX, &mut rng);
            assert!(c.peak_state_bits() <= u64::from(FIG1_BITS));
            assert!(!c.saturated(), "plan must leave slack");
        }
    }

    #[test]
    fn morris_plan_accuracy_improves_with_budget() {
        let small = plan_morris(12, FIG1_NMAX, DEFAULT_SLACK_SIGMAS).unwrap();
        let large = plan_morris(20, FIG1_NMAX, DEFAULT_SLACK_SIGMAS).unwrap();
        assert!(
            large.a() < small.a(),
            "more bits should buy a smaller (more accurate) base"
        );
    }

    #[test]
    fn morris_plan_infeasible_for_tiny_budget() {
        // 2 bits cannot hold the classic counter's level ≈ log2(10^6) = 20.
        assert!(matches!(
            plan_morris(2, FIG1_NMAX, DEFAULT_SLACK_SIGMAS),
            Err(CoreError::BudgetInfeasible { .. })
        ));
    }

    #[test]
    fn csuros_plan_fits_figure1_budget() {
        let c = plan_csuros(FIG1_BITS, FIG1_NMAX, DEFAULT_SLACK_SIGMAS).unwrap();
        assert!(c.mantissa_bits() >= 10, "d = {}", c.mantissa_bits());
        let mut c = c;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for _ in 0..20 {
            c.reset();
            c.increment_by(FIG1_NMAX, &mut rng);
            assert!(c.peak_state_bits() <= u64::from(FIG1_BITS));
            assert!(!c.saturated());
        }
    }

    #[test]
    fn csuros_plan_uses_wider_mantissa_with_more_bits() {
        let small = plan_csuros(12, FIG1_NMAX, DEFAULT_SLACK_SIGMAS).unwrap();
        let large = plan_csuros(20, FIG1_NMAX, DEFAULT_SLACK_SIGMAS).unwrap();
        assert!(large.mantissa_bits() > small.mantissa_bits());
    }

    #[test]
    fn ny_plan_fits_budget_empirically() {
        let mut c = plan_nelson_yu(24, FIG1_NMAX, 10).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..10 {
            c.reset();
            c.increment_by(FIG1_NMAX, &mut rng);
            assert!(
                c.peak_state_bits() <= 24,
                "peak {} bits",
                c.peak_state_bits()
            );
        }
        // And the chosen ε should not be absurdly loose.
        assert!(c.params().eps() < 0.49);
    }

    #[test]
    fn ny_plan_infeasible_for_tiny_budget() {
        assert!(matches!(
            plan_nelson_yu(4, FIG1_NMAX, 10),
            Err(CoreError::BudgetInfeasible { .. })
        ));
    }

    #[test]
    fn planned_counters_have_comparable_error_scales() {
        // The Figure 1 phenomenon: at an equal bit budget, Morris and the
        // simplified-NY/Csűrös counter have error CDFs of the same scale.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let trials = 600;
        let n = 750_000u64;
        let mut errs = Vec::new();
        for _ in 0..2 {
            errs.push(Vec::with_capacity(trials));
        }
        for _ in 0..trials {
            let mut m = plan_morris(FIG1_BITS, FIG1_NMAX, DEFAULT_SLACK_SIGMAS).unwrap();
            m.increment_by(n, &mut rng);
            errs[0].push(((m.estimate() - n as f64) / n as f64).abs());

            let mut cs = plan_csuros(FIG1_BITS, FIG1_NMAX, DEFAULT_SLACK_SIGMAS).unwrap();
            cs.increment_by(n, &mut rng);
            errs[1].push(((cs.estimate() - n as f64) / n as f64).abs());
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let m_med = med(&mut errs[0]);
        let c_med = med(&mut errs[1]);
        // Same order of magnitude (within 4x), both sub-2 %.
        assert!(m_med < 0.02 && c_med < 0.02, "medians {m_med} {c_med}");
        let ratio = (m_med / c_med).max(c_med / m_med);
        assert!(ratio < 4.0, "scales differ: {m_med} vs {c_med}");
    }
}
