//! Ablation variant of Algorithm 1 with *unrounded* sampling rates.
//!
//! Remark 2.2 rounds `α` up to an inverse power of two so that (a) the
//! `Bernoulli(α)` coin costs `t` fair flips and (b) the `Y`-rescale is a
//! right shift. [`ExactAlphaNelsonYu`] is the literal Algorithm 1 with
//! `α = min{1, C·ln(1/η)/(ε³T)}` kept as a real number — the reference
//! against which the rounding's accuracy cost is measured (experiment
//! E10). Its state accounting is idealized (a real machine cannot store
//! `α` exactly); we charge `X` and `Y` only, plus a notional
//! `bit_len(t)` with `t = ⌈log₂(1/α)⌉` for comparability.

use crate::params::NyParams;
use crate::{ApproxCounter, CoreError};
use ac_bitio::{bit_len, MemoryAudit, StateBits};
use ac_randkit::{Bernoulli, Geometric, RandomSource};

/// Algorithm 1 with exact (f64) sampling rates — the no-rounding
/// ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactAlphaNelsonYu {
    params: NyParams,
    x: u64,
    y: u64,
    alpha: f64,
    threshold: u64,
    peak: u64,
}

impl ExactAlphaNelsonYu {
    /// Creates the counter (Init lines 3–4 with unrounded `α = 1`).
    #[must_use]
    pub fn new(params: NyParams) -> Self {
        let x0 = params.x0();
        let threshold = params.t_value(x0) as u64;
        let mut this = Self {
            params,
            x: x0,
            y: 0,
            alpha: 1.0,
            threshold,
            peak: 0,
        };
        this.peak = this.state_bits();
        this
    }

    /// The parameter schedule.
    #[must_use]
    pub fn params(&self) -> &NyParams {
        &self.params
    }

    /// The current level `X`.
    #[must_use]
    pub fn level(&self) -> u64 {
        self.x
    }

    /// The current sampling rate `α` (unrounded).
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The unrounded line-10 rate for level `x`, clamped monotone
    /// non-increasing against `current`.
    fn alpha_for(&self, x: u64, current: f64) -> f64 {
        let raw = self.params.c() * self.params.ln_inv_eta(x)
            / (self.params.eps().powi(3) * self.params.t_value(x));
        raw.min(1.0).min(current)
    }

    /// Lines 8–12 with real-valued `α` and the literal
    /// `Y ← ⌊Y·α_new/α_old⌋`.
    fn advance_epoch(&mut self) {
        self.x += 1;
        let alpha_new = self.alpha_for(self.x, self.alpha);
        self.y = ((self.y as f64) * (alpha_new / self.alpha)).floor() as u64;
        self.alpha = alpha_new;
        self.threshold = ((self.params.t_value(self.x) * self.alpha).floor() as u64).max(1);
    }

    fn settle(&mut self) {
        while self.y > self.threshold {
            self.advance_epoch();
        }
        self.peak = self.peak.max(self.state_bits());
    }
}

impl StateBits for ExactAlphaNelsonYu {
    fn state_bits(&self) -> u64 {
        // Notional t for comparability with the rounded implementation.
        let t = if self.alpha >= 1.0 {
            0
        } else {
            (1.0 / self.alpha).log2().ceil() as u64
        };
        u64::from(bit_len(self.x)) + u64::from(bit_len(self.y)) + u64::from(bit_len(t))
    }

    fn memory_audit(&self) -> MemoryAudit {
        let mut audit = MemoryAudit::new();
        audit.field("X", u64::from(bit_len(self.x)));
        audit.field("Y", u64::from(bit_len(self.y)));
        audit.field(
            "t~",
            self.state_bits() - u64::from(bit_len(self.x)) - u64::from(bit_len(self.y)),
        );
        audit
    }
}

impl ApproxCounter for ExactAlphaNelsonYu {
    fn name(&self) -> &'static str {
        "nelson-yu-exact-alpha"
    }

    #[inline]
    fn increment(&mut self, rng: &mut dyn RandomSource) {
        let survived = self.alpha >= 1.0
            || Bernoulli::new(self.alpha)
                .expect("alpha in (0,1]")
                .sample(rng);
        if survived {
            self.y += 1;
            self.settle();
        }
    }

    fn increment_by(&mut self, n: u64, rng: &mut dyn RandomSource) {
        let mut budget = n;
        while budget > 0 {
            if self.alpha >= 1.0 {
                let need = self.threshold + 1 - self.y;
                if budget < need {
                    self.y += budget;
                    budget = 0;
                } else {
                    budget -= need;
                    self.y += need;
                    self.settle();
                }
            } else {
                match Geometric::new(self.alpha)
                    .expect("alpha in (0,1)")
                    .sample_within(budget, rng)
                {
                    Some(z) => {
                        budget -= z;
                        self.y += 1;
                        self.settle();
                    }
                    None => budget = 0,
                }
            }
        }
        self.peak = self.peak.max(self.state_bits());
    }

    fn estimate(&self) -> f64 {
        if self.x == self.params.x0() {
            self.y as f64
        } else {
            self.params.t_value(self.x)
        }
    }

    fn peak_state_bits(&self) -> u64 {
        self.peak
    }

    fn reset(&mut self) {
        *self = ExactAlphaNelsonYu::new(self.params);
    }
}

/// Convenience constructor mirroring [`NyParams::new`].
///
/// # Errors
///
/// Propagates parameter validation.
pub fn exact_alpha_counter(eps: f64, delta_log2: u32) -> Result<ExactAlphaNelsonYu, CoreError> {
    Ok(ExactAlphaNelsonYu::new(NyParams::new(eps, delta_log2)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_randkit::Xoshiro256PlusPlus;

    #[test]
    fn exact_epoch_counts_exactly() {
        let c = exact_alpha_counter(0.2, 10).unwrap();
        let mut c = c;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let t0 = c.threshold;
        for i in 1..=t0 {
            c.increment(&mut rng);
            assert_eq!(c.estimate(), i as f64);
        }
    }

    #[test]
    fn alpha_is_monotone_nonincreasing() {
        let mut c = exact_alpha_counter(0.25, 8).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut prev = c.alpha();
        for _ in 0..200_000 {
            c.increment(&mut rng);
            assert!(c.alpha() <= prev + 1e-15);
            prev = c.alpha();
        }
        assert!(prev < 1.0, "sampling should have kicked in");
    }

    #[test]
    fn accuracy_matches_rounded_variant() {
        // The rounded and exact-alpha implementations must agree in
        // accuracy scale (that is the point of the ablation).
        use crate::NelsonYuCounter;
        let p = NyParams::new(0.2, 7).unwrap();
        let n = 300_000u64;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let trials = 1_500;
        let mut exact_err = 0.0;
        let mut rounded_err = 0.0;
        for _ in 0..trials {
            let mut a = ExactAlphaNelsonYu::new(p);
            a.increment_by(n, &mut rng);
            exact_err += ((a.estimate() - n as f64) / n as f64).abs();
            let mut b = NelsonYuCounter::new(p);
            b.increment_by(n, &mut rng);
            rounded_err += ((b.estimate() - n as f64) / n as f64).abs();
        }
        let (ea, eb) = (exact_err / trials as f64, rounded_err / trials as f64);
        assert!(ea < 0.2 && eb < 0.2, "mean errors {ea} {eb}");
        let ratio = (ea / eb).max(eb / ea);
        assert!(
            ratio < 2.0,
            "rounding should not change the error scale: {ea} vs {eb}"
        );
    }

    #[test]
    fn space_matches_rounded_variant_within_two_bits() {
        use crate::NelsonYuCounter;
        let p = NyParams::new(0.15, 10).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut a = ExactAlphaNelsonYu::new(p);
        let mut b = NelsonYuCounter::new(p);
        a.increment_by(5_000_000, &mut rng);
        b.increment_by(5_000_000, &mut rng);
        let diff = (a.peak_state_bits() as i64 - b.peak_state_bits() as i64).abs();
        assert!(
            diff <= 2,
            "peaks {} vs {}",
            a.peak_state_bits(),
            b.peak_state_bits()
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut c = exact_alpha_counter(0.3, 6).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        c.increment_by(100_000, &mut rng);
        c.reset();
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.alpha(), 1.0);
    }
}
