//! The deterministic `⌈log₂N⌉`-bit baseline counter.

use crate::ApproxCounter;
use ac_bitio::{bit_len, MemoryAudit, StateBits};
use ac_randkit::RandomSource;

/// The naive exact counter: stores `N` itself in `bit_len(N)` bits.
///
/// This is both the correctness oracle in tests and the baseline whose
/// `Θ(log N)` space the approximate counters beat. It also matches the
/// first branch of the paper's lower bound
/// `Ω(min{log n, …})` — for small `n`, exact counting is optimal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExactCounter {
    n: u64,
    peak: u64,
}

impl ExactCounter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The exact current count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }
}

impl StateBits for ExactCounter {
    fn state_bits(&self) -> u64 {
        u64::from(bit_len(self.n))
    }

    fn memory_audit(&self) -> MemoryAudit {
        let mut a = MemoryAudit::new();
        a.field("N", self.state_bits());
        a
    }
}

impl crate::Mergeable for ExactCounter {
    /// Exact counters merge by exact addition (saturating at `u64::MAX`);
    /// no randomness is consumed.
    fn merge_from(
        &mut self,
        other: &Self,
        _rng: &mut dyn RandomSource,
    ) -> Result<(), crate::CoreError> {
        self.n = self.n.saturating_add(other.n);
        self.peak = self.peak.max(self.state_bits());
        Ok(())
    }
}

impl ApproxCounter for ExactCounter {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn increment(&mut self, _rng: &mut dyn RandomSource) {
        self.n += 1;
        self.peak = self.peak.max(self.state_bits());
    }

    fn increment_by(&mut self, n: u64, _rng: &mut dyn RandomSource) {
        self.n += n;
        self.peak = self.peak.max(self.state_bits());
    }

    fn estimate(&self) -> f64 {
        self.n as f64
    }

    fn peak_state_bits(&self) -> u64 {
        self.peak
    }

    fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_randkit::Xoshiro256PlusPlus;

    #[test]
    fn exact_counting() {
        let mut c = ExactCounter::new();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for i in 1..=100u64 {
            c.increment(&mut rng);
            assert_eq!(c.count(), i);
            assert_eq!(c.estimate(), i as f64);
        }
    }

    #[test]
    fn bulk_equals_loop() {
        let mut a = ExactCounter::new();
        let mut b = ExactCounter::new();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        a.increment_by(12_345, &mut rng);
        for _ in 0..12_345 {
            b.increment(&mut rng);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn state_bits_is_log_n() {
        let mut c = ExactCounter::new();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        c.increment_by(1 << 20, &mut rng);
        assert_eq!(c.state_bits(), 21);
        assert_eq!(c.peak_state_bits(), 21);
    }

    #[test]
    fn reset_restores_zero() {
        let mut c = ExactCounter::new();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        c.increment_by(10, &mut rng);
        c.reset();
        assert_eq!(c.count(), 0);
        assert_eq!(c.peak_state_bits(), 0);
        assert_eq!(c.state_bits(), 1, "a zeroed register still has width 1");
    }
}
