//! `Morris(a)` — the original 1978 approximate counter, parameterized by
//! the base `1 + a` as in §1.2 of the paper.

use crate::{ApproxCounter, CoreError};
use ac_bitio::{bit_len, MemoryAudit, StateBits};
use ac_randkit::{Bernoulli, Geometric, GeometricLadder, RandomSource};

/// The Morris Counter `Morris(a)`: stores a level `X`, increments it with
/// probability `(1+a)^{-X}`, and estimates `N̂ = a⁻¹((1+a)^X − 1)`.
///
/// * The estimator is unbiased with variance `a·N(N−1)/2` (§1.2); tests
///   verify both.
/// * `a = 1` is Morris' original base-2 counter
///   ([`MorrisCounter::classic`]), which by \[Fla85\] *cannot* achieve
///   success probability better than a constant (experiment E3).
/// * With `a = ε²/(8 ln(1/δ))` and the Morris+ prefix tweak it achieves
///   the optimal bound of Theorem 1.2 (see
///   [`MorrisPlus`](crate::MorrisPlus)).
///
/// An optional level cap models a fixed-width hardware register (used by
/// the Figure 1 "17 bits of memory" parameterization); when the cap is
/// reached the counter saturates.
#[derive(Debug, Clone, PartialEq)]
pub struct MorrisCounter {
    /// The level `X`.
    x: u64,
    /// The base parameter `a > 0`.
    a: f64,
    /// Precomputed `ln(1+a)`.
    ln1a: f64,
    /// Saturation level (`None` = unbounded).
    x_cap: Option<u64>,
    /// Memory high-water mark (instrumentation, not state).
    peak: u64,
}

impl MorrisCounter {
    /// Creates `Morris(a)` with unbounded level.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBase`] unless `a` is finite and
    /// positive.
    pub fn new(a: f64) -> Result<Self, CoreError> {
        if !(a.is_finite() && a > 0.0) {
            return Err(CoreError::InvalidBase { got: a });
        }
        let mut this = Self {
            x: 0,
            a,
            ln1a: a.ln_1p(),
            x_cap: None,
            peak: 0,
        };
        this.peak = this.state_bits();
        Ok(this)
    }

    /// Creates `Morris(a)` whose level register saturates at `x_cap`
    /// (a `bit_len(x_cap)`-bit register).
    ///
    /// # Errors
    ///
    /// Same as [`MorrisCounter::new`].
    pub fn with_cap(a: f64, x_cap: u64) -> Result<Self, CoreError> {
        let mut c = Self::new(a)?;
        c.x_cap = Some(x_cap);
        Ok(c)
    }

    /// Morris' original counter: base 2 (`a = 1`), increment probability
    /// `2^{-X}`, estimator `2^X − 1`.
    #[must_use]
    pub fn classic() -> Self {
        Self::new(1.0).expect("a = 1 is valid")
    }

    /// The base parameter `a`.
    #[must_use]
    pub fn a(&self) -> f64 {
        self.a
    }

    /// The current level `X`.
    #[must_use]
    pub fn level(&self) -> u64 {
        self.x
    }

    /// The saturation cap, if any.
    #[must_use]
    pub fn cap(&self) -> Option<u64> {
        self.x_cap
    }

    /// True when a capped counter has hit its cap and stopped moving.
    #[must_use]
    pub fn saturated(&self) -> bool {
        self.x_cap.is_some_and(|cap| self.x >= cap)
    }

    /// The probability that the *next* increment advances the level:
    /// `(1+a)^{-X}` (0 when saturated).
    #[must_use]
    pub fn advance_probability(&self) -> f64 {
        if self.saturated() {
            0.0
        } else {
            (-(self.x as f64) * self.ln1a).exp()
        }
    }

    /// The level the counter concentrates around after `n` increments:
    /// `log_{1+a}(a·n + 1)` (from `E[(1+a)^X] = a·n + 1`).
    #[must_use]
    pub fn expected_level(a: f64, n: u64) -> f64 {
        (a * n as f64).ln_1p() / a.ln_1p()
    }

    /// Directly sets the level `X` — the counter's entire state — for
    /// deserialization (e.g. unpacking from a
    /// [`BitVec`](ac_bitio::BitVec)-packed counter array) and
    /// diagnostics. Respects the cap.
    pub fn set_level(&mut self, x: u64) {
        self.x = match self.x_cap {
            Some(cap) => x.min(cap),
            None => x,
        };
        self.peak = self.peak.max(self.state_bits());
    }

    /// Merges another Morris counter into this one (`[CY20, §2.1]`).
    ///
    /// After merging, the state of `self` is distributed as if it had
    /// processed all increments seen by both counters. The procedure:
    /// starting from the larger level `X = max(X₁, X₂)`, replay each level
    /// `j = 1..=min(X₁, X₂)` of the other counter, incrementing `X` with
    /// probability `(1+a)^{j-1-X}`.
    ///
    /// Capped counters: if the replay saturates the register the remaining
    /// levels are absorbed without drawing randomness — exactly as the
    /// sequential counter ignores increments past its cap — and the merged
    /// counter sits at the cap.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MergeMismatch`] if the base parameters or caps
    /// differ.
    pub fn merge_from(
        &mut self,
        other: &MorrisCounter,
        rng: &mut dyn RandomSource,
    ) -> Result<(), CoreError> {
        if self.a.to_bits() != other.a.to_bits() {
            return Err(CoreError::MergeMismatch {
                what: "base parameter a",
            });
        }
        if self.x_cap != other.x_cap {
            return Err(CoreError::MergeMismatch { what: "level cap" });
        }
        let (hi, lo) = (self.x.max(other.x), self.x.min(other.x));
        self.x = hi;
        for j in 1..=lo {
            if self.saturated() {
                // Saturated-merge semantics: once the register hits its
                // cap it absorbs all further increments, so the remaining
                // replay levels cannot move it — stop instead of drawing
                // (and discarding) a Bernoulli sample per level.
                break;
            }
            // Accept with probability (1+a)^(j-1-X): one level of the
            // smaller counter "weighs" (1+a)^(j-1) increments relative to
            // the current acceptance rate (1+a)^(-X).
            let p = ((j as f64 - 1.0 - self.x as f64) * self.ln1a).exp();
            debug_assert!(p <= 1.0 + 1e-12, "j-1 <= lo <= X must hold");
            if Bernoulli::new(p.min(1.0))
                .expect("probability in range")
                .sample(rng)
            {
                self.x += 1;
            }
        }
        self.peak = self.peak.max(self.state_bits());
        Ok(())
    }
}

impl crate::Mergeable for MorrisCounter {
    fn merge_from(&mut self, other: &Self, rng: &mut dyn RandomSource) -> Result<(), CoreError> {
        MorrisCounter::merge_from(self, other, rng)
    }
}

/// The exact distribution of the `Morris(a)` level `X` after `n`
/// increments, by forward dynamic programming over levels:
/// `P[X' = j] = P[X = j]·(1 − p_j) + P[X = j−1]·p_{j−1}` with
/// `p_j = (1+a)^{-j}`.
///
/// Returns `dist` with `dist[j] = P[X = j after n increments]`
/// (`len = n + 1`). Exact up to f64 rounding — this is how experiment E4
/// evaluates Appendix A's `≈ 10⁻⁹` failure probabilities, far below
/// Monte Carlo reach. Cost is `O(n²)`; intended for `n ≤ ~10⁴`.
///
/// # Panics
///
/// Panics for invalid `a` or `n > 100_000` (quadratic cost guard).
#[must_use]
pub fn exact_level_distribution(a: f64, n: u64) -> Vec<f64> {
    assert!(a.is_finite() && a > 0.0, "invalid base");
    assert!(n <= 100_000, "quadratic DP guard");
    let n = n as usize;
    let ln1a = a.ln_1p();
    // Advance probabilities p_j for j = 0..n.
    let p: Vec<f64> = (0..=n).map(|j| (-(j as f64) * ln1a).exp()).collect();
    let mut dist = vec![0.0f64; n + 1];
    dist[0] = 1.0;
    let mut hi = 0usize; // highest level with nonzero mass
    for _ in 0..n {
        // Walk downward so each step reads pre-update values.
        let new_hi = (hi + 1).min(n);
        for j in (0..=new_hi).rev() {
            let stay = dist[j] * (1.0 - p[j]);
            let come = if j > 0 { dist[j - 1] * p[j - 1] } else { 0.0 };
            dist[j] = stay + come;
        }
        hi = new_hi;
    }
    dist
}

impl StateBits for MorrisCounter {
    fn state_bits(&self) -> u64 {
        // Only X is program state: `a` is a program constant (Remark 2.2
        // storage model).
        u64::from(bit_len(self.x))
    }

    fn memory_audit(&self) -> MemoryAudit {
        let mut audit = MemoryAudit::new();
        audit.field("X", self.state_bits());
        audit
    }
}

impl ApproxCounter for MorrisCounter {
    fn name(&self) -> &'static str {
        "morris"
    }

    #[inline]
    fn increment(&mut self, rng: &mut dyn RandomSource) {
        if self.saturated() {
            return;
        }
        let p = self.advance_probability();
        if rng.next_f64() < p {
            self.x += 1;
            self.peak = self.peak.max(self.state_bits());
        }
    }

    /// Fast-forward using the geometric decomposition of §2.2 — the time
    /// spent at level `i` is `Z_i ~ Geometric((1+a)^{-i})` — with a
    /// level-skipping run sampler on top: while the advance probability is
    /// at least `1/2` (the entire trajectory for tiny bases `a ≲ 1e-4`
    /// below `N ≈ 0.7/a`), whole runs of one-trial levels are climbed with
    /// a single [`GeometricLadder`] draw instead of one geometric draw per
    /// level. Cost is `O(levels with Z ≥ 2)` in the skip regime and
    /// `O(levels)` past it — never `O(n)`.
    fn increment_by(&mut self, n: u64, rng: &mut dyn RandomSource) {
        let mut budget = n;
        while budget > 0 && !self.saturated() {
            let p = self.advance_probability();
            if p < f64::MIN_POSITIVE {
                break; // level so high that an advance is numerically impossible
            }
            if 2.0 * p >= 1.0 {
                // Skip regime: sample M = #consecutive one-trial levels in
                // O(1). Conditioning is confined to the levels actually
                // climbed, so capping the climb at the budget (or the
                // register cap) leaves the untouched levels fresh for
                // future calls — the batched path stays exactly
                // compositional.
                let run = GeometricLadder::new(self.ln1a)
                    .expect("ln(1+a) is positive and finite")
                    .sample_run(self.x, rng);
                let to_cap = self.x_cap.map_or(u64::MAX, |cap| cap - self.x);
                let climb = run.min(budget).min(to_cap);
                self.x += climb;
                budget -= climb;
                if climb == run && budget > 0 && !self.saturated() {
                    // The run ended because this level needs Z ≥ 2 trials:
                    // one implicit failed trial, then a fresh geometric by
                    // memorylessness (Z − 1 | Z ≥ 2 ~ Geometric(p)).
                    let p_here = self.advance_probability();
                    if p_here < f64::MIN_POSITIVE {
                        break;
                    }
                    let z = Geometric::new(p_here)
                        .expect("p in (0,1]")
                        .sample(rng)
                        .saturating_add(1);
                    if z > budget {
                        budget = 0;
                    } else {
                        budget -= z;
                        self.x += 1;
                    }
                }
            } else {
                let z = Geometric::new(p).expect("p in (0,1]").sample(rng);
                if z > budget {
                    break; // no advance within the remaining increments
                }
                budget -= z;
                self.x += 1;
            }
        }
        self.peak = self.peak.max(self.state_bits());
    }

    fn estimate(&self) -> f64 {
        // a⁻¹((1+a)^X − 1) = expm1(X·ln(1+a))/a, numerically stable for
        // small a.
        (self.x as f64 * self.ln1a).exp_m1() / self.a
    }

    fn peak_state_bits(&self) -> u64 {
        self.peak
    }

    fn reset(&mut self) {
        self.x = 0;
        // Recompute from state_bits() (as `new` does) rather than assuming
        // the representation, so a reset counter's peak always agrees with
        // a fresh one's.
        self.peak = self.state_bits();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_randkit::Xoshiro256PlusPlus;
    use ac_stats::Summary;

    #[test]
    fn rejects_bad_base() {
        assert!(MorrisCounter::new(0.0).is_err());
        assert!(MorrisCounter::new(-1.0).is_err());
        assert!(MorrisCounter::new(f64::INFINITY).is_err());
    }

    #[test]
    fn first_increment_is_deterministic() {
        // At X = 0 the advance probability is (1+a)^0 = 1.
        let mut c = MorrisCounter::classic();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        c.increment(&mut rng);
        assert_eq!(c.level(), 1);
        assert_eq!(c.estimate(), 1.0);
    }

    #[test]
    fn estimate_formula_matches_closed_form() {
        let mut c = MorrisCounter::classic();
        c.set_level(10);
        // a = 1: estimator = 2^X - 1.
        assert_eq!(c.estimate(), 1023.0);

        let mut c = MorrisCounter::new(0.5).unwrap();
        c.set_level(4);
        // (1.5^4 - 1)/0.5 = (5.0625 - 1)*2 = 8.125
        assert!((c.estimate() - 8.125).abs() < 1e-12);
    }

    #[test]
    fn estimator_is_unbiased() {
        // E[estimate after n increments] = n (§1.2). Verified at n = 200,
        // a = 0.3 over many trials.
        let n = 200u64;
        let a = 0.3;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut s = Summary::new();
        for _ in 0..30_000 {
            let mut c = MorrisCounter::new(a).unwrap();
            c.increment_by(n, &mut rng);
            s.push(c.estimate());
        }
        let tolerance = 6.0 * s.std_error();
        assert!(
            (s.mean() - n as f64).abs() < tolerance,
            "mean={} n={n} tol={tolerance}",
            s.mean()
        );
    }

    #[test]
    fn estimator_variance_matches_formula() {
        // Var = a·n(n−1)/2 (§1.2).
        let n = 100u64;
        let a = 0.5;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut s = Summary::new();
        for _ in 0..40_000 {
            let mut c = MorrisCounter::new(a).unwrap();
            c.increment_by(n, &mut rng);
            s.push(c.estimate());
        }
        let theory = ac_stats::theory::morris_estimator_variance(a, n);
        let rel = (s.variance() - theory).abs() / theory;
        assert!(rel < 0.05, "sample var {} vs theory {theory}", s.variance());
    }

    #[test]
    fn fast_forward_matches_step_by_step_distribution() {
        // Same seed gives different streams (different draw counts), so
        // compare the *distributions* of the final level over many trials.
        let n = 500u64;
        let a = 1.0;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let trials = 20_000;
        let mut ff = Vec::with_capacity(trials);
        let mut step = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut c = MorrisCounter::new(a).unwrap();
            c.increment_by(n, &mut rng);
            ff.push(c.level() as f64);

            let mut c = MorrisCounter::new(a).unwrap();
            for _ in 0..n {
                c.increment(&mut rng);
            }
            step.push(c.level() as f64);
        }
        let ks = ac_stats::ks::ks_two_sample(&ff, &step);
        assert!(ks.p_value > 0.001, "KS p={} D={}", ks.p_value, ks.statistic);
    }

    #[test]
    fn expected_level_is_where_the_counter_concentrates() {
        let a = 0.1;
        let n = 1_000_000u64;
        let expect = MorrisCounter::expected_level(a, n);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut s = Summary::new();
        for _ in 0..500 {
            let mut c = MorrisCounter::new(a).unwrap();
            c.increment_by(n, &mut rng);
            s.push(c.level() as f64);
        }
        // Levels concentrate within a few sqrt(1/a) of the expectation.
        assert!(
            (s.mean() - expect).abs() < 3.0,
            "mean level {} vs {expect}",
            s.mean()
        );
    }

    #[test]
    fn cap_saturates() {
        let mut c = MorrisCounter::with_cap(1.0, 3).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        c.increment_by(1_000_000, &mut rng);
        assert_eq!(c.level(), 3);
        assert!(c.saturated());
        assert_eq!(c.advance_probability(), 0.0);
        // Saturated counter ignores further increments.
        c.increment(&mut rng);
        assert_eq!(c.level(), 3);
    }

    #[test]
    fn state_bits_is_bit_length_of_level() {
        let mut c = MorrisCounter::classic();
        c.set_level(0);
        assert_eq!(c.state_bits(), 1);
        c.set_level(255);
        assert_eq!(c.state_bits(), 8);
        assert_eq!(c.peak_state_bits(), 8);
        c.reset();
        assert_eq!(c.state_bits(), 1);
        assert_eq!(c.peak_state_bits(), 1);
    }

    #[test]
    fn merge_requires_same_parameters() {
        let mut a = MorrisCounter::new(0.5).unwrap();
        let b = MorrisCounter::new(0.25).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        assert!(matches!(
            a.merge_from(&b, &mut rng),
            Err(CoreError::MergeMismatch { .. })
        ));
    }

    #[test]
    fn merge_mean_is_additive() {
        // E[estimate of merged] should be N1 + N2.
        let (n1, n2) = (300u64, 700u64);
        let a = 0.4;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let mut s = Summary::new();
        for _ in 0..20_000 {
            let mut c1 = MorrisCounter::new(a).unwrap();
            c1.increment_by(n1, &mut rng);
            let mut c2 = MorrisCounter::new(a).unwrap();
            c2.increment_by(n2, &mut rng);
            c1.merge_from(&c2, &mut rng).unwrap();
            s.push(c1.estimate());
        }
        let tol = 6.0 * s.std_error();
        assert!(
            (s.mean() - (n1 + n2) as f64).abs() < tol,
            "mean={} tol={tol}",
            s.mean()
        );
    }

    #[test]
    fn merge_matches_sequential_distribution() {
        // Remark 2.4-style KS check for the Morris merge [CY20 §2.1].
        let (n1, n2) = (200u64, 300u64);
        let a = 1.0;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let trials = 20_000;
        let mut merged = Vec::with_capacity(trials);
        let mut sequential = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut c1 = MorrisCounter::new(a).unwrap();
            c1.increment_by(n1, &mut rng);
            let mut c2 = MorrisCounter::new(a).unwrap();
            c2.increment_by(n2, &mut rng);
            c1.merge_from(&c2, &mut rng).unwrap();
            merged.push(c1.level() as f64);

            let mut c = MorrisCounter::new(a).unwrap();
            c.increment_by(n1 + n2, &mut rng);
            sequential.push(c.level() as f64);
        }
        let ks = ac_stats::ks::ks_two_sample(&merged, &sequential);
        assert!(ks.p_value > 0.001, "KS p={} D={}", ks.p_value, ks.statistic);
    }

    #[test]
    fn exact_distribution_is_a_probability_vector() {
        for &(a, n) in &[(1.0, 50u64), (0.1, 200), (0.003, 100)] {
            let dist = exact_level_distribution(a, n);
            assert_eq!(dist.len() as u64, n + 1);
            let total: f64 = dist.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "a={a} n={n}: total={total}");
            assert!(dist.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
    }

    #[test]
    fn exact_distribution_small_cases_by_hand() {
        // n = 1: X = 1 with probability 1 (level 0 always advances).
        let d = exact_level_distribution(1.0, 1);
        assert!((d[1] - 1.0).abs() < 1e-15);
        // n = 2, a = 1: second increment advances w.p. 1/2.
        let d = exact_level_distribution(1.0, 2);
        assert!((d[1] - 0.5).abs() < 1e-15);
        assert!((d[2] - 0.5).abs() < 1e-15);
        // n = 3, a = 1: P[X=3] = 1/2 · 1/4 = 1/8;
        // P[X=1] = 1/2 · 1/2 = 1/4; P[X=2] = 1 − 1/4 − 1/8 = 5/8.
        let d = exact_level_distribution(1.0, 3);
        assert!((d[1] - 0.25).abs() < 1e-15);
        assert!((d[2] - 0.625).abs() < 1e-15);
        assert!((d[3] - 0.125).abs() < 1e-15);
    }

    #[test]
    fn exact_distribution_mean_matches_unbiasedness() {
        // E[((1+a)^X - 1)/a] over the exact distribution must equal n.
        let (a, n) = (0.25, 300u64);
        let dist = exact_level_distribution(a, n);
        let mean_est: f64 = dist
            .iter()
            .enumerate()
            .map(|(j, &p)| p * ((j as f64) * a.ln_1p()).exp_m1() / a)
            .sum();
        assert!(
            (mean_est - n as f64).abs() < 1e-6 * n as f64,
            "mean {mean_est}"
        );
    }

    #[test]
    fn exact_distribution_matches_simulation() {
        let (a, n) = (0.5, 40u64);
        let dist = exact_level_distribution(a, n);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let trials = 40_000u32;
        let mut counts = vec![0u32; (n + 1) as usize];
        for _ in 0..trials {
            let mut c = MorrisCounter::new(a).unwrap();
            c.increment_by(n, &mut rng);
            counts[c.level() as usize] += 1;
        }
        for (j, (&p, &obs)) in dist.iter().zip(counts.iter()).enumerate() {
            let expected = p * f64::from(trials);
            if expected >= 20.0 {
                let sigma = (expected * (1.0 - p)).sqrt();
                assert!(
                    (f64::from(obs) - expected).abs() < 6.0 * sigma,
                    "level {j}: {obs} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn zero_increments_leave_estimate_zero() {
        let c = MorrisCounter::classic();
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn tiny_base_handles_large_counts() {
        let a = 1e-5;
        let mut c = MorrisCounter::new(a).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        let n = 10_000_000u64;
        c.increment_by(n, &mut rng);
        let rel = (c.estimate() - n as f64).abs() / n as f64;
        // sd ≈ sqrt(a/2) ≈ 0.22 %; allow 6 sigma.
        assert!(rel < 0.015, "relative error {rel}");
    }
}
