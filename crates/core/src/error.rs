//! Error type for counter construction and planning.

use std::fmt;

/// Errors arising from invalid counter parameters or planning requests.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// `ε` must be a finite number in `(0, 1/2)` (theorem hypotheses).
    InvalidEpsilon {
        /// The rejected value.
        got: f64,
    },
    /// `Δ` (with `δ = 2^-Δ`) must satisfy `Δ ≥ 1`, i.e. `δ ≤ 1/2`.
    InvalidDeltaLog2 {
        /// The rejected value.
        got: u32,
    },
    /// The Morris base parameter `a` must be finite and positive.
    InvalidBase {
        /// The rejected value.
        got: f64,
    },
    /// The universal constant `C` must be at least 1.
    InvalidConstant {
        /// The rejected value.
        got: f64,
    },
    /// A fixed-bit-budget plan is infeasible (budget too small for the
    /// requested maximum count).
    BudgetInfeasible {
        /// Requested budget in bits.
        bits: u32,
        /// Requested maximum count.
        n_max: u64,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Two counters with different parameter schedules cannot be merged.
    MergeMismatch {
        /// Human-readable description of the mismatch.
        what: &'static str,
    },
    /// A serialized counter state failed validation on decode: it is
    /// well-formed as a bit string but unreachable under the decoding
    /// counter's parameter schedule (wrong schedule, or corruption).
    InvalidState {
        /// Human-readable description of the violated invariant.
        what: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidEpsilon { got } => {
                write!(f, "epsilon must be in (0, 1/2), got {got}")
            }
            CoreError::InvalidDeltaLog2 { got } => {
                write!(f, "delta exponent must satisfy 1 <= Δ, got {got}")
            }
            CoreError::InvalidBase { got } => {
                write!(
                    f,
                    "Morris base parameter must be finite and positive, got {got}"
                )
            }
            CoreError::InvalidConstant { got } => {
                write!(f, "universal constant C must be at least 1, got {got}")
            }
            CoreError::BudgetInfeasible {
                bits,
                n_max,
                reason,
            } => {
                write!(
                    f,
                    "no plan fits {bits} bits for counts up to {n_max}: {reason}"
                )
            }
            CoreError::MergeMismatch { what } => {
                write!(f, "counters have incompatible parameters: {what}")
            }
            CoreError::InvalidState { what } => {
                write!(f, "decoded counter state is invalid: {what}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let msgs = [
            CoreError::InvalidEpsilon { got: 0.7 }.to_string(),
            CoreError::InvalidDeltaLog2 { got: 0 }.to_string(),
            CoreError::InvalidBase { got: -1.0 }.to_string(),
            CoreError::InvalidConstant { got: 0.0 }.to_string(),
            CoreError::BudgetInfeasible {
                bits: 3,
                n_max: 1 << 40,
                reason: "budget smaller than loglog n",
            }
            .to_string(),
            CoreError::MergeMismatch { what: "epsilon" }.to_string(),
            CoreError::InvalidState {
                what: "Y above epoch threshold",
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
