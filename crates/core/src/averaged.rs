//! Averaging independent Morris counters — the §1.1 ablation.
//!
//! Flajolet suggested that to improve accuracy one can "either average
//! independent counters or change base, and that the former has 'an effect
//! similar to' the latter". The paper's §1.1 observes the two are *not*
//! similar computationally: averaging `Θ(1/ε²)` copies multiplies the
//! space by `1/ε²`, while changing base adds only `O(log(1/ε))` bits.
//! [`AveragedMorris`] makes that comparison measurable (experiment E8).

use crate::{ApproxCounter, CoreError, MorrisCounter};
use ac_bitio::{MemoryAudit, StateBits};
use ac_randkit::RandomSource;

/// `k` independent `Morris(a)` counters whose estimates are averaged.
///
/// The averaged estimator remains unbiased; its variance is `1/k` of a
/// single counter's `a·N(N−1)/2`.
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedMorris {
    counters: Vec<MorrisCounter>,
    peak: u64,
}

impl AveragedMorris {
    /// Creates `k` independent `Morris(a)` counters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBase`] for invalid `a`, or
    /// [`CoreError::InvalidConstant`] when `k == 0`.
    pub fn new(k: usize, a: f64) -> Result<Self, CoreError> {
        if k == 0 {
            return Err(CoreError::InvalidConstant { got: 0.0 });
        }
        let counters = vec![MorrisCounter::new(a)?; k];
        let mut this = Self { counters, peak: 0 };
        this.peak = this.state_bits();
        Ok(this)
    }

    /// Number of copies `k`.
    #[must_use]
    pub fn copies(&self) -> usize {
        self.counters.len()
    }

    /// The shared base parameter `a`.
    #[must_use]
    pub fn a(&self) -> f64 {
        self.counters[0].a()
    }

    /// The individual counters (for diagnostics).
    #[must_use]
    pub fn counters(&self) -> &[MorrisCounter] {
        &self.counters
    }
}

impl StateBits for AveragedMorris {
    fn state_bits(&self) -> u64 {
        self.counters.iter().map(StateBits::state_bits).sum()
    }

    fn memory_audit(&self) -> MemoryAudit {
        let mut audit = MemoryAudit::new();
        audit.field(format!("X[0..{}]", self.counters.len()), self.state_bits());
        audit
    }
}

impl ApproxCounter for AveragedMorris {
    fn name(&self) -> &'static str {
        "averaged-morris"
    }

    fn increment(&mut self, rng: &mut dyn RandomSource) {
        for c in &mut self.counters {
            c.increment(rng);
        }
        self.peak = self.peak.max(self.state_bits());
    }

    fn increment_by(&mut self, n: u64, rng: &mut dyn RandomSource) {
        for c in &mut self.counters {
            c.increment_by(n, rng);
        }
        self.peak = self.peak.max(self.state_bits());
    }

    fn estimate(&self) -> f64 {
        let sum: f64 = self.counters.iter().map(ApproxCounter::estimate).sum();
        sum / self.counters.len() as f64
    }

    fn peak_state_bits(&self) -> u64 {
        self.peak
    }

    fn reset(&mut self) {
        for c in &mut self.counters {
            c.reset();
        }
        self.peak = self.state_bits();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_randkit::Xoshiro256PlusPlus;
    use ac_stats::Summary;

    #[test]
    fn rejects_zero_copies() {
        assert!(AveragedMorris::new(0, 1.0).is_err());
        assert!(AveragedMorris::new(1, 0.0).is_err());
    }

    #[test]
    fn averaging_reduces_variance_by_k() {
        let (a, n) = (1.0, 2_000u64);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let k = 16;
        let mut single = Summary::new();
        let mut averaged = Summary::new();
        for _ in 0..4_000 {
            let mut c1 = MorrisCounter::new(a).unwrap();
            c1.increment_by(n, &mut rng);
            single.push(c1.estimate());

            let mut ck = AveragedMorris::new(k, a).unwrap();
            ck.increment_by(n, &mut rng);
            averaged.push(ck.estimate());
        }
        let ratio = single.variance() / averaged.variance();
        // Expect ≈ k; allow a wide statistical band.
        assert!(
            ratio > k as f64 * 0.6 && ratio < k as f64 * 1.6,
            "variance ratio {ratio}, expected ≈ {k}"
        );
    }

    #[test]
    fn estimate_is_mean_of_copies() {
        let mut c = AveragedMorris::new(3, 1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        c.increment_by(100, &mut rng);
        let mean: f64 = c
            .counters()
            .iter()
            .map(ApproxCounter::estimate)
            .sum::<f64>()
            / 3.0;
        assert_eq!(c.estimate(), mean);
    }

    #[test]
    fn space_grows_linearly_in_k() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut c4 = AveragedMorris::new(4, 1.0).unwrap();
        let mut c8 = AveragedMorris::new(8, 1.0).unwrap();
        c4.increment_by(1_000_000, &mut rng);
        c8.increment_by(1_000_000, &mut rng);
        // Per-copy levels concentrate near log2(N) ≈ 20 (5 bits each).
        let per4 = c4.state_bits() as f64 / 4.0;
        let per8 = c8.state_bits() as f64 / 8.0;
        assert!((per4 - per8).abs() < 1.0, "per-copy bits {per4} vs {per8}");
    }

    #[test]
    fn reset_clears_all_copies() {
        let mut c = AveragedMorris::new(5, 0.5).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        c.increment_by(10_000, &mut rng);
        c.reset();
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.state_bits(), 5);
    }
}
