//! Runtime family selection: [`CounterSpec`] names a counter family and
//! its parameters as *data*, and [`CounterFamily`] is the counter it
//! builds — one concrete type that behaves exactly like whichever family
//! the spec named.
//!
//! The generic containers in this workspace (`CounterEngine<C>`, the
//! checkpoint layer, the packed arrays) are monomorphized over a family
//! chosen at compile time. A deployed service wants that choice in a
//! *config file*: the same binary serving a Morris fleet today and a
//! Nelson–Yu fleet tomorrow, and — crucially — able to reopen a
//! checkpoint directory whose manifest says which family wrote it.
//! [`CounterFamily`] makes `CounterEngine<CounterFamily>` exactly that
//! runtime-selected engine.
//!
//! ## Dispatch is invisible to the bits
//!
//! Every trait impl on [`CounterFamily`] delegates to the wrapped
//! counter: the random draws, the state registers, the
//! [`StateCodec`] encoding, and the
//! [`params_fingerprint`](StateCodec::params_fingerprint) are those of
//! the inner family, bit for bit. A `CounterEngine<CounterFamily>` fed a
//! stream therefore produces states — and checkpoint *bytes* — identical
//! to the monomorphized `CounterEngine<MorrisCounter>` (etc.) fed the
//! same stream, and either side can restore the other's checkpoints.
//! Property tests in `ac-engine` pin this equivalence for all five
//! families.

use crate::params::morris_a;
use crate::{
    ApproxCounter, CoreError, CsurosCounter, ExactCounter, Mergeable, MorrisCounter, MorrisPlus,
    NelsonYuCounter, NyParams, StateCodec,
};
use ac_bitio::{BitReader, BitWriter, MemoryAudit, StateBits};
use ac_randkit::RandomSource;
use std::fmt;

/// A counter family plus its parameters, as plain data: the runtime
/// counterpart of picking a concrete counter type at compile time.
///
/// Build the counter with [`CounterSpec::build`]; serialize the spec
/// itself with [`CounterSpec::encode_words`] /
/// [`CounterSpec::decode_words`] (the `ac-engine` store manifest records
/// it this way, so `Store::open` can reconstruct the family a directory
/// was written with).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum CounterSpec {
    /// The exact `log₂ N`-bit baseline counter.
    Exact,
    /// `Morris(a)` with base parameter `a` (§1.2, §2.2).
    Morris {
        /// The base parameter `a > 0`.
        a: f64,
    },
    /// Morris+ from a target `(ε, δ = 2^{-Δ})` (Appendix A).
    MorrisPlus {
        /// Relative accuracy `ε ∈ (0, 1/2)`.
        eps: f64,
        /// Failure exponent `Δ ≥ 1` (`δ = 2^{-Δ}`).
        delta_log2: u32,
    },
    /// The paper's Algorithm 1 from a target `(ε, δ = 2^{-Δ})`.
    NelsonYu {
        /// Relative accuracy `ε ∈ (0, 1/2)`.
        eps: f64,
        /// Failure exponent `Δ ≥ 1` (`δ = 2^{-Δ}`).
        delta_log2: u32,
    },
    /// The Csűrös-style floating-point counter with `d` mantissa bits.
    Csuros {
        /// Mantissa width `d ≥ 1`.
        mantissa_bits: u32,
    },
}

/// Family tags used by the word encoding (stable across versions: the
/// store manifest persists them).
const TAG_EXACT: u64 = 0;
const TAG_MORRIS: u64 = 1;
const TAG_MORRIS_PLUS: u64 = 2;
const TAG_NELSON_YU: u64 = 3;
const TAG_CSUROS: u64 = 4;

impl CounterSpec {
    /// `Morris(a)` with the paper's §2.2 prescription
    /// `a = ε²/(8 ln(1/δ))` for a target `(ε, δ = 2^{-Δ})`.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`morris_a`].
    pub fn morris_for(eps: f64, delta_log2: u32) -> Result<Self, CoreError> {
        Ok(CounterSpec::Morris {
            a: morris_a(eps, delta_log2)?,
        })
    }

    /// The family's short stable name (matches
    /// [`ApproxCounter::name`] of the built counter).
    #[must_use]
    pub fn family_name(&self) -> &'static str {
        match self {
            CounterSpec::Exact => "exact",
            CounterSpec::Morris { .. } => "morris",
            CounterSpec::MorrisPlus { .. } => "morris+",
            CounterSpec::NelsonYu { .. } => "nelson-yu",
            CounterSpec::Csuros { .. } => "csuros-float",
        }
    }

    /// Constructs the counter the spec describes, validating parameters.
    ///
    /// # Errors
    ///
    /// Propagates the family constructor's [`CoreError`] for out-of-range
    /// parameters.
    pub fn build(&self) -> Result<CounterFamily, CoreError> {
        Ok(match *self {
            CounterSpec::Exact => CounterFamily::Exact(ExactCounter::new()),
            CounterSpec::Morris { a } => CounterFamily::Morris(MorrisCounter::new(a)?),
            CounterSpec::MorrisPlus { eps, delta_log2 } => {
                CounterFamily::MorrisPlus(MorrisPlus::new(eps, delta_log2)?)
            }
            CounterSpec::NelsonYu { eps, delta_log2 } => {
                CounterFamily::NelsonYu(NelsonYuCounter::new(NyParams::new(eps, delta_log2)?))
            }
            CounterSpec::Csuros { mantissa_bits } => {
                CounterFamily::Csuros(CsurosCounter::new(mantissa_bits)?)
            }
        })
    }

    /// The spec as a short word sequence `[tag, params…]` — the stable
    /// serialization the store manifest records.
    #[must_use]
    pub fn encode_words(&self) -> Vec<u64> {
        match *self {
            CounterSpec::Exact => vec![TAG_EXACT],
            CounterSpec::Morris { a } => vec![TAG_MORRIS, a.to_bits()],
            CounterSpec::MorrisPlus { eps, delta_log2 } => {
                vec![TAG_MORRIS_PLUS, eps.to_bits(), u64::from(delta_log2)]
            }
            CounterSpec::NelsonYu { eps, delta_log2 } => {
                vec![TAG_NELSON_YU, eps.to_bits(), u64::from(delta_log2)]
            }
            CounterSpec::Csuros { mantissa_bits } => {
                vec![TAG_CSUROS, u64::from(mantissa_bits)]
            }
        }
    }

    /// Parses a word sequence written by [`CounterSpec::encode_words`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidState`] for an unknown tag or a wrong
    /// word count, and the family's own validation error for parameters
    /// that decode but do not validate.
    pub fn decode_words(words: &[u64]) -> Result<Self, CoreError> {
        let bad = |what| Err(CoreError::InvalidState { what });
        let u32_of = |w: u64, what: &'static str| {
            u32::try_from(w).map_err(|_| CoreError::InvalidState { what })
        };
        let spec = match words {
            [TAG_EXACT] => CounterSpec::Exact,
            [TAG_MORRIS, a] => CounterSpec::Morris {
                a: f64::from_bits(*a),
            },
            [TAG_MORRIS_PLUS, eps, d] => CounterSpec::MorrisPlus {
                eps: f64::from_bits(*eps),
                delta_log2: u32_of(*d, "Morris+ delta exponent does not fit u32")?,
            },
            [TAG_NELSON_YU, eps, d] => CounterSpec::NelsonYu {
                eps: f64::from_bits(*eps),
                delta_log2: u32_of(*d, "Nelson-Yu delta exponent does not fit u32")?,
            },
            [TAG_CSUROS, d] => CounterSpec::Csuros {
                mantissa_bits: u32_of(*d, "Csűrös mantissa width does not fit u32")?,
            },
            _ => return bad("unknown counter-spec encoding"),
        };
        // Validate by building: a spec that decodes must also construct.
        spec.build()?;
        Ok(spec)
    }
}

impl fmt::Display for CounterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterSpec::Exact => write!(f, "exact"),
            CounterSpec::Morris { a } => write!(f, "morris(a={a})"),
            CounterSpec::MorrisPlus { eps, delta_log2 } => {
                write!(f, "morris+(eps={eps}, delta=2^-{delta_log2})")
            }
            CounterSpec::NelsonYu { eps, delta_log2 } => {
                write!(f, "nelson-yu(eps={eps}, delta=2^-{delta_log2})")
            }
            CounterSpec::Csuros { mantissa_bits } => write!(f, "csuros-float(d={mantissa_bits})"),
        }
    }
}

impl CounterFamily {
    /// Estimate-preserving re-seeding into another family: builds the
    /// counter `spec` describes and seeds its state so that its estimate
    /// is the **nearest representable value** to `self.estimate()`.
    ///
    /// This is the migration primitive behind per-key accuracy tiers: a
    /// key promoted from Morris to Exact (or demoted back) carries its
    /// current estimate across the family switch, and only its *future*
    /// increments see the new family's dynamics.
    ///
    /// ## Error accounting
    ///
    /// Each family's estimates form a discrete grid; migration rounds the
    /// source estimate to the nearest grid point of the **target**:
    ///
    /// - **Exact**: grid `{0, 1, 2, …}` — absolute rounding error ≤ 1/2.
    /// - **Morris(a)**: adjacent levels are a factor `≈ (1+a)` apart, so
    ///   the relative rounding error is ≤ `a/2 + O(a²)` — below the
    ///   family's own per-step resolution and far below its sampling
    ///   standard deviation `≈ √(a/2)`.
    /// - **Morris+**: exact while the estimate fits the deterministic
    ///   prefix (`≤ N_a`); the Morris grid bound afterwards.
    /// - **Nelson–Yu**: exact while the estimate fits the exact epoch
    ///   (`≤ T(X₀)`); afterwards the grid is `{⌈(1+ε)^X⌉}`, so the
    ///   relative rounding error is ≤ `ε/2 + O(ε²)` — inside the target
    ///   tier's `(ε, δ)` band by construction.
    /// - **Csűrös(d)**: adjacent registers are `2^u` apart at estimate
    ///   `≈ 2^{u+d}`, so the relative rounding error is ≤ `2^{-d-1}` —
    ///   below the family's sampling standard deviation `≈ 2^{-(d+1)/2}`.
    ///
    /// In every case the rounding error is dominated by the target tier's
    /// stochastic `(ε, δ)` deviation, so a migrated counter is
    /// statistically indistinguishable (to within that band) from one
    /// that counted the same stream natively. Post-migration increments
    /// evolve under the target's own schedule, so follow-up error stays
    /// within the *target* tier's band (property-tested in this module's
    /// tests and in `tests/migration_proptest.rs`).
    ///
    /// The current construction is deterministic and consumes **no**
    /// randomness; `rng` is part of the signature so randomized-rounding
    /// variants (unbiasedness across the grid gap) remain
    /// signature-compatible, and so callers thread the same per-shard
    /// stream they use for increments.
    ///
    /// # Errors
    ///
    /// Propagates [`CounterSpec::build`] validation errors; the seeding
    /// itself cannot fail (every non-negative finite estimate has a
    /// nearest representable neighbour in every family).
    pub fn migrate_to(
        &self,
        spec: &CounterSpec,
        rng: &mut dyn RandomSource,
    ) -> Result<CounterFamily, CoreError> {
        let est = self.estimate().max(0.0);
        let mut target = spec.build()?;
        match &mut target {
            CounterFamily::Exact(c) => {
                // Round to the nearest integer count; Exact consumes no
                // randomness on increments.
                c.increment_by(est.round() as u64, rng);
            }
            CounterFamily::Morris(c) => {
                c.set_level(morris_level_for(c.a(), est));
            }
            CounterFamily::MorrisPlus(c) => {
                let prefix = (est.round() as u64).min(c.cutoff() + 1);
                let level = morris_level_for(c.a(), est);
                c.restore_parts(prefix, level);
            }
            CounterFamily::NelsonYu(c) => {
                let p = *c.params();
                let x0 = p.x0();
                let exact_cap = p.threshold_for(x0, 0);
                let n = est.round() as u64;
                if n <= exact_cap {
                    // Fits the exact epoch: Y literally stores the count.
                    c.restore_parts(x0, n, 0);
                } else {
                    // Nearest level on the {⌈(1+ε)^X⌉} grid, then the
                    // state a sequential counter holds on entering that
                    // epoch (monotone sampling exponent, epoch-start Y).
                    let guess = (est.ln() / p.eps().ln_1p()).round() as u64;
                    let mut best_x = guess.max(x0 + 1);
                    let mut best_err = f64::INFINITY;
                    for x in guess.saturating_sub(1).max(x0 + 1)..=guess + 1 {
                        let err = (p.t_value(x) - est).abs();
                        if err < best_err {
                            best_err = err;
                            best_x = x;
                        }
                    }
                    let t = p.monotone_exponent(best_x);
                    let y = p.epoch_y_span(best_x).0.min(p.threshold_for(best_x, t));
                    c.restore_parts(best_x, y, t);
                }
            }
            CounterFamily::Csuros(c) => {
                c.set_register(csuros_register_for(c.mantissa_bits(), est));
            }
        }
        Ok(target)
    }
}

/// The Morris level whose estimate `((1+a)^x − 1)/a` is nearest to `est`.
fn morris_level_for(a: f64, est: f64) -> u64 {
    if est <= 0.0 {
        return 0;
    }
    let ln1a = a.ln_1p();
    let xf = (a * est).ln_1p() / ln1a;
    let lo = xf.floor().max(0.0) as u64;
    let est_of = |x: u64| (x as f64 * ln1a).exp_m1() / a;
    if (est_of(lo + 1) - est).abs() < (est_of(lo) - est).abs() {
        lo + 1
    } else {
        lo
    }
}

/// The Csűrös register whose estimate `(2^d + v)·2^u − 2^d` is nearest to
/// `est` (`u = x >> d`, `v = x & (2^d − 1)`). The estimate is integer and
/// strictly increasing in `x`, so bisection over the register is exact.
fn csuros_register_for(d: u32, est: f64) -> u64 {
    let n = est.round().max(0.0) as u128;
    let scale = 1u128 << d;
    let est_of = |x: u64| -> u128 {
        let u = (x >> d) as u32;
        let v = u128::from(x) & (scale - 1);
        ((scale + v) << u) - scale
    };
    // Upper bound: the register for counts near 2^64 stays far below
    // (64 + 2) · 2^d; bisect the largest x with est_of(x) <= n.
    let (mut lo, mut hi) = (0u64, 66u64 << d);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if est_of(mid) <= n {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let below = est_of(lo);
    if n.saturating_sub(below) > est_of(lo + 1).saturating_sub(n) {
        lo + 1
    } else {
        lo
    }
}

/// A counter whose family was chosen at runtime (by a [`CounterSpec`]):
/// enum dispatch over the five concrete families, bit-identical to the
/// wrapped counter in every observable way — random draws, registers,
/// estimates, encoded state, and parameter fingerprint.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CounterFamily {
    /// An [`ExactCounter`].
    Exact(ExactCounter),
    /// A [`MorrisCounter`].
    Morris(MorrisCounter),
    /// A [`MorrisPlus`].
    MorrisPlus(MorrisPlus),
    /// A [`NelsonYuCounter`].
    NelsonYu(NelsonYuCounter),
    /// A [`CsurosCounter`].
    Csuros(CsurosCounter),
}

/// Delegates an expression to whichever concrete counter the enum holds.
macro_rules! dispatch {
    ($on:expr, $c:ident => $body:expr) => {
        match $on {
            CounterFamily::Exact($c) => $body,
            CounterFamily::Morris($c) => $body,
            CounterFamily::MorrisPlus($c) => $body,
            CounterFamily::NelsonYu($c) => $body,
            CounterFamily::Csuros($c) => $body,
        }
    };
}

impl StateBits for CounterFamily {
    fn state_bits(&self) -> u64 {
        dispatch!(self, c => c.state_bits())
    }

    fn memory_audit(&self) -> MemoryAudit {
        dispatch!(self, c => c.memory_audit())
    }
}

impl ApproxCounter for CounterFamily {
    fn name(&self) -> &'static str {
        dispatch!(self, c => c.name())
    }

    fn increment(&mut self, rng: &mut dyn RandomSource) {
        dispatch!(self, c => c.increment(rng));
    }

    fn increment_by(&mut self, n: u64, rng: &mut dyn RandomSource) {
        dispatch!(self, c => c.increment_by(n, rng));
    }

    fn estimate(&self) -> f64 {
        dispatch!(self, c => c.estimate())
    }

    fn peak_state_bits(&self) -> u64 {
        dispatch!(self, c => c.peak_state_bits())
    }

    fn reset(&mut self) {
        dispatch!(self, c => c.reset());
    }
}

impl Mergeable for CounterFamily {
    fn merge_from(&mut self, other: &Self, rng: &mut dyn RandomSource) -> Result<(), CoreError> {
        match (self, other) {
            (CounterFamily::Exact(a), CounterFamily::Exact(b)) => a.merge_from(b, rng),
            (CounterFamily::Morris(a), CounterFamily::Morris(b)) => a.merge_from(b, rng),
            (CounterFamily::MorrisPlus(a), CounterFamily::MorrisPlus(b)) => a.merge_from(b, rng),
            (CounterFamily::NelsonYu(a), CounterFamily::NelsonYu(b)) => a.merge_from(b, rng),
            (CounterFamily::Csuros(a), CounterFamily::Csuros(b)) => a.merge_from(b, rng),
            _ => Err(CoreError::MergeMismatch {
                what: "different counter families",
            }),
        }
    }
}

impl StateCodec for CounterFamily {
    fn params_fingerprint(&self) -> u64 {
        // Delegation, *not* re-hashing with a family-of-families tag: a
        // runtime-selected counter is checkpoint-compatible with the
        // monomorphized counter it wraps.
        dispatch!(self, c => c.params_fingerprint())
    }

    fn encode_state(&self, w: &mut BitWriter<'_>) {
        dispatch!(self, c => c.encode_state(w));
    }

    fn decode_state(&self, r: &mut BitReader<'_>) -> Result<Self, CoreError> {
        Ok(match self {
            CounterFamily::Exact(c) => CounterFamily::Exact(c.decode_state(r)?),
            CounterFamily::Morris(c) => CounterFamily::Morris(c.decode_state(r)?),
            CounterFamily::MorrisPlus(c) => CounterFamily::MorrisPlus(c.decode_state(r)?),
            CounterFamily::NelsonYu(c) => CounterFamily::NelsonYu(c.decode_state(r)?),
            CounterFamily::Csuros(c) => CounterFamily::Csuros(c.decode_state(r)?),
        })
    }

    fn encoded_state_bits(&self) -> u64 {
        dispatch!(self, c => c.encoded_state_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_bitio::BitVec;
    use ac_randkit::Xoshiro256PlusPlus;

    fn all_specs() -> Vec<CounterSpec> {
        vec![
            CounterSpec::Exact,
            CounterSpec::Morris { a: 0.25 },
            CounterSpec::MorrisPlus {
                eps: 0.2,
                delta_log2: 8,
            },
            CounterSpec::NelsonYu {
                eps: 0.2,
                delta_log2: 8,
            },
            CounterSpec::Csuros { mantissa_bits: 8 },
        ]
    }

    #[test]
    fn specs_round_trip_through_words() {
        for spec in all_specs() {
            let words = spec.encode_words();
            let back = CounterSpec::decode_words(&words).expect("valid words");
            assert_eq!(back, spec);
            assert_eq!(back.family_name(), spec.family_name());
        }
    }

    #[test]
    fn bad_words_are_rejected() {
        assert!(CounterSpec::decode_words(&[]).is_err());
        assert!(CounterSpec::decode_words(&[99]).is_err(), "unknown tag");
        assert!(
            CounterSpec::decode_words(&[TAG_MORRIS]).is_err(),
            "missing parameter"
        );
        // Decodes structurally but fails family validation: a = -1.
        assert!(CounterSpec::decode_words(&[TAG_MORRIS, (-1.0f64).to_bits()]).is_err());
        // Nelson-Yu with eps out of range.
        assert!(CounterSpec::decode_words(&[TAG_NELSON_YU, 0.9f64.to_bits(), 8]).is_err());
    }

    #[test]
    fn build_matches_family_name() {
        for spec in all_specs() {
            let c = spec.build().expect("valid spec");
            assert_eq!(c.name(), spec.family_name(), "{spec}");
        }
    }

    #[test]
    fn morris_for_matches_prescription() {
        let spec = CounterSpec::morris_for(0.1, 10).unwrap();
        let CounterSpec::Morris { a } = spec else {
            panic!("wrong family");
        };
        assert!((a - morris_a(0.1, 10).unwrap()).abs() < 1e-18);
    }

    /// The dispatch-is-invisible contract at the single-counter level:
    /// identical draws, states, estimates, fingerprints, and encodings
    /// against the monomorphized counter fed the same stream.
    #[test]
    fn family_counter_is_bit_identical_to_concrete() {
        fn drive<C: StateCodec + Clone + PartialEq + std::fmt::Debug>(
            concrete: C,
            family: CounterFamily,
        ) {
            let mut a = concrete;
            let mut b = family;
            let mut rng_a = Xoshiro256PlusPlus::seed_from_u64(77);
            let mut rng_b = Xoshiro256PlusPlus::seed_from_u64(77);
            for n in [1u64, 10, 1_000, 123_456] {
                a.increment_by(n, &mut rng_a);
                b.increment_by(n, &mut rng_b);
                assert_eq!(a.estimate(), b.estimate());
                assert_eq!(a.state_bits(), b.state_bits());
                assert_eq!(a.params_fingerprint(), b.params_fingerprint());
                let mut va = BitVec::new();
                a.encode_state(&mut BitWriter::new(&mut va));
                let mut vb = BitVec::new();
                b.encode_state(&mut BitWriter::new(&mut vb));
                assert_eq!(va, vb, "encoded state");
            }
            // And both RNGs sit at the same point in the stream.
            assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        }

        drive(ExactCounter::new(), CounterSpec::Exact.build().unwrap());
        drive(
            MorrisCounter::new(0.25).unwrap(),
            CounterSpec::Morris { a: 0.25 }.build().unwrap(),
        );
        drive(
            MorrisPlus::new(0.2, 8).unwrap(),
            CounterSpec::MorrisPlus {
                eps: 0.2,
                delta_log2: 8,
            }
            .build()
            .unwrap(),
        );
        drive(
            NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap()),
            CounterSpec::NelsonYu {
                eps: 0.2,
                delta_log2: 8,
            }
            .build()
            .unwrap(),
        );
        drive(
            CsurosCounter::new(8).unwrap(),
            CounterSpec::Csuros { mantissa_bits: 8 }.build().unwrap(),
        );
    }

    #[test]
    fn migrate_preserves_integer_representable_estimates_exactly() {
        // Exact, the Nelson-Yu exact epoch, the Morris+ prefix, and small
        // Csűrös registers all represent small integers exactly: migration
        // between them at such an estimate is lossless.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut src = CounterSpec::Exact.build().unwrap();
        src.increment_by(37, &mut rng);
        for spec in all_specs() {
            let migrated = src.migrate_to(&spec, &mut rng).unwrap();
            if let CounterSpec::Morris { a } = spec {
                // A bare Morris grid has no exact-integer regime; the
                // documented a/2 relative bound is the guarantee.
                let rel = (migrated.estimate() - 37.0).abs() / 37.0;
                assert!(rel <= a / 2.0, "morris rel {rel} > {}", a / 2.0);
            } else {
                assert_eq!(
                    migrated.estimate(),
                    37.0,
                    "estimate 37 is on {}'s grid",
                    spec.family_name()
                );
            }
        }
    }

    #[test]
    fn migrate_rounds_to_the_targets_grid_resolution() {
        // At a large estimate, migration into each family lands within
        // half that family's grid spacing (the documented bound).
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(12);
        let mut src = CounterSpec::Exact.build().unwrap();
        let n = 1_234_567u64;
        src.increment_by(n, &mut rng);
        let cases: Vec<(CounterSpec, f64)> = vec![
            (CounterSpec::Exact, 0.5 / n as f64),
            // Morris(a): adjacent levels are a factor (1+a) apart.
            (CounterSpec::Morris { a: 0.25 }, 0.25),
            // Nelson-Yu: levels are a factor (1+eps) apart.
            (
                CounterSpec::NelsonYu {
                    eps: 0.2,
                    delta_log2: 8,
                },
                0.2,
            ),
            // Csűrös(d): relative spacing 2^-d.
            (
                CounterSpec::Csuros { mantissa_bits: 8 },
                0.5 * (0.5f64).powi(8),
            ),
        ];
        for (spec, rel_bound) in cases {
            let migrated = src.migrate_to(&spec, &mut rng).unwrap();
            let rel = (migrated.estimate() - n as f64).abs() / n as f64;
            assert!(
                rel <= rel_bound,
                "{}: migrated {} vs {n}, rel {rel} > bound {rel_bound}",
                spec.family_name(),
                migrated.estimate()
            );
        }
    }

    #[test]
    fn migrate_consumes_no_randomness() {
        // The deterministic construction leaves the stream untouched —
        // the property that makes migrations checkpoint-friendly (the
        // shard RNG state is unchanged by a migration pass).
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(13);
        let mut src = CounterSpec::Morris { a: 0.25 }.build().unwrap();
        src.increment_by(10_000, &mut rng);
        let mut probe = rng.clone();
        for spec in all_specs() {
            let _ = src.migrate_to(&spec, &mut rng).unwrap();
        }
        assert_eq!(rng.next_u64(), probe.next_u64());
    }

    #[test]
    fn cross_family_merge_is_refused() {
        let mut a = CounterSpec::Exact.build().unwrap();
        let b = CounterSpec::Morris { a: 0.5 }.build().unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        assert!(matches!(
            a.merge_from(&b, &mut rng),
            Err(CoreError::MergeMismatch { .. })
        ));
    }

    #[test]
    fn same_family_merge_delegates() {
        let mut a = CounterSpec::Exact.build().unwrap();
        let mut b = CounterSpec::Exact.build().unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        a.increment_by(10, &mut rng);
        b.increment_by(32, &mut rng);
        a.merge_from(&b, &mut rng).unwrap();
        assert_eq!(a.estimate(), 42.0);
    }

    #[test]
    fn decode_state_preserves_the_variant() {
        let mut c = CounterSpec::NelsonYu {
            eps: 0.2,
            delta_log2: 8,
        }
        .build()
        .unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        c.increment_by(50_000, &mut rng);
        let mut v = BitVec::new();
        c.encode_state(&mut BitWriter::new(&mut v));
        let template = CounterSpec::NelsonYu {
            eps: 0.2,
            delta_log2: 8,
        }
        .build()
        .unwrap();
        let back = template.decode_state(&mut BitReader::new(&v)).unwrap();
        assert!(matches!(back, CounterFamily::NelsonYu(_)));
        assert_eq!(back.estimate(), c.estimate());
    }
}
