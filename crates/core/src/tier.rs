//! Per-key accuracy tiers under a global memory budget.
//!
//! The paper prices *one* counter at `O(log log n + log 1/ε +
//! log log 1/δ)` bits; a keyed deployment spends that same `(ε, δ)` on
//! every key, so cold keys waste bits and hot keys get no better than the
//! global accuracy. The amortized-complexity follow-up (Aden-Ali, Han,
//! Nelson, Yu 2022) frames the alternative this module implements: keys
//! share one bit budget, and each key is assigned a **tier** — one rung
//! of a ladder of [`CounterSpec`]s ordered cheapest-first — with hot keys
//! promoted toward exact counting and cold keys demoted toward the
//! cheapest Morris rung, migrating state across families via the
//! estimate-preserving [`CounterFamily::migrate_to`].
//!
//! Two pieces live here:
//!
//! - [`TierPolicy`] — the ladder itself, either hand-picked
//!   ([`TierPolicy::new`] / [`TierPolicy::default_ladder`]) or planned
//!   from per-key bit budgets by the [`crate::budget`] planners
//!   ([`TierPolicy::for_budget`]).
//! - [`BudgetController`] — the decision rule: given the hot-key report
//!   from a detector (SpaceSaving/CountMin in `ac-streams`) and the
//!   engine's current total state bits, emit a [`MigrationPlan`] of
//!   per-key tier moves that keeps the total under the configured
//!   ceiling. Each tier boundary is a promise decision in the §1.2 sense
//!   — "is this key's count above `T_i`?" — and the controller keeps the
//!   promise problem's multiplicative decision gap as hysteresis, so a
//!   key fluctuating around a boundary does not flap between tiers.

use crate::budget::{plan_csuros, plan_morris, plan_nelson_yu, DEFAULT_SLACK_SIGMAS};
use crate::{ApproxCounter, CoreError, CounterFamily, CounterSpec};
use ac_bitio::{bit_len, StateBits};
use ac_randkit::SplitMix64;

/// Maximum ladder length: tier tags persist as one byte per key in
/// checkpoint format v3.
pub const MAX_TIERS: usize = 255;

/// Default promotion threshold for the first tier boundary (a key this
/// hot earns the second rung).
pub const DEFAULT_PROMOTE_BASE: f64 = 1_024.0;

/// Default geometric ratio between consecutive promotion thresholds.
pub const DEFAULT_PROMOTE_RATIO: f64 = 32.0;

/// Default multiplicative hysteresis around each promotion threshold —
/// the promise problem's decision gap (§1.2 uses `ε/10`; a key must be
/// clearly above `T_i` to promote and clearly below to demote).
pub const DEFAULT_HYSTERESIS_GAP: f64 = 0.1;

/// An ordered ladder of counter specifications: `ladder[0]` is the
/// **default tier** every new (and every demoted-to-cold) key lives in,
/// and later rungs trade more bits for more accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct TierPolicy {
    ladder: Vec<CounterSpec>,
}

impl TierPolicy {
    /// Builds a policy from an explicit ladder. `ladder[0]` is the
    /// default tier.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidState`] for an empty ladder or one
    /// longer than [`MAX_TIERS`], and each spec's own validation error if
    /// it does not construct.
    pub fn new(ladder: Vec<CounterSpec>) -> Result<Self, CoreError> {
        if ladder.is_empty() {
            return Err(CoreError::InvalidState {
                what: "tier ladder must name at least one spec",
            });
        }
        if ladder.len() > MAX_TIERS {
            return Err(CoreError::InvalidState {
                what: "tier ladder exceeds the one-byte tag space",
            });
        }
        for spec in &ladder {
            spec.build()?;
        }
        Ok(Self { ladder })
    }

    /// The stock ladder: `Morris(1)` (the classic ~`log log n`-bit
    /// counter) → Nelson–Yu (`ε = 0.25, δ = 2⁻⁶`) → Csűrös (`d = 8`,
    /// relative error ≈ 4 %) → Exact.
    #[must_use]
    pub fn default_ladder() -> Self {
        Self::new(vec![
            CounterSpec::Morris { a: 1.0 },
            CounterSpec::NelsonYu {
                eps: 0.25,
                delta_log2: 6,
            },
            CounterSpec::Csuros { mantissa_bits: 8 },
            CounterSpec::Exact,
        ])
        .expect("stock ladder is valid")
    }

    /// Plans a ladder from strictly increasing per-key bit budgets using
    /// the [`crate::budget`] planners: each rung gets the **most accurate
    /// family that fits its budget** — every planner runs and the spec
    /// with the smallest planned relative standard deviation wins
    /// (`√(a/2)` for Morris, `ε/2` for Nelson–Yu, `2^{-(d+1)/2}` for
    /// Csűrös, `0` for Exact once the budget covers `⌈log₂ n_max⌉`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidState`] for empty or non-increasing
    /// budgets and [`CoreError::BudgetInfeasible`] when a rung's budget
    /// cannot hold counts up to `n_max` in any family.
    pub fn for_budget(bits: &[u32], n_max: u64, delta_log2: u32) -> Result<Self, CoreError> {
        if bits.is_empty() {
            return Err(CoreError::InvalidState {
                what: "budget ladder must name at least one rung",
            });
        }
        if bits.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CoreError::InvalidState {
                what: "budget ladder must be strictly increasing",
            });
        }
        let exact_bits = u64::from(bit_len(n_max));
        let ladder = bits
            .iter()
            .map(|&b| {
                if u64::from(b) >= exact_bits {
                    return Ok(CounterSpec::Exact);
                }
                let mut best: Option<(f64, CounterSpec)> = None;
                let mut offer = |sd: f64, spec: CounterSpec| {
                    if best.as_ref().is_none_or(|(s, _)| sd < *s) {
                        best = Some((sd, spec));
                    }
                };
                if let Ok(c) = plan_morris(b, n_max, DEFAULT_SLACK_SIGMAS) {
                    offer((c.a() / 2.0).sqrt(), CounterSpec::Morris { a: c.a() });
                }
                if let Ok(c) = plan_nelson_yu(b, n_max, delta_log2) {
                    offer(
                        c.params().eps() / 2.0,
                        CounterSpec::NelsonYu {
                            eps: c.params().eps(),
                            delta_log2,
                        },
                    );
                }
                if let Ok(c) = plan_csuros(b, n_max, DEFAULT_SLACK_SIGMAS) {
                    offer(
                        (-(f64::from(c.mantissa_bits()) + 1.0) / 2.0).exp2(),
                        CounterSpec::Csuros {
                            mantissa_bits: c.mantissa_bits(),
                        },
                    );
                }
                best.map(|(_, spec)| spec)
                    .ok_or(CoreError::BudgetInfeasible {
                        bits: b,
                        n_max,
                        reason: "no family fits this rung's per-key budget",
                    })
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        Self::new(ladder)
    }

    /// The ladder, cheapest tier first.
    #[must_use]
    pub fn specs(&self) -> &[CounterSpec] {
        &self.ladder
    }

    /// Number of tiers (always at least 1).
    #[must_use]
    pub fn tiers(&self) -> usize {
        self.ladder.len()
    }

    /// The default tier's spec (`ladder[0]`).
    #[must_use]
    pub fn default_spec(&self) -> &CounterSpec {
        &self.ladder[0]
    }

    /// Builds one template counter per tier, in ladder order.
    ///
    /// # Errors
    ///
    /// Propagates [`CounterSpec::build`] errors (unreachable for a policy
    /// constructed through [`TierPolicy::new`], which validates).
    pub fn templates(&self) -> Result<Vec<CounterFamily>, CoreError> {
        self.ladder.iter().map(CounterSpec::build).collect()
    }
}

/// One key's pending tier move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierMove {
    /// The key to migrate.
    pub key: u64,
    /// The tier to migrate it to (index into the policy's ladder).
    pub tier: u8,
}

/// The controller's output: demotions first (they free bits), then
/// promotions admitted against the freed-up budget.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationPlan {
    /// Tier moves in application order.
    pub moves: Vec<TierMove>,
    /// The controller's projection of `state_bits_total` after the moves.
    pub projected_bits: u64,
}

impl MigrationPlan {
    /// True when the plan moves nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// The tier decision rule: promotes hot keys up the ladder and demotes
/// keys that left the hot window, under a hard `budget_bits` ceiling.
///
/// Thresholds form a geometric ladder `T_i = base · ratio^i` (one per
/// tier boundary), each treated as a §1.2 promise decision with a
/// multiplicative hysteresis gap: promote past boundary `i` only when the
/// detected count exceeds `(1 + gap)·T_i`, demote below it only when the
/// count falls under `(1 − gap)·T_i` — between the two, the current tier
/// wins, so boundary noise cannot flap a key.
#[derive(Debug, Clone)]
pub struct BudgetController {
    policy: TierPolicy,
    budget_bits: u64,
    /// Promotion thresholds, one per tier boundary
    /// (`thresholds[i]` gates tier `i` → `i + 1`).
    thresholds: Vec<f64>,
    gap: f64,
}

impl BudgetController {
    /// Creates a controller for `policy` under a total ceiling of
    /// `budget_bits` counter-state bits, with the default geometric
    /// threshold ladder.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the policy's specs (unreachable
    /// for a policy built through [`TierPolicy::new`]).
    pub fn new(policy: TierPolicy, budget_bits: u64) -> Result<Self, CoreError> {
        policy.templates()?;
        let thresholds = (0..policy.tiers().saturating_sub(1))
            .map(|i| DEFAULT_PROMOTE_BASE * DEFAULT_PROMOTE_RATIO.powi(i as i32))
            .collect();
        Ok(Self {
            policy,
            budget_bits,
            thresholds,
            gap: DEFAULT_HYSTERESIS_GAP,
        })
    }

    /// Replaces the promotion thresholds (must be strictly increasing,
    /// one per tier boundary).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidState`] on a length mismatch or a
    /// non-increasing ladder.
    pub fn with_thresholds(mut self, thresholds: Vec<f64>) -> Result<Self, CoreError> {
        if thresholds.len() != self.policy.tiers() - 1 {
            return Err(CoreError::InvalidState {
                what: "need exactly one threshold per tier boundary",
            });
        }
        if thresholds.windows(2).any(|w| !(w[0] > 0.0 && w[0] < w[1]))
            || thresholds.first().is_some_and(|&t| t <= 0.0)
        {
            return Err(CoreError::InvalidState {
                what: "promotion thresholds must be positive and strictly increasing",
            });
        }
        self.thresholds = thresholds;
        Ok(self)
    }

    /// The policy the controller steers.
    #[must_use]
    pub fn policy(&self) -> &TierPolicy {
        &self.policy
    }

    /// The configured ceiling on total counter-state bits.
    #[must_use]
    pub fn budget_bits(&self) -> u64 {
        self.budget_bits
    }

    /// The promotion thresholds in force.
    #[must_use]
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// The tier a key with detected count `est` belongs in, given its
    /// `current` tier — the promise-gap hysteresis rule.
    #[must_use]
    pub fn target_tier(&self, est: f64, current: u8) -> u8 {
        // Highest boundary cleanly exceeded (promote floor) and highest
        // boundary not cleanly undershot (demote ceiling).
        let promote_to = self
            .thresholds
            .iter()
            .take_while(|&&t| est >= (1.0 + self.gap) * t)
            .count() as u8;
        let demote_to = self
            .thresholds
            .iter()
            .take_while(|&&t| est >= (1.0 - self.gap) * t)
            .count() as u8;
        current.clamp(promote_to.min(demote_to), promote_to.max(demote_to))
    }

    /// The bit cost of holding an estimate of `est` in `tier` — the state
    /// bits of the tier's counter seeded at that estimate. Exact for the
    /// deterministic migration construction.
    #[must_use]
    pub fn tier_cost_bits(&self, tier: u8, est: f64) -> u64 {
        let Some(spec) = self.policy.ladder.get(usize::from(tier)) else {
            return 0;
        };
        // `migrate_to` is deterministic and consumes no randomness; the
        // throwaway stream only satisfies the signature.
        let mut scratch = SplitMix64::new(0);
        let mut probe = CounterFamily::Exact(crate::ExactCounter::new());
        probe.increment_by(est.max(0.0).round() as u64, &mut scratch);
        probe
            .migrate_to(spec, &mut scratch)
            .map_or(0, |c| c.state_bits())
    }

    /// Computes the round's migration plan.
    ///
    /// - `state_bits_total`: the engine's current total counter-state
    ///   bits.
    /// - `hot`: the detector's current window report, `(key, detected
    ///   count)`, hottest first.
    /// - `resident`: every key currently above the default tier, as
    ///   `(key, tier, current estimate)`.
    ///
    /// Demotions come first: resident keys absent from the hot window
    /// step down one tier per round (straight to the default tier when
    /// the total is over budget). Promotions are then admitted hottest
    /// first while the projected total stays under the ceiling.
    #[must_use]
    pub fn plan(
        &self,
        state_bits_total: u64,
        hot: &[(u64, f64)],
        resident: &[(u64, u8, f64)],
    ) -> MigrationPlan {
        let mut plan = MigrationPlan {
            moves: Vec::new(),
            projected_bits: state_bits_total,
        };
        let over_budget = state_bits_total > self.budget_bits;
        let hot_keys: std::collections::HashSet<u64> = hot.iter().map(|&(k, _)| k).collect();
        let mut current_tier: std::collections::HashMap<u64, u8> =
            resident.iter().map(|&(k, t, _)| (k, t)).collect();

        for &(key, tier, est) in resident {
            if tier == 0 || hot_keys.contains(&key) {
                continue;
            }
            // Cold: one rung per round normally, all the way down when
            // the ceiling is breached.
            let to = if over_budget { 0 } else { tier - 1 };
            let freed = self
                .tier_cost_bits(tier, est)
                .saturating_sub(self.tier_cost_bits(to, est));
            plan.projected_bits = plan.projected_bits.saturating_sub(freed);
            plan.moves.push(TierMove { key, tier: to });
            current_tier.insert(key, to);
        }

        for &(key, est) in hot {
            let current = current_tier.get(&key).copied().unwrap_or(0);
            let desired = self.target_tier(est, current);
            if desired <= current {
                continue;
            }
            let added = self
                .tier_cost_bits(desired, est)
                .saturating_sub(self.tier_cost_bits(current, est));
            if plan.projected_bits.saturating_add(added) > self.budget_bits {
                continue;
            }
            plan.projected_bits += added;
            plan.moves.push(TierMove { key, tier: desired });
            current_tier.insert(key, desired);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_is_ordered_cheap_to_exact() {
        let p = TierPolicy::default_ladder();
        assert_eq!(p.tiers(), 4);
        assert_eq!(p.default_spec().family_name(), "morris");
        assert_eq!(p.specs()[3].family_name(), "exact");
    }

    #[test]
    fn rejects_degenerate_ladders() {
        assert!(TierPolicy::new(vec![]).is_err());
        assert!(TierPolicy::new(vec![CounterSpec::Morris { a: -1.0 }]).is_err());
        assert!(TierPolicy::new(vec![CounterSpec::Exact; MAX_TIERS + 1]).is_err());
    }

    #[test]
    fn for_budget_uses_the_planners() {
        let p = TierPolicy::for_budget(&[6, 10, 20, 40], 1 << 24, 6).unwrap();
        assert_eq!(p.tiers(), 4);
        // The cheapest rung is an approximate family, the roomiest covers
        // log₂ n_max and goes exact; every rung builds.
        assert_ne!(p.specs()[0].family_name(), "exact");
        assert_eq!(p.specs()[3].family_name(), "exact");
        assert!(p.templates().is_ok());
        // Rung budgets below any family's floor are refused, as are
        // degenerate budget lists.
        assert!(TierPolicy::for_budget(&[1], 1 << 24, 6).is_err());
        assert!(TierPolicy::for_budget(&[], 100, 6).is_err());
        assert!(TierPolicy::for_budget(&[8, 8], 100, 6).is_err());
    }

    #[test]
    fn hysteresis_holds_the_current_tier_inside_the_gap() {
        let c = BudgetController::new(TierPolicy::default_ladder(), 1 << 20).unwrap();
        let t0 = c.thresholds()[0];
        // Clearly above: promote. Clearly below: demote. In the gap: stay.
        assert_eq!(c.target_tier(t0 * 1.2, 0), 1);
        assert_eq!(c.target_tier(t0 * 0.5, 1), 0);
        assert_eq!(c.target_tier(t0 * 1.01, 0), 0, "inside the gap, stays");
        assert_eq!(c.target_tier(t0 * 0.99, 1), 1, "inside the gap, stays");
    }

    #[test]
    fn plan_promotes_hot_keys_within_budget_and_demotes_cold() {
        let c = BudgetController::new(TierPolicy::default_ladder(), 10_000).unwrap();
        let t0 = c.thresholds()[0];
        let hot = vec![(1u64, t0 * 100.0), (2, t0 * 2.0)];
        let resident = vec![(9u64, 2u8, t0 * 2.0)];
        let plan = c.plan(500, &hot, &resident);
        // Key 9 left the hot window: one rung down. Keys 1 and 2 promote.
        assert!(plan.moves.contains(&TierMove { key: 9, tier: 1 }));
        assert!(plan.moves.iter().any(|m| m.key == 1 && m.tier >= 2));
        assert!(plan.moves.iter().any(|m| m.key == 2 && m.tier == 1));
        assert!(plan.projected_bits <= 10_000);
    }

    #[test]
    fn plan_refuses_promotions_past_the_ceiling() {
        // A ceiling of 0 admits nothing.
        let c = BudgetController::new(TierPolicy::default_ladder(), 0).unwrap();
        let t0 = c.thresholds()[0];
        let plan = c.plan(0, &[(1, t0 * 100.0)], &[]);
        assert!(plan.moves.is_empty());
    }

    #[test]
    fn over_budget_demotes_cold_keys_to_the_default_tier() {
        let c = BudgetController::new(TierPolicy::default_ladder(), 100).unwrap();
        let plan = c.plan(1_000, &[], &[(5u64, 3u8, 1e6)]);
        assert_eq!(plan.moves, vec![TierMove { key: 5, tier: 0 }]);
    }
}
