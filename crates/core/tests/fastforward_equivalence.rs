//! Cross-family guards for the batched fast-forward paths.
//!
//! For every counter family, the state distribution after
//! `increment_by(n)` must be indistinguishable from `n` repeated
//! `increment` calls — KS two-sample tests over a `(seed, n)` grid, plus
//! a chi-square test against the *exact* Morris level distribution (the
//! forward DP of `exact_level_distribution`). A chunked-batch test pins
//! down resumption from arbitrary mid-epoch states (the regime the
//! sharded engine lives in), and `reset()`-equals-`new()` regressions
//! cover every family.

use ac_core::{
    exact_level_distribution, ApproxCounter, AveragedMorris, CsurosCounter, ExactCounter,
    MorrisCounter, MorrisPlus, NelsonYuCounter, NyParams,
};
use ac_randkit::{CountingSource, Xoshiro256PlusPlus};
use ac_stats::chi2::chi2_gof;
use ac_stats::ks::ks_two_sample;

/// Collects `trials` samples of a state statistic under the batched and
/// the step-by-step path, then KS-tests the two populations.
fn assert_ff_matches_step<C, F, S>(label: &str, make: F, stat: S, n: u64, trials: usize, seed: u64)
where
    C: ApproxCounter,
    F: Fn() -> C,
    S: Fn(&C) -> f64,
{
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut ff = Vec::with_capacity(trials);
    let mut step = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut c = make();
        c.increment_by(n, &mut rng);
        ff.push(stat(&c));

        let mut c = make();
        for _ in 0..n {
            c.increment(&mut rng);
        }
        step.push(stat(&c));
    }
    let ks = ks_two_sample(&ff, &step);
    assert!(
        ks.p_value > 0.001,
        "{label}: n={n} seed={seed}: KS p={} D={}",
        ks.p_value,
        ks.statistic
    );
}

/// The `(seed, n)` grid shared by the per-family KS tests. Sizes are
/// chosen so each family crosses several epochs/levels in every cell.
const GRID: &[(u64, u64)] = &[(101, 2_000), (202, 5_000), (303, 20_000)];

#[test]
fn nelson_yu_fast_forward_matches_step_over_grid() {
    let p = NyParams::new(0.3, 6).unwrap();
    for &(seed, n) in GRID {
        assert_ff_matches_step(
            "nelson-yu",
            || NelsonYuCounter::new(p),
            |c| c.level() as f64,
            n,
            1_500,
            seed,
        );
    }
}

#[test]
fn morris_plus_fast_forward_matches_step_over_grid() {
    for &(seed, n) in GRID {
        assert_ff_matches_step(
            "morris+",
            || MorrisPlus::with_base(0.05).unwrap(),
            |c| c.morris().level() as f64,
            n,
            1_500,
            seed,
        );
    }
}

#[test]
fn csuros_fast_forward_matches_step_over_grid() {
    for &(seed, n) in GRID {
        assert_ff_matches_step(
            "csuros",
            || CsurosCounter::new(5).unwrap(),
            |c| c.register() as f64,
            n,
            1_500,
            seed,
        );
    }
}

#[test]
fn capped_csuros_fast_forward_matches_step() {
    // The cap interacts with the bulk path (partial takes, discarded
    // remainders); pin it to the stepped dynamics.
    assert_ff_matches_step(
        "csuros-capped",
        || CsurosCounter::with_cap(4, 90).unwrap(),
        |c| c.register() as f64,
        5_000,
        1_500,
        404,
    );
}

#[test]
fn morris_plus_level_skip_matches_step_at_tight_parameters() {
    // ε = 0.01, δ = 2⁻²⁰ gives a = ε²/(8 ln 1/δ) ≈ 9e-7 — the tiny-base
    // regime where the batched path rides the GeometricLadder run sampler
    // (advance probability stays ≥ 1/2 for the entire trajectory below
    // N ≈ 0.7/a). The level distribution must still match the step loop.
    let make = || MorrisPlus::new(0.01, 20).unwrap();
    assert!(
        make().a() < 1e-4,
        "test must sit in the level-skip regime, a = {}",
        make().a()
    );
    assert_ff_matches_step(
        "morris+ tight",
        make,
        |c| c.morris().level() as f64,
        10_000,
        1_200,
        909,
    );
}

#[test]
fn morris_level_skip_chunked_batches_match_single_batch() {
    // Engine workloads hit tiny-base counters with many small
    // increment_by calls; the run sampler's budget-capped climbs must
    // compose exactly (no conditioning may leak across call boundaries).
    let a = 5e-5;
    let chunks = [700u64, 1, 4_999, 2_500, 37, 1_463, 300];
    let n: u64 = chunks.iter().sum();
    let trials = 3_000;
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(1010);
    let mut chunked = Vec::with_capacity(trials);
    let mut single = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut c = MorrisCounter::new(a).unwrap();
        for &k in &chunks {
            c.increment_by(k, &mut rng);
        }
        chunked.push(c.level() as f64);

        let mut c = MorrisCounter::new(a).unwrap();
        c.increment_by(n, &mut rng);
        single.push(c.level() as f64);
    }
    let ks = ks_two_sample(&chunked, &single);
    assert!(ks.p_value > 0.001, "KS p={} D={}", ks.p_value, ks.statistic);
}

#[test]
fn capped_morris_level_skip_respects_cap() {
    // A cap inside the skip regime: the run sampler must stop climbing at
    // the register cap and absorb the rest, exactly like the step loop.
    assert_ff_matches_step(
        "morris tiny-base capped",
        || MorrisCounter::with_cap(1e-3, 40).unwrap(),
        |c| c.level() as f64,
        2_000,
        1_500,
        1111,
    );
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(1212);
    let mut c = MorrisCounter::with_cap(1e-5, 100).unwrap();
    c.increment_by(10_000, &mut rng);
    assert_eq!(c.level(), 100, "tiny base: cap reached deterministically");
    assert!(c.saturated());
}

#[test]
fn morris_fast_forward_matches_exact_distribution_chi2() {
    // Strongest possible oracle: the exact forward-DP level pmf.
    let (a, n) = (0.5, 2_000u64);
    let pmf = exact_level_distribution(a, n);
    let trials = 4_000u64;
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(505);
    let mut counts = vec![0.0f64; pmf.len()];
    for _ in 0..trials {
        let mut c = MorrisCounter::new(a).unwrap();
        c.increment_by(n, &mut rng);
        counts[c.level() as usize] += 1.0;
    }
    let expected: Vec<f64> = pmf.iter().map(|&p| p * trials as f64).collect();
    let r = chi2_gof(&counts, &expected, 8.0);
    assert!(
        r.p_value > 0.001,
        "chi2={} dof={} p={}",
        r.statistic,
        r.dof,
        r.p_value
    );
}

#[test]
fn chunked_batches_match_single_batch() {
    // The engine applies many small increment_by calls per counter, so
    // resuming the batched path from arbitrary mid-epoch states must
    // reproduce the single-batch distribution.
    let p = NyParams::new(0.3, 6).unwrap();
    let chunks = [1_000u64, 1, 4_999, 2_500, 37, 1_463, 10_000];
    let n: u64 = chunks.iter().sum();
    let trials = 2_000;
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(606);

    let mut chunked = Vec::with_capacity(trials);
    let mut single = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut c = NelsonYuCounter::new(p);
        for &k in &chunks {
            c.increment_by(k, &mut rng);
        }
        chunked.push(c.level() as f64);

        let mut c = NelsonYuCounter::new(p);
        c.increment_by(n, &mut rng);
        single.push(c.level() as f64);
    }
    let ks = ks_two_sample(&chunked, &single);
    assert!(ks.p_value > 0.001, "KS p={} D={}", ks.p_value, ks.statistic);

    let mut chunked = Vec::with_capacity(trials);
    let mut single = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut c = CsurosCounter::new(5).unwrap();
        for &k in &chunks {
            c.increment_by(k, &mut rng);
        }
        chunked.push(c.register() as f64);

        let mut c = CsurosCounter::new(5).unwrap();
        c.increment_by(n, &mut rng);
        single.push(c.register() as f64);
    }
    let ks = ks_two_sample(&chunked, &single);
    assert!(
        ks.p_value > 0.001,
        "csuros KS p={} D={}",
        ks.p_value,
        ks.statistic
    );
}

/// Pumps a counter hard, resets it, and requires bit-identical equality
/// with a freshly constructed one — including the peak-bits high-water
/// mark (`PartialEq` covers every field).
fn assert_reset_equals_new<C, F>(label: &str, make: F)
where
    C: ApproxCounter + PartialEq + std::fmt::Debug,
    F: Fn() -> C,
{
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(707);
    let mut used = make();
    used.increment_by(1_000_000, &mut rng);
    used.reset();
    assert_eq!(used, make(), "{label}: reset() must equal new()");
    assert_eq!(
        used.peak_state_bits(),
        make().peak_state_bits(),
        "{label}: post-reset peak must agree with a fresh counter's"
    );
}

#[test]
fn reset_equals_new_for_every_family() {
    assert_reset_equals_new("exact", ExactCounter::new);
    assert_reset_equals_new("morris", || MorrisCounter::new(0.7).unwrap());
    assert_reset_equals_new("morris-capped", || MorrisCounter::with_cap(1.0, 9).unwrap());
    assert_reset_equals_new("morris+", || MorrisPlus::with_base(0.1).unwrap());
    assert_reset_equals_new("nelson-yu", || {
        NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap())
    });
    assert_reset_equals_new("csuros", || CsurosCounter::new(6).unwrap());
    assert_reset_equals_new("csuros-capped", || CsurosCounter::with_cap(6, 500).unwrap());
    assert_reset_equals_new("averaged-morris", || AveragedMorris::new(4, 0.5).unwrap());
}

#[test]
fn capped_morris_merge_matches_sequential_distribution() {
    // Merging two capped counters must agree with one capped counter that
    // saw both streams — including runs where the replay saturates midway.
    let (a, cap) = (1.0, 8u64);
    let (n1, n2) = (2_000u64, 3_000u64);
    let trials = 4_000;
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(808);
    let mut merged = Vec::with_capacity(trials);
    let mut sequential = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut c1 = MorrisCounter::with_cap(a, cap).unwrap();
        c1.increment_by(n1, &mut rng);
        let mut c2 = MorrisCounter::with_cap(a, cap).unwrap();
        c2.increment_by(n2, &mut rng);
        c1.merge_from(&c2, &mut rng).unwrap();
        assert!(c1.level() <= cap, "merge must respect the cap");
        merged.push(c1.level() as f64);

        let mut c = MorrisCounter::with_cap(a, cap).unwrap();
        c.increment_by(n1 + n2, &mut rng);
        sequential.push(c.level() as f64);
    }
    let ks = ks_two_sample(&merged, &sequential);
    assert!(ks.p_value > 0.001, "KS p={} D={}", ks.p_value, ks.statistic);
}

#[test]
fn saturated_morris_merge_consumes_no_randomness() {
    // Both counters pinned at the cap: the replay must short-circuit
    // before drawing a single word.
    let mut a = MorrisCounter::with_cap(1.0, 5).unwrap();
    a.set_level(5);
    let mut b = MorrisCounter::with_cap(1.0, 5).unwrap();
    b.set_level(5);
    let mut src = CountingSource::new(Xoshiro256PlusPlus::seed_from_u64(909));
    a.merge_from(&b, &mut src).unwrap();
    assert_eq!(a.level(), 5);
    assert_eq!(
        src.words_drawn(),
        0,
        "saturated merge must not draw randomness"
    );
}
