//! Scripted-randomness tests: drive counters with exact, hand-written
//! coin sequences to pin down their transition behavior bit by bit
//! (failure injection for the probabilistic paths).

use ac_core::{ApproxCounter, CsurosCounter, MorrisCounter, NelsonYuCounter, NyParams};
use ac_randkit::{CountingSource, RandomSource, SequenceSource, SplitMix64};

/// A source that yields `word` forever (for forcing all-heads /
/// all-tails runs).
struct ConstSource(u64);

impl RandomSource for ConstSource {
    fn next_u64(&mut self) -> u64 {
        self.0
    }
}

#[test]
fn ny_exact_epoch_consumes_no_randomness() {
    // Remark 2.2's storage model starts paying for coins only when
    // sampling kicks in: while α = 1 (the exact epoch *and* the early
    // epochs where the ε³ slack keeps the line-10 rate above 1), an
    // increment must consume zero random words.
    let p = NyParams::new(0.3, 4).unwrap();
    let mut c = NelsonYuCounter::new(p);
    let mut src = CountingSource::new(SplitMix64::new(1));
    let mut guard = 0u64;
    while c.sampling_exponent() == 0 {
        c.increment(&mut src);
        guard += 1;
        assert!(guard < 10_000_000, "sampling must eventually start");
    }
    assert_eq!(
        src.words_drawn(),
        0,
        "the α = 1 phase must be randomness-free"
    );
    // From now on each increment consumes exactly one word (t ≤ 64).
    for _ in 0..100 {
        c.increment(&mut src);
    }
    assert_eq!(
        src.words_drawn(),
        100,
        "one word per increment once sampling is active (t <= 64)"
    );
}

#[test]
fn ny_survivor_and_nonsurvivor_coins_do_what_they_say() {
    // Drive the counter into a t >= 1 epoch, then feed explicit coins:
    // a word with low t bits zero is a survivor, anything else is not.
    let p = NyParams::new(0.3, 4).unwrap();
    let mut c = NelsonYuCounter::new(p);
    // Cross into sampling: α = 1 holds for the exact epoch plus a few
    // more (the ε³ slack), so drive until t >= 1.
    let mut heads = ConstSource(0);
    while c.sampling_exponent() == 0 {
        c.increment(&mut heads);
    }
    let t = c.sampling_exponent();
    assert!(t >= 1, "should be sampling now");

    let y_before = c.y();
    // Non-survivor: all bits set.
    let mut tails = SequenceSource::new(vec![u64::MAX]);
    c.increment(&mut tails);
    assert_eq!(c.y(), y_before, "a tails coin must not advance Y");

    // Survivor: all bits clear.
    let mut heads = SequenceSource::new(vec![0]);
    c.increment(&mut heads);
    assert_eq!(c.y(), y_before + 1, "a heads coin must advance Y");
}

#[test]
fn ny_forced_survivors_walk_the_whole_epoch_schedule() {
    // With every coin a survivor, the counter must advance epochs along
    // the exact deterministic schedule: each epoch at level x consumes
    // exactly (y_end - y_start) survivors.
    let p = NyParams::new(0.4, 3).unwrap();
    let mut c = NelsonYuCounter::new(p);
    let mut all_heads = ConstSource(0);
    let mut increments = 0u64;
    while c.epoch() < 5 {
        c.increment(&mut all_heads);
        increments += 1;
        assert!(increments < 1_000_000, "schedule must advance");
    }
    // Under forced survivors, total increments equal the sum of epoch
    // survivor spans — reconstruct from the schedule and compare.
    let mut expected = 0u64;
    for level in p.x0()..p.x0() + 5 {
        let (y_start, y_end) = p.epoch_y_span(level);
        expected += y_end - y_start;
    }
    // The walk stops the moment epoch 5 begins, which happens on the
    // survivor that crosses the last threshold: totals match exactly.
    assert_eq!(increments, expected);
}

#[test]
fn morris_scripted_coins() {
    // Morris(1) at level 3 advances iff next_f64() < 1/8. next_f64 is
    // (word >> 11)·2^-53, so word = 0 forces an advance and word = MAX
    // forces a stay.
    let mut c = MorrisCounter::classic();
    c.set_level(3);
    let mut zero = SequenceSource::new(vec![0]);
    c.increment(&mut zero);
    assert_eq!(c.level(), 4);

    let mut max = SequenceSource::new(vec![u64::MAX]);
    c.increment(&mut max);
    assert_eq!(c.level(), 4, "all-ones word must not advance level 4");
}

#[test]
fn morris_all_heads_counts_exactly() {
    // Forced survivors degrade Morris into an exact unary counter.
    let mut c = MorrisCounter::new(0.5).unwrap();
    let mut all_heads = ConstSource(0);
    for i in 1..=200 {
        c.increment(&mut all_heads);
        assert_eq!(c.level(), i);
    }
}

#[test]
fn csuros_scripted_exponent_behavior() {
    // Register at the end of exponent-1 stretch: survival needs the low
    // bit of the word to be 0 (BernoulliPow2(1)).
    let d = 3;
    let mut c = CsurosCounter::new(d).unwrap();
    c.set_register(1 << d); // exponent 1, mantissa 0
    let mut tails = SequenceSource::new(vec![1]); // low bit set -> no
    c.increment(&mut tails);
    assert_eq!(c.register(), 1 << d);
    let mut heads = SequenceSource::new(vec![0]);
    c.increment(&mut heads);
    assert_eq!(c.register(), (1 << d) + 1);
}

#[test]
fn exhausted_script_panics_not_corrupts() {
    // A scripted source that runs out panics (loudly), rather than
    // silently recycling randomness — guard the guard.
    let p = NyParams::new(0.3, 4).unwrap();
    let mut c = NelsonYuCounter::new(p);
    let mut heads = ConstSource(0);
    while c.sampling_exponent() == 0 {
        c.increment(&mut heads);
    }
    let mut empty = SequenceSource::new(vec![]);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        c.increment(&mut empty);
    }));
    assert!(result.is_err(), "exhausted script must panic");
}
