//! Property-based tests on the counter algorithms' invariants.

use ac_core::{
    budget, exact_level_distribution, morris_a, morris_plus_cutoff, ApproxCounter, CsurosCounter,
    MorrisCounter, MorrisPlus, NelsonYuCounter, NyParams,
};
use ac_randkit::Xoshiro256PlusPlus;
use proptest::prelude::*;

fn eps_strategy() -> impl Strategy<Value = f64> {
    0.01f64..0.49
}

proptest! {
    /// The Morris estimator is the exact inverse of the level map for
    /// any base: estimate(level(x)) == x.
    #[test]
    fn morris_estimate_inverts_level(a in 0.001f64..4.0, frac in 0.0f64..1.0) {
        // Sample the level as a fraction of the f64-safe range
        // x·ln(1+a) < 600, so no inputs are rejected.
        let x = ((600.0 / a.ln_1p()) * frac) as u64;
        let mut c = MorrisCounter::new(a).unwrap();
        c.set_level(x);
        let est = c.estimate();
        // The analytic inverse of the estimator, computed in f64 (the
        // estimate may exceed u64 range for large x·ln(1+a)).
        let back = (a * est).ln_1p() / a.ln_1p();
        prop_assert!((back - x as f64).abs() < 1e-6 * (x as f64).max(1.0), "x={x} back={back}");
    }

    /// Morris level never exceeds the increment count (each increment
    /// advances at most one level).
    #[test]
    fn morris_level_bounded_by_n(seed in any::<u64>(), a in 0.01f64..4.0, n in 0u64..20_000) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut c = MorrisCounter::new(a).unwrap();
        c.increment_by(n, &mut rng);
        prop_assert!(c.level() <= n);
    }

    /// Morris+ is exact on the entire deterministic prefix for any
    /// parameters.
    #[test]
    fn morris_plus_prefix_exact(seed in any::<u64>(), eps in eps_strategy(), dlog in 1u32..40) {
        let a = morris_a(eps, dlog).unwrap();
        let cutoff = morris_plus_cutoff(a);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut c = MorrisPlus::new(eps, dlog).unwrap();
        let n = cutoff.min(10_000) / 2 + 1;
        c.increment_by(n, &mut rng);
        prop_assert_eq!(c.estimate(), n as f64);
    }

    /// The Nelson–Yu schedule is internally consistent for arbitrary
    /// parameters: α is a rounded-up inverse power of two, thresholds are
    /// positive, X₀ ≥ 1.
    #[test]
    fn ny_schedule_consistent(eps in eps_strategy(), dlog in 1u32..60) {
        let p = NyParams::new(eps, dlog).unwrap();
        prop_assert!(p.x0() >= 1);
        let mut t_prev = 0;
        for x in p.x0()..p.x0() + 200 {
            let t = p.alpha_exponent(x).max(t_prev);
            prop_assert!(p.threshold_for(x, t) >= 1);
            if x > p.x0() {
                let formula = p.c() * p.ln_inv_eta(x) / (eps.powi(3) * p.t_value(x));
                if formula < 1.0 {
                    let alpha = (-f64::from(p.alpha_exponent(x))).exp2();
                    prop_assert!(alpha >= formula && alpha / 2.0 < formula);
                }
            }
            t_prev = t;
        }
    }

    /// NY counter invariants hold along arbitrary increment schedules:
    /// Y ≤ threshold, t monotone, estimate monotone.
    #[test]
    fn ny_invariants(seed in any::<u64>(), eps in eps_strategy(), chunks in prop::collection::vec(0u64..30_000, 1..8)) {
        let p = NyParams::new(eps, 8).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut c = NelsonYuCounter::new(p);
        let mut prev_t = 0;
        let mut prev_est = 0.0;
        for &n in &chunks {
            c.increment_by(n, &mut rng);
            prop_assert!(c.y() <= c.current_threshold());
            prop_assert!(c.sampling_exponent() >= prev_t);
            prop_assert!(c.estimate() >= prev_est);
            prev_t = c.sampling_exponent();
            prev_est = c.estimate();
        }
    }

    /// The Csűrös estimator is strictly increasing in the register, so
    /// distinct states give distinct answers.
    #[test]
    fn csuros_estimator_strictly_monotone(d in 0u32..20, x in 0u64..100_000) {
        // Keep 2^(x >> d) within f64 range.
        prop_assume!((x >> d) < 900);
        let mut a = CsurosCounter::new(d).unwrap();
        let mut b = CsurosCounter::new(d).unwrap();
        a.set_register(x);
        b.set_register(x + 1);
        prop_assert!(b.estimate() > a.estimate());
    }

    /// Budget plans never exceed their bit budget across a simulated run
    /// (hard caps guarantee it even in the tails).
    #[test]
    fn plans_respect_budget(seed in any::<u64>(), bits in 8u32..24) {
        let n_max = 999_999;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        if let Ok(mut m) = budget::plan_morris(bits, n_max, 6.0) {
            m.increment_by(n_max, &mut rng);
            prop_assert!(m.peak_state_bits() <= u64::from(bits));
        }
        if let Ok(mut c) = budget::plan_csuros(bits, n_max, 6.0) {
            c.increment_by(n_max, &mut rng);
            prop_assert!(c.peak_state_bits() <= u64::from(bits));
        }
    }

    /// The exact DP is a probability vector with CDF-mean consistency for
    /// arbitrary parameters (heavier version of the unit tests).
    #[test]
    fn exact_dp_consistent(a in 0.005f64..3.0, n in 0u64..250) {
        let dist = exact_level_distribution(a, n);
        prop_assert_eq!(dist.len() as u64, n + 1);
        let total: f64 = dist.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        // P[X = n] = (1+a)^{-n(n-1)/2}: positive whenever it does not
        // underflow f64 (it legitimately underflows for large a·n²).
        let log_p_top = -(((n * n.saturating_sub(1)) / 2) as f64) * a.ln_1p();
        if n > 0 && log_p_top > -700.0 {
            prop_assert!(dist[n as usize] > 0.0);
        }
    }

    /// State bits equal the audit total for every counter type.
    #[test]
    fn audits_match_state_bits(seed in any::<u64>(), n in 0u64..50_000) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let p = NyParams::new(0.2, 8).unwrap();
        let counters: Vec<Box<dyn ApproxCounter>> = vec![
            Box::new(MorrisCounter::classic()),
            Box::new(MorrisPlus::new(0.2, 8).unwrap()),
            Box::new(NelsonYuCounter::new(p)),
            Box::new(CsurosCounter::new(5).unwrap()),
        ];
        for mut c in counters {
            c.increment_by(n, &mut rng);
            prop_assert_eq!(c.memory_audit().total_bits(), c.state_bits(), "{}", c.name());
        }
    }
}

/// Half the relative grid spacing of `spec` around estimate `est` — the
/// documented migration-time rounding bound of
/// [`ac_core::CounterFamily::migrate_to`] (nearest representable
/// neighbour in the target family).
fn migration_grid_bound(spec: &ac_core::CounterSpec, est: f64) -> f64 {
    match spec {
        ac_core::CounterSpec::Exact => 0.5 / est.max(1.0),
        ac_core::CounterSpec::Morris { a } => a / 2.0,
        ac_core::CounterSpec::MorrisPlus { eps, .. }
        | ac_core::CounterSpec::NelsonYu { eps, .. } => *eps,
        // Full spacing, not half: the Csűrös estimator is offset by
        // -2^d, so half a step relative to the *estimate* can exceed
        // 2^-(d+1) near the bottom of a binade.
        ac_core::CounterSpec::Csuros { mantissa_bits } => (0.5f64).powi(*mantissa_bits as i32),
        _ => unreachable!("default ladder uses the four stock families"),
    }
}

/// The planned relative standard deviation of `spec` (the σ the
/// [`ac_core::TierPolicy::for_budget`] planners rank rungs by).
fn tier_sigma(spec: &ac_core::CounterSpec) -> f64 {
    match spec {
        ac_core::CounterSpec::Exact => 0.0,
        ac_core::CounterSpec::Morris { a } => (a / 2.0).sqrt(),
        ac_core::CounterSpec::MorrisPlus { eps, .. }
        | ac_core::CounterSpec::NelsonYu { eps, .. } => eps / 2.0,
        ac_core::CounterSpec::Csuros { mantissa_bits } => {
            (0.5f64).powf((f64::from(*mantissa_bits) + 1.0) / 2.0)
        }
        _ => unreachable!("default ladder uses the four stock families"),
    }
}

proptest! {
    /// Migration across every ordered pair of the default ladder (both
    /// promotions and demotions) preserves the estimate at migration
    /// time: the target lands within half its own grid spacing of the
    /// source estimate, and — the exactness claim — an estimate already
    /// representable in the target family is preserved *bit-exactly*
    /// (re-migration to the same spec is a fixed point, and migration
    /// into `Exact` reproduces the rounded source estimate).
    #[test]
    fn migrate_preserves_estimates_across_the_default_ladder(
        seed in any::<u64>(),
        n in 1u64..200_000,
    ) {
        let ladder = ac_core::TierPolicy::default_ladder();
        let specs = ladder.specs();
        for (i, src_spec) in specs.iter().enumerate() {
            for (j, dst_spec) in specs.iter().enumerate() {
                if i == j {
                    continue;
                }
                let mut rng = Xoshiro256PlusPlus::seed_from_u64(
                    seed ^ ((i as u64) << 32) ^ ((j as u64) << 40),
                );
                let mut src = src_spec.build().unwrap();
                src.increment_by(n, &mut rng);
                let e0 = src.estimate();
                let migrated = src.migrate_to(dst_spec, &mut rng).unwrap();
                let e1 = migrated.estimate();

                let bound = migration_grid_bound(dst_spec, e0);
                let rel = (e1 - e0).abs() / e0.max(1.0);
                prop_assert!(
                    rel <= bound,
                    "{} -> {}: migrated {e1} vs {e0}, rel {rel} > grid bound {bound}",
                    src_spec.family_name(),
                    dst_spec.family_name()
                );
                if matches!(dst_spec, ac_core::CounterSpec::Exact) {
                    prop_assert_eq!(e1, e0.round(), "Exact holds the rounded source estimate");
                }
                let again = migrated.migrate_to(dst_spec, &mut rng).unwrap();
                prop_assert_eq!(
                    again.estimate(),
                    e1,
                    "{}: re-migration must be a fixed point",
                    dst_spec.family_name()
                );
            }
        }
    }
}

proptest! {
    /// After a promotion (every ordered pair `i < j` of the default
    /// ladder), follow-up increments on the migrated counter stay inside
    /// the *target* tier's error band: the final estimate is within the
    /// migration-time grid rounding plus six planned standard deviations
    /// of `migrated_estimate + follow` (deterministically exact when the
    /// target is `Exact`). Seeds derive from the case inputs, so any
    /// failure replays deterministically.
    #[test]
    fn post_migration_error_stays_in_the_target_band(
        n in 1u64..100_000,
        follow in 1u64..100_000,
    ) {
        let ladder = ac_core::TierPolicy::default_ladder();
        let specs = ladder.specs();
        for (i, src_spec) in specs.iter().enumerate() {
            for (j, dst_spec) in specs.iter().enumerate().skip(i + 1) {
                let mut rng = Xoshiro256PlusPlus::seed_from_u64(
                    n ^ follow.rotate_left(17) ^ ((i as u64) << 32) ^ ((j as u64) << 40),
                );
                let mut src = src_spec.build().unwrap();
                src.increment_by(n, &mut rng);
                let mut migrated = src.migrate_to(dst_spec, &mut rng).unwrap();
                let seeded = migrated.estimate();
                migrated.increment_by(follow, &mut rng);

                let truth = seeded + follow as f64;
                let band =
                    migration_grid_bound(dst_spec, truth) + 6.0 * tier_sigma(dst_spec) + 1e-9;
                let rel = (migrated.estimate() - truth).abs() / truth.max(1.0);
                prop_assert!(
                    rel <= band,
                    "{} -> {}: estimate {} vs {truth}, rel {rel} > band {band}",
                    src_spec.family_name(),
                    dst_spec.family_name(),
                    migrated.estimate()
                );
            }
        }
    }
}
