//! The ingest layer: per-producer lock-free SPSC rings behind a
//! nonblocking writer API, so producers never contend on a global lock
//! and never block on shard application.
//!
//! Producers hold an [`IngestProducer`] and call
//! [`record`](IngestProducer::record); increments to the same key within
//! the current batch are coalesced into one `(key, delta)` pair (the
//! counter families' batched `increment_by` makes a coalesced delta as
//! cheap as a single increment — the amortized view of the Aden-Ali–Han–
//! Nelson–Yu follow-up, where the batch is the first-class operation).
//! Full batches are published into the producer's *own* bounded
//! single-producer/single-consumer ring
//! ([`ring_batches`](IngestConfig::ring_batches) slots, power-of-two,
//! atomic head/tail on separate cache lines); appliers round-robin the
//! rings and drain batches into a [`CounterEngine`](crate::CounterEngine)
//! sequentially, with one-thread-per-shard application, or through the
//! persistent applier pool ([`IngestQueue::drain_pooled`]). There is no
//! global queue lock: a producer's hot path is one uncontended slot write
//! plus two atomic ring words, and parking/unparking rides eventcount
//! doorbells (one atomic load per notify when nobody waits) instead of a
//! shared `Condvar`.
//!
//! ## Routed mode: producer-side shard routing
//!
//! The pooled drain above still re-hashes and copies every pair on one
//! dispatcher thread before the shard workers see it. *Routed* mode
//! ([`IngestQueue::new_routed`]) moves that routing to the send side:
//! each producer owns one ring **lane per shard**, `try_send`/`send`
//! Lemire-route each pair exactly once — while the batch is cache-hot on
//! the producer's core — and push each shard's slice into that shard's
//! lane, and each persistent shard worker pops its own lanes directly
//! ([`IngestQueue::drain_routed`]). The dispatcher's bucket-and-copy
//! pass disappears; the drain thread shrinks to a burst coordinator
//! (epoch stamping, sequence high-water marks, burst hooks, and the
//! merged per-shard detector tap). A batch's lane slices become visible
//! to the coordinator **atomically**: the producer publishes every slice
//! first and only then advances its commit mark, and a burst drains each
//! producer up to a *consistent cut* of committed sequence numbers — so
//! per-producer FIFO holds per shard, [`BackpressurePolicy`] semantics
//! (including `Fail`'s all-or-nothing refusal with exact sequence-mark
//! rollback) carry over, and checkpoint bytes stay bit-identical to the
//! pooled applier. A routed queue refuses the batch-granular consumer
//! surface ([`IngestQueue::next_batch`] and the drains built on it);
//! producers' writer API is identical in both modes. Lane memory is
//! `producers × shards` rings of `ring_batches` slots — see the sizing
//! guidance in [`crate::ring`].
//!
//! ## Backpressure
//!
//! Each ring is bounded. When a producer's ring fills,
//! [`IngestConfig::policy`] picks the behavior:
//!
//! * [`BackpressurePolicy::Block`] (default) — the producer parks on the
//!   space doorbell until its applier catches up. Lossless.
//! * [`BackpressurePolicy::DropNewest`] — the refused batch is dropped
//!   and counted ([`IngestStats::dropped_batches`], surfaced through
//!   [`EngineStats::with_ingest`](crate::EngineStats::with_ingest)) —
//!   the load-shedding mode for latency-critical writers.
//! * [`BackpressurePolicy::Fail`] — nothing is ever dropped silently:
//!   [`IngestProducer::try_send`] returns [`SendError::Full`] *carrying
//!   the rejected batch*, and `record`'s auto-flush retains the buffer
//!   instead of discarding it, so refusal always surfaces at a call
//!   site that can retry ([`IngestProducer::resubmit`]), back off, or
//!   shed load deliberately.
//!
//! ## Provenance: producer ids and sequence numbers
//!
//! Every [`Batch`] is stamped with the id of the [`IngestProducer`] that
//! flushed it and a per-producer sequence number (1, 2, 3, … over the
//! *accepted* batches of that producer). The ring registry tracks two
//! high-water marks per producer — the last sequence accepted into the
//! ring and the last sequence drained into an engine ([`ProducerMark`],
//! surfaced through [`IngestStats::producers`]) — which is what makes
//! exactly-once replay after a crash-restore possible: a checkpoint cut
//! at a batch boundary records the applied marks, so on recovery each
//! producer knows the first sequence number the store has *not* seen and
//! replays from there, nothing dropped and nothing double-counted (the
//! checkpoint preserves RNG streams, so replayed batches reproduce
//! states bit-for-bit).
//!
//! ## Determinism
//!
//! A single producer draining through a sequential applier reproduces
//! `engine.apply` on the concatenated batches bit for bit — and so do
//! [`drain_parallel`](IngestQueue::drain_parallel) and the pooled drain,
//! per the engine's parallel-apply contract (per-shard arrival order is
//! preserved and each shard consumes only its own RNG stream). With
//! several producers the *arrival order* of batches depends on thread
//! scheduling — as in any streaming system — but every applied state is
//! still one the deterministic engine produces for some arrival order.
//!
//! The one deliberate exception is the opt-in key-run fold
//! ([`IngestConfig::fold_runs`]): the pooled applier then sorts each
//! drained burst's pairs by key and applies one `increment_by` per
//! key-run, amortizing counter transitions across the burst. Summing
//! deltas before the draw consumes the RNG stream differently than
//! summing after, so folded states are *distributionally* identical
//! (Remark 2.4's merge view) but not bit-identical to the unfolded
//! path — hence off by default and never used by the checkpointed
//! drains' tests of bit-exactness.

use crate::checkpointer::BackgroundCheckpointer;
use crate::registry::{CounterEngine, ShardRouter};
use crate::ring::{Doorbell, SpscRing};
use ac_core::{ApproxCounter, StateCodec};
use ac_randkit::BuildSplitMix64;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One coalesced batch of `(key, delta)` pairs, stamped with its
/// provenance: which producer flushed it and where it sits in that
/// producer's accepted sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Batch {
    /// Id of the [`IngestProducer`] that flushed the batch.
    pub producer: u64,
    /// 1-based position in that producer's accepted stream.
    pub seq: u64,
    /// The coalesced `(key, delta)` pairs, in first-touch order.
    pub pairs: Vec<(u64, u64)>,
}

impl Batch {
    /// Sum of deltas in the batch.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.pairs.iter().map(|&(_, d)| d).sum()
    }
}

/// What a producer does when its ring is full (or the queue closed).
///
/// See the module docs for the full story; the short version:
/// `Block` is lossless and parks, `DropNewest` sheds load and counts,
/// `Fail` turns refusal into a value ([`SendError::Full`]) the caller
/// must handle — the only mode in which nothing can ever be lost
/// silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum BackpressurePolicy {
    /// Park the producer on the space doorbell until the applier frees a
    /// slot. Lossless; the default.
    #[default]
    Block,
    /// Drop the refused batch, count it in
    /// [`IngestStats::dropped_batches`], and keep going.
    DropNewest,
    /// Refuse loudly: [`IngestProducer::try_send`] returns the batch
    /// inside [`SendError::Full`] and auto-flush retains the buffer, so
    /// the caller decides what to do with the data.
    Fail,
}

/// A batch the queue would not accept, returned *with the data* so the
/// caller owns the retry/shed decision. Produced by
/// [`IngestProducer::try_send`] / [`IngestProducer::send`] /
/// [`IngestProducer::resubmit`] and re-exported through the
/// [`Store`](crate::Store) writer surface.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SendError {
    /// The producer's ring had no free slot. Retrying after the applier
    /// catches up (or [`IngestProducer::send`], which parks) will
    /// succeed; the batch is returned untouched.
    Full(Batch),
    /// The queue is closed; no retry can ever succeed. The batch is
    /// returned so a draining caller can persist it elsewhere.
    Closed(Batch),
}

impl SendError {
    /// The rejected batch, by reference.
    #[must_use]
    pub fn batch(&self) -> &Batch {
        match self {
            Self::Full(b) | Self::Closed(b) => b,
        }
    }

    /// Recovers the rejected batch (for [`IngestProducer::resubmit`] or
    /// external spill).
    #[must_use]
    pub fn into_batch(self) -> Batch {
        match self {
            Self::Full(b) | Self::Closed(b) => b,
        }
    }

    /// True for the retryable [`SendError::Full`] case.
    #[must_use]
    pub fn is_full(&self) -> bool {
        matches!(self, Self::Full(_))
    }
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Full(b) => write!(
                f,
                "ingest ring full: batch of {} pairs ({} events) refused",
                b.pairs.len(),
                b.events()
            ),
            Self::Closed(b) => write!(
                f,
                "ingest queue closed: batch of {} pairs ({} events) refused",
                b.pairs.len(),
                b.events()
            ),
        }
    }
}

impl std::error::Error for SendError {}

/// Ingest layer construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct IngestConfig {
    /// Per-producer ring capacity, in batches (rounded up to a power of
    /// two). The total buffering of the layer is `ring_batches ×
    /// producers`; a deeper ring absorbs longer applier stalls before
    /// backpressure engages.
    pub ring_batches: usize,
    /// Coalesced pairs per batch before a producer auto-flushes.
    pub batch_pairs: usize,
    /// What a producer does when its ring is full; see
    /// [`BackpressurePolicy`].
    pub policy: BackpressurePolicy,
    /// Opt-in batch-level fold for the pooled applier: sort each drained
    /// burst by key and apply one `increment_by` per key-run. Fastest
    /// for heavily skewed streams; distributionally identical but not
    /// bit-identical to the unfolded path (see the module docs), so off
    /// by default.
    pub fold_runs: bool,
    /// Soft cap on *events* per pooled-applier burst (`u64::MAX` =
    /// unbounded). The pooled drain stops growing a burst once its
    /// accumulated events reach this cap, so burst-boundary hooks
    /// (snapshot publication, checkpoint cadence) get a chance to run at
    /// least that often even when producers race far ahead of the
    /// applier. A burst always takes at least one batch, so a single
    /// oversized batch can still overshoot the cap.
    pub burst_events: u64,
    /// Cap on *batches* per drain burst. The pooled drain takes at most
    /// this many batches (across all producers) per burst; the routed
    /// drain advances each producer's consistent cut by at most this many
    /// batches per burst. Larger bursts amortize burst-boundary
    /// coordination; smaller ones run burst hooks (snapshot publication,
    /// checkpoint cadence, tier rounds) more often.
    pub burst_batches: usize,
}

impl IngestConfig {
    /// The default configuration (rings of 64 batches of up to 4096
    /// pairs, blocking backpressure, no fold, bursts of up to 64
    /// batches), as a `const` starting point for the `with_*` builders.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            ring_batches: 64,
            batch_pairs: 4_096,
            policy: BackpressurePolicy::Block,
            fold_runs: false,
            burst_events: u64::MAX,
            burst_batches: 64,
        }
    }

    /// Sets the per-producer ring capacity, in batches.
    #[must_use]
    pub const fn with_ring_batches(mut self, ring_batches: usize) -> Self {
        self.ring_batches = ring_batches;
        self
    }

    /// Sets the coalesced pairs per batch before a producer auto-flushes.
    #[must_use]
    pub const fn with_batch_pairs(mut self, batch_pairs: usize) -> Self {
        self.batch_pairs = batch_pairs;
        self
    }

    /// Picks the backpressure policy.
    #[must_use]
    pub const fn with_policy(mut self, policy: BackpressurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables the pooled applier's key-run fold.
    #[must_use]
    pub const fn with_fold_runs(mut self, fold_runs: bool) -> Self {
        self.fold_runs = fold_runs;
        self
    }

    /// Caps the events drained per pooled-applier burst, bounding how
    /// much state can change between burst-boundary hook calls.
    #[must_use]
    pub const fn with_burst_events(mut self, burst_events: u64) -> Self {
        self.burst_events = burst_events;
        self
    }

    /// Caps the batches taken per drain burst (per producer on the
    /// routed path), trading burst-boundary hook frequency against
    /// coordination amortization.
    #[must_use]
    pub const fn with_burst_batches(mut self, burst_batches: usize) -> Self {
        self.burst_batches = burst_batches;
        self
    }

    /// Pre-ring name for the buffering knob.
    #[deprecated(
        since = "0.6.0",
        note = "renamed to `with_ring_batches`: the bound is now per-producer ring slots"
    )]
    #[must_use]
    pub const fn with_queue_batches(self, queue_batches: usize) -> Self {
        self.with_ring_batches(queue_batches)
    }

    /// Pre-ring block-or-drop boolean, superseded by
    /// [`BackpressurePolicy`] (which adds the nonblocking `Fail` mode).
    #[deprecated(
        since = "0.6.0",
        note = "use `with_policy(BackpressurePolicy::Block | DropNewest | Fail)`"
    )]
    #[must_use]
    pub const fn with_block_when_full(mut self, block: bool) -> Self {
        self.policy = if block {
            BackpressurePolicy::Block
        } else {
            BackpressurePolicy::DropNewest
        };
        self
    }
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Live counters shared by producers, appliers, and stats readers.
#[derive(Debug, Default)]
struct Totals {
    enqueued_batches: AtomicU64,
    enqueued_events: AtomicU64,
    applied_events: AtomicU64,
    dropped_batches: AtomicU64,
    dropped_events: AtomicU64,
    folded_pairs: AtomicU64,
}

/// Per-producer sequence high-water marks (see the module docs on
/// provenance). `enqueued_seq` is the last sequence accepted into the
/// ring; `applied_seq` the last drained into an engine; 0 means "none
/// yet". `applied_seq ≤ enqueued_seq` at every batch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProducerMark {
    /// The producer id.
    pub producer: u64,
    /// Highest sequence number accepted into the ring.
    pub enqueued_seq: u64,
    /// Highest sequence number applied to an engine.
    pub applied_seq: u64,
}

/// One shard's slice of a routed batch: the `(key, delta)` pairs of
/// batch `seq` that route to the lane's shard, in batch order.
#[derive(Debug)]
pub(crate) struct LaneBatch {
    /// The owning batch's per-producer sequence number. Strictly
    /// increasing along each lane (a batch pushes at most one slice per
    /// lane, and refused sequence numbers are reused only after their
    /// slices were never published).
    pub(crate) seq: u64,
    /// The slice's pairs (never empty).
    pub(crate) pairs: Vec<(u64, u64)>,
}

/// A producer's ring storage: one batch ring in pooled mode, one lane
/// per shard in routed mode.
#[derive(Debug)]
enum Lanes {
    Pooled(SpscRing<Batch>),
    Routed(Vec<SpscRing<LaneBatch>>),
}

/// One producer's ring(s) plus its sequence high-water marks. Ring index
/// in the registry == producer id.
#[derive(Debug)]
pub(crate) struct ProducerRing {
    lanes: Lanes,
    /// Routed mode only: the highest sequence number whose lane slices
    /// are **all** published. Stored *after* the slice pushes (`SeqCst`),
    /// so a coordinator cut at or below this mark never splits a batch.
    committed_seq: AtomicU64,
    enqueued_seq: AtomicU64,
    applied_seq: AtomicU64,
}

impl ProducerRing {
    /// The pooled-mode batch ring.
    ///
    /// # Panics
    ///
    /// Panics on a routed producer — batch-granular consumption has no
    /// meaning when batches are split across lanes.
    fn pooled(&self) -> &SpscRing<Batch> {
        match &self.lanes {
            Lanes::Pooled(ring) => ring,
            Lanes::Routed(_) => {
                panic!("batch-granular consumer API on a routed queue; use drain_routed")
            }
        }
    }

    /// The routed-mode lane for `shard`.
    ///
    /// # Panics
    ///
    /// Panics on a pooled producer.
    pub(crate) fn lane(&self, shard: usize) -> &SpscRing<LaneBatch> {
        match &self.lanes {
            Lanes::Routed(lanes) => &lanes[shard],
            Lanes::Pooled(_) => panic!("lane access on a pooled queue"),
        }
    }

    /// Batches admitted but not yet applied.
    fn depth(&self) -> usize {
        match &self.lanes {
            Lanes::Pooled(ring) => ring.len(),
            Lanes::Routed(_) => {
                let committed = self.committed_seq.load(Ordering::SeqCst);
                let applied = self.applied_seq.load(Ordering::SeqCst);
                committed.saturating_sub(applied) as usize
            }
        }
    }

    /// Conservative "a push right now could be refused" hint for
    /// `record`'s auto-flush guard under [`BackpressurePolicy::Fail`].
    fn full_hint(&self) -> bool {
        match &self.lanes {
            Lanes::Pooled(ring) => ring.is_full(),
            Lanes::Routed(lanes) => lanes.iter().any(SpscRing::is_full),
        }
    }

    /// Routed mode: the commit high-water mark.
    pub(crate) fn committed(&self) -> u64 {
        self.committed_seq.load(Ordering::SeqCst)
    }

    /// The applied high-water mark.
    pub(crate) fn applied(&self) -> u64 {
        self.applied_seq.load(Ordering::SeqCst)
    }

    /// Routed mode: records that every batch up to `cut` is applied.
    pub(crate) fn note_applied_seq(&self, cut: u64) {
        self.applied_seq.fetch_max(cut, Ordering::SeqCst);
    }
}

/// The consumer-side view of every ring. The mutex serializes consumers
/// against each other and against producer *registration* — never
/// against a producer's push, which touches only its own ring.
#[derive(Debug, Default)]
struct Registry {
    rings: Vec<Arc<ProducerRing>>,
    /// Round-robin scan start, so one chatty producer cannot starve the
    /// others.
    cursor: usize,
}

#[derive(Debug)]
struct Inner {
    config: IngestConfig,
    /// `Some` puts the queue in routed mode: producers route pairs into
    /// per-shard lanes at send time; `None` is the pooled batch-ring
    /// mode.
    router: Option<ShardRouter>,
    registry: Mutex<Registry>,
    closed: AtomicBool,
    /// Producers currently inside an `offer` (between the closed check
    /// and the ring publish). A closing consumer waits for this to reach
    /// zero before its final sweep, so a push racing `close` is either
    /// refused or drained — never lost.
    pushers: AtomicU64,
    /// Rung by producers after a push (and by `close`); appliers park on
    /// it when every ring is empty.
    ready: Doorbell,
    /// Rung by consumers after a pop (and by `close`); blocked producers
    /// park on it when their ring is full.
    space: Doorbell,
    totals: Totals,
}

/// A point-in-time summary of the ingest layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct IngestStats {
    /// Batches currently buffered across all producer rings, not yet
    /// applied.
    pub queue_depth: usize,
    /// Batches accepted into rings so far.
    pub enqueued_batches: u64,
    /// Events (sum of deltas) accepted into rings so far.
    pub enqueued_events: u64,
    /// Events drained into an engine so far.
    pub applied_events: u64,
    /// Batches refused because a ring was full or the queue closed
    /// (drop policy, or blocked flushes cut off by `close`).
    pub dropped_batches: u64,
    /// Events lost with those batches.
    pub dropped_events: u64,
    /// Pairs elided by the pooled applier's key-run fold
    /// ([`IngestConfig::fold_runs`]); 0 when the fold is off.
    pub folded_pairs: u64,
    /// Per-producer sequence high-water marks, in producer-id order.
    pub producers: Vec<ProducerMark>,
}

/// The multi-producer ingest front door: one lock-free SPSC ring per
/// producer, round-robin drained. Cheap to clone (all clones share the
/// same rings).
#[derive(Debug, Clone)]
pub struct IngestQueue {
    inner: Arc<Inner>,
}

impl IngestQueue {
    /// Creates the queue in pooled mode: one batch ring per producer,
    /// shard routing deferred to the drain side.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is zero.
    #[must_use]
    pub fn new(config: IngestConfig) -> Self {
        Self::build(config, None)
    }

    /// Creates the queue in **routed** mode: one ring lane per
    /// (producer, shard), producers routing each pair through `router` at
    /// send time. Drain with [`IngestQueue::drain_routed`] against an
    /// engine whose [`CounterEngine::router`](crate::CounterEngine::router)
    /// equals `router` — the drain asserts the match, because a partition
    /// mismatch would silently scatter keys to wrong shards.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is zero.
    #[must_use]
    pub fn new_routed(config: IngestConfig, router: ShardRouter) -> Self {
        Self::build(config, Some(router))
    }

    fn build(config: IngestConfig, router: Option<ShardRouter>) -> Self {
        assert!(config.ring_batches > 0, "queue capacity must be positive");
        assert!(config.batch_pairs > 0, "batch size must be positive");
        assert!(config.burst_batches > 0, "burst batches must be positive");
        Self {
            inner: Arc::new(Inner {
                config,
                router,
                registry: Mutex::new(Registry::default()),
                closed: AtomicBool::new(false),
                pushers: AtomicU64::new(0),
                ready: Doorbell::new(),
                space: Doorbell::new(),
                totals: Totals::default(),
            }),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> IngestConfig {
        self.inner.config
    }

    /// True when the queue was built with [`IngestQueue::new_routed`].
    #[must_use]
    pub fn is_routed(&self) -> bool {
        self.inner.router.is_some()
    }

    /// The routed-mode partition, if any.
    pub(crate) fn router(&self) -> Option<ShardRouter> {
        self.inner.router
    }

    /// Creates a producer handle with a fresh producer id and its own
    /// ring. Any number may exist concurrently; each coalesces into its
    /// own batch buffer and publishes into its own ring, so producers
    /// never contend with each other.
    #[must_use]
    pub fn producer(&self) -> IngestProducer {
        self.producer_resuming(0)
    }

    /// [`IngestQueue::producer`] whose sequence numbering *continues* at
    /// `start_seq` instead of restarting at zero: the first accepted
    /// batch carries `start_seq + 1`, and the producer's marks
    /// (`enqueued_seq`, `applied_seq`) start at `start_seq` — as if
    /// batches `1..=start_seq` had already been accepted and applied.
    ///
    /// This is the server-restart half of exactly-once ingest over a
    /// process boundary: a store recovered from disk reports each
    /// producer's durable [`ProducerMark`]; recreating the producers *in
    /// producer-id order* with `producer_resuming(mark.applied_seq)`
    /// keeps the durable numbering and the live numbering one and the
    /// same, so a remote client can keep replaying against one cursor
    /// across any number of server restarts.
    #[must_use]
    pub fn producer_resuming(&self, start_seq: u64) -> IngestProducer {
        let ring_batches = self.inner.config.ring_batches;
        let lanes = match self.inner.router {
            None => Lanes::Pooled(SpscRing::new(ring_batches)),
            Some(router) => Lanes::Routed(
                (0..router.shards())
                    .map(|_| SpscRing::new(ring_batches))
                    .collect(),
            ),
        };
        let ring = Arc::new(ProducerRing {
            lanes,
            committed_seq: AtomicU64::new(start_seq),
            enqueued_seq: AtomicU64::new(start_seq),
            applied_seq: AtomicU64::new(start_seq),
        });
        let mut registry = self.inner.registry.lock().expect("ingest registry lock");
        let id = registry.rings.len() as u64;
        registry.rings.push(Arc::clone(&ring));
        drop(registry);
        IngestProducer {
            inner: Arc::clone(&self.inner),
            ring,
            id,
            next_seq: start_seq + 1,
            pairs: Vec::new(),
            slots: HashMap::default(),
            events: 0,
            refused_events: 0,
        }
    }

    /// Closes the queue: producers' further flushes are refused, and
    /// appliers drain what remains, then observe end-of-stream.
    /// Idempotent.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::SeqCst);
        self.inner.ready.notify();
        self.inner.space.notify();
    }

    /// True once [`IngestQueue::close`] has run.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::SeqCst)
    }

    /// Pops one batch via a round-robin scan of the rings. The registry
    /// lock serializes consumers, upholding each ring's SPSC discipline.
    fn pop_any(&self) -> Option<Batch> {
        let mut registry = self.inner.registry.lock().expect("ingest registry lock");
        let n = registry.rings.len();
        for k in 0..n {
            let i = (registry.cursor + k) % n;
            if let Some(batch) = registry.rings[i].pooled().pop() {
                registry.cursor = (i + 1) % n;
                drop(registry);
                self.inner.space.notify();
                return Some(batch);
            }
        }
        None
    }

    /// True when some ring has a batch ready (moment-in-time).
    fn has_ready(&self) -> bool {
        let registry = self.inner.registry.lock().expect("ingest registry lock");
        registry.rings.iter().any(|r| !r.pooled().is_empty())
    }

    /// Pops the next batch, blocking while every ring is empty and the
    /// queue is open. Returns `None` once the queue is closed *and*
    /// drained.
    ///
    /// # Panics
    ///
    /// Panics on a routed queue — batches there are split across lanes
    /// and only [`IngestQueue::drain_routed`] can consume them.
    #[must_use]
    pub fn next_batch(&self) -> Option<Batch> {
        loop {
            if let Some(batch) = self.pop_any() {
                return Some(batch);
            }
            if self.inner.closed.load(Ordering::SeqCst) {
                // A producer that saw `closed == false` had already
                // registered in `pushers` (SeqCst total order), so once
                // the count reaches zero every racing push has either
                // landed in a ring or been refused — the final sweep
                // misses nothing.
                // Yield, don't spin: the racing producer may need this
                // very core to finish its push (single-core hosts).
                while self.inner.pushers.load(Ordering::SeqCst) != 0 {
                    std::thread::yield_now();
                }
                return self.pop_any();
            }
            self.inner
                .ready
                .wait(|| self.has_ready() || self.inner.closed.load(Ordering::SeqCst));
        }
    }

    /// Pops the next batch if one is buffered; never blocks. `None` means
    /// "nothing available right now" — check [`IngestQueue::is_closed`]
    /// to distinguish end-of-stream.
    ///
    /// # Panics
    ///
    /// Panics on a routed queue (see [`IngestQueue::next_batch`]).
    #[must_use]
    pub fn try_next_batch(&self) -> Option<Batch> {
        self.pop_any()
    }

    /// A moment-in-time snapshot of every producer ring, for the routed
    /// coordinator (the `Arc`s keep rings alive across the burst without
    /// holding the registry lock).
    pub(crate) fn routed_rings(&self) -> Vec<Arc<ProducerRing>> {
        self.inner
            .registry
            .lock()
            .expect("ingest registry lock")
            .rings
            .clone()
    }

    /// True when some producer has committed batches not yet applied.
    fn routed_has_ready(&self) -> bool {
        let registry = self.inner.registry.lock().expect("ingest registry lock");
        registry.rings.iter().any(|r| r.committed() > r.applied())
    }

    /// The routed coordinator's burst gate: blocks until some producer
    /// has committed-but-unapplied batches, returning the ring snapshot
    /// to cut the burst over. Returns `None` once the queue is closed
    /// *and* fully applied.
    pub(crate) fn next_routed_burst(&self) -> Option<Vec<Arc<ProducerRing>>> {
        loop {
            let rings = self.routed_rings();
            if rings.iter().any(|r| r.committed() > r.applied()) {
                return Some(rings);
            }
            if self.inner.closed.load(Ordering::SeqCst) {
                // Same pushers-guard reasoning as `next_batch`: once the
                // count reaches zero every racing push has committed or
                // been refused, so the final re-check misses nothing.
                while self.inner.pushers.load(Ordering::SeqCst) != 0 {
                    std::thread::yield_now();
                }
                let rings = self.routed_rings();
                if rings.iter().any(|r| r.committed() > r.applied()) {
                    return Some(rings);
                }
                return None;
            }
            self.inner
                .ready
                .wait(|| self.routed_has_ready() || self.inner.closed.load(Ordering::SeqCst));
        }
    }

    /// Wakes producers parked on lane space (rung by lane workers after
    /// pops; one atomic load when nobody waits).
    pub(crate) fn notify_space(&self) {
        self.inner.space.notify();
    }

    /// Records events applied by a routed burst (the per-producer marks
    /// advance separately, via [`ProducerRing::note_applied_seq`]).
    pub(crate) fn note_applied_events(&self, events: u64) {
        self.inner
            .totals
            .applied_events
            .fetch_add(events, Ordering::Relaxed);
    }

    /// Drains every remaining batch into `engine` with sequential
    /// application, blocking until the queue closes. Returns the events
    /// applied by this call.
    pub fn drain_into<C: ApproxCounter + Clone>(&self, engine: &mut CounterEngine<C>) -> u64 {
        let mut applied = 0u64;
        while let Some(batch) = self.next_batch() {
            applied += batch.events();
            engine.apply(&batch.pairs);
            self.note_applied(&batch);
        }
        applied
    }

    /// Like [`IngestQueue::drain_into`], but each batch fans out with one
    /// thread per touched shard — bit-identical states, per the engine's
    /// parallel-apply contract.
    pub fn drain_parallel<C: ApproxCounter + Clone + Send + Sync>(
        &self,
        engine: &mut CounterEngine<C>,
    ) -> u64 {
        self.drain_parallel_with(engine, |_, _| {})
    }

    /// [`IngestQueue::drain_parallel`] with an applier hook: after every
    /// applied batch, `hook(engine, applied_events_so_far)` runs on the
    /// applier thread, at a batch boundary — the engine is quiescent, so
    /// the hook may freeze snapshots, publish replicas, or read stats
    /// (the applied sequence marks visible through
    /// [`IngestQueue::applied_marks`] are exact here). This is the
    /// integration point the background checkpointer — and the `Store`
    /// service facade — ride (see
    /// [`IngestQueue::drain_parallel_checkpointed`]).
    pub fn drain_parallel_with<C, F>(&self, engine: &mut CounterEngine<C>, mut hook: F) -> u64
    where
        C: ApproxCounter + Clone + Send + Sync,
        F: FnMut(&mut CounterEngine<C>, u64),
    {
        let mut applied = 0u64;
        while let Some(batch) = self.next_batch() {
            applied += batch.events();
            engine.apply_parallel(&batch.pairs);
            self.note_applied(&batch);
            hook(engine, applied);
        }
        applied
    }

    /// Drains through the persistent thread-per-shard applier pool — the
    /// ring path's high-throughput applier. See
    /// [`IngestQueue::drain_pooled_with`].
    pub fn drain_pooled<C: ApproxCounter + Clone + Send + Sync>(
        &self,
        engine: &mut CounterEngine<C>,
    ) -> u64 {
        self.drain_pooled_with(engine, |_, _| {})
    }

    /// [`IngestQueue::drain_pooled`] with an applier hook.
    ///
    /// Unlike [`IngestQueue::drain_parallel_with`] — which spawns one
    /// scoped thread per touched shard *per batch* — this drain keeps one
    /// worker thread per shard alive for its whole duration and feeds
    /// them bursts of up to 64 batches at a time, so thread spawn/join
    /// and routing overhead amortize across the burst. Counter states are
    /// bit-identical to a sequential drain of the same batch arrival
    /// order (per-shard order is preserved; each shard owns its RNG)
    /// unless [`IngestConfig::fold_runs`] is on.
    ///
    /// `hook(engine, applied_events_so_far)` runs once per *burst* (not
    /// per batch), again with the engine quiescent. Cadence-driven hooks
    /// ([`CheckpointCadence`]) handle the coarser boundary unchanged;
    /// hooks that must see every batch belong on
    /// [`IngestQueue::drain_parallel_with`].
    pub fn drain_pooled_with<C, F>(&self, engine: &mut CounterEngine<C>, hook: F) -> u64
    where
        C: ApproxCounter + Clone + Send + Sync,
        F: FnMut(&mut CounterEngine<C>, u64),
    {
        crate::applier::drain_pooled_with(self, engine, hook)
    }

    /// [`IngestQueue::drain_pooled_with`] plus a per-batch pair tap:
    /// `tap(&pairs)` runs on the drain thread for every batch, in arrival
    /// order, *before* the batch is routed to the shard workers. This is
    /// the observation point for stream consumers that must see the
    /// applied `(key, delta)` traffic itself — e.g. a hot-key detector
    /// feeding tier migration decisions — which the burst hook (whose
    /// burst has already been consumed) cannot recover.
    pub fn drain_pooled_tap<C, T, F>(&self, engine: &mut CounterEngine<C>, tap: T, hook: F) -> u64
    where
        C: ApproxCounter + Clone + Send + Sync,
        T: FnMut(&[(u64, u64)]),
        F: FnMut(&mut CounterEngine<C>, u64),
    {
        crate::applier::drain_pooled_tap(self, engine, tap, hook)
    }

    /// Drains a **routed** queue ([`IngestQueue::new_routed`]): each
    /// persistent shard worker pops its own lane set directly — no
    /// dispatcher re-hash, no bucket copy — while this thread coordinates
    /// bursts (consistent cuts, epoch stamping, sequence marks). Blocks
    /// until the queue closes; returns the events applied by this call.
    /// See [`IngestQueue::drain_routed_with`].
    pub fn drain_routed<C: ApproxCounter + Clone + Send + Sync>(
        &self,
        engine: &mut CounterEngine<C>,
    ) -> u64 {
        self.drain_routed_with(engine, |_, _| {})
    }

    /// [`IngestQueue::drain_routed`] with a burst hook:
    /// `hook(engine, applied_events_so_far)` runs once per burst with the
    /// engine quiescent, exactly like the pooled drain's hook — cadence
    /// hooks ([`CheckpointCadence`]), snapshot publication, and tier
    /// rounds carry over unchanged. A burst drains each producer up to a
    /// consistent cut of fully-committed sequence numbers (at most
    /// [`IngestConfig::burst_batches`] per producer), so per-producer
    /// FIFO holds per shard and counter states are bit-identical to the
    /// pooled applier on the same arrival order (unless
    /// [`IngestConfig::fold_runs`] is on).
    ///
    /// # Panics
    ///
    /// Panics if the queue is pooled, or if its router does not match
    /// `engine`'s partition.
    pub fn drain_routed_with<C, F>(&self, engine: &mut CounterEngine<C>, hook: F) -> u64
    where
        C: ApproxCounter + Clone + Send + Sync,
        F: FnMut(&mut CounterEngine<C>, u64),
    {
        crate::applier::drain_routed_inner(self, engine, false, |_| {}, hook)
    }

    /// [`IngestQueue::drain_routed_with`] plus a pair tap — the routed
    /// home of the hot-key detector feed. Each shard worker keeps the
    /// pairs it applied; at the burst boundary the coordinator hands them
    /// to `tap(&pairs)` one shard at a time, in shard order, before the
    /// burst hook runs. The tap sees exactly the applied traffic (totals
    /// match the pooled tap), grouped by shard rather than by arrival —
    /// fine for frequency estimation, which is order-insensitive. Without
    /// a tap ([`IngestQueue::drain_routed_with`]) the workers skip the
    /// collection entirely.
    pub fn drain_routed_tap<C, T, F>(&self, engine: &mut CounterEngine<C>, tap: T, hook: F) -> u64
    where
        C: ApproxCounter + Clone + Send + Sync,
        T: FnMut(&[(u64, u64)]),
        F: FnMut(&mut CounterEngine<C>, u64),
    {
        crate::applier::drain_routed_inner(self, engine, true, tap, hook)
    }

    /// Drains with durability riding along: every
    /// [`CheckpointerConfig::every_events`](crate::CheckpointerConfig::every_events)
    /// applied events, the applier cuts an `O(shards)` copy-on-write
    /// snapshot at the batch boundary and hands it — together with the
    /// applied sequence marks, for exactly-once replay after a restore —
    /// to `checkpointer`'s writer thread. Serialization and disk I/O
    /// never run on this thread, so ingest throughput is insulated from
    /// checkpoint size.
    pub fn drain_parallel_checkpointed<C>(
        &self,
        engine: &mut CounterEngine<C>,
        checkpointer: &BackgroundCheckpointer<C>,
    ) -> u64
    where
        C: StateCodec + Clone + Send + Sync + 'static,
    {
        let mut cadence = CheckpointCadence::new(checkpointer.config().every_events);
        self.drain_parallel_with(engine, |engine, applied| {
            if cadence.is_due(applied) {
                checkpointer.submit_with_marks(engine.snapshot(), self.applied_marks());
            }
        })
    }

    /// [`IngestQueue::drain_parallel_checkpointed`] over the pooled
    /// applier: checkpoints are cut at burst boundaries (the cadence
    /// catches up across a burst without double-firing).
    pub fn drain_pooled_checkpointed<C>(
        &self,
        engine: &mut CounterEngine<C>,
        checkpointer: &BackgroundCheckpointer<C>,
    ) -> u64
    where
        C: StateCodec + Clone + Send + Sync + 'static,
    {
        let mut cadence = CheckpointCadence::new(checkpointer.config().every_events);
        self.drain_pooled_with(engine, |engine, applied| {
            if cadence.is_due(applied) {
                checkpointer.submit_with_marks(engine.snapshot(), self.applied_marks());
            }
        })
    }

    /// Records that `batch` was applied to an engine (applied-events
    /// total and the producer's applied high-water mark).
    pub(crate) fn note_applied(&self, batch: &Batch) {
        self.inner
            .totals
            .applied_events
            .fetch_add(batch.events(), Ordering::Relaxed);
        let registry = self.inner.registry.lock().expect("ingest registry lock");
        if let Some(ring) = registry.rings.get(batch.producer as usize) {
            // Batches from one producer are FIFO through its ring, but a
            // second applier could race; the mark is a high-water mark.
            ring.applied_seq.fetch_max(batch.seq, Ordering::SeqCst);
        }
    }

    /// Records pairs elided by the pooled applier's key-run fold.
    pub(crate) fn note_folded(&self, pairs: u64) {
        self.inner
            .totals
            .folded_pairs
            .fetch_add(pairs, Ordering::Relaxed);
    }

    /// The per-producer sequence high-water marks, in producer-id order.
    /// Read from an applier hook (batch boundary) these are exact; read
    /// from elsewhere they are a moment-in-time snapshot.
    #[must_use]
    pub fn applied_marks(&self) -> Vec<ProducerMark> {
        let registry = self.inner.registry.lock().expect("ingest registry lock");
        registry
            .rings
            .iter()
            .enumerate()
            .map(|(i, ring)| ProducerMark {
                producer: i as u64,
                enqueued_seq: ring.enqueued_seq.load(Ordering::SeqCst),
                applied_seq: ring.applied_seq.load(Ordering::SeqCst),
            })
            .collect()
    }

    /// Events accepted into rings but not yet applied — `0` means the
    /// pipeline is momentarily drained dry. A two-atomic probe (no
    /// registry lock, no allocation), cheap enough for every burst
    /// boundary: the applier uses it to publish a read replica when a
    /// stream quiesces below the snapshot cadence, so the tail of a
    /// stream becomes visible to readers without waiting for `close`.
    ///
    /// Applied is read first, so a racing enqueue can only inflate the
    /// lag — a zero is never spurious.
    #[must_use]
    pub fn pending_events(&self) -> u64 {
        let applied = self.inner.totals.applied_events.load(Ordering::SeqCst);
        let enqueued = self.inner.totals.enqueued_events.load(Ordering::SeqCst);
        enqueued.saturating_sub(applied)
    }

    /// Diagnostics snapshot. Feed it to
    /// [`EngineStats::with_ingest`](crate::EngineStats::with_ingest) for a
    /// whole-pipeline summary.
    #[must_use]
    pub fn stats(&self) -> IngestStats {
        let depth = {
            let registry = self.inner.registry.lock().expect("ingest registry lock");
            registry.rings.iter().map(|r| r.depth()).sum()
        };
        let t = &self.inner.totals;
        IngestStats {
            queue_depth: depth,
            enqueued_batches: t.enqueued_batches.load(Ordering::Relaxed),
            enqueued_events: t.enqueued_events.load(Ordering::Relaxed),
            applied_events: t.applied_events.load(Ordering::Relaxed),
            dropped_batches: t.dropped_batches.load(Ordering::Relaxed),
            dropped_events: t.dropped_events.load(Ordering::Relaxed),
            folded_pairs: t.folded_pairs.load(Ordering::Relaxed),
            producers: self.applied_marks(),
        }
    }
}

/// The event-count cadence policy behind
/// [`IngestQueue::drain_parallel_checkpointed`], reusable from custom
/// [`IngestQueue::drain_parallel_with`] hooks: fires once per crossing of
/// an `every_events` boundary, catching up (without firing repeatedly)
/// when one batch jumps several boundaries at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointCadence {
    every: u64,
    due: u64,
}

impl CheckpointCadence {
    /// Creates the cadence; the first firing is at `every_events`.
    ///
    /// # Panics
    ///
    /// Panics if `every_events` is zero.
    #[must_use]
    pub fn new(every_events: u64) -> Self {
        assert!(every_events > 0, "cadence must be positive");
        Self {
            every: every_events,
            due: every_events,
        }
    }

    /// True when `applied` has crossed the next boundary; advances the
    /// boundary past `applied` so each crossing fires exactly once.
    pub fn is_due(&mut self, applied: u64) -> bool {
        if applied < self.due {
            return false;
        }
        while self.due <= applied {
            self.due += self.every;
        }
        true
    }
}

/// A producer handle: coalesces per-key increments locally, publishing
/// full batches into its own lock-free ring. Dropping the handle flushes
/// any partial batch (per the backpressure policy). Each handle owns a
/// unique producer id; its accepted batches are numbered 1, 2, 3, … (see
/// the module docs on provenance).
#[derive(Debug)]
pub struct IngestProducer {
    inner: Arc<Inner>,
    /// This producer's ring (`inner.registry.rings[id]`).
    ring: Arc<ProducerRing>,
    /// This producer's id (its ring index).
    id: u64,
    /// Sequence number the next *accepted* batch will carry.
    next_seq: u64,
    /// The batch under construction.
    pairs: Vec<(u64, u64)>,
    /// key → position in `pairs`, so repeat keys coalesce. SplitMix64
    /// keying: the coalescing map sat on the hot `record` path, where
    /// SipHash was a dominant per-event cost (the keys are not
    /// adversarial — same reasoning as the shard index).
    slots: HashMap<u64, usize, BuildSplitMix64>,
    /// Sum of deltas in `pairs`.
    events: u64,
    /// Events this producer has had refused (dropped) since the last
    /// [`IngestProducer::take_refused_events`] — including refusals from
    /// `record`'s silent auto-flush under `Block`/`DropNewest`. Always 0
    /// under [`BackpressurePolicy::Fail`], which never discards.
    refused_events: u64,
}

impl IngestProducer {
    /// This producer's id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The sequence number of the last batch this producer had accepted
    /// into its ring (0 before the first).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Records `delta` increments to `key`. Repeat keys within the current
    /// batch coalesce into one pair; a full batch flushes automatically
    /// per the backpressure policy (under [`BackpressurePolicy::Fail`]
    /// with a full ring, the buffer is retained and keeps growing until
    /// a [`IngestProducer::try_send`] / [`IngestProducer::send`] call
    /// can surface the refusal).
    pub fn record(&mut self, key: u64, delta: u64) {
        if delta == 0 {
            return;
        }
        match self.slots.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let pair = &mut self.pairs[*e.get()];
                pair.1 = pair.1.saturating_add(delta);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.pairs.len());
                self.pairs.push((key, delta));
            }
        }
        self.events = self.events.saturating_add(delta);
        if self.pairs.len() >= self.inner.config.batch_pairs {
            let fail = matches!(self.inner.config.policy, BackpressurePolicy::Fail);
            if !(fail && self.ring.full_hint()) {
                let _ = self.flush_policy();
            }
        }
    }

    /// Pairs buffered in the batch under construction.
    #[must_use]
    pub fn pending_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Events (sum of deltas) buffered in the batch under construction.
    #[must_use]
    pub fn pending_events(&self) -> u64 {
        self.events
    }

    /// Returns — and resets — the events this producer has had refused
    /// since the last call. Non-zero means data was dropped, *including*
    /// by [`IngestProducer::record`]'s automatic flush of a full batch,
    /// whose outcome nobody sees; callers that promised losslessness
    /// check this after flushing. Provably always 0 under
    /// [`BackpressurePolicy::Fail`].
    pub fn take_refused_events(&mut self) -> u64 {
        std::mem::take(&mut self.refused_events)
    }

    /// Publishes the current batch (if any) into the ring without ever
    /// blocking.
    ///
    /// # Errors
    ///
    /// [`SendError::Full`] when the ring has no free slot and
    /// [`SendError::Closed`] after [`IngestQueue::close`] — both carry
    /// the batch, so nothing is lost: hold it and
    /// [`resubmit`](IngestProducer::resubmit) later, or shed it
    /// deliberately.
    pub fn try_send(&mut self) -> Result<(), SendError> {
        self.submit(false)
    }

    /// Publishes the current batch (if any), parking on the space
    /// doorbell while the ring is full — the lossless blocking path.
    ///
    /// # Errors
    ///
    /// [`SendError::Closed`] (with the batch) if the queue closes before
    /// a slot frees up.
    pub fn send(&mut self) -> Result<(), SendError> {
        self.submit(true)
    }

    /// Re-offers a batch previously returned inside a [`SendError`].
    /// Nonblocking, like [`IngestProducer::try_send`]. The batch is
    /// re-stamped with this producer's next sequence number (its refusal
    /// rolled the sequence back, so the numbering stays gapless).
    ///
    /// # Errors
    ///
    /// [`SendError::Full`] / [`SendError::Closed`], carrying the batch
    /// again.
    ///
    /// # Panics
    ///
    /// Panics if `batch` came from a different producer — sequence
    /// provenance is per-producer and cannot be transplanted.
    pub fn resubmit(&mut self, batch: Batch) -> Result<(), SendError> {
        assert_eq!(
            batch.producer, self.id,
            "resubmit: batch belongs to producer {} not {}",
            batch.producer, self.id
        );
        let events = batch.events();
        self.submit_pairs(batch.pairs, events, false)
    }

    /// Publishes one *prepared* batch — exactly these pairs, exactly one
    /// sequence number — parking while the ring is full, and returns the
    /// sequence number the batch was accepted under. Any pairs buffered
    /// by [`IngestProducer::record`] are flushed first so they cannot
    /// interleave mid-batch.
    ///
    /// This is the wire-ingest path: a network server replaying a
    /// client's batch stream maps each wire batch to exactly one ring
    /// batch, which keeps the client's numbering and the durable
    /// [`ProducerMark`]s interchangeable.
    ///
    /// # Errors
    ///
    /// [`SendError::Closed`] (carrying the batch) if the queue closes
    /// before a slot frees up.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` carries no events (every delta zero, or no
    /// pairs at all): an eventless batch would have to advance the
    /// applied mark past batches still in flight to keep the numbering
    /// gapless, which would corrupt the exactly-once cursor. Callers
    /// own batch formation, so they filter empties before numbering.
    pub fn submit_batch(&mut self, mut pairs: Vec<(u64, u64)>) -> Result<u64, SendError> {
        self.submit(true)?;
        pairs.retain(|&(_, delta)| delta != 0);
        assert!(
            !pairs.is_empty(),
            "submit_batch: a batch must carry at least one event"
        );
        let events = pairs
            .iter()
            .map(|&(_, d)| d)
            .fold(0u64, u64::saturating_add);
        let seq = self.next_seq;
        self.submit_pairs(pairs, events, true).map(|()| seq)
    }

    /// Pushes the current batch (if any), honoring
    /// [`IngestConfig::policy`]. Returns `true` if the batch was accepted
    /// (vacuously for an empty buffer), `false` if it was refused.
    /// Sequence numbers advance only over accepted batches, so a refused
    /// batch never leaves a hole in the applied sequence.
    #[deprecated(
        since = "0.6.0",
        note = "use `try_send` (nonblocking, returns the rejected batch) or `send` (parks)"
    )]
    pub fn flush(&mut self) -> bool {
        self.flush_policy()
    }

    /// The policy-directed flush behind `record`'s auto-flush, `Drop`,
    /// the deprecated `flush` shim, and the store writer's lossy-path
    /// reporter.
    pub(crate) fn flush_policy(&mut self) -> bool {
        match self.inner.config.policy {
            BackpressurePolicy::Block => match self.send() {
                Ok(()) => true,
                // `send` only fails on close; refuse loudly in the stats
                // rather than deadlocking or silently succeeding.
                Err(err) => {
                    self.discard(err.into_batch());
                    false
                }
            },
            BackpressurePolicy::DropNewest => match self.try_send() {
                Ok(()) => true,
                Err(err) => {
                    self.discard(err.into_batch());
                    false
                }
            },
            BackpressurePolicy::Fail => match self.try_send() {
                Ok(()) => true,
                Err(SendError::Full(batch)) => {
                    // Never drop under Fail: the buffer is restored and
                    // the refusal surfaces at the next try_send/send.
                    self.restore(batch);
                    false
                }
                Err(SendError::Closed(batch)) => {
                    self.discard(batch);
                    false
                }
            },
        }
    }

    /// Counts a refused batch as dropped (stats + the per-producer
    /// refused tally) and discards it.
    fn discard(&mut self, batch: Batch) {
        let events = batch.events();
        let t = &self.inner.totals;
        t.dropped_batches.fetch_add(1, Ordering::Relaxed);
        t.dropped_events.fetch_add(events, Ordering::Relaxed);
        self.refused_events = self.refused_events.saturating_add(events);
    }

    /// Puts a refused batch back as the buffer under construction
    /// (rebuilding the coalescing index). Only called when the buffer is
    /// empty — immediately after a failed submit took it.
    fn restore(&mut self, batch: Batch) {
        debug_assert!(self.pairs.is_empty(), "restore over a live buffer");
        self.events = batch.events();
        self.slots = batch
            .pairs
            .iter()
            .enumerate()
            .map(|(i, &(key, _))| (key, i))
            .collect();
        self.pairs = batch.pairs;
    }

    /// Takes the buffer and offers it; empty buffers vacuously succeed.
    fn submit(&mut self, park: bool) -> Result<(), SendError> {
        if self.pairs.is_empty() {
            return Ok(());
        }
        let pairs = std::mem::take(&mut self.pairs);
        let events = std::mem::take(&mut self.events);
        self.slots.clear();
        self.submit_pairs(pairs, events, park)
    }

    /// The one publish path: stamps the next sequence number, offers the
    /// batch to this producer's ring(s), and keeps the sequence/mark
    /// bookkeeping exact on every outcome.
    fn submit_pairs(
        &mut self,
        pairs: Vec<(u64, u64)>,
        events: u64,
        park: bool,
    ) -> Result<(), SendError> {
        match self.inner.router {
            None => self.submit_pooled(pairs, events, park),
            Some(router) => self.submit_routed(router, pairs, events, park),
        }
    }

    /// Pooled-mode publish: the whole batch into this producer's one
    /// ring.
    fn submit_pooled(
        &mut self,
        pairs: Vec<(u64, u64)>,
        events: u64,
        park: bool,
    ) -> Result<(), SendError> {
        let seq = self.next_seq;
        // Speculative enqueued mark *before* the batch becomes poppable,
        // so an applier can never observe applied_seq > enqueued_seq.
        // Rolled back below on refusal (this thread is the mark's only
        // writer, so the rollback is exact).
        self.ring.enqueued_seq.store(seq, Ordering::SeqCst);
        let mut batch = Batch {
            producer: self.id,
            seq,
            pairs,
        };
        loop {
            // The pushers guard makes "push racing close" lossless: we
            // register before checking `closed`, so a closing consumer
            // that finds `pushers > 0` waits out this window before its
            // final sweep (see `next_batch`).
            self.inner.pushers.fetch_add(1, Ordering::SeqCst);
            if self.inner.closed.load(Ordering::SeqCst) {
                self.inner.pushers.fetch_sub(1, Ordering::SeqCst);
                self.ring.enqueued_seq.store(seq - 1, Ordering::SeqCst);
                return Err(SendError::Closed(batch));
            }
            match self.ring.pooled().push(batch) {
                Ok(()) => {
                    self.inner.pushers.fetch_sub(1, Ordering::SeqCst);
                    self.next_seq = seq + 1;
                    let t = &self.inner.totals;
                    t.enqueued_batches.fetch_add(1, Ordering::Relaxed);
                    t.enqueued_events.fetch_add(events, Ordering::Relaxed);
                    self.inner.ready.notify();
                    return Ok(());
                }
                Err(refused) => {
                    self.inner.pushers.fetch_sub(1, Ordering::SeqCst);
                    if park {
                        batch = refused;
                        self.inner.space.wait(|| {
                            !self.ring.pooled().is_full()
                                || self.inner.closed.load(Ordering::SeqCst)
                        });
                        continue;
                    }
                    self.ring.enqueued_seq.store(seq - 1, Ordering::SeqCst);
                    return Err(SendError::Full(refused));
                }
            }
        }
    }

    /// Routed-mode publish: route each pair once (cache-hot, on this
    /// thread), push each shard's slice into its lane **all-or-nothing**,
    /// then advance the commit mark so the coordinator sees the batch
    /// atomically.
    ///
    /// The all-or-nothing space check is sound without locking: this
    /// producer is its lanes' only pusher, and consumers only free slots,
    /// so space observed before the pushes cannot shrink under us.
    /// Refusal keeps `pairs` in original first-touch order, so
    /// [`SendError`] carries the batch exactly as the pooled path would.
    fn submit_routed(
        &mut self,
        router: ShardRouter,
        pairs: Vec<(u64, u64)>,
        events: u64,
        park: bool,
    ) -> Result<(), SendError> {
        let seq = self.next_seq;
        // Same speculative enqueued mark + exact rollback as the pooled
        // path.
        self.ring.enqueued_seq.store(seq, Ordering::SeqCst);
        let mut buckets: Vec<Vec<(u64, u64)>> = vec![Vec::new(); router.shards()];
        for &(key, delta) in &pairs {
            buckets[router.shard_of(key)].push((key, delta));
        }
        loop {
            // Pushers guard: same push-racing-close protocol as pooled.
            self.inner.pushers.fetch_add(1, Ordering::SeqCst);
            if self.inner.closed.load(Ordering::SeqCst) {
                self.inner.pushers.fetch_sub(1, Ordering::SeqCst);
                self.ring.enqueued_seq.store(seq - 1, Ordering::SeqCst);
                return Err(SendError::Closed(Batch {
                    producer: self.id,
                    seq,
                    pairs,
                }));
            }
            let blocked = |ring: &ProducerRing| {
                buckets
                    .iter()
                    .enumerate()
                    .any(|(shard, b)| !b.is_empty() && ring.lane(shard).is_full())
            };
            if blocked(&self.ring) {
                self.inner.pushers.fetch_sub(1, Ordering::SeqCst);
                if park {
                    self.inner
                        .space
                        .wait(|| !blocked(&self.ring) || self.inner.closed.load(Ordering::SeqCst));
                    continue;
                }
                self.ring.enqueued_seq.store(seq - 1, Ordering::SeqCst);
                return Err(SendError::Full(Batch {
                    producer: self.id,
                    seq,
                    pairs,
                }));
            }
            for (shard, bucket) in buckets.iter_mut().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                let slice = LaneBatch {
                    seq,
                    pairs: std::mem::take(bucket),
                };
                assert!(
                    self.ring.lane(shard).push(slice).is_ok(),
                    "lane space was checked and only this producer pushes"
                );
            }
            // Commit *after* every slice is published (SeqCst): a
            // coordinator cut at or below this mark never splits a batch.
            self.ring.committed_seq.store(seq, Ordering::SeqCst);
            self.inner.pushers.fetch_sub(1, Ordering::SeqCst);
            self.next_seq = seq + 1;
            let t = &self.inner.totals;
            t.enqueued_batches.fetch_add(1, Ordering::Relaxed);
            t.enqueued_events.fetch_add(events, Ordering::Relaxed);
            self.inner.ready.notify();
            return Ok(());
        }
    }
}

impl Drop for IngestProducer {
    fn drop(&mut self) {
        let _ = self.flush_policy();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::EngineConfig;
    use ac_core::{ExactCounter, NelsonYuCounter, NyParams};
    use std::thread;

    fn small(ring_batches: usize, batch_pairs: usize, policy: BackpressurePolicy) -> IngestConfig {
        IngestConfig::new()
            .with_ring_batches(ring_batches)
            .with_batch_pairs(batch_pairs)
            .with_policy(policy)
    }

    #[test]
    fn coalesces_repeat_keys_within_a_batch() {
        let q = IngestQueue::new(small(4, 100, BackpressurePolicy::Block));
        let mut p = q.producer();
        for _ in 0..10 {
            p.record(7, 3);
        }
        p.record(8, 1);
        assert_eq!(p.pending_pairs(), 2, "10 hits on key 7 coalesce to one");
        assert!(p.try_send().is_ok());
        let batch = q.try_next_batch().unwrap();
        assert_eq!(batch.pairs, vec![(7, 30), (8, 1)]);
        assert_eq!(batch.producer, p.id());
        assert_eq!(batch.seq, 1, "first accepted batch");
    }

    #[test]
    fn resuming_producer_continues_the_durable_numbering() {
        let q = IngestQueue::new(small(8, 4, BackpressurePolicy::Block));
        let mut p = q.producer_resuming(41);
        assert_eq!(p.last_seq(), 41, "resume mark is the last *accepted* seq");
        p.record(3, 5);
        assert!(p.try_send().is_ok());
        let batch = q.try_next_batch().unwrap();
        assert_eq!(batch.seq, 42, "first batch after resume follows the mark");
        assert_eq!(p.last_seq(), 42);
    }

    #[test]
    fn submit_batch_numbers_one_wire_batch_per_ring_batch() {
        let q = IngestQueue::new(small(8, 4, BackpressurePolicy::Block));
        let mut p = q.producer();
        p.record(9, 1); // buffered pairs flush first, under their own seq
        let seq = p.submit_batch(vec![(1, 2), (2, 0), (3, 4)]).unwrap();
        assert_eq!(seq, 2, "buffered flush took seq 1");
        let first = q.try_next_batch().unwrap();
        assert_eq!((first.seq, first.pairs.clone()), (1, vec![(9, 1)]));
        let wire = q.try_next_batch().unwrap();
        assert_eq!(wire.seq, 2);
        assert_eq!(wire.pairs, vec![(1, 2), (3, 4)], "zero deltas shed");
        assert_eq!(p.last_seq(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn submit_batch_refuses_eventless_batches() {
        let q = IngestQueue::new(small(8, 4, BackpressurePolicy::Block));
        let mut p = q.producer();
        let _ = p.submit_batch(vec![(1, 0), (2, 0)]);
    }

    #[test]
    fn full_batches_auto_flush() {
        let q = IngestQueue::new(small(8, 3, BackpressurePolicy::Block));
        let mut p = q.producer();
        for key in 0..7u64 {
            p.record(key, 1);
        }
        // 7 distinct keys at 3 pairs/batch: two auto-flushes, one pending.
        assert_eq!(q.stats().enqueued_batches, 2);
        assert_eq!(p.pending_pairs(), 1);
        assert_eq!(p.last_seq(), 2);
    }

    #[test]
    fn drop_policy_counts_refused_batches() {
        let q = IngestQueue::new(small(1, 1, BackpressurePolicy::DropNewest));
        let mut p = q.producer();
        p.record(1, 5); // fills the ring
        p.record(2, 7); // refused: ring full, drop policy
        p.record(3, 9); // still refused
        let s = q.stats();
        assert_eq!(s.enqueued_batches, 1);
        assert_eq!(s.dropped_batches, 2);
        assert_eq!(s.dropped_events, 16);
        assert_eq!(s.queue_depth, 1);
        // Dropped batches never consumed a sequence number.
        assert_eq!(p.last_seq(), 1);
        assert_eq!(p.take_refused_events(), 16);
    }

    #[test]
    fn fail_policy_surfaces_refusal_and_never_drops() {
        let q = IngestQueue::new(small(1, 1, BackpressurePolicy::Fail));
        let mut p = q.producer();
        p.record(1, 5); // auto-flush fills the ring
        p.record(2, 7); // ring full: buffer retained, nothing dropped
        p.record(3, 9); // buffer keeps growing past batch_pairs
        assert_eq!(p.pending_pairs(), 2, "Fail retains instead of dropping");
        let err = p.try_send().expect_err("ring is full");
        assert!(err.is_full());
        let batch = err.into_batch();
        assert_eq!(batch.pairs, vec![(2, 7), (3, 9)]);
        // The old silent-loss path is unreachable: nothing was counted
        // dropped, and the refused tally never moved.
        let s = q.stats();
        assert_eq!(s.dropped_batches, 0);
        assert_eq!(s.dropped_events, 0);
        assert_eq!(p.take_refused_events(), 0);
        // Drain one batch, resubmit the refused one: gapless sequence.
        let first = q.try_next_batch().unwrap();
        assert_eq!(first.seq, 1);
        assert!(p.resubmit(batch).is_ok());
        let second = q.try_next_batch().unwrap();
        assert_eq!(second.seq, 2, "refusal rolled the sequence back");
        assert_eq!(second.pairs, vec![(2, 7), (3, 9)]);
    }

    #[test]
    fn send_parks_until_the_applier_frees_a_slot() {
        let q = IngestQueue::new(small(1, 4, BackpressurePolicy::Block));
        let mut p = q.producer();
        p.record(1, 1);
        assert!(p.send().is_ok(), "slot available: no park");
        p.record(2, 1);
        let popped = thread::scope(|s| {
            let q2 = q.clone();
            let popper = s.spawn(move || {
                // Give the sender time to park, then free the slot.
                thread::sleep(std::time::Duration::from_millis(20));
                q2.try_next_batch()
            });
            assert!(p.send().is_ok(), "send must resume after the pop");
            popper.join().expect("popper thread")
        });
        assert_eq!(popped.unwrap().seq, 1);
        assert_eq!(q.stats().enqueued_batches, 2);
    }

    #[test]
    fn close_refuses_late_flushes() {
        let q = IngestQueue::new(small(4, 10, BackpressurePolicy::Block));
        let mut p = q.producer();
        p.record(1, 1);
        q.close();
        let err = p.send().expect_err("send after close must fail, not hang");
        assert!(!err.is_full());
        assert_eq!(err.batch().events(), 1, "the data comes back");
        assert_eq!(q.next_batch(), None);
        // The deprecated bool shim counts the refusal instead.
        p.record(2, 1);
        #[allow(deprecated)]
        let accepted = p.flush();
        assert!(!accepted);
        assert_eq!(q.stats().dropped_batches, 1);
    }

    #[test]
    fn sequence_marks_track_enqueue_and_apply() {
        let q = IngestQueue::new(small(16, 2, BackpressurePolicy::Block));
        let mut engine = CounterEngine::new(ExactCounter::new(), EngineConfig::default());
        let mut p = q.producer();
        for key in 0..6u64 {
            p.record(key, 1); // 3 auto-flushed batches of 2 pairs
        }
        let marks = q.applied_marks();
        assert_eq!(marks.len(), 1);
        assert_eq!(marks[0].producer, p.id());
        assert_eq!(marks[0].enqueued_seq, 3);
        assert_eq!(marks[0].applied_seq, 0, "nothing drained yet");

        q.close();
        let applied = q.drain_into(&mut engine);
        assert_eq!(applied, 6);
        let marks = q.applied_marks();
        assert_eq!(marks[0].applied_seq, 3, "all three batches applied");
        assert_eq!(marks[0].enqueued_seq, 3);
    }

    #[test]
    fn producers_get_distinct_ids_and_independent_sequences() {
        let q = IngestQueue::new(small(16, 1, BackpressurePolicy::Block));
        let mut a = q.producer();
        let mut b = q.producer();
        assert_ne!(a.id(), b.id());
        a.record(1, 1);
        a.record(2, 1);
        b.record(3, 1);
        let stats = q.stats();
        assert_eq!(stats.producers.len(), 2);
        let find = |id: u64| *stats.producers.iter().find(|m| m.producer == id).unwrap();
        assert_eq!(find(a.id()).enqueued_seq, 2);
        assert_eq!(find(b.id()).enqueued_seq, 1);
    }

    #[test]
    fn drain_matches_direct_apply_bit_for_bit() {
        // Single producer + sequential drain == engine.apply on the same
        // stream: the lossless determinism contract.
        let p = NyParams::new(0.25, 8).unwrap();
        let cfg = EngineConfig::new().with_shards(4).with_seed(7);
        let mut direct = CounterEngine::new(NelsonYuCounter::new(p), cfg);
        let mut piped = CounterEngine::new(NelsonYuCounter::new(p), cfg);

        // Capacity must hold every batch: this single-threaded test only
        // drains after close, so a tight bound would park the producer.
        let q = IngestQueue::new(small(64, 5, BackpressurePolicy::Block));
        let mut prod = q.producer();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut pending: Vec<(u64, u64)> = Vec::new();
        for i in 0..137u64 {
            let (key, delta) = (i % 11, 1 + i % 97);
            prod.record(key, delta);
            // Mirror the coalescing: same batch boundaries, same merge.
            if let Some(pair) = pending.iter_mut().find(|p| p.0 == key) {
                pair.1 += delta;
            } else {
                pending.push((key, delta));
            }
            if pending.len() == 5 {
                reference.append(&mut pending);
            }
        }
        drop(prod); // flushes the partial batch
        reference.append(&mut pending);
        q.close();

        direct.apply(&reference);
        let applied = q.drain_into(&mut piped);
        assert_eq!(applied, direct.total_events());
        for key in 0..11u64 {
            assert_eq!(direct.counter(key), piped.counter(key), "key {key}");
        }
    }

    #[test]
    fn multi_producer_totals_are_conserved() {
        // 4 producer threads, one applier thread, tiny rings: nothing
        // lost under the blocking policy, and the engine's exact event
        // count equals the producers' submissions.
        let q = IngestQueue::new(small(2, 8, BackpressurePolicy::Block));
        let mut engine = CounterEngine::new(ExactCounter::new(), EngineConfig::default());
        let per_producer = 5_000u64;
        let producers = 4u64;

        let applied = thread::scope(|s| {
            let handles: Vec<_> = (0..producers)
                .map(|t| {
                    let q = q.clone();
                    s.spawn(move || {
                        let mut p = q.producer();
                        for i in 0..per_producer {
                            p.record((t * per_producer + i) % 257, 1);
                        }
                    })
                })
                .collect();
            // Applier runs concurrently with the producers and returns
            // once the queue is closed and drained.
            let drain = s.spawn(|| q.drain_into(&mut engine));
            for h in handles {
                h.join().expect("producer thread");
            }
            q.close();
            drain.join().expect("applier thread")
        });
        assert_eq!(applied, per_producer * producers);
        assert_eq!(engine.total_events(), per_producer * producers);
        let s = q.stats();
        assert_eq!(s.dropped_batches, 0);
        assert_eq!(s.applied_events, per_producer * producers);
        assert_eq!(s.queue_depth, 0);
        // Every producer's accepted stream was fully applied.
        assert_eq!(s.producers.len(), producers as usize);
        for m in &s.producers {
            assert_eq!(m.applied_seq, m.enqueued_seq, "producer {}", m.producer);
            assert!(m.applied_seq > 0);
        }
    }

    #[test]
    fn pooled_drain_matches_parallel_drain_bit_for_bit() {
        let p = NyParams::new(0.2, 8).unwrap();
        let cfg = EngineConfig::new().with_shards(4).with_seed(11);
        let mut pooled = CounterEngine::new(NelsonYuCounter::new(p), cfg);
        let mut parallel = CounterEngine::new(NelsonYuCounter::new(p), cfg);

        let feed = |q: &IngestQueue| {
            let mut prod = q.producer();
            for i in 0..2_000u64 {
                prod.record(i % 97, 1 + i % 13);
            }
            drop(prod);
            q.close();
        };

        let qa = IngestQueue::new(small(512, 16, BackpressurePolicy::Block));
        feed(&qa);
        let a = qa.drain_pooled(&mut pooled);

        let qb = IngestQueue::new(small(512, 16, BackpressurePolicy::Block));
        feed(&qb);
        let b = qb.drain_parallel(&mut parallel);

        assert_eq!(a, b);
        for key in 0..97u64 {
            assert_eq!(pooled.counter(key), parallel.counter(key), "key {key}");
        }
        let marks = qa.applied_marks();
        assert_eq!(marks[0].applied_seq, marks[0].enqueued_seq);
    }

    #[test]
    fn folded_pooled_drain_conserves_totals_and_counts_folds() {
        // Five hot keys, batches of four pairs: every flush repeats keys
        // from earlier batches in the same burst, so the fold elides runs.
        let q = IngestQueue::new(small(512, 4, BackpressurePolicy::Block).with_fold_runs(true));
        let mut engine = CounterEngine::new(ExactCounter::new(), EngineConfig::default());
        let mut prod = q.producer();
        for i in 0..1_000u64 {
            // Alternate keys so coalescing can't pre-merge everything.
            prod.record(i % 2, 1);
            prod.record(7 + i % 3, 2);
        }
        drop(prod);
        q.close();
        let applied = q.drain_pooled(&mut engine);
        assert_eq!(applied, 3_000);
        assert_eq!(engine.total_events(), 3_000, "fold conserves events");
        assert_eq!(engine.estimate(0), Some(500.0));
        assert_eq!(engine.estimate(1), Some(500.0));
        assert!(q.stats().folded_pairs > 0, "hot keys must fold");
    }

    #[test]
    fn stats_fold_into_engine_stats() {
        let q = IngestQueue::new(small(4, 2, BackpressurePolicy::DropNewest));
        let mut p = q.producer();
        for key in 0..20u64 {
            p.record(key, 1);
        }
        let engine = CounterEngine::new(ExactCounter::new(), EngineConfig::default());
        let stats = engine.stats().with_ingest(&q.stats());
        assert_eq!(stats.queue_depth, 4, "bounded at ring capacity");
        assert_eq!(stats.dropped_batches, q.stats().dropped_batches);
        assert_eq!(stats.dropped_events, q.stats().dropped_events);
        assert!(stats.dropped_batches > 0, "overflow must be visible");
        assert_eq!(stats.producers, q.stats().producers);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = IngestQueue::new(small(0, 1, BackpressurePolicy::Block));
    }

    #[test]
    fn cadence_fires_once_per_boundary_crossing() {
        let mut c = CheckpointCadence::new(100);
        assert!(!c.is_due(0));
        assert!(!c.is_due(99));
        assert!(c.is_due(100), "boundary reached");
        assert!(!c.is_due(150), "already fired for this window");
        assert!(c.is_due(500), "jumping several boundaries fires once");
        assert!(!c.is_due(599));
        assert!(c.is_due(600));
    }

    #[test]
    #[should_panic(expected = "cadence must be positive")]
    fn cadence_rejects_zero() {
        let _ = CheckpointCadence::new(0);
    }

    #[test]
    fn checkpointed_drain_cuts_a_restorable_chain_on_cadence() {
        use crate::checkpoint::restore_checkpoint_chain;
        use crate::checkpointer::{BackgroundCheckpointer, CheckpointerConfig};
        use ac_core::{NelsonYuCounter, NyParams};

        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
        let mut engine = CounterEngine::new(
            template.clone(),
            EngineConfig::new().with_shards(4).with_seed(3),
        );
        // Capacity must hold every batch: this test drains only after
        // close, so a tight bound would park the single producer.
        let q = IngestQueue::new(small(512, 16, BackpressurePolicy::Block));
        let mut p = q.producer();
        for i in 0..4_000u64 {
            p.record(i % 300, 1 + i % 7);
        }
        drop(p);
        q.close();

        let ckpt = BackgroundCheckpointer::spawn(
            CheckpointerConfig::new()
                .with_every_events(2_000)
                .with_max_deltas_per_base(8)
                .with_retain_bytes(true),
        );
        let applied = q.drain_parallel_checkpointed(&mut engine, &ckpt);
        assert_eq!(applied, engine.total_events());
        // Durability lag is observable through the stats fold.
        let lag = engine
            .stats()
            .with_checkpointer(&ckpt.stats())
            .checkpoint_lag_events;
        assert!(lag < applied, "some checkpoint must have been cut");

        let report = ckpt.finish();
        assert!(
            report.records.len() >= 2,
            "~{applied} events at a 2k cadence must cut several frames"
        );
        assert_eq!(report.records[0].kind, crate::CheckpointKind::Full);
        // Each frame carries the applied sequence marks at its freeze.
        let last_marks = &report.records.last().unwrap().producer_marks;
        assert_eq!(last_marks.len(), 1);
        assert!(last_marks[0].applied_seq > 0);
        // The newest chain folds back to a true prefix of the stream:
        // every restored counter matches a state the engine actually
        // passed through (checked via event totals and a full replay of
        // the remaining batches on the restored engine).
        let chain = report.latest_chain().expect("bytes retained");
        let back = restore_checkpoint_chain(&template, &chain).unwrap();
        assert_eq!(
            back.total_events(),
            report.records.last().unwrap().events,
            "chain tip covers exactly the frozen prefix"
        );
        assert!(back.total_events() <= applied);
    }
}
