//! The ingest layer: a bounded multi-producer event queue that coalesces
//! per-key increments into batches, so producers never block on shard
//! application.
//!
//! Producers hold an [`IngestProducer`] and call
//! [`record`](IngestProducer::record); increments to the same key within
//! the current batch are coalesced into one `(key, delta)` pair (the
//! counter families' batched `increment_by` makes a coalesced delta as
//! cheap as a single increment — the amortized view of the Aden-Ali–Han–
//! Nelson–Yu follow-up, where the batch is the first-class operation).
//! Full batches are handed to a bounded queue; appliers drain them into a
//! [`CounterEngine`](crate::CounterEngine) sequentially or with
//! one-thread-per-shard application. The queue is the only synchronization
//! point: producers contend on a mutex-guarded `VecDeque` push, never on
//! counter slabs, and appliers never hold the queue lock while applying.
//!
//! ## Backpressure
//!
//! The queue is bounded ([`IngestConfig::queue_batches`]). When it fills,
//! [`IngestConfig::block_when_full`] picks the policy: block the producer
//! until an applier catches up (lossless, the default), or drop the
//! refused batch and count it ([`IngestStats::dropped_batches`], surfaced
//! through [`EngineStats::with_ingest`](crate::EngineStats::with_ingest))
//! — the load-shedding mode for latency-critical writers.
//!
//! ## Provenance: producer ids and sequence numbers
//!
//! Every [`Batch`] is stamped with the id of the [`IngestProducer`] that
//! flushed it and a per-producer sequence number (1, 2, 3, … over the
//! *accepted* batches of that producer). The queue tracks two high-water
//! marks per producer — the last sequence accepted into the queue and the
//! last sequence drained into an engine ([`ProducerMark`], surfaced
//! through [`IngestStats::producers`]) — which is what makes exactly-once
//! replay after a crash-restore possible: a checkpoint cut at a batch
//! boundary records the applied marks, so on recovery each producer knows
//! the first sequence number the store has *not* seen and replays from
//! there, nothing dropped and nothing double-counted (the checkpoint
//! preserves RNG streams, so replayed batches reproduce states
//! bit-for-bit).
//!
//! ## Determinism
//!
//! A single producer draining through a sequential applier reproduces
//! `engine.apply` on the concatenated batches bit for bit. With several
//! producers the *arrival order* of batches depends on thread scheduling —
//! as in any streaming system — but every applied state is still one the
//! deterministic engine produces for some arrival order, and per-shard RNG
//! isolation keeps [`drain_parallel`](IngestQueue::drain_parallel)
//! identical to a sequential drain of the same batch sequence.

use crate::checkpointer::BackgroundCheckpointer;
use crate::registry::CounterEngine;
use ac_core::{ApproxCounter, StateCodec};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One coalesced batch of `(key, delta)` pairs, stamped with its
/// provenance: which producer flushed it and where it sits in that
/// producer's accepted sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Batch {
    /// Id of the [`IngestProducer`] that flushed the batch.
    pub producer: u64,
    /// 1-based position in that producer's accepted stream.
    pub seq: u64,
    /// The coalesced `(key, delta)` pairs, in first-touch order.
    pub pairs: Vec<(u64, u64)>,
}

impl Batch {
    /// Sum of deltas in the batch.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.pairs.iter().map(|&(_, d)| d).sum()
    }
}

/// Ingest layer construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct IngestConfig {
    /// Bounded queue capacity, in batches.
    pub queue_batches: usize,
    /// Coalesced pairs per batch before a producer auto-flushes.
    pub batch_pairs: usize,
    /// `true`: a producer whose flush finds the queue full blocks until
    /// space frees up (lossless). `false`: the batch is dropped and
    /// counted ([`IngestStats::dropped_batches`]).
    pub block_when_full: bool,
}

impl IngestConfig {
    /// The default configuration (64 batches of up to 4096 pairs,
    /// blocking backpressure), as a `const` starting point for the
    /// `with_*` builders.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            queue_batches: 64,
            batch_pairs: 4_096,
            block_when_full: true,
        }
    }

    /// Sets the bounded queue capacity, in batches.
    #[must_use]
    pub const fn with_queue_batches(mut self, queue_batches: usize) -> Self {
        self.queue_batches = queue_batches;
        self
    }

    /// Sets the coalesced pairs per batch before a producer auto-flushes.
    #[must_use]
    pub const fn with_batch_pairs(mut self, batch_pairs: usize) -> Self {
        self.batch_pairs = batch_pairs;
        self
    }

    /// Picks the backpressure policy: `true` blocks producers when the
    /// queue is full (lossless), `false` drops and counts.
    #[must_use]
    pub const fn with_block_when_full(mut self, block: bool) -> Self {
        self.block_when_full = block;
        self
    }
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Live counters shared by producers, appliers, and stats readers.
#[derive(Debug, Default)]
struct Totals {
    enqueued_batches: AtomicU64,
    enqueued_events: AtomicU64,
    applied_events: AtomicU64,
    dropped_batches: AtomicU64,
    dropped_events: AtomicU64,
    next_producer: AtomicU64,
}

/// Per-producer sequence high-water marks (see the module docs on
/// provenance). `enqueued_seq` is the last sequence accepted into the
/// queue; `applied_seq` the last drained into an engine; 0 means "none
/// yet". `applied_seq ≤ enqueued_seq` at every batch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProducerMark {
    /// The producer id.
    pub producer: u64,
    /// Highest sequence number accepted into the queue.
    pub enqueued_seq: u64,
    /// Highest sequence number applied to an engine.
    pub applied_seq: u64,
}

/// The mutex-guarded queue proper.
#[derive(Debug)]
struct Channel {
    queue: VecDeque<Batch>,
    closed: bool,
}

#[derive(Debug)]
struct Inner {
    config: IngestConfig,
    channel: Mutex<Channel>,
    /// Signaled when a batch is popped or the queue closes.
    space: Condvar,
    /// Signaled when a batch is pushed or the queue closes.
    ready: Condvar,
    totals: Totals,
    /// producer id → (enqueued_seq, applied_seq). A `BTreeMap` so every
    /// stats read reports producers in stable id order. Lock order:
    /// `channel` before `marks` (flush holds both); `marks` alone is fine.
    marks: Mutex<BTreeMap<u64, (u64, u64)>>,
}

/// A point-in-time summary of the ingest layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct IngestStats {
    /// Batches currently queued, not yet applied.
    pub queue_depth: usize,
    /// Batches accepted into the queue so far.
    pub enqueued_batches: u64,
    /// Events (sum of deltas) accepted into the queue so far.
    pub enqueued_events: u64,
    /// Events drained into an engine so far.
    pub applied_events: u64,
    /// Batches refused because the queue was full (drop policy only).
    pub dropped_batches: u64,
    /// Events lost with those batches.
    pub dropped_events: u64,
    /// Per-producer sequence high-water marks, in producer-id order.
    pub producers: Vec<ProducerMark>,
}

/// The bounded, multi-producer ingest queue — the front door of the
/// engine pipeline. Cheap to clone (all clones share the same queue).
#[derive(Debug, Clone)]
pub struct IngestQueue {
    inner: Arc<Inner>,
}

impl IngestQueue {
    /// Creates the queue.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    #[must_use]
    pub fn new(config: IngestConfig) -> Self {
        assert!(config.queue_batches > 0, "queue capacity must be positive");
        assert!(config.batch_pairs > 0, "batch size must be positive");
        Self {
            inner: Arc::new(Inner {
                config,
                channel: Mutex::new(Channel {
                    queue: VecDeque::new(),
                    closed: false,
                }),
                space: Condvar::new(),
                ready: Condvar::new(),
                totals: Totals::default(),
                marks: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> IngestConfig {
        self.inner.config
    }

    /// Creates a producer handle with a fresh producer id. Any number may
    /// exist concurrently; each coalesces into its own batch buffer and
    /// contends only on the queue push.
    #[must_use]
    pub fn producer(&self) -> IngestProducer {
        let id = self
            .inner
            .totals
            .next_producer
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .marks
            .lock()
            .expect("ingest marks lock")
            .insert(id, (0, 0));
        IngestProducer {
            inner: Arc::clone(&self.inner),
            id,
            next_seq: 1,
            pairs: Vec::new(),
            slots: HashMap::new(),
            events: 0,
            refused_events: 0,
        }
    }

    /// Closes the queue: producers' further flushes are refused (counted
    /// as dropped), and appliers drain what remains, then observe
    /// end-of-stream. Idempotent.
    pub fn close(&self) {
        let mut ch = self.inner.channel.lock().expect("ingest lock");
        ch.closed = true;
        drop(ch);
        self.inner.ready.notify_all();
        self.inner.space.notify_all();
    }

    /// Pops the next batch, blocking while the queue is empty and open.
    /// Returns `None` once the queue is closed *and* drained.
    #[must_use]
    pub fn next_batch(&self) -> Option<Batch> {
        let mut ch = self.inner.channel.lock().expect("ingest lock");
        loop {
            if let Some(batch) = ch.queue.pop_front() {
                drop(ch);
                self.inner.space.notify_one();
                return Some(batch);
            }
            if ch.closed {
                return None;
            }
            ch = self.inner.ready.wait(ch).expect("ingest lock");
        }
    }

    /// Pops the next batch if one is queued; never blocks. `None` means
    /// "nothing available right now" — check [`IngestQueue::is_closed`]
    /// to distinguish end-of-stream.
    #[must_use]
    pub fn try_next_batch(&self) -> Option<Batch> {
        let mut ch = self.inner.channel.lock().expect("ingest lock");
        let batch = ch.queue.pop_front();
        drop(ch);
        if batch.is_some() {
            self.inner.space.notify_one();
        }
        batch
    }

    /// True once [`IngestQueue::close`] has run.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.inner.channel.lock().expect("ingest lock").closed
    }

    /// Drains every remaining batch into `engine` with sequential
    /// application, blocking until the queue closes. Returns the events
    /// applied by this call.
    pub fn drain_into<C: ApproxCounter + Clone>(&self, engine: &mut CounterEngine<C>) -> u64 {
        let mut applied = 0u64;
        while let Some(batch) = self.next_batch() {
            applied += batch.events();
            engine.apply(&batch.pairs);
            self.note_applied(&batch);
        }
        applied
    }

    /// Like [`IngestQueue::drain_into`], but each batch fans out with one
    /// thread per touched shard — bit-identical states, per the engine's
    /// parallel-apply contract.
    pub fn drain_parallel<C: ApproxCounter + Clone + Send + Sync>(
        &self,
        engine: &mut CounterEngine<C>,
    ) -> u64 {
        self.drain_parallel_with(engine, |_, _| {})
    }

    /// [`IngestQueue::drain_parallel`] with an applier hook: after every
    /// applied batch, `hook(engine, applied_events_so_far)` runs on the
    /// applier thread, at a batch boundary — the engine is quiescent, so
    /// the hook may freeze snapshots, publish replicas, or read stats
    /// (the applied sequence marks visible through
    /// [`IngestQueue::applied_marks`] are exact here). This is the
    /// integration point the background checkpointer — and the `Store`
    /// service facade — ride (see
    /// [`IngestQueue::drain_parallel_checkpointed`]).
    pub fn drain_parallel_with<C, F>(&self, engine: &mut CounterEngine<C>, mut hook: F) -> u64
    where
        C: ApproxCounter + Clone + Send + Sync,
        F: FnMut(&mut CounterEngine<C>, u64),
    {
        let mut applied = 0u64;
        while let Some(batch) = self.next_batch() {
            applied += batch.events();
            engine.apply_parallel(&batch.pairs);
            self.note_applied(&batch);
            hook(engine, applied);
        }
        applied
    }

    /// Drains with durability riding along: every
    /// [`CheckpointerConfig::every_events`](crate::CheckpointerConfig::every_events)
    /// applied events, the applier cuts an `O(shards)` copy-on-write
    /// snapshot at the batch boundary and hands it — together with the
    /// applied sequence marks, for exactly-once replay after a restore —
    /// to `checkpointer`'s writer thread. Serialization and disk I/O
    /// never run on this thread, so ingest throughput is insulated from
    /// checkpoint size.
    pub fn drain_parallel_checkpointed<C>(
        &self,
        engine: &mut CounterEngine<C>,
        checkpointer: &BackgroundCheckpointer<C>,
    ) -> u64
    where
        C: StateCodec + Clone + Send + Sync + 'static,
    {
        let mut cadence = CheckpointCadence::new(checkpointer.config().every_events);
        self.drain_parallel_with(engine, |engine, applied| {
            if cadence.is_due(applied) {
                checkpointer.submit_with_marks(engine.snapshot(), self.applied_marks());
            }
        })
    }

    fn note_applied(&self, batch: &Batch) {
        self.inner
            .totals
            .applied_events
            .fetch_add(batch.events(), Ordering::Relaxed);
        let mut marks = self.inner.marks.lock().expect("ingest marks lock");
        let entry = marks.entry(batch.producer).or_insert((0, 0));
        // Batches from one producer are FIFO through the queue, but a
        // second applier could race; the mark is a high-water mark.
        entry.1 = entry.1.max(batch.seq);
    }

    /// The per-producer sequence high-water marks, in producer-id order.
    /// Read from an applier hook (batch boundary) these are exact; read
    /// from elsewhere they are a moment-in-time snapshot.
    #[must_use]
    pub fn applied_marks(&self) -> Vec<ProducerMark> {
        self.inner
            .marks
            .lock()
            .expect("ingest marks lock")
            .iter()
            .map(|(&producer, &(enqueued_seq, applied_seq))| ProducerMark {
                producer,
                enqueued_seq,
                applied_seq,
            })
            .collect()
    }

    /// Diagnostics snapshot. Feed it to
    /// [`EngineStats::with_ingest`](crate::EngineStats::with_ingest) for a
    /// whole-pipeline summary.
    #[must_use]
    pub fn stats(&self) -> IngestStats {
        let depth = self.inner.channel.lock().expect("ingest lock").queue.len();
        let t = &self.inner.totals;
        IngestStats {
            queue_depth: depth,
            enqueued_batches: t.enqueued_batches.load(Ordering::Relaxed),
            enqueued_events: t.enqueued_events.load(Ordering::Relaxed),
            applied_events: t.applied_events.load(Ordering::Relaxed),
            dropped_batches: t.dropped_batches.load(Ordering::Relaxed),
            dropped_events: t.dropped_events.load(Ordering::Relaxed),
            producers: self.applied_marks(),
        }
    }
}

/// The event-count cadence policy behind
/// [`IngestQueue::drain_parallel_checkpointed`], reusable from custom
/// [`IngestQueue::drain_parallel_with`] hooks: fires once per crossing of
/// an `every_events` boundary, catching up (without firing repeatedly)
/// when one batch jumps several boundaries at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointCadence {
    every: u64,
    due: u64,
}

impl CheckpointCadence {
    /// Creates the cadence; the first firing is at `every_events`.
    ///
    /// # Panics
    ///
    /// Panics if `every_events` is zero.
    #[must_use]
    pub fn new(every_events: u64) -> Self {
        assert!(every_events > 0, "cadence must be positive");
        Self {
            every: every_events,
            due: every_events,
        }
    }

    /// True when `applied` has crossed the next boundary; advances the
    /// boundary past `applied` so each crossing fires exactly once.
    pub fn is_due(&mut self, applied: u64) -> bool {
        if applied < self.due {
            return false;
        }
        while self.due <= applied {
            self.due += self.every;
        }
        true
    }
}

/// A producer handle: coalesces per-key increments locally, flushing full
/// batches into the shared bounded queue. Dropping the handle flushes any
/// partial batch. Each handle owns a unique producer id; its accepted
/// batches are numbered 1, 2, 3, … (see the module docs on provenance).
#[derive(Debug)]
pub struct IngestProducer {
    inner: Arc<Inner>,
    /// This producer's id (unique per queue).
    id: u64,
    /// Sequence number the next *accepted* batch will carry.
    next_seq: u64,
    /// The batch under construction.
    pairs: Vec<(u64, u64)>,
    /// key → position in `pairs`, so repeat keys coalesce.
    slots: HashMap<u64, usize>,
    /// Sum of deltas in `pairs`.
    events: u64,
    /// Events this producer has had refused (dropped) since the last
    /// [`IngestProducer::take_refused_events`] — including refusals from
    /// `record`'s silent auto-flush, so lossless callers can detect them.
    refused_events: u64,
}

impl IngestProducer {
    /// This producer's id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The sequence number of the last batch this producer had accepted
    /// into the queue (0 before the first).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Records `delta` increments to `key`. Repeat keys within the current
    /// batch coalesce into one pair; a full batch flushes automatically.
    pub fn record(&mut self, key: u64, delta: u64) {
        if delta == 0 {
            return;
        }
        match self.slots.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let pair = &mut self.pairs[*e.get()];
                pair.1 = pair.1.saturating_add(delta);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.pairs.len());
                self.pairs.push((key, delta));
            }
        }
        self.events = self.events.saturating_add(delta);
        if self.pairs.len() >= self.inner.config.batch_pairs {
            self.flush();
        }
    }

    /// Pairs buffered in the batch under construction.
    #[must_use]
    pub fn pending_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Events (sum of deltas) buffered in the batch under construction.
    #[must_use]
    pub fn pending_events(&self) -> u64 {
        self.events
    }

    /// Returns — and resets — the events this producer has had refused
    /// since the last call. Non-zero means data was dropped, *including*
    /// by [`IngestProducer::record`]'s automatic flush of a full batch,
    /// whose `bool` nobody sees; callers that promised losslessness
    /// check this after flushing.
    pub fn take_refused_events(&mut self) -> u64 {
        std::mem::take(&mut self.refused_events)
    }

    /// Pushes the current batch (if any) into the queue, honoring the
    /// backpressure policy. Returns `true` if the batch was accepted
    /// (vacuously for an empty buffer), `false` if it was dropped.
    /// Sequence numbers advance only over accepted batches, so a dropped
    /// batch never leaves a hole in the applied sequence.
    pub fn flush(&mut self) -> bool {
        if self.pairs.is_empty() {
            return true;
        }
        let pairs = std::mem::take(&mut self.pairs);
        let events = std::mem::take(&mut self.events);
        self.slots.clear();

        let t = &self.inner.totals;
        let mut ch = self.inner.channel.lock().expect("ingest lock");
        loop {
            if ch.closed {
                // Shutdown races producers; refuse loudly in the stats
                // rather than deadlocking or silently succeeding.
                drop(ch);
                t.dropped_batches.fetch_add(1, Ordering::Relaxed);
                t.dropped_events.fetch_add(events, Ordering::Relaxed);
                self.refused_events = self.refused_events.saturating_add(events);
                return false;
            }
            if ch.queue.len() < self.inner.config.queue_batches {
                let seq = self.next_seq;
                self.next_seq += 1;
                // Record the enqueued mark before the batch becomes
                // poppable (we still hold the channel lock), so an
                // applier can never observe applied_seq > enqueued_seq.
                {
                    let mut marks = self.inner.marks.lock().expect("ingest marks lock");
                    marks.entry(self.id).or_insert((0, 0)).0 = seq;
                }
                ch.queue.push_back(Batch {
                    producer: self.id,
                    seq,
                    pairs,
                });
                drop(ch);
                t.enqueued_batches.fetch_add(1, Ordering::Relaxed);
                t.enqueued_events.fetch_add(events, Ordering::Relaxed);
                self.inner.ready.notify_one();
                return true;
            }
            if !self.inner.config.block_when_full {
                drop(ch);
                t.dropped_batches.fetch_add(1, Ordering::Relaxed);
                t.dropped_events.fetch_add(events, Ordering::Relaxed);
                self.refused_events = self.refused_events.saturating_add(events);
                return false;
            }
            ch = self.inner.space.wait(ch).expect("ingest lock");
        }
    }
}

impl Drop for IngestProducer {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::EngineConfig;
    use ac_core::{ExactCounter, NelsonYuCounter, NyParams};
    use std::thread;

    fn small(queue_batches: usize, batch_pairs: usize, block: bool) -> IngestConfig {
        IngestConfig::new()
            .with_queue_batches(queue_batches)
            .with_batch_pairs(batch_pairs)
            .with_block_when_full(block)
    }

    #[test]
    fn coalesces_repeat_keys_within_a_batch() {
        let q = IngestQueue::new(small(4, 100, true));
        let mut p = q.producer();
        for _ in 0..10 {
            p.record(7, 3);
        }
        p.record(8, 1);
        assert_eq!(p.pending_pairs(), 2, "10 hits on key 7 coalesce to one");
        assert!(p.flush());
        let batch = q.try_next_batch().unwrap();
        assert_eq!(batch.pairs, vec![(7, 30), (8, 1)]);
        assert_eq!(batch.producer, p.id());
        assert_eq!(batch.seq, 1, "first accepted batch");
    }

    #[test]
    fn full_batches_auto_flush() {
        let q = IngestQueue::new(small(8, 3, true));
        let mut p = q.producer();
        for key in 0..7u64 {
            p.record(key, 1);
        }
        // 7 distinct keys at 3 pairs/batch: two auto-flushes, one pending.
        assert_eq!(q.stats().enqueued_batches, 2);
        assert_eq!(p.pending_pairs(), 1);
        assert_eq!(p.last_seq(), 2);
    }

    #[test]
    fn drop_policy_counts_refused_batches() {
        let q = IngestQueue::new(small(1, 1, false));
        let mut p = q.producer();
        p.record(1, 5); // fills the queue
        p.record(2, 7); // refused: queue full, non-blocking
        p.record(3, 9); // still refused
        let s = q.stats();
        assert_eq!(s.enqueued_batches, 1);
        assert_eq!(s.dropped_batches, 2);
        assert_eq!(s.dropped_events, 16);
        assert_eq!(s.queue_depth, 1);
        // Dropped batches never consumed a sequence number.
        assert_eq!(p.last_seq(), 1);
    }

    #[test]
    fn close_refuses_late_flushes() {
        let q = IngestQueue::new(small(4, 10, true));
        let mut p = q.producer();
        p.record(1, 1);
        q.close();
        assert!(!p.flush(), "flush after close must be refused, not hang");
        assert_eq!(q.stats().dropped_batches, 1);
        assert_eq!(q.next_batch(), None);
    }

    #[test]
    fn sequence_marks_track_enqueue_and_apply() {
        let q = IngestQueue::new(small(16, 2, true));
        let mut engine = CounterEngine::new(ExactCounter::new(), EngineConfig::default());
        let mut p = q.producer();
        for key in 0..6u64 {
            p.record(key, 1); // 3 auto-flushed batches of 2 pairs
        }
        let marks = q.applied_marks();
        assert_eq!(marks.len(), 1);
        assert_eq!(marks[0].producer, p.id());
        assert_eq!(marks[0].enqueued_seq, 3);
        assert_eq!(marks[0].applied_seq, 0, "nothing drained yet");

        q.close();
        let applied = q.drain_into(&mut engine);
        assert_eq!(applied, 6);
        let marks = q.applied_marks();
        assert_eq!(marks[0].applied_seq, 3, "all three batches applied");
        assert_eq!(marks[0].enqueued_seq, 3);
    }

    #[test]
    fn producers_get_distinct_ids_and_independent_sequences() {
        let q = IngestQueue::new(small(16, 1, true));
        let mut a = q.producer();
        let mut b = q.producer();
        assert_ne!(a.id(), b.id());
        a.record(1, 1);
        a.record(2, 1);
        b.record(3, 1);
        let stats = q.stats();
        assert_eq!(stats.producers.len(), 2);
        let find = |id: u64| *stats.producers.iter().find(|m| m.producer == id).unwrap();
        assert_eq!(find(a.id()).enqueued_seq, 2);
        assert_eq!(find(b.id()).enqueued_seq, 1);
    }

    #[test]
    fn drain_matches_direct_apply_bit_for_bit() {
        // Single producer + sequential drain == engine.apply on the same
        // stream: the lossless determinism contract.
        let p = NyParams::new(0.25, 8).unwrap();
        let cfg = EngineConfig::new().with_shards(4).with_seed(7);
        let mut direct = CounterEngine::new(NelsonYuCounter::new(p), cfg);
        let mut piped = CounterEngine::new(NelsonYuCounter::new(p), cfg);

        // Capacity must hold every batch: this single-threaded test only
        // drains after close, so a tight bound would block the producer.
        let q = IngestQueue::new(small(64, 5, true));
        let mut prod = q.producer();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut pending: Vec<(u64, u64)> = Vec::new();
        for i in 0..137u64 {
            let (key, delta) = (i % 11, 1 + i % 97);
            prod.record(key, delta);
            // Mirror the coalescing: same batch boundaries, same merge.
            if let Some(pair) = pending.iter_mut().find(|p| p.0 == key) {
                pair.1 += delta;
            } else {
                pending.push((key, delta));
            }
            if pending.len() == 5 {
                reference.append(&mut pending);
            }
        }
        drop(prod); // flushes the partial batch
        reference.append(&mut pending);
        q.close();

        direct.apply(&reference);
        let applied = q.drain_into(&mut piped);
        assert_eq!(applied, direct.total_events());
        for key in 0..11u64 {
            assert_eq!(direct.counter(key), piped.counter(key), "key {key}");
        }
    }

    #[test]
    fn multi_producer_totals_are_conserved() {
        // 4 producer threads, one applier thread, bounded queue: nothing
        // lost under the blocking policy, and the engine's exact event
        // count equals the producers' submissions.
        let q = IngestQueue::new(small(2, 8, true));
        let mut engine = CounterEngine::new(ExactCounter::new(), EngineConfig::default());
        let per_producer = 5_000u64;
        let producers = 4u64;

        let applied = thread::scope(|s| {
            let handles: Vec<_> = (0..producers)
                .map(|t| {
                    let q = q.clone();
                    s.spawn(move || {
                        let mut p = q.producer();
                        for i in 0..per_producer {
                            p.record((t * per_producer + i) % 257, 1);
                        }
                    })
                })
                .collect();
            // Applier runs concurrently with the producers and returns
            // once the queue is closed and drained.
            let drain = s.spawn(|| q.drain_into(&mut engine));
            for h in handles {
                h.join().expect("producer thread");
            }
            q.close();
            drain.join().expect("applier thread")
        });
        assert_eq!(applied, per_producer * producers);
        assert_eq!(engine.total_events(), per_producer * producers);
        let s = q.stats();
        assert_eq!(s.dropped_batches, 0);
        assert_eq!(s.applied_events, per_producer * producers);
        assert_eq!(s.queue_depth, 0);
        // Every producer's accepted stream was fully applied.
        assert_eq!(s.producers.len(), producers as usize);
        for m in &s.producers {
            assert_eq!(m.applied_seq, m.enqueued_seq, "producer {}", m.producer);
            assert!(m.applied_seq > 0);
        }
    }

    #[test]
    fn stats_fold_into_engine_stats() {
        let q = IngestQueue::new(small(4, 2, false));
        let mut p = q.producer();
        for key in 0..20u64 {
            p.record(key, 1);
        }
        let engine = CounterEngine::new(ExactCounter::new(), EngineConfig::default());
        let stats = engine.stats().with_ingest(&q.stats());
        assert_eq!(stats.queue_depth, 4, "bounded at queue capacity");
        assert_eq!(stats.dropped_batches, q.stats().dropped_batches);
        assert!(stats.dropped_batches > 0, "overflow must be visible");
        assert_eq!(stats.producers, q.stats().producers);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = IngestQueue::new(small(0, 1, true));
    }

    #[test]
    fn cadence_fires_once_per_boundary_crossing() {
        let mut c = CheckpointCadence::new(100);
        assert!(!c.is_due(0));
        assert!(!c.is_due(99));
        assert!(c.is_due(100), "boundary reached");
        assert!(!c.is_due(150), "already fired for this window");
        assert!(c.is_due(500), "jumping several boundaries fires once");
        assert!(!c.is_due(599));
        assert!(c.is_due(600));
    }

    #[test]
    #[should_panic(expected = "cadence must be positive")]
    fn cadence_rejects_zero() {
        let _ = CheckpointCadence::new(0);
    }

    #[test]
    fn checkpointed_drain_cuts_a_restorable_chain_on_cadence() {
        use crate::checkpoint::restore_checkpoint_chain;
        use crate::checkpointer::{BackgroundCheckpointer, CheckpointerConfig};
        use ac_core::{NelsonYuCounter, NyParams};

        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
        let mut engine = CounterEngine::new(
            template.clone(),
            EngineConfig::new().with_shards(4).with_seed(3),
        );
        // Capacity must hold every batch: this test drains only after
        // close, so a tight bound would block the single producer.
        let q = IngestQueue::new(small(512, 16, true));
        let mut p = q.producer();
        for i in 0..4_000u64 {
            p.record(i % 300, 1 + i % 7);
        }
        drop(p);
        q.close();

        let ckpt = BackgroundCheckpointer::spawn(
            CheckpointerConfig::new()
                .with_every_events(2_000)
                .with_max_deltas_per_base(8)
                .with_retain_bytes(true),
        );
        let applied = q.drain_parallel_checkpointed(&mut engine, &ckpt);
        assert_eq!(applied, engine.total_events());
        // Durability lag is observable through the stats fold.
        let lag = engine
            .stats()
            .with_checkpointer(&ckpt.stats())
            .checkpoint_lag_events;
        assert!(lag < applied, "some checkpoint must have been cut");

        let report = ckpt.finish();
        assert!(
            report.records.len() >= 2,
            "~{applied} events at a 2k cadence must cut several frames"
        );
        assert_eq!(report.records[0].kind, crate::CheckpointKind::Full);
        // Each frame carries the applied sequence marks at its freeze.
        let last_marks = &report.records.last().unwrap().producer_marks;
        assert_eq!(last_marks.len(), 1);
        assert!(last_marks[0].applied_seq > 0);
        // The newest chain folds back to a true prefix of the stream:
        // every restored counter matches a state the engine actually
        // passed through (checked via event totals and a full replay of
        // the remaining batches on the restored engine).
        let chain = report.latest_chain().expect("bytes retained");
        let back = restore_checkpoint_chain(&template, &chain).unwrap();
        assert_eq!(
            back.total_events(),
            report.records.last().unwrap().events,
            "chain tip covers exactly the frozen prefix"
        );
        assert!(back.total_events() <= applied);
    }
}
