//! The background checkpointer: a dedicated writer thread that turns
//! periodically-submitted snapshots into a durable **base + deltas**
//! chain, so the appliers' only durability cost is the `O(shards)` freeze
//! itself.
//!
//! The applier loop (see
//! [`IngestQueue::drain_parallel_checkpointed`](crate::IngestQueue::drain_parallel_checkpointed))
//! cuts a copy-on-write snapshot at a batch boundary every
//! [`CheckpointerConfig::every_events`] applied events and hands it over a
//! channel — nanoseconds of work. This thread serializes it on its own
//! time: the first snapshot (and every
//! [`CheckpointerConfig::max_deltas_per_base`]-th thereafter) becomes a
//! full checkpoint, the rest become deltas against the previous frame via
//! [`checkpoint_delta`]. Because snapshots share unwritten slabs with the
//! live engine, serialization reads the same memory the readers do —
//! never blocking, never copying more than the writers already did.

use crate::checkpoint::{checkpoint_delta, checkpoint_snapshot, CheckpointHeader, CheckpointKind};
use crate::snapshot::EngineSnapshot;
use ac_core::StateCodec;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Background checkpointer construction parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointerConfig {
    /// Applied-event cadence between snapshot submissions (consumed by
    /// [`IngestQueue::drain_parallel_checkpointed`](crate::IngestQueue::drain_parallel_checkpointed);
    /// the checkpointer itself serializes whatever it is handed).
    pub every_events: u64,
    /// After this many deltas, the next frame is a fresh full checkpoint
    /// (bounds chain length, and therefore worst-case restore work and
    /// the blast radius of a lost segment).
    pub max_deltas_per_base: usize,
    /// When set, each frame is also written to
    /// `<directory>/ckpt-<seq>-<kind>.bin`.
    pub directory: Option<PathBuf>,
    /// Keep each frame's bytes in its [`CheckpointRecord`] (the in-memory
    /// chain lets tests and benches fold the chain back without disk).
    pub retain_bytes: bool,
}

impl Default for CheckpointerConfig {
    fn default() -> Self {
        Self {
            every_events: 1_000_000,
            max_deltas_per_base: 15,
            directory: None,
            retain_bytes: true,
        }
    }
}

/// One frame the checkpointer wrote.
#[derive(Debug, Clone)]
pub struct CheckpointRecord {
    /// Position in submission order (0 = first).
    pub seq: usize,
    /// Full or delta.
    pub kind: CheckpointKind,
    /// Engine events at the frame's freeze.
    pub events: u64,
    /// Freeze epoch of the frame.
    pub epoch: u64,
    /// Shard sections serialized (engine shards for a full frame, dirty
    /// shards for a delta).
    pub shards_written: usize,
    /// Serialized size in bytes.
    pub bytes_len: u64,
    /// Wall-clock seconds spent serializing (and writing, if a directory
    /// is configured) — paid on this thread, not the appliers'.
    pub write_seconds: f64,
    /// Where the frame landed on disk, when a directory is configured.
    pub path: Option<PathBuf>,
    /// The frame itself, when [`CheckpointerConfig::retain_bytes`] is on.
    pub bytes: Option<Vec<u8>>,
}

/// Everything the checkpointer produced, returned by
/// [`BackgroundCheckpointer::finish`].
#[derive(Debug, Clone)]
pub struct CheckpointerReport {
    /// Every written frame, in submission order.
    pub records: Vec<CheckpointRecord>,
}

impl CheckpointerReport {
    /// The newest restorable chain: the last full frame and every delta
    /// after it, ready for
    /// [`restore_checkpoint_chain`](crate::restore_checkpoint_chain).
    /// `None` when nothing was written or bytes were not retained.
    #[must_use]
    pub fn latest_chain(&self) -> Option<Vec<&[u8]>> {
        let base = self
            .records
            .iter()
            .rposition(|r| r.kind == CheckpointKind::Full)?;
        self.records[base..]
            .iter()
            .map(|r| r.bytes.as_deref())
            .collect()
    }
}

/// Live counters shared between the writer thread and stats readers.
#[derive(Debug, Default)]
struct Totals {
    submitted: AtomicU64,
    written: AtomicU64,
    full_frames: AtomicU64,
    delta_frames: AtomicU64,
    bytes_written: AtomicU64,
    last_checkpoint_events: AtomicU64,
    last_write_ns: AtomicU64,
}

/// A point-in-time summary of the background checkpointer. Feed it to
/// [`EngineStats::with_checkpointer`](crate::EngineStats::with_checkpointer)
/// to expose the durability lag in a whole-pipeline summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointerStats {
    /// Snapshots handed to the writer thread so far.
    pub submitted: u64,
    /// Frames fully serialized so far.
    pub written: u64,
    /// Full frames among them.
    pub full_frames: u64,
    /// Delta frames among them.
    pub delta_frames: u64,
    /// Total serialized bytes across all frames.
    pub bytes_written: u64,
    /// Engine events covered by the newest durable frame — the quantity
    /// behind
    /// [`EngineStats::checkpoint_lag_events`](crate::EngineStats::checkpoint_lag_events).
    pub last_checkpoint_events: u64,
    /// Wall-clock nanoseconds the newest frame took to serialize.
    pub last_write_ns: u64,
}

/// A dedicated checkpoint-writer thread; see the module docs.
///
/// Submissions never block (unbounded channel of `O(shards)`-sized
/// snapshots); [`BackgroundCheckpointer::finish`] drains and joins.
/// Snapshots are expected to come from one engine lineage; a submission
/// that cannot extend the current delta chain (different counter
/// schedule, different config, older epoch) is written as a fresh full
/// frame rather than an error — interleaving *multiple* engines through
/// one checkpointer therefore still persists every frame, but produces
/// chains that restore each lineage only from its own full frames.
#[derive(Debug)]
pub struct BackgroundCheckpointer<C: StateCodec + Clone + Send + Sync + 'static> {
    tx: Sender<EngineSnapshot<C>>,
    handle: JoinHandle<Vec<CheckpointRecord>>,
    totals: Arc<Totals>,
    config: CheckpointerConfig,
}

impl<C: StateCodec + Clone + Send + Sync + 'static> BackgroundCheckpointer<C> {
    /// Starts the writer thread.
    ///
    /// # Panics
    ///
    /// Panics if `every_events` is zero or, in
    /// [`BackgroundCheckpointer::finish`], if a configured directory
    /// turns out not to be writable (durability failures are not
    /// swallowed).
    #[must_use]
    pub fn spawn(config: CheckpointerConfig) -> Self {
        assert!(config.every_events > 0, "cadence must be positive");
        let (tx, rx) = channel::<EngineSnapshot<C>>();
        let totals = Arc::new(Totals::default());
        let thread_totals = Arc::clone(&totals);
        let thread_config = config.clone();
        let handle = std::thread::spawn(move || {
            let mut records: Vec<CheckpointRecord> = Vec::new();
            // Only the parent's header is needed to chain the next delta
            // (80 bytes, `Copy`) — never the parent's serialized buffer.
            let mut parent: Option<CheckpointHeader> = None;
            let mut deltas_since_base = 0usize;
            while let Ok(snap) = rx.recv() {
                let start = Instant::now();
                let (ck, kind) = match &parent {
                    Some(base) if deltas_since_base < thread_config.max_deltas_per_base => {
                        // A snapshot that cannot extend the current chain
                        // (different schedule/config/lineage, or an
                        // epoch not strictly newer than the parent's)
                        // rebases onto a fresh full frame instead of
                        // killing the writer thread: every full frame is
                        // self-contained, so durability degrades to
                        // "larger", never to "lost".
                        match checkpoint_delta(&snap, base) {
                            Ok(delta) => (delta, CheckpointKind::Delta),
                            Err(_) => (checkpoint_snapshot(&snap), CheckpointKind::Full),
                        }
                    }
                    _ => (checkpoint_snapshot(&snap), CheckpointKind::Full),
                };
                let header = ck.header();
                let stats = ck.stats();
                let bytes_len = ck.bytes().len() as u64;
                let seq = records.len();
                let path = thread_config.directory.as_ref().map(|dir| {
                    let name = match kind {
                        CheckpointKind::Full => format!("ckpt-{seq:05}-full.bin"),
                        CheckpointKind::Delta => format!("ckpt-{seq:05}-delta.bin"),
                    };
                    let path = dir.join(name);
                    std::fs::write(&path, ck.bytes()).expect("write checkpoint frame");
                    path
                });
                let write_seconds = start.elapsed().as_secs_f64();
                match kind {
                    CheckpointKind::Full => {
                        deltas_since_base = 0;
                        thread_totals.full_frames.fetch_add(1, Ordering::Relaxed);
                    }
                    CheckpointKind::Delta => {
                        deltas_since_base += 1;
                        thread_totals.delta_frames.fetch_add(1, Ordering::Relaxed);
                    }
                }
                thread_totals.written.fetch_add(1, Ordering::Relaxed);
                thread_totals
                    .bytes_written
                    .fetch_add(bytes_len, Ordering::Relaxed);
                thread_totals
                    .last_checkpoint_events
                    .store(header.events, Ordering::Relaxed);
                thread_totals.last_write_ns.store(
                    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    Ordering::Relaxed,
                );
                records.push(CheckpointRecord {
                    seq,
                    kind,
                    events: header.events,
                    epoch: header.epoch,
                    shards_written: stats.shards_written,
                    bytes_len,
                    write_seconds,
                    path,
                    // Move the buffer, don't copy it; drop it otherwise.
                    bytes: thread_config.retain_bytes.then(|| ck.into_bytes()),
                });
                parent = Some(header);
            }
            records
        });
        Self {
            tx,
            handle,
            totals,
            config,
        }
    }

    /// The configuration (the drain loop reads the cadence from here).
    #[must_use]
    pub fn config(&self) -> &CheckpointerConfig {
        &self.config
    }

    /// Hands a frozen snapshot to the writer thread. Never blocks on
    /// serialization; the snapshot is `O(shards)` of `Arc`s.
    pub fn submit(&self, snap: EngineSnapshot<C>) {
        self.totals.submitted.fetch_add(1, Ordering::Relaxed);
        self.tx.send(snap).expect("checkpointer thread alive");
    }

    /// Diagnostics snapshot; cheap, safe to call from any thread.
    #[must_use]
    pub fn stats(&self) -> CheckpointerStats {
        let t = &self.totals;
        CheckpointerStats {
            submitted: t.submitted.load(Ordering::Relaxed),
            written: t.written.load(Ordering::Relaxed),
            full_frames: t.full_frames.load(Ordering::Relaxed),
            delta_frames: t.delta_frames.load(Ordering::Relaxed),
            bytes_written: t.bytes_written.load(Ordering::Relaxed),
            last_checkpoint_events: t.last_checkpoint_events.load(Ordering::Relaxed),
            last_write_ns: t.last_write_ns.load(Ordering::Relaxed),
        }
    }

    /// Closes the channel, drains every pending snapshot, and returns the
    /// full write history.
    ///
    /// # Panics
    ///
    /// Propagates a writer-thread panic (e.g. an unwritable directory).
    #[must_use]
    pub fn finish(self) -> CheckpointerReport {
        drop(self.tx);
        let records = self.handle.join().expect("checkpointer thread");
        CheckpointerReport { records }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::restore_checkpoint_chain;
    use crate::registry::{CounterEngine, EngineConfig};
    use ac_core::{NelsonYuCounter, NyParams};

    fn template() -> NelsonYuCounter {
        NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap())
    }

    fn small_cfg() -> CheckpointerConfig {
        CheckpointerConfig {
            every_events: 100,
            max_deltas_per_base: 3,
            directory: None,
            retain_bytes: true,
        }
    }

    #[test]
    fn base_then_deltas_then_rebase() {
        let mut e = CounterEngine::new(template(), EngineConfig { shards: 4, seed: 9 });
        let ckpt = BackgroundCheckpointer::spawn(small_cfg());
        for round in 0..6u64 {
            let batch: Vec<(u64, u64)> = (0..50u64).map(|k| (k + 10 * round, 3)).collect();
            e.apply(&batch);
            ckpt.submit(e.snapshot());
        }
        let stats_before_finish = ckpt.stats();
        assert_eq!(stats_before_finish.submitted, 6);
        let report = ckpt.finish();
        let kinds: Vec<CheckpointKind> = report.records.iter().map(|r| r.kind).collect();
        // Frame 0 full, 1–3 deltas, then a rebase at 4, delta at 5.
        assert_eq!(
            kinds,
            vec![
                CheckpointKind::Full,
                CheckpointKind::Delta,
                CheckpointKind::Delta,
                CheckpointKind::Delta,
                CheckpointKind::Full,
                CheckpointKind::Delta,
            ]
        );
        // The newest chain folds back to the engine at its last freeze.
        let chain = report.latest_chain().expect("bytes retained");
        assert_eq!(chain.len(), 2, "last full + one delta");
        let back = restore_checkpoint_chain(&template(), &chain).unwrap();
        assert_eq!(back.total_events(), e.total_events());
        for (key, counter) in e.iter() {
            assert_eq!(
                back.counter(key).map(NelsonYuCounter::state_parts),
                Some(counter.state_parts()),
                "key {key}"
            );
        }
    }

    #[test]
    fn foreign_snapshot_rebases_to_a_full_frame_instead_of_panicking() {
        // Two engines through one checkpointer: the second submission
        // cannot extend the first's chain, so it must land as a
        // self-contained full frame, not kill the writer thread or
        // produce a chimeric chain. Covered both ways: a different
        // config (refused by the config check) and — the subtler
        // accident — an identical config from a *different lineage*
        // (e.g. a restarted process), refused by the strict epoch
        // ordering because the fresh engine's epoch clock restarted.
        let cfg_a = EngineConfig { shards: 2, seed: 1 };
        let mut a = CounterEngine::new(template(), cfg_a);
        let mut b = CounterEngine::new(template(), EngineConfig { shards: 4, seed: 2 });
        let mut twin = CounterEngine::new(template(), cfg_a);
        a.apply(&[(1, 10)]);
        b.apply(&[(2, 20)]);
        twin.apply(&[(3, 30)]);
        let ckpt = BackgroundCheckpointer::spawn(small_cfg());
        ckpt.submit(a.snapshot());
        ckpt.submit(b.snapshot());
        ckpt.submit(twin.snapshot());
        let report = ckpt.finish();
        let kinds: Vec<CheckpointKind> = report.records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                CheckpointKind::Full,
                CheckpointKind::Full,
                CheckpointKind::Full
            ]
        );
        let chain = report.latest_chain().expect("bytes retained");
        let back = restore_checkpoint_chain(&template(), &chain).unwrap();
        assert_eq!(back.total_events(), 30, "latest chain is the twin's");
    }

    #[test]
    fn stats_track_lag() {
        let mut e = CounterEngine::new(template(), EngineConfig { shards: 2, seed: 1 });
        let ckpt = BackgroundCheckpointer::spawn(small_cfg());
        e.apply(&[(1, 500)]);
        ckpt.submit(e.snapshot());
        e.apply(&[(2, 41)]);
        let report_stats = loop {
            let s = ckpt.stats();
            if s.written == 1 {
                break s;
            }
            std::thread::yield_now();
        };
        assert_eq!(report_stats.last_checkpoint_events, 500);
        let stats = e.stats().with_checkpointer(&report_stats);
        assert_eq!(stats.checkpoint_lag_events, 41);
        let _ = ckpt.finish();
    }

    #[test]
    fn writes_frames_to_a_directory() {
        let dir = std::env::temp_dir().join(format!(
            "ac-ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut e = CounterEngine::new(template(), EngineConfig { shards: 2, seed: 4 });
        let ckpt = BackgroundCheckpointer::spawn(CheckpointerConfig {
            directory: Some(dir.clone()),
            ..small_cfg()
        });
        e.apply(&[(1, 10)]);
        ckpt.submit(e.snapshot());
        e.apply(&[(2, 20)]);
        ckpt.submit(e.snapshot());
        let report = ckpt.finish();
        let chain: Vec<Vec<u8>> = report
            .records
            .iter()
            .map(|r| std::fs::read(r.path.as_ref().expect("path set")).unwrap())
            .collect();
        let chain_refs: Vec<&[u8]> = chain.iter().map(Vec::as_slice).collect();
        let back = restore_checkpoint_chain(&template(), &chain_refs).unwrap();
        assert_eq!(back.total_events(), 30);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
