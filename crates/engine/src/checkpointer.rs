//! The background checkpointer: a dedicated writer thread that turns
//! periodically-submitted snapshots into a durable **base + deltas**
//! chain, so the appliers' only durability cost is the `O(shards)` freeze
//! itself.
//!
//! The applier loop (see
//! [`IngestQueue::drain_parallel_checkpointed`](crate::IngestQueue::drain_parallel_checkpointed))
//! cuts a copy-on-write snapshot at a batch boundary every
//! [`CheckpointerConfig::every_events`] applied events and hands it over a
//! channel — nanoseconds of work. This thread serializes it on its own
//! time: the first snapshot (and every
//! [`CheckpointerConfig::max_deltas_per_base`]-th thereafter) becomes a
//! full checkpoint, the rest become deltas against the previous frame via
//! [`checkpoint_delta`]. Because snapshots share unwritten slabs with the
//! live engine, serialization reads the same memory the readers do —
//! never blocking, never copying more than the writers already did.
//!
//! ## Manifest
//!
//! When configured with a directory *and* a [`ManifestInfo`]
//! ([`CheckpointerConfig::with_manifest`]), the writer thread also keeps
//! the directory's [`Manifest`](crate::Manifest) up to date: the header
//! (spec + config) is ensured at spawn, and one checksummed frame line is
//! appended after each frame file lands — file name, chain digests, and
//! the per-producer applied sequence marks that rode in with the
//! snapshot. `Store::open` reads that manifest to discover the newest
//! intact chain after a crash.

use crate::checkpoint::{
    checkpoint_delta, checkpoint_delta_with, checkpoint_snapshot, checkpoint_snapshot_with,
    CheckpointHeader, CheckpointKind,
};
use crate::ingest::ProducerMark;
use crate::manifest::{Manifest, ManifestFrame, ManifestInfo};
use crate::snapshot::EngineSnapshot;
use ac_core::StateCodec;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Background checkpointer construction parameters. Construct with the
/// builder surface: `CheckpointerConfig::new().with_every_events(…)`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct CheckpointerConfig {
    /// Applied-event cadence between snapshot submissions (consumed by
    /// [`IngestQueue::drain_parallel_checkpointed`](crate::IngestQueue::drain_parallel_checkpointed);
    /// the checkpointer itself serializes whatever it is handed).
    pub every_events: u64,
    /// After this many deltas, the next frame is a fresh full checkpoint
    /// (bounds chain length, and therefore worst-case restore work and
    /// the blast radius of a lost segment).
    pub max_deltas_per_base: usize,
    /// When set, each frame is also written to
    /// `<directory>/ckpt-<session>-<seq>-<kind>.bin`.
    pub directory: Option<PathBuf>,
    /// Keep each frame's bytes in its [`CheckpointRecord`] (the
    /// in-memory chain lets tests and benches fold the chain back
    /// without disk). **Off by default**: retained buffers accumulate
    /// for the checkpointer's whole lifetime, which is an unbounded
    /// memory cost for a long-running service.
    pub retain_bytes: bool,
    /// When set (together with [`CheckpointerConfig::directory`]), the
    /// writer maintains the directory's store manifest; see the module
    /// docs.
    pub manifest: Option<ManifestInfo>,
}

impl CheckpointerConfig {
    /// The default configuration (full frame every 15 deltas, 1M-event
    /// cadence, no directory, bytes not retained).
    #[must_use]
    pub fn new() -> Self {
        Self {
            every_events: 1_000_000,
            max_deltas_per_base: 15,
            directory: None,
            retain_bytes: false,
            manifest: None,
        }
    }

    /// Sets the applied-event cadence between snapshots.
    #[must_use]
    pub fn with_every_events(mut self, every_events: u64) -> Self {
        self.every_events = every_events;
        self
    }

    /// Sets how many deltas may follow a base before rebasing.
    #[must_use]
    pub fn with_max_deltas_per_base(mut self, max: usize) -> Self {
        self.max_deltas_per_base = max;
        self
    }

    /// Writes each frame to a file under `dir`.
    #[must_use]
    pub fn with_directory(mut self, dir: impl Into<PathBuf>) -> Self {
        self.directory = Some(dir.into());
        self
    }

    /// Keeps (or drops) each frame's bytes in its record.
    #[must_use]
    pub fn with_retain_bytes(mut self, retain: bool) -> Self {
        self.retain_bytes = retain;
        self
    }

    /// Maintains the durability directory's store manifest (requires
    /// [`CheckpointerConfig::with_directory`] to have any effect).
    #[must_use]
    pub fn with_manifest(mut self, info: ManifestInfo) -> Self {
        self.manifest = Some(info);
        self
    }
}

impl Default for CheckpointerConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One frame the checkpointer wrote.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CheckpointRecord {
    /// Position in submission order (0 = first).
    pub seq: usize,
    /// Full or delta.
    pub kind: CheckpointKind,
    /// Engine events at the frame's freeze.
    pub events: u64,
    /// Freeze epoch of the frame.
    pub epoch: u64,
    /// Shard sections serialized (engine shards for a full frame, dirty
    /// shards for a delta).
    pub shards_written: usize,
    /// Serialized size in bytes.
    pub bytes_len: u64,
    /// Wall-clock seconds spent serializing (and writing, if a directory
    /// is configured) — paid on this thread, not the appliers'.
    pub write_seconds: f64,
    /// Where the frame landed on disk, when a directory is configured.
    pub path: Option<PathBuf>,
    /// The frame itself, when [`CheckpointerConfig::retain_bytes`] is on.
    pub bytes: Option<Vec<u8>>,
    /// Per-producer applied sequence marks that rode in with the
    /// snapshot ([`BackgroundCheckpointer::submit_with_marks`]); empty
    /// for plain [`BackgroundCheckpointer::submit`] submissions.
    pub producer_marks: Vec<ProducerMark>,
}

/// Everything the checkpointer produced, returned by
/// [`BackgroundCheckpointer::finish`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CheckpointerReport {
    /// Every written frame, in submission order.
    pub records: Vec<CheckpointRecord>,
}

impl CheckpointerReport {
    /// The newest restorable chain: the last full frame and every delta
    /// after it, ready for
    /// [`restore_checkpoint_chain`](crate::restore_checkpoint_chain).
    /// `None` when nothing was written or bytes were not retained.
    #[must_use]
    pub fn latest_chain(&self) -> Option<Vec<&[u8]>> {
        let base = self
            .records
            .iter()
            .rposition(|r| r.kind == CheckpointKind::Full)?;
        self.records[base..]
            .iter()
            .map(|r| r.bytes.as_deref())
            .collect()
    }
}

/// Live counters shared between the writer thread and stats readers.
#[derive(Debug, Default)]
struct Totals {
    submitted: AtomicU64,
    written: AtomicU64,
    full_frames: AtomicU64,
    delta_frames: AtomicU64,
    bytes_written: AtomicU64,
    last_checkpoint_events: AtomicU64,
    last_write_ns: AtomicU64,
}

fn totals_stats(t: &Totals) -> CheckpointerStats {
    CheckpointerStats {
        submitted: t.submitted.load(Ordering::Relaxed),
        written: t.written.load(Ordering::Relaxed),
        full_frames: t.full_frames.load(Ordering::Relaxed),
        delta_frames: t.delta_frames.load(Ordering::Relaxed),
        bytes_written: t.bytes_written.load(Ordering::Relaxed),
        last_checkpoint_events: t.last_checkpoint_events.load(Ordering::Relaxed),
        last_write_ns: t.last_write_ns.load(Ordering::Relaxed),
    }
}

/// A point-in-time summary of the background checkpointer. Feed it to
/// [`EngineStats::with_checkpointer`](crate::EngineStats::with_checkpointer)
/// to expose the durability lag in a whole-pipeline summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct CheckpointerStats {
    /// Snapshots handed to the writer thread so far.
    pub submitted: u64,
    /// Frames fully serialized so far.
    pub written: u64,
    /// Full frames among them.
    pub full_frames: u64,
    /// Delta frames among them.
    pub delta_frames: u64,
    /// Total serialized bytes across all frames.
    pub bytes_written: u64,
    /// Engine events covered by the newest durable frame — the quantity
    /// behind
    /// [`EngineStats::checkpoint_lag_events`](crate::EngineStats::checkpoint_lag_events).
    pub last_checkpoint_events: u64,
    /// Wall-clock nanoseconds the newest frame took to serialize.
    pub last_write_ns: u64,
}

/// A cheap, cloneable, read-only view of a checkpointer's live counters —
/// for stats from threads that do not own the checkpointer (the `Store`
/// facade hands the checkpointer to its applier thread and keeps a probe).
#[derive(Debug, Clone)]
pub struct CheckpointerProbe {
    totals: Arc<Totals>,
}

impl CheckpointerProbe {
    /// Diagnostics snapshot; cheap, safe to call from any thread.
    #[must_use]
    pub fn stats(&self) -> CheckpointerStats {
        totals_stats(&self.totals)
    }
}

/// One unit of work for the writer thread.
struct Submission<C> {
    snap: EngineSnapshot<C>,
    marks: Vec<ProducerMark>,
}

/// A dedicated checkpoint-writer thread; see the module docs.
///
/// Submissions never block (unbounded channel of `O(shards)`-sized
/// snapshots); [`BackgroundCheckpointer::finish`] drains and joins.
/// Snapshots are expected to come from one engine lineage; a submission
/// that cannot extend the current delta chain (different counter
/// schedule, different config, older epoch) is written as a fresh full
/// frame rather than an error — interleaving *multiple* engines through
/// one checkpointer therefore still persists every frame, but produces
/// chains that restore each lineage only from its own full frames.
#[derive(Debug)]
pub struct BackgroundCheckpointer<C: StateCodec + Clone + Send + Sync + 'static> {
    tx: Sender<Submission<C>>,
    handle: JoinHandle<Vec<CheckpointRecord>>,
    totals: Arc<Totals>,
    config: CheckpointerConfig,
}

impl<C: StateCodec + Clone + Send + Sync + 'static> BackgroundCheckpointer<C> {
    /// Starts the writer thread.
    ///
    /// # Panics
    ///
    /// Panics if `every_events` is zero or, in
    /// [`BackgroundCheckpointer::finish`], if a configured directory or
    /// manifest turns out not to be writable or belongs to a different
    /// deployment (durability failures are not swallowed; the `Store`
    /// facade pre-validates both to return typed errors instead).
    #[must_use]
    pub fn spawn(config: CheckpointerConfig) -> Self {
        Self::spawn_with(config, None)
    }

    /// [`BackgroundCheckpointer::spawn`] for a **tiered** engine: frames
    /// are serialized against `templates` (the tier ladder, rung 0 =
    /// default) via
    /// [`checkpoint_snapshot_with`](crate::checkpoint_snapshot_with) /
    /// [`checkpoint_delta_with`](crate::checkpoint_delta_with), so
    /// snapshots carrying tier tags land as version-3 frames instead of
    /// panicking the writer. `None` is the plain version-2 writer.
    ///
    /// # Panics
    ///
    /// As [`BackgroundCheckpointer::spawn`], plus if `templates` is
    /// `Some` but empty.
    #[must_use]
    pub fn spawn_with(config: CheckpointerConfig, templates: Option<Vec<C>>) -> Self {
        assert!(config.every_events > 0, "cadence must be positive");
        assert!(
            templates.as_ref().is_none_or(|t| !t.is_empty()),
            "a tier ladder needs at least the default template"
        );
        let (tx, rx) = channel::<Submission<C>>();
        let totals = Arc::new(Totals::default());
        let thread_totals = Arc::clone(&totals);
        let thread_config = config.clone();
        let handle = std::thread::spawn(move || {
            if let (Some(dir), Some(info)) = (&thread_config.directory, &thread_config.manifest) {
                Manifest::ensure(dir, &info.spec, &info.config, info.tiering.as_ref())
                    .expect("usable store manifest");
            }
            let mut records: Vec<CheckpointRecord> = Vec::new();
            // Only the parent's header is needed to chain the next delta
            // (80 bytes, `Copy`) — never the parent's serialized buffer.
            let mut parent: Option<CheckpointHeader> = None;
            let mut deltas_since_base = 0usize;
            while let Ok(Submission { snap, marks }) = rx.recv() {
                let start = Instant::now();
                let full = |snap: &EngineSnapshot<C>| match &templates {
                    Some(t) => checkpoint_snapshot_with(snap, t),
                    None => checkpoint_snapshot(snap),
                };
                let delta = |snap: &EngineSnapshot<C>, base: &CheckpointHeader| match &templates {
                    Some(t) => checkpoint_delta_with(snap, t, base),
                    None => checkpoint_delta(snap, base),
                };
                let (ck, kind) = match &parent {
                    Some(base) if deltas_since_base < thread_config.max_deltas_per_base => {
                        // A snapshot that cannot extend the current chain
                        // (different schedule/config/lineage, or an
                        // epoch not strictly newer than the parent's)
                        // rebases onto a fresh full frame instead of
                        // killing the writer thread: every full frame is
                        // self-contained, so durability degrades to
                        // "larger", never to "lost".
                        match delta(&snap, base) {
                            Ok(d) => (d, CheckpointKind::Delta),
                            Err(_) => (full(&snap), CheckpointKind::Full),
                        }
                    }
                    _ => (full(&snap), CheckpointKind::Full),
                };
                let header = ck.header();
                let stats = ck.stats();
                let bytes_len = ck.bytes().len() as u64;
                let seq = records.len();
                let session = thread_config.manifest.as_ref().map_or(0, |m| m.session);
                let path = thread_config.directory.as_ref().map(|dir| {
                    let kind_tag = match kind {
                        CheckpointKind::Full => "full",
                        CheckpointKind::Delta => "delta",
                    };
                    let name = format!("ckpt-{session:03}-{seq:05}-{kind_tag}.bin");
                    let path = dir.join(&name);
                    // Write + fsync before the manifest line lands: a
                    // listed frame's bytes must already be durable.
                    let mut file = std::fs::File::create(&path).expect("create checkpoint frame");
                    std::io::Write::write_all(&mut file, ck.bytes())
                        .expect("write checkpoint frame");
                    file.sync_all().expect("sync checkpoint frame");
                    if thread_config.manifest.is_some() {
                        Manifest::append_frame(
                            dir,
                            &ManifestFrame {
                                session,
                                file: name,
                                kind,
                                epoch: header.epoch,
                                events: header.events,
                                keys: header.keys,
                                chain: header.chain,
                                parent_chain: header.parent_chain,
                                marks: marks.clone(),
                            },
                        )
                        .expect("append manifest frame line");
                    }
                    path
                });
                let write_seconds = start.elapsed().as_secs_f64();
                match kind {
                    CheckpointKind::Full => {
                        deltas_since_base = 0;
                        thread_totals.full_frames.fetch_add(1, Ordering::Relaxed);
                    }
                    CheckpointKind::Delta => {
                        deltas_since_base += 1;
                        thread_totals.delta_frames.fetch_add(1, Ordering::Relaxed);
                    }
                }
                thread_totals.written.fetch_add(1, Ordering::Relaxed);
                thread_totals
                    .bytes_written
                    .fetch_add(bytes_len, Ordering::Relaxed);
                thread_totals
                    .last_checkpoint_events
                    .store(header.events, Ordering::Relaxed);
                thread_totals.last_write_ns.store(
                    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    Ordering::Relaxed,
                );
                records.push(CheckpointRecord {
                    seq,
                    kind,
                    events: header.events,
                    epoch: header.epoch,
                    shards_written: stats.shards_written,
                    bytes_len,
                    write_seconds,
                    path,
                    // Move the buffer, don't copy it; drop it otherwise.
                    bytes: thread_config.retain_bytes.then(|| ck.into_bytes()),
                    producer_marks: marks,
                });
                parent = Some(header);
            }
            records
        });
        Self {
            tx,
            handle,
            totals,
            config,
        }
    }

    /// The configuration (the drain loop reads the cadence from here).
    #[must_use]
    pub fn config(&self) -> &CheckpointerConfig {
        &self.config
    }

    /// Hands a frozen snapshot to the writer thread. Never blocks on
    /// serialization; the snapshot is `O(shards)` of `Arc`s.
    pub fn submit(&self, snap: EngineSnapshot<C>) {
        self.submit_with_marks(snap, Vec::new());
    }

    /// [`BackgroundCheckpointer::submit`] with the per-producer applied
    /// sequence marks at the snapshot's freeze, recorded in the frame's
    /// [`CheckpointRecord`] and manifest line — the exactly-once replay
    /// cursor a recovered store reports.
    pub fn submit_with_marks(&self, snap: EngineSnapshot<C>, marks: Vec<ProducerMark>) {
        self.totals.submitted.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Submission { snap, marks })
            .expect("checkpointer thread alive");
    }

    /// Diagnostics snapshot; cheap, safe to call from any thread.
    #[must_use]
    pub fn stats(&self) -> CheckpointerStats {
        totals_stats(&self.totals)
    }

    /// A cloneable read-only stats handle that outlives ownership
    /// transfers of the checkpointer itself.
    #[must_use]
    pub fn probe(&self) -> CheckpointerProbe {
        CheckpointerProbe {
            totals: Arc::clone(&self.totals),
        }
    }

    /// Closes the channel, drains every pending snapshot, and returns the
    /// full write history.
    ///
    /// # Panics
    ///
    /// Propagates a writer-thread panic (e.g. an unwritable directory).
    #[must_use]
    pub fn finish(self) -> CheckpointerReport {
        drop(self.tx);
        let records = self.handle.join().expect("checkpointer thread");
        CheckpointerReport { records }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::restore_checkpoint_chain;
    use crate::registry::{CounterEngine, EngineConfig};
    use ac_core::{NelsonYuCounter, NyParams};

    fn template() -> NelsonYuCounter {
        NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap())
    }

    fn small_cfg() -> CheckpointerConfig {
        CheckpointerConfig::new()
            .with_every_events(100)
            .with_max_deltas_per_base(3)
            .with_retain_bytes(true)
    }

    #[test]
    fn base_then_deltas_then_rebase() {
        let mut e = CounterEngine::new(template(), EngineConfig::new().with_shards(4).with_seed(9));
        let ckpt = BackgroundCheckpointer::spawn(small_cfg());
        for round in 0..6u64 {
            let batch: Vec<(u64, u64)> = (0..50u64).map(|k| (k + 10 * round, 3)).collect();
            e.apply(&batch);
            ckpt.submit(e.snapshot());
        }
        let stats_before_finish = ckpt.stats();
        assert_eq!(stats_before_finish.submitted, 6);
        let report = ckpt.finish();
        let kinds: Vec<CheckpointKind> = report.records.iter().map(|r| r.kind).collect();
        // Frame 0 full, 1–3 deltas, then a rebase at 4, delta at 5.
        assert_eq!(
            kinds,
            vec![
                CheckpointKind::Full,
                CheckpointKind::Delta,
                CheckpointKind::Delta,
                CheckpointKind::Delta,
                CheckpointKind::Full,
                CheckpointKind::Delta,
            ]
        );
        // The newest chain folds back to the engine at its last freeze.
        let chain = report.latest_chain().expect("bytes retained");
        assert_eq!(chain.len(), 2, "last full + one delta");
        let back = restore_checkpoint_chain(&template(), &chain).unwrap();
        assert_eq!(back.total_events(), e.total_events());
        for (key, counter) in e.iter() {
            assert_eq!(
                back.counter(key).map(NelsonYuCounter::state_parts),
                Some(counter.state_parts()),
                "key {key}"
            );
        }
    }

    #[test]
    fn foreign_snapshot_rebases_to_a_full_frame_instead_of_panicking() {
        // Two engines through one checkpointer: the second submission
        // cannot extend the first's chain, so it must land as a
        // self-contained full frame, not kill the writer thread or
        // produce a chimeric chain. Covered both ways: a different
        // config (refused by the config check) and — the subtler
        // accident — an identical config from a *different lineage*
        // (e.g. a restarted process), refused by the strict epoch
        // ordering because the fresh engine's epoch clock restarted.
        let cfg_a = EngineConfig::new().with_shards(2).with_seed(1);
        let mut a = CounterEngine::new(template(), cfg_a);
        let mut b = CounterEngine::new(template(), EngineConfig::new().with_shards(4).with_seed(2));
        let mut twin = CounterEngine::new(template(), cfg_a);
        a.apply(&[(1, 10)]);
        b.apply(&[(2, 20)]);
        twin.apply(&[(3, 30)]);
        let ckpt = BackgroundCheckpointer::spawn(small_cfg());
        ckpt.submit(a.snapshot());
        ckpt.submit(b.snapshot());
        ckpt.submit(twin.snapshot());
        let report = ckpt.finish();
        let kinds: Vec<CheckpointKind> = report.records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                CheckpointKind::Full,
                CheckpointKind::Full,
                CheckpointKind::Full
            ]
        );
        let chain = report.latest_chain().expect("bytes retained");
        let back = restore_checkpoint_chain(&template(), &chain).unwrap();
        assert_eq!(back.total_events(), 30, "latest chain is the twin's");
    }

    #[test]
    fn stats_track_lag() {
        let mut e = CounterEngine::new(template(), EngineConfig::new().with_shards(2).with_seed(1));
        let ckpt = BackgroundCheckpointer::spawn(small_cfg());
        let probe = ckpt.probe();
        e.apply(&[(1, 500)]);
        ckpt.submit(e.snapshot());
        e.apply(&[(2, 41)]);
        let report_stats = loop {
            let s = ckpt.stats();
            if s.written == 1 {
                break s;
            }
            std::thread::yield_now();
        };
        assert_eq!(report_stats.last_checkpoint_events, 500);
        assert_eq!(probe.stats(), report_stats, "probe mirrors the owner");
        let stats = e.stats().with_checkpointer(&report_stats);
        assert_eq!(stats.checkpoint_lag_events, 41);
        let _ = ckpt.finish();
    }

    #[test]
    fn writes_frames_and_manifest_to_a_directory() {
        use ac_core::CounterSpec;

        let dir = std::env::temp_dir().join(format!(
            "ac-ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = CounterSpec::NelsonYu {
            eps: 0.2,
            delta_log2: 8,
        };
        let config = EngineConfig::new().with_shards(2).with_seed(4);
        let mut e = CounterEngine::new(template(), config);
        let ckpt =
            BackgroundCheckpointer::spawn(small_cfg().with_directory(dir.clone()).with_manifest(
                ManifestInfo {
                    spec,
                    config,
                    session: 0,
                    tiering: None,
                },
            ));
        e.apply(&[(1, 10)]);
        ckpt.submit_with_marks(
            e.snapshot(),
            vec![ProducerMark {
                producer: 0,
                enqueued_seq: 1,
                applied_seq: 1,
            }],
        );
        e.apply(&[(2, 20)]);
        ckpt.submit(e.snapshot());
        let report = ckpt.finish();
        let chain: Vec<Vec<u8>> = report
            .records
            .iter()
            .map(|r| std::fs::read(r.path.as_ref().expect("path set")).unwrap())
            .collect();
        let chain_refs: Vec<&[u8]> = chain.iter().map(Vec::as_slice).collect();
        let back = restore_checkpoint_chain(&template(), &chain_refs).unwrap();
        assert_eq!(back.total_events(), 30);

        // The manifest mirrors the frames, marks included.
        let m = Manifest::load(&dir).unwrap();
        assert_eq!(m.spec, spec);
        assert_eq!(m.config, config);
        assert_eq!(m.frames.len(), 2);
        assert_eq!(m.frames[0].kind, CheckpointKind::Full);
        assert_eq!(m.frames[0].marks.len(), 1);
        assert_eq!(m.frames[0].marks[0].applied_seq, 1);
        assert_eq!(m.frames[1].marks, vec![]);
        for (frame, record) in m.frames.iter().zip(&report.records) {
            assert_eq!(frame.events, record.events);
            assert_eq!(frame.epoch, record.epoch);
            assert_eq!(
                dir.join(&frame.file),
                *record.path.as_ref().unwrap(),
                "manifest names the frame file"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
