//! The background checkpointer: a dedicated writer thread that turns
//! periodically-submitted snapshots into a durable **base + deltas**
//! chain, so the appliers' only durability cost is the `O(shards)` freeze
//! itself.
//!
//! The applier loop (see
//! [`IngestQueue::drain_parallel_checkpointed`](crate::IngestQueue::drain_parallel_checkpointed))
//! cuts a copy-on-write snapshot at a batch boundary every
//! [`CheckpointerConfig::every_events`] applied events and hands it over a
//! channel — nanoseconds of work. This thread serializes it on its own
//! time: the first snapshot (and every
//! [`CheckpointerConfig::max_deltas_per_base`]-th thereafter) becomes a
//! full checkpoint, the rest become deltas against the previous frame via
//! [`checkpoint_delta`]. Because snapshots share unwritten slabs with the
//! live engine, serialization reads the same memory the readers do —
//! never blocking, never copying more than the writers already did.
//!
//! ## Manifest
//!
//! When configured with a directory *and* a [`ManifestInfo`]
//! ([`CheckpointerConfig::with_manifest`]), the writer thread also keeps
//! the directory's [`Manifest`](crate::Manifest) up to date: the header
//! (spec + config) is ensured at spawn, and one checksummed frame line is
//! appended after each frame file lands — file name, chain digests, and
//! the per-producer applied sequence marks that rode in with the
//! snapshot. `Store::open` reads that manifest to discover the newest
//! intact chain after a crash.
//!
//! ## Off-thread compaction
//!
//! A base + deltas chain grows with *history*, so recovery replay time
//! grows with uptime, not with state size — the opposite of the repo's
//! thesis. When a chain-length or chain-bytes trigger is configured
//! ([`CheckpointerConfig::with_max_chain_len`] /
//! [`CheckpointerConfig::with_max_chain_bytes`]) and the checkpointer
//! has a directory + manifest, the writer thread owns a second
//! **compactor** thread. When the live chain crosses a trigger, the
//! writer hands the chain's frame files to the compactor and keeps
//! writing; the compactor folds them (parallel restore) into one fresh
//! full frame ([`compact_chain`](crate::compact_chain)) whose header
//! pins the folded tip's epoch and chain digest, writes + fsyncs it,
//! and hands the result back. The writer — still the only manifest
//! writer — then **commits** by atomically rewriting the manifest
//! (tmp file + rename, both fsynced) to list the compacted base plus
//! whatever deltas landed while the fold ran; the old chain stays valid
//! until the rename, so a crash at any point recovers from one chain or
//! the other, never neither. Superseded frame files are pruned after
//! the commit, subject to [`CheckpointerConfig::with_retention`]'s TTL.
//! Producer high-water marks ride the folded tip's manifest line onto
//! the compacted base's, so exactly-once replay cursors survive
//! compaction. If a fresh full frame landed mid-fold (rebase, foreign
//! snapshot), the result no longer extends the live chain and is
//! discarded — the orphan base file is deleted and never referenced.

use crate::checkpoint::{
    checkpoint_delta, checkpoint_delta_with, checkpoint_snapshot, checkpoint_snapshot_with,
    compact_chain_with_workers, compact_chain_workers, Checkpoint, CheckpointHeader,
    CheckpointKind,
};
use crate::ingest::ProducerMark;
use crate::manifest::{Manifest, ManifestFrame, ManifestInfo};
use crate::snapshot::EngineSnapshot;
use ac_core::StateCodec;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Background checkpointer construction parameters. Construct with the
/// builder surface: `CheckpointerConfig::new().with_every_events(…)`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct CheckpointerConfig {
    /// Applied-event cadence between snapshot submissions (consumed by
    /// [`IngestQueue::drain_parallel_checkpointed`](crate::IngestQueue::drain_parallel_checkpointed);
    /// the checkpointer itself serializes whatever it is handed).
    pub every_events: u64,
    /// After this many deltas, the next frame is a fresh full checkpoint
    /// (bounds chain length, and therefore worst-case restore work and
    /// the blast radius of a lost segment).
    pub max_deltas_per_base: usize,
    /// When set, each frame is also written to
    /// `<directory>/ckpt-<session>-<seq>-<kind>.bin`.
    pub directory: Option<PathBuf>,
    /// Keep each frame's bytes in its [`CheckpointRecord`] (the
    /// in-memory chain lets tests and benches fold the chain back
    /// without disk). **Off by default**: retained buffers accumulate
    /// for the checkpointer's whole lifetime, which is an unbounded
    /// memory cost for a long-running service.
    pub retain_bytes: bool,
    /// When set (together with [`CheckpointerConfig::directory`]), the
    /// writer maintains the directory's store manifest; see the module
    /// docs.
    pub manifest: Option<ManifestInfo>,
    /// When set, a background compactor folds the live chain into a
    /// fresh full frame whenever the chain holds more than this many
    /// frames (base included). Requires a directory *and* manifest;
    /// see the module docs.
    pub compact_max_chain_len: Option<usize>,
    /// When set, the compactor also triggers whenever the live chain's
    /// frame files exceed this many bytes in total.
    pub compact_max_chain_bytes: Option<u64>,
    /// How long superseded frame files linger on disk after a
    /// compaction commit stops referencing them. `Duration::ZERO`
    /// (default) prunes them immediately.
    pub retention: Duration,
}

impl CheckpointerConfig {
    /// The default configuration (full frame every 15 deltas, 1M-event
    /// cadence, no directory, bytes not retained).
    #[must_use]
    pub fn new() -> Self {
        Self {
            every_events: 1_000_000,
            max_deltas_per_base: 15,
            directory: None,
            retain_bytes: false,
            manifest: None,
            compact_max_chain_len: None,
            compact_max_chain_bytes: None,
            retention: Duration::ZERO,
        }
    }

    /// Sets the applied-event cadence between snapshots.
    #[must_use]
    pub fn with_every_events(mut self, every_events: u64) -> Self {
        self.every_events = every_events;
        self
    }

    /// Sets how many deltas may follow a base before rebasing.
    #[must_use]
    pub fn with_max_deltas_per_base(mut self, max: usize) -> Self {
        self.max_deltas_per_base = max;
        self
    }

    /// Writes each frame to a file under `dir`.
    #[must_use]
    pub fn with_directory(mut self, dir: impl Into<PathBuf>) -> Self {
        self.directory = Some(dir.into());
        self
    }

    /// Keeps (or drops) each frame's bytes in its record.
    #[must_use]
    pub fn with_retain_bytes(mut self, retain: bool) -> Self {
        self.retain_bytes = retain;
        self
    }

    /// Maintains the durability directory's store manifest (requires
    /// [`CheckpointerConfig::with_directory`] to have any effect).
    #[must_use]
    pub fn with_manifest(mut self, info: ManifestInfo) -> Self {
        self.manifest = Some(info);
        self
    }

    /// Compacts the chain off-thread once it holds more than `max`
    /// frames (base included); see the module docs. Only effective
    /// together with a directory and manifest.
    #[must_use]
    pub fn with_max_chain_len(mut self, max: usize) -> Self {
        self.compact_max_chain_len = Some(max);
        self
    }

    /// Compacts the chain off-thread once its frame files exceed `max`
    /// total bytes; see the module docs. Only effective together with a
    /// directory and manifest.
    #[must_use]
    pub fn with_max_chain_bytes(mut self, max: u64) -> Self {
        self.compact_max_chain_bytes = Some(max);
        self
    }

    /// Keeps superseded frame files on disk for `ttl` after a
    /// compaction commit stops referencing them (a grace window for
    /// external backup tooling). The default is immediate pruning.
    #[must_use]
    pub fn with_retention(mut self, ttl: Duration) -> Self {
        self.retention = ttl;
        self
    }
}

impl Default for CheckpointerConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One frame the checkpointer wrote.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CheckpointRecord {
    /// Position in submission order (0 = first).
    pub seq: usize,
    /// Full or delta.
    pub kind: CheckpointKind,
    /// Engine events at the frame's freeze.
    pub events: u64,
    /// Freeze epoch of the frame.
    pub epoch: u64,
    /// Shard sections serialized (engine shards for a full frame, dirty
    /// shards for a delta).
    pub shards_written: usize,
    /// Serialized size in bytes.
    pub bytes_len: u64,
    /// Wall-clock seconds spent serializing (and writing, if a directory
    /// is configured) — paid on this thread, not the appliers'.
    pub write_seconds: f64,
    /// Where the frame landed on disk, when a directory is configured.
    pub path: Option<PathBuf>,
    /// The frame itself, when [`CheckpointerConfig::retain_bytes`] is on.
    pub bytes: Option<Vec<u8>>,
    /// Per-producer applied sequence marks that rode in with the
    /// snapshot ([`BackgroundCheckpointer::submit_with_marks`]); empty
    /// for plain [`BackgroundCheckpointer::submit`] submissions.
    pub producer_marks: Vec<ProducerMark>,
}

/// Everything the checkpointer produced, returned by
/// [`BackgroundCheckpointer::finish`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CheckpointerReport {
    /// Every written frame, in submission order.
    pub records: Vec<CheckpointRecord>,
}

impl CheckpointerReport {
    /// The newest restorable chain: the last full frame and every delta
    /// after it, ready for
    /// [`restore_checkpoint_chain`](crate::restore_checkpoint_chain).
    /// `None` when nothing was written or bytes were not retained.
    #[must_use]
    pub fn latest_chain(&self) -> Option<Vec<&[u8]>> {
        let base = self
            .records
            .iter()
            .rposition(|r| r.kind == CheckpointKind::Full)?;
        self.records[base..]
            .iter()
            .map(|r| r.bytes.as_deref())
            .collect()
    }
}

/// Live counters shared between the writer thread and stats readers.
#[derive(Debug, Default)]
struct Totals {
    submitted: AtomicU64,
    written: AtomicU64,
    full_frames: AtomicU64,
    delta_frames: AtomicU64,
    bytes_written: AtomicU64,
    last_checkpoint_events: AtomicU64,
    last_write_ns: AtomicU64,
    compactions: AtomicU64,
    compacted_frames: AtomicU64,
    pruned_files: AtomicU64,
    last_compact_ns: AtomicU64,
}

fn totals_stats(t: &Totals) -> CheckpointerStats {
    CheckpointerStats {
        submitted: t.submitted.load(Ordering::Relaxed),
        written: t.written.load(Ordering::Relaxed),
        full_frames: t.full_frames.load(Ordering::Relaxed),
        delta_frames: t.delta_frames.load(Ordering::Relaxed),
        bytes_written: t.bytes_written.load(Ordering::Relaxed),
        last_checkpoint_events: t.last_checkpoint_events.load(Ordering::Relaxed),
        last_write_ns: t.last_write_ns.load(Ordering::Relaxed),
        compactions: t.compactions.load(Ordering::Relaxed),
        compacted_frames: t.compacted_frames.load(Ordering::Relaxed),
        pruned_files: t.pruned_files.load(Ordering::Relaxed),
        last_compact_ns: t.last_compact_ns.load(Ordering::Relaxed),
    }
}

/// A point-in-time summary of the background checkpointer. Feed it to
/// [`EngineStats::with_checkpointer`](crate::EngineStats::with_checkpointer)
/// to expose the durability lag in a whole-pipeline summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct CheckpointerStats {
    /// Snapshots handed to the writer thread so far.
    pub submitted: u64,
    /// Frames fully serialized so far.
    pub written: u64,
    /// Full frames among them.
    pub full_frames: u64,
    /// Delta frames among them.
    pub delta_frames: u64,
    /// Total serialized bytes across all frames.
    pub bytes_written: u64,
    /// Engine events covered by the newest durable frame — the quantity
    /// behind
    /// [`EngineStats::checkpoint_lag_events`](crate::EngineStats::checkpoint_lag_events).
    pub last_checkpoint_events: u64,
    /// Wall-clock nanoseconds the newest frame took to serialize.
    pub last_write_ns: u64,
    /// Chain compactions committed (manifest atomically rewritten to a
    /// compacted base plus any trailing deltas).
    pub compactions: u64,
    /// Frames folded away across all committed compactions.
    pub compacted_frames: u64,
    /// Superseded frame files deleted after compaction commits.
    pub pruned_files: u64,
    /// Wall-clock nanoseconds the newest committed compaction spent
    /// folding and writing its base (paid on the compactor thread).
    pub last_compact_ns: u64,
}

/// A cheap, cloneable, read-only view of a checkpointer's live counters —
/// for stats from threads that do not own the checkpointer (the `Store`
/// facade hands the checkpointer to its applier thread and keeps a probe).
#[derive(Debug, Clone)]
pub struct CheckpointerProbe {
    totals: Arc<Totals>,
}

impl CheckpointerProbe {
    /// Diagnostics snapshot; cheap, safe to call from any thread.
    #[must_use]
    pub fn stats(&self) -> CheckpointerStats {
        totals_stats(&self.totals)
    }
}

/// One unit of work for the writer thread.
struct Submission<C> {
    snap: EngineSnapshot<C>,
    marks: Vec<ProducerMark>,
}

/// A chain handed to the compactor thread: the live chain's manifest
/// frames (base first) at the moment the trigger fired, plus the
/// untiered template the fold restores against.
struct CompactJob<C> {
    frames: Vec<ManifestFrame>,
    template: C,
    session: u64,
    seq: u64,
}

/// What the compactor hands back after folding a [`CompactJob`] and
/// fsyncing the compacted base file. The writer commits it only if the
/// live chain still *extends* the job (same first frame); otherwise the
/// base file is an orphan and is deleted.
struct CompactOutcome {
    /// `frames[0].file` of the job — the extend check.
    first_file: String,
    /// How many frames the fold consumed.
    folded: usize,
    /// Manifest line for the compacted base (kind full, tip's epoch /
    /// totals / marks, `parent_chain` = the folded tip's chain digest).
    frame: ManifestFrame,
    /// Size of the compacted base file.
    bytes: u64,
    /// Wall-clock nanoseconds spent folding + writing.
    nanos: u64,
}

fn compactor_loop<C: StateCodec + Clone + Send + Sync + 'static>(
    dir: &Path,
    templates: Option<&[C]>,
    jobs: &Receiver<CompactJob<C>>,
    results: &Sender<Option<CompactOutcome>>,
) {
    while let Ok(job) = jobs.recv() {
        let outcome = run_compaction(dir, templates, &job);
        if results.send(outcome).is_err() {
            break;
        }
    }
}

/// Folds one chain into a compacted base file. Any failure (a frame
/// file already gone, a corrupt segment, an I/O error) yields `None`:
/// the old chain stays authoritative and nothing was published.
fn run_compaction<C: StateCodec + Clone + Send + Sync + 'static>(
    dir: &Path,
    templates: Option<&[C]>,
    job: &CompactJob<C>,
) -> Option<CompactOutcome> {
    let start = Instant::now();
    let tip = job.frames.last()?;
    let first_file = job.frames.first()?.file.clone();
    let mut buffers = Vec::with_capacity(job.frames.len());
    for frame in &job.frames {
        buffers.push(std::fs::read(dir.join(&frame.file)).ok()?);
    }
    let segments: Vec<&[u8]> = buffers.iter().map(Vec::as_slice).collect();
    let ck: Checkpoint = match templates {
        Some(t) => compact_chain_with_workers(t, &segments, 0).ok()?,
        None => compact_chain_workers(&job.template, &segments, 0).ok()?,
    };
    let header = ck.header();
    let name = format!("ckpt-{:03}-c{:05}-full.bin", job.session, job.seq);
    let path = dir.join(&name);
    let written = (|| -> std::io::Result<()> {
        let mut file = std::fs::File::create(&path)?;
        std::io::Write::write_all(&mut file, ck.bytes())?;
        file.sync_all()
    })();
    if written.is_err() {
        let _ = std::fs::remove_file(&path);
        return None;
    }
    Some(CompactOutcome {
        first_file,
        folded: job.frames.len(),
        bytes: ck.bytes().len() as u64,
        nanos: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        frame: ManifestFrame {
            session: job.session,
            file: name,
            kind: CheckpointKind::Full,
            epoch: header.epoch,
            events: header.events,
            keys: header.keys,
            chain: header.chain,
            parent_chain: header.parent_chain,
            marks: tip.marks.clone(),
        },
    })
}

/// The writer thread's record of the live (restorable-from-disk) chain:
/// each frame's manifest line plus its file size.
type LiveChain = Vec<(ManifestFrame, u64)>;

/// Commits a compaction on the writer thread: atomically rewrites the
/// manifest to `[compacted base] + deltas landed since the job`, then
/// prunes frame files the new manifest no longer references. If a full
/// frame reset the chain mid-fold, the outcome no longer applies and
/// its orphan base file is deleted instead.
fn commit_compaction(
    dir: &Path,
    info: &ManifestInfo,
    retention: Duration,
    outcome: CompactOutcome,
    chain: &mut LiveChain,
    deltas_since_base: &mut usize,
    totals: &Totals,
) {
    let extends = chain.len() >= outcome.folded
        && chain
            .first()
            .is_some_and(|(f, _)| f.file == outcome.first_file);
    if !extends {
        let _ = std::fs::remove_file(dir.join(&outcome.frame.file));
        return;
    }
    let mut new_chain: LiveChain = Vec::with_capacity(chain.len() - outcome.folded + 1);
    new_chain.push((outcome.frame, outcome.bytes));
    new_chain.extend(chain.drain(outcome.folded..));
    let frames: Vec<ManifestFrame> = new_chain.iter().map(|(f, _)| f.clone()).collect();
    Manifest::rewrite(
        dir,
        &info.spec,
        &info.config,
        info.tiering.as_ref(),
        &frames,
    )
    .expect("rewrite manifest for compacted chain");
    *chain = new_chain;
    // The next rebase counts deltas from the compacted base onward.
    *deltas_since_base = chain.len() - 1;
    let live: HashSet<&str> = chain.iter().map(|(f, _)| f.file.as_str()).collect();
    let pruned = prune_stale_frames(dir, &live, retention);
    totals.compactions.fetch_add(1, Ordering::Relaxed);
    totals
        .compacted_frames
        .fetch_add(outcome.folded as u64, Ordering::Relaxed);
    totals.pruned_files.fetch_add(pruned, Ordering::Relaxed);
    totals
        .last_compact_ns
        .store(outcome.nanos, Ordering::Relaxed);
}

/// Deletes `ckpt-*.bin` files the live chain no longer references, once
/// they are at least `retention` old. Failures are ignored — a file
/// that survives a prune pass is retried after the next compaction.
fn prune_stale_frames(dir: &Path, live: &HashSet<&str>, retention: Duration) -> u64 {
    let mut pruned = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("ckpt-") || !name.ends_with(".bin") || live.contains(name.as_str()) {
            continue;
        }
        let old_enough = retention.is_zero()
            || entry
                .metadata()
                .ok()
                .and_then(|m| m.modified().ok())
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age >= retention);
        if old_enough && std::fs::remove_file(entry.path()).is_ok() {
            pruned += 1;
        }
    }
    pruned
}

/// A dedicated checkpoint-writer thread; see the module docs.
///
/// Submissions never block (unbounded channel of `O(shards)`-sized
/// snapshots); [`BackgroundCheckpointer::finish`] drains and joins.
/// Snapshots are expected to come from one engine lineage; a submission
/// that cannot extend the current delta chain (different counter
/// schedule, different config, older epoch) is written as a fresh full
/// frame rather than an error — interleaving *multiple* engines through
/// one checkpointer therefore still persists every frame, but produces
/// chains that restore each lineage only from its own full frames.
#[derive(Debug)]
pub struct BackgroundCheckpointer<C: StateCodec + Clone + Send + Sync + 'static> {
    tx: Sender<Submission<C>>,
    handle: JoinHandle<Vec<CheckpointRecord>>,
    totals: Arc<Totals>,
    config: CheckpointerConfig,
}

impl<C: StateCodec + Clone + Send + Sync + 'static> BackgroundCheckpointer<C> {
    /// Starts the writer thread.
    ///
    /// # Panics
    ///
    /// Panics if `every_events` is zero or, in
    /// [`BackgroundCheckpointer::finish`], if a configured directory or
    /// manifest turns out not to be writable or belongs to a different
    /// deployment (durability failures are not swallowed; the `Store`
    /// facade pre-validates both to return typed errors instead).
    #[must_use]
    pub fn spawn(config: CheckpointerConfig) -> Self {
        Self::spawn_with(config, None)
    }

    /// [`BackgroundCheckpointer::spawn`] for a **tiered** engine: frames
    /// are serialized against `templates` (the tier ladder, rung 0 =
    /// default) via
    /// [`checkpoint_snapshot_with`](crate::checkpoint_snapshot_with) /
    /// [`checkpoint_delta_with`](crate::checkpoint_delta_with), so
    /// snapshots carrying tier tags land as version-3 frames instead of
    /// panicking the writer. `None` is the plain version-2 writer.
    ///
    /// # Panics
    ///
    /// As [`BackgroundCheckpointer::spawn`], plus if `templates` is
    /// `Some` but empty.
    #[must_use]
    pub fn spawn_with(config: CheckpointerConfig, templates: Option<Vec<C>>) -> Self {
        assert!(config.every_events > 0, "cadence must be positive");
        assert!(
            templates.as_ref().is_none_or(|t| !t.is_empty()),
            "a tier ladder needs at least the default template"
        );
        let (tx, rx) = channel::<Submission<C>>();
        let totals = Arc::new(Totals::default());
        let thread_totals = Arc::clone(&totals);
        let thread_config = config.clone();
        let handle = std::thread::spawn(move || {
            if let (Some(dir), Some(info)) = (&thread_config.directory, &thread_config.manifest) {
                Manifest::ensure(dir, &info.spec, &info.config, info.tiering.as_ref())
                    .expect("usable store manifest");
            }
            let mut records: Vec<CheckpointRecord> = Vec::new();
            // Only the parent's header is needed to chain the next delta
            // (80 bytes, `Copy`) — never the parent's serialized buffer.
            let mut parent: Option<CheckpointHeader> = None;
            let mut deltas_since_base = 0usize;
            // Compaction needs on-disk frames and a manifest to swap.
            let compaction = match (&thread_config.directory, &thread_config.manifest) {
                (Some(dir), Some(_))
                    if thread_config.compact_max_chain_len.is_some()
                        || thread_config.compact_max_chain_bytes.is_some() =>
                {
                    let (job_tx, job_rx) = channel::<CompactJob<C>>();
                    let (result_tx, result_rx) = channel::<Option<CompactOutcome>>();
                    let compactor_dir = dir.clone();
                    let compactor_templates = templates.clone();
                    let handle = std::thread::spawn(move || {
                        compactor_loop(
                            &compactor_dir,
                            compactor_templates.as_deref(),
                            &job_rx,
                            &result_tx,
                        );
                    });
                    Some((job_tx, result_rx, handle))
                }
                _ => None,
            };
            let mut chain: LiveChain = Vec::new();
            let mut in_flight = false;
            let mut compact_seq: u64 = 0;
            while let Ok(Submission { snap, marks }) = rx.recv() {
                if let Some((_, results, _)) = &compaction {
                    while let Ok(result) = results.try_recv() {
                        in_flight = false;
                        if let (Some(outcome), Some(dir), Some(info)) = (
                            result,
                            thread_config.directory.as_ref(),
                            thread_config.manifest.as_ref(),
                        ) {
                            commit_compaction(
                                dir,
                                info,
                                thread_config.retention,
                                outcome,
                                &mut chain,
                                &mut deltas_since_base,
                                &thread_totals,
                            );
                        }
                    }
                }
                let start = Instant::now();
                let full = |snap: &EngineSnapshot<C>| match &templates {
                    Some(t) => checkpoint_snapshot_with(snap, t),
                    None => checkpoint_snapshot(snap),
                };
                let delta = |snap: &EngineSnapshot<C>, base: &CheckpointHeader| match &templates {
                    Some(t) => checkpoint_delta_with(snap, t, base),
                    None => checkpoint_delta(snap, base),
                };
                let (ck, kind) = match &parent {
                    Some(base) if deltas_since_base < thread_config.max_deltas_per_base => {
                        // A snapshot that cannot extend the current chain
                        // (different schedule/config/lineage, or an
                        // epoch not strictly newer than the parent's)
                        // rebases onto a fresh full frame instead of
                        // killing the writer thread: every full frame is
                        // self-contained, so durability degrades to
                        // "larger", never to "lost".
                        match delta(&snap, base) {
                            Ok(d) => (d, CheckpointKind::Delta),
                            Err(_) => (full(&snap), CheckpointKind::Full),
                        }
                    }
                    _ => (full(&snap), CheckpointKind::Full),
                };
                let header = ck.header();
                let stats = ck.stats();
                let bytes_len = ck.bytes().len() as u64;
                let seq = records.len();
                let session = thread_config.manifest.as_ref().map_or(0, |m| m.session);
                let mut path = None;
                if let Some(dir) = thread_config.directory.as_ref() {
                    let kind_tag = match kind {
                        CheckpointKind::Full => "full",
                        CheckpointKind::Delta => "delta",
                    };
                    let name = format!("ckpt-{session:03}-{seq:05}-{kind_tag}.bin");
                    let frame_path = dir.join(&name);
                    // Write + fsync before the manifest line lands: a
                    // listed frame's bytes must already be durable.
                    let mut file =
                        std::fs::File::create(&frame_path).expect("create checkpoint frame");
                    std::io::Write::write_all(&mut file, ck.bytes())
                        .expect("write checkpoint frame");
                    file.sync_all().expect("sync checkpoint frame");
                    if thread_config.manifest.is_some() {
                        let frame = ManifestFrame {
                            session,
                            file: name,
                            kind,
                            epoch: header.epoch,
                            events: header.events,
                            keys: header.keys,
                            chain: header.chain,
                            parent_chain: header.parent_chain,
                            marks: marks.clone(),
                        };
                        Manifest::append_frame(dir, &frame).expect("append manifest frame line");
                        // A full frame starts a fresh chain; a delta
                        // extends the current one.
                        if kind == CheckpointKind::Full {
                            chain.clear();
                        }
                        chain.push((frame, bytes_len));
                    }
                    path = Some(frame_path);
                }
                let write_seconds = start.elapsed().as_secs_f64();
                match kind {
                    CheckpointKind::Full => {
                        deltas_since_base = 0;
                        thread_totals.full_frames.fetch_add(1, Ordering::Relaxed);
                    }
                    CheckpointKind::Delta => {
                        deltas_since_base += 1;
                        thread_totals.delta_frames.fetch_add(1, Ordering::Relaxed);
                    }
                }
                thread_totals.written.fetch_add(1, Ordering::Relaxed);
                thread_totals
                    .bytes_written
                    .fetch_add(bytes_len, Ordering::Relaxed);
                thread_totals
                    .last_checkpoint_events
                    .store(header.events, Ordering::Relaxed);
                thread_totals.last_write_ns.store(
                    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    Ordering::Relaxed,
                );
                records.push(CheckpointRecord {
                    seq,
                    kind,
                    events: header.events,
                    epoch: header.epoch,
                    shards_written: stats.shards_written,
                    bytes_len,
                    write_seconds,
                    path,
                    // Move the buffer, don't copy it; drop it otherwise.
                    bytes: thread_config.retain_bytes.then(|| ck.into_bytes()),
                    producer_marks: marks,
                });
                parent = Some(header);
                // One fold in flight at a time: a job is the whole live
                // chain, so overlapping folds would only duplicate work.
                if let Some((jobs, _, _)) = &compaction {
                    if !in_flight && chain.len() >= 2 {
                        let chain_bytes: u64 = chain.iter().map(|(_, b)| b).sum();
                        let over_len = thread_config
                            .compact_max_chain_len
                            .is_some_and(|m| chain.len() > m.max(1));
                        let over_bytes = thread_config
                            .compact_max_chain_bytes
                            .is_some_and(|m| chain_bytes > m);
                        if over_len || over_bytes {
                            let job = CompactJob {
                                frames: chain.iter().map(|(f, _)| f.clone()).collect(),
                                template: snap.template.clone(),
                                session,
                                seq: compact_seq,
                            };
                            compact_seq += 1;
                            if jobs.send(job).is_ok() {
                                in_flight = true;
                            }
                        }
                    }
                }
            }
            // Drain the in-flight fold (if any) so a chain compacted
            // moments before shutdown still commits, then retire the
            // compactor.
            if let Some((jobs, results, handle)) = compaction {
                drop(jobs);
                if in_flight {
                    if let (Ok(Some(outcome)), Some(dir), Some(info)) = (
                        results.recv(),
                        thread_config.directory.as_ref(),
                        thread_config.manifest.as_ref(),
                    ) {
                        commit_compaction(
                            dir,
                            info,
                            thread_config.retention,
                            outcome,
                            &mut chain,
                            &mut deltas_since_base,
                            &thread_totals,
                        );
                    }
                }
                handle.join().expect("compactor thread");
            }
            records
        });
        Self {
            tx,
            handle,
            totals,
            config,
        }
    }

    /// The configuration (the drain loop reads the cadence from here).
    #[must_use]
    pub fn config(&self) -> &CheckpointerConfig {
        &self.config
    }

    /// Hands a frozen snapshot to the writer thread. Never blocks on
    /// serialization; the snapshot is `O(shards)` of `Arc`s.
    pub fn submit(&self, snap: EngineSnapshot<C>) {
        self.submit_with_marks(snap, Vec::new());
    }

    /// [`BackgroundCheckpointer::submit`] with the per-producer applied
    /// sequence marks at the snapshot's freeze, recorded in the frame's
    /// [`CheckpointRecord`] and manifest line — the exactly-once replay
    /// cursor a recovered store reports.
    pub fn submit_with_marks(&self, snap: EngineSnapshot<C>, marks: Vec<ProducerMark>) {
        self.totals.submitted.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Submission { snap, marks })
            .expect("checkpointer thread alive");
    }

    /// Diagnostics snapshot; cheap, safe to call from any thread.
    #[must_use]
    pub fn stats(&self) -> CheckpointerStats {
        totals_stats(&self.totals)
    }

    /// A cloneable read-only stats handle that outlives ownership
    /// transfers of the checkpointer itself.
    #[must_use]
    pub fn probe(&self) -> CheckpointerProbe {
        CheckpointerProbe {
            totals: Arc::clone(&self.totals),
        }
    }

    /// Closes the channel, drains every pending snapshot, and returns the
    /// full write history.
    ///
    /// # Panics
    ///
    /// Propagates a writer-thread panic (e.g. an unwritable directory).
    #[must_use]
    pub fn finish(self) -> CheckpointerReport {
        drop(self.tx);
        let records = self.handle.join().expect("checkpointer thread");
        CheckpointerReport { records }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::restore_checkpoint_chain;
    use crate::registry::{CounterEngine, EngineConfig};
    use ac_core::{NelsonYuCounter, NyParams};

    fn template() -> NelsonYuCounter {
        NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap())
    }

    fn small_cfg() -> CheckpointerConfig {
        CheckpointerConfig::new()
            .with_every_events(100)
            .with_max_deltas_per_base(3)
            .with_retain_bytes(true)
    }

    #[test]
    fn base_then_deltas_then_rebase() {
        let mut e = CounterEngine::new(template(), EngineConfig::new().with_shards(4).with_seed(9));
        let ckpt = BackgroundCheckpointer::spawn(small_cfg());
        for round in 0..6u64 {
            let batch: Vec<(u64, u64)> = (0..50u64).map(|k| (k + 10 * round, 3)).collect();
            e.apply(&batch);
            ckpt.submit(e.snapshot());
        }
        let stats_before_finish = ckpt.stats();
        assert_eq!(stats_before_finish.submitted, 6);
        let report = ckpt.finish();
        let kinds: Vec<CheckpointKind> = report.records.iter().map(|r| r.kind).collect();
        // Frame 0 full, 1–3 deltas, then a rebase at 4, delta at 5.
        assert_eq!(
            kinds,
            vec![
                CheckpointKind::Full,
                CheckpointKind::Delta,
                CheckpointKind::Delta,
                CheckpointKind::Delta,
                CheckpointKind::Full,
                CheckpointKind::Delta,
            ]
        );
        // The newest chain folds back to the engine at its last freeze.
        let chain = report.latest_chain().expect("bytes retained");
        assert_eq!(chain.len(), 2, "last full + one delta");
        let back = restore_checkpoint_chain(&template(), &chain).unwrap();
        assert_eq!(back.total_events(), e.total_events());
        for (key, counter) in e.iter() {
            assert_eq!(
                back.counter(key).map(NelsonYuCounter::state_parts),
                Some(counter.state_parts()),
                "key {key}"
            );
        }
    }

    #[test]
    fn foreign_snapshot_rebases_to_a_full_frame_instead_of_panicking() {
        // Two engines through one checkpointer: the second submission
        // cannot extend the first's chain, so it must land as a
        // self-contained full frame, not kill the writer thread or
        // produce a chimeric chain. Covered both ways: a different
        // config (refused by the config check) and — the subtler
        // accident — an identical config from a *different lineage*
        // (e.g. a restarted process), refused by the strict epoch
        // ordering because the fresh engine's epoch clock restarted.
        let cfg_a = EngineConfig::new().with_shards(2).with_seed(1);
        let mut a = CounterEngine::new(template(), cfg_a);
        let mut b = CounterEngine::new(template(), EngineConfig::new().with_shards(4).with_seed(2));
        let mut twin = CounterEngine::new(template(), cfg_a);
        a.apply(&[(1, 10)]);
        b.apply(&[(2, 20)]);
        twin.apply(&[(3, 30)]);
        let ckpt = BackgroundCheckpointer::spawn(small_cfg());
        ckpt.submit(a.snapshot());
        ckpt.submit(b.snapshot());
        ckpt.submit(twin.snapshot());
        let report = ckpt.finish();
        let kinds: Vec<CheckpointKind> = report.records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                CheckpointKind::Full,
                CheckpointKind::Full,
                CheckpointKind::Full
            ]
        );
        let chain = report.latest_chain().expect("bytes retained");
        let back = restore_checkpoint_chain(&template(), &chain).unwrap();
        assert_eq!(back.total_events(), 30, "latest chain is the twin's");
    }

    #[test]
    fn stats_track_lag() {
        let mut e = CounterEngine::new(template(), EngineConfig::new().with_shards(2).with_seed(1));
        let ckpt = BackgroundCheckpointer::spawn(small_cfg());
        let probe = ckpt.probe();
        e.apply(&[(1, 500)]);
        ckpt.submit(e.snapshot());
        e.apply(&[(2, 41)]);
        let report_stats = loop {
            let s = ckpt.stats();
            if s.written == 1 {
                break s;
            }
            std::thread::yield_now();
        };
        assert_eq!(report_stats.last_checkpoint_events, 500);
        assert_eq!(probe.stats(), report_stats, "probe mirrors the owner");
        let stats = e.stats().with_checkpointer(&report_stats);
        assert_eq!(stats.checkpoint_lag_events, 41);
        let _ = ckpt.finish();
    }

    #[test]
    fn writes_frames_and_manifest_to_a_directory() {
        use ac_core::CounterSpec;

        let dir = std::env::temp_dir().join(format!(
            "ac-ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = CounterSpec::NelsonYu {
            eps: 0.2,
            delta_log2: 8,
        };
        let config = EngineConfig::new().with_shards(2).with_seed(4);
        let mut e = CounterEngine::new(template(), config);
        let ckpt =
            BackgroundCheckpointer::spawn(small_cfg().with_directory(dir.clone()).with_manifest(
                ManifestInfo {
                    spec,
                    config,
                    session: 0,
                    tiering: None,
                },
            ));
        e.apply(&[(1, 10)]);
        ckpt.submit_with_marks(
            e.snapshot(),
            vec![ProducerMark {
                producer: 0,
                enqueued_seq: 1,
                applied_seq: 1,
            }],
        );
        e.apply(&[(2, 20)]);
        ckpt.submit(e.snapshot());
        let report = ckpt.finish();
        let chain: Vec<Vec<u8>> = report
            .records
            .iter()
            .map(|r| std::fs::read(r.path.as_ref().expect("path set")).unwrap())
            .collect();
        let chain_refs: Vec<&[u8]> = chain.iter().map(Vec::as_slice).collect();
        let back = restore_checkpoint_chain(&template(), &chain_refs).unwrap();
        assert_eq!(back.total_events(), 30);

        // The manifest mirrors the frames, marks included.
        let m = Manifest::load(&dir).unwrap();
        assert_eq!(m.spec, spec);
        assert_eq!(m.config, config);
        assert_eq!(m.frames.len(), 2);
        assert_eq!(m.frames[0].kind, CheckpointKind::Full);
        assert_eq!(m.frames[0].marks.len(), 1);
        assert_eq!(m.frames[0].marks[0].applied_seq, 1);
        assert_eq!(m.frames[1].marks, vec![]);
        for (frame, record) in m.frames.iter().zip(&report.records) {
            assert_eq!(frame.events, record.events);
            assert_eq!(frame.epoch, record.epoch);
            assert_eq!(
                dir.join(&frame.file),
                *record.path.as_ref().unwrap(),
                "manifest names the frame file"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compactor_folds_the_chain_rewrites_the_manifest_and_prunes() {
        use ac_core::CounterSpec;

        let dir = std::env::temp_dir().join(format!(
            "ac-ckpt-compact-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = CounterSpec::NelsonYu {
            eps: 0.2,
            delta_log2: 8,
        };
        let config = EngineConfig::new().with_shards(4).with_seed(21);
        let mut e = CounterEngine::new(template(), config);
        // A high rebase budget keeps the cadence from cutting fresh
        // fulls on its own — every fold here is the compactor's.
        let ckpt = BackgroundCheckpointer::spawn(
            small_cfg()
                .with_max_deltas_per_base(100)
                .with_directory(dir.clone())
                .with_max_chain_len(2)
                .with_manifest(ManifestInfo {
                    spec,
                    config,
                    session: 0,
                    tiering: None,
                }),
        );
        let probe = ckpt.probe();
        for round in 0..6u64 {
            let batch: Vec<(u64, u64)> = (0..40u64).map(|k| (k + 7 * round, 2 + round)).collect();
            e.apply(&batch);
            ckpt.submit_with_marks(
                e.snapshot(),
                vec![ProducerMark {
                    producer: 0,
                    enqueued_seq: round + 1,
                    applied_seq: round + 1,
                }],
            );
        }
        let report = ckpt.finish();
        assert_eq!(report.records.len(), 6, "every submission wrote a frame");

        let stats = probe.stats();
        assert!(
            stats.compactions >= 1,
            "chain of 6 must trip max_chain_len=2"
        );
        assert!(stats.compacted_frames >= 3, "a fold covers at least base+2");
        assert!(stats.pruned_files >= 3, "superseded frames deleted");
        assert!(stats.last_compact_ns > 0);

        // The manifest now opens with a compacted base and stays shorter
        // than the raw six-frame history.
        let m = Manifest::load(&dir).unwrap();
        assert_eq!(m.frames[0].kind, CheckpointKind::Full);
        assert!(
            m.frames[0].file.contains("-c"),
            "newest base is a compactor fold: {}",
            m.frames[0].file
        );
        assert!(m.frames.len() < 6, "chain bounded by state, not history");
        assert_eq!(
            m.frames[0].marks.len(),
            1,
            "folded tip's replay cursor survives on the compacted base"
        );
        assert!(m.frames[0].marks[0].applied_seq >= 3);

        // Only manifest-listed frames remain on disk — the fold pruned
        // everything it superseded (retention defaults to immediate).
        let live: std::collections::HashSet<String> =
            m.frames.iter().map(|f| f.file.clone()).collect();
        let on_disk: std::collections::HashSet<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|entry| {
                let name = entry.unwrap().file_name().to_string_lossy().into_owned();
                (name.starts_with("ckpt-") && name.ends_with(".bin")).then_some(name)
            })
            .collect();
        assert_eq!(on_disk, live);

        // The compacted chain restores the engine bit-exactly.
        let segments: Vec<Vec<u8>> = m
            .frames
            .iter()
            .map(|f| std::fs::read(dir.join(&f.file)).unwrap())
            .collect();
        let refs: Vec<&[u8]> = segments.iter().map(Vec::as_slice).collect();
        let back = restore_checkpoint_chain(&template(), &refs).unwrap();
        assert_eq!(back.total_events(), e.total_events());
        assert_eq!(back.len(), e.len());
        for (key, counter) in e.iter() {
            assert_eq!(
                back.counter(key).map(NelsonYuCounter::state_parts),
                Some(counter.state_parts()),
                "key {key}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_ttl_keeps_superseded_frames_until_they_age_out() {
        use ac_core::CounterSpec;

        let dir = std::env::temp_dir().join(format!(
            "ac-ckpt-retention-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = CounterSpec::NelsonYu {
            eps: 0.2,
            delta_log2: 8,
        };
        let config = EngineConfig::new().with_shards(2).with_seed(3);
        let mut e = CounterEngine::new(template(), config);
        let ckpt = BackgroundCheckpointer::spawn(
            small_cfg()
                .with_max_deltas_per_base(100)
                .with_directory(dir.clone())
                .with_max_chain_len(2)
                .with_retention(Duration::from_secs(3600))
                .with_manifest(ManifestInfo {
                    spec,
                    config,
                    session: 0,
                    tiering: None,
                }),
        );
        let probe = ckpt.probe();
        for round in 0..6u64 {
            e.apply(&[(round, 10)]);
            ckpt.submit(e.snapshot());
        }
        let _ = ckpt.finish();
        let stats = probe.stats();
        assert!(stats.compactions >= 1);
        assert_eq!(stats.pruned_files, 0, "frames younger than the TTL stay");

        // Superseded frames are still on disk alongside the live chain.
        let m = Manifest::load(&dir).unwrap();
        let frames_on_disk = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|entry| {
                let name = entry.as_ref().unwrap().file_name();
                let name = name.to_string_lossy();
                name.starts_with("ckpt-") && name.ends_with(".bin")
            })
            .count();
        assert!(frames_on_disk > m.frames.len(), "old chain retained by TTL");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
