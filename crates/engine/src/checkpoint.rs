//! The checkpoint layer: snapshot serialization through `ac-bitio`,
//! in two frame kinds — **full** checkpoints and **incremental deltas**.
//!
//! A checkpoint is a byte buffer holding a versioned fixed-width header
//! followed by a section count and one length-prefixed
//! [`ac_bitio::frame`] section per *written* shard. Counter states are
//! written with the families' [`StateCodec`] codes and keys as Rice-coded
//! sorted gaps, so a million checkpointed counters cost on the order of
//! their summed `state_bits` — the paper's thesis, made durable — rather
//! than a million fixed-width records. Each written shard's RNG state
//! rides along (256 bits), so a restored engine continues the *exact*
//! random stream the original would have: checkpoint/restore is invisible
//! to subsequent evolution, not merely distribution-preserving.
//!
//! ```text
//! magic(32) version(16) kind(8) fingerprint(64) shards(32) seed(64)
//! epoch(64) parent_chain(64) keys(64) events(64) payload_bits(64)
//! header_checksum(64) payload_checksum(64)
//! ┌ payload ─────────────────────────────────────────────────┐
//! │ sections(32)                                             │
//! │ ┌ per written shard ─────────────────────────────────┐   │
//! │ │ shard_idx(32) section_len(32) │ count(δ)           │   │
//! │ │                               │ events(64) rng(4×64)│  │
//! │ │                               │ keys: rice gaps    │   │
//! │ │                               │ states: StateCodec │   │
//! │ └────────────────────────────────────────────────────┘   │
//! └──────────────────────────────────────────────────────────┘
//! ```
//!
//! ## Delta chains
//!
//! A **full** checkpoint (`kind = 0`) writes every shard. A **delta**
//! (`kind = 1`, written by [`checkpoint_delta`]) writes only the shards
//! whose [dirty epoch](crate::EngineStats::dirty_shards) is newer than
//! its *parent* checkpoint's freeze epoch — `O(dirty data)` bytes instead
//! of `O(total keys)`. The parent is identified by a **chained
//! checksum**: every checkpoint's identity is a 64-bit digest of its own
//! header and payload checksums ([`CheckpointHeader::chain`]), and a
//! delta's header stores its parent's digest in `parent_chain`.
//! [`restore_checkpoint_chain`] refuses a chain whose links don't match —
//! a delta can never be applied to the wrong base, out of order, or
//! across a divergent history, because any of those changes the parent's
//! bytes and therefore its digest.
//!
//! Corruption behavior mid-chain: every segment carries its own header
//! and payload checksums, verified before parsing, so a truncated or
//! bit-flipped delta surfaces as a typed error naming that segment's
//! failure ([`CheckpointError::Truncated`] / [`CheckpointError::Corrupt`])
//! rather than poisoning the fold. The residual trust boundary is
//! deliberate: input that *passes* both checksums is treated as written
//! by this module, so a deliberately crafted checksum-valid buffer may
//! still abort inside a state decoder rather than return `Err`.

use crate::registry::{CounterEngine, EngineConfig};
use crate::shard::Shard;
use crate::snapshot::EngineSnapshot;
use ac_bitio::frame::{
    begin_indexed_section, decode_sorted_keys, encode_sorted_keys, end_section,
    read_indexed_section,
};
use ac_bitio::{BitReader, BitVec, BitWriter};
use ac_core::{CoreError, StateCodec};
use ac_randkit::Xoshiro256PlusPlus;
use std::fmt;
use std::sync::Arc;

/// `"ACKP"` — approximate-counting checkpoint.
pub const CHECKPOINT_MAGIC: u32 = 0x4143_4B50;

/// Base format version (2: copy-on-write epochs, delta frames, chained
/// headers; version-1 buffers are refused with a typed error). Written
/// for every untiered engine, so pre-tiering readers and byte-level
/// golden tests are unaffected by the tier machinery.
pub const CHECKPOINT_VERSION: u16 = 2;

/// Tiered format version (3): identical to version 2 except that each
/// shard section carries a sparse per-key tier-tag block *before* its
/// states (a state can only be decoded by its own tier's template), and
/// the header fingerprint covers the whole ladder of templates via
/// [`combined_fingerprint`]. Written by [`checkpoint_snapshot_with`] /
/// [`checkpoint_delta_with`]; version-2 frames restore through the same
/// `_with` readers with every key in tier 0.
pub const CHECKPOINT_VERSION_TIERED: u16 = 3;

/// Domain separation for the ladder fingerprint fold, so a one-tier
/// ladder's combined fingerprint can never collide with the bare
/// template fingerprint version 2 stores.
const LADDER_FINGERPRINT_SALT: u64 = 0x7143_A90F_5EED_11E5;

/// The ladder-covering fingerprint version-3 headers store: an order-
/// sensitive [`ac_randkit::mix64`] fold over every tier template's own
/// parameter fingerprint. Restoring with a ladder that differs in any
/// tier's family or parameters — or in tier order — is refused up front
/// as a [`CheckpointError::ScheduleMismatch`].
#[must_use]
pub fn combined_fingerprint<C: StateCodec>(templates: &[C]) -> u64 {
    templates.iter().fold(LADDER_FINGERPRINT_SALT, |acc, t| {
        ac_randkit::mix64(acc ^ t.params_fingerprint())
    })
}

/// Width of the eleven header fields alone.
const HEADER_FIELD_BITS: u64 = 32 + 16 + 8 + 64 + 32 + 64 + 64 + 64 + 64 + 64 + 64;

/// Fixed header width in bits: the eleven fields, then a 64-bit header
/// checksum, then a 64-bit payload checksum (83 bytes total, so the
/// payload starts byte-aligned).
const HEADER_BITS: u64 = HEADER_FIELD_BITS + 64 + 64;

/// Byte offset of the payload checksum field.
const PAYLOAD_CHECKSUM_BYTE: usize = ((HEADER_FIELD_BITS + 64) / 8) as usize;

/// Byte offset of the first payload byte.
const PAYLOAD_BYTE: usize = (HEADER_BITS / 8) as usize;

/// Domain separation for the chain digest, so a chain id can never be
/// mistaken for either of the checksums it is derived from.
const CHAIN_SALT: u64 = 0xC4A1_4C4A_11CE_D51D;

/// What a checkpoint frame holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// Every shard, self-contained.
    Full,
    /// Only shards dirtied since the parent checkpoint; restorable only
    /// through [`restore_checkpoint_chain`] on top of its parent.
    Delta,
}

impl CheckpointKind {
    fn to_bits(self) -> u64 {
        match self {
            CheckpointKind::Full => 0,
            CheckpointKind::Delta => 1,
        }
    }

    fn from_bits(bits: u64) -> Option<Self> {
        match bits {
            0 => Some(CheckpointKind::Full),
            1 => Some(CheckpointKind::Delta),
            _ => None,
        }
    }
}

/// The canonical [`ac_randkit::mix64`] finalizer chained over the header
/// fields: any header bit flip (past the magic/version prefix, which
/// carry their own typed errors) is caught before the payload is touched.
fn header_checksum(fields: &[u64]) -> u64 {
    let mut acc = 0x0C4E_C4B0_14E5_EEDC_u64;
    for &w in fields {
        acc = ac_randkit::mix64(acc ^ w);
    }
    acc
}

/// FNV-1a over the payload bytes: verified before any payload parsing, so
/// flipped payload bits surface as a typed [`CheckpointError::Corrupt`]
/// instead of feeding garbage to the self-delimiting decoders.
fn payload_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A checkpoint's chain identity: a digest of its two checksums, which
/// themselves cover every header field and every payload byte — so two
/// checkpoints share a chain id only if they are byte-identical (up to
/// 64-bit digest collisions).
fn chain_digest(header_sum: u64, payload_sum: u64) -> u64 {
    ac_randkit::mix64(header_sum ^ ac_randkit::mix64(payload_sum ^ CHAIN_SALT))
}

/// Why a restore was refused.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The buffer does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The format version is not one this build reads.
    UnsupportedVersion {
        /// The version found in the header.
        got: u16,
    },
    /// The template's family/parameter fingerprint does not match the
    /// one the checkpoint was written with.
    ScheduleMismatch,
    /// The caller pinned an expected [`EngineConfig`] and the header
    /// disagrees.
    ConfigMismatch {
        /// The configuration the caller expected.
        expected: EngineConfig,
        /// The configuration in the header.
        got: EngineConfig,
    },
    /// A delta checkpoint was handed to [`restore_checkpoint`]; deltas
    /// only restore through [`restore_checkpoint_chain`] on their base.
    DeltaWithoutBase,
    /// The delta chain is broken: wrong parent digest, wrong order, a
    /// non-full first segment, or a mid-chain kind violation.
    BadChain {
        /// Human-readable description.
        what: &'static str,
    },
    /// The buffer ends before the structure it promises.
    Truncated,
    /// A structural invariant does not hold (lengths, totals, RNG state).
    Corrupt {
        /// Human-readable description.
        what: &'static str,
    },
    /// A counter state failed its family's validity checks on decode.
    State(CoreError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { got } => {
                write!(f, "unsupported checkpoint version {got}")
            }
            CheckpointError::ScheduleMismatch => write!(
                f,
                "template family/parameters do not match the checkpoint's fingerprint"
            ),
            CheckpointError::ConfigMismatch { expected, got } => write!(
                f,
                "engine config mismatch: expected {expected:?}, checkpoint has {got:?}"
            ),
            CheckpointError::DeltaWithoutBase => write!(
                f,
                "delta checkpoint cannot restore alone; fold it with restore_checkpoint_chain"
            ),
            CheckpointError::BadChain { what } => write!(f, "broken checkpoint chain: {what}"),
            CheckpointError::Truncated => write!(f, "checkpoint is truncated"),
            CheckpointError::Corrupt { what } => write!(f, "checkpoint is corrupt: {what}"),
            CheckpointError::State(e) => write!(f, "checkpoint holds an invalid state: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CoreError> for CheckpointError {
    fn from(e: CoreError) -> Self {
        CheckpointError::State(e)
    }
}

/// Size accounting for one written checkpoint — the receipt proving
/// counters persist at ~their `state_bits` (and deltas at ~their *dirty*
/// state bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct CheckpointStats {
    /// Counters written into this frame (all keys for a full checkpoint;
    /// dirty shards' keys for a delta).
    pub keys: u64,
    /// Engine shard count (the header value, not the sections written).
    pub shards: usize,
    /// Shard sections actually serialized: `shards` for a full
    /// checkpoint, the dirty-shard count for a delta.
    pub shards_written: usize,
    /// Sum of live [`state_bits`](ac_bitio::StateBits::state_bits) over
    /// every written counter — for a full checkpoint, by construction
    /// identical to
    /// [`EngineStats::state_bits_total`](crate::EngineStats::state_bits_total)
    /// at freeze time (a test pins this).
    pub counter_state_bits: u64,
    /// Bits spent on encoded counter states.
    pub state_code_bits: u64,
    /// Bits spent on the Rice-coded key sets.
    pub key_bits: u64,
    /// Bits spent on framing: the fixed header plus per-shard section
    /// preambles (lengths, shard indices, counts, event tallies, RNG
    /// states).
    pub header_bits: u64,
    /// Total checkpoint size in bits (= the three parts above).
    pub total_bits: u64,
}

impl CheckpointStats {
    /// Serialized size in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.total_bits.div_ceil(8)
    }
}

/// A written checkpoint: the serialized bytes plus their size breakdown
/// and parsed header (including the chain digest future deltas cite).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    bytes: Vec<u8>,
    stats: CheckpointStats,
    header: CheckpointHeader,
}

impl Checkpoint {
    /// The serialized checkpoint, ready for disk or the wire.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the checkpoint, returning the bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// The size breakdown.
    #[must_use]
    pub fn stats(&self) -> CheckpointStats {
        self.stats
    }

    /// The parsed header — pass it to [`checkpoint_delta`] as the parent
    /// of the next incremental frame.
    #[must_use]
    pub fn header(&self) -> CheckpointHeader {
        self.header
    }
}

/// The parsed fixed header of a checkpoint (a cheap peek — no payload is
/// touched beyond its checksum field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Format version.
    pub version: u16,
    /// Full or delta frame.
    pub kind: CheckpointKind,
    /// Family/parameter fingerprint of the written counters.
    pub params_fingerprint: u64,
    /// The engine configuration at freeze time.
    pub config: EngineConfig,
    /// The freeze epoch the snapshot was cut at — a delta against this
    /// checkpoint serializes exactly the shards dirtied after it.
    pub epoch: u64,
    /// Chain digest of the parent checkpoint (0 for a full frame).
    pub parent_chain: u64,
    /// Total keys in the engine at freeze time (the whole engine, even
    /// for a delta frame).
    pub keys: u64,
    /// Total events at freeze time (likewise whole-engine).
    pub events: u64,
    /// Payload length in bits (everything after the fixed header).
    pub payload_bits: u64,
    /// This checkpoint's own chain digest — what a child delta must cite
    /// as `parent_chain`.
    pub chain: u64,
}

/// How many workers to actually use for `items` independent units of
/// work covering `keys` total keys. `requested == 0` means "auto": one
/// thread per available core, but only once the engine is big enough
/// (≥ 4096 keys) for fan-out to beat its setup cost. An explicit
/// `requested == 1` forces the serial path; explicit larger values are
/// honored, capped at the unit count. The choice never changes the
/// produced bytes or state — only who produces them.
fn effective_workers(requested: usize, items: usize, keys: u64) -> usize {
    const AUTO_MIN_KEYS: u64 = 4096;
    let cap = items.max(1);
    match requested {
        0 => {
            if keys < AUTO_MIN_KEYS {
                1
            } else {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
                    .min(cap)
            }
        }
        n => n.min(cap),
    }
}

/// Serializes a snapshot into a self-contained full [`Checkpoint`]
/// (version 2). Shard sections are encoded in parallel when the engine
/// is large enough; the bytes are identical to the serial encoder's.
///
/// # Panics
///
/// Panics if the engine carries non-default tier tags — version 2 has
/// nowhere to put them; use [`checkpoint_snapshot_with`] instead.
#[must_use]
pub fn checkpoint_snapshot<C: StateCodec + Clone + Send + Sync + 'static>(
    snap: &EngineSnapshot<C>,
) -> Checkpoint {
    checkpoint_snapshot_workers(snap, 0)
}

/// [`checkpoint_snapshot`] with an explicit encode worker count: `0`
/// picks one per core (engaged only for large engines), `1` forces the
/// serial encoder, larger values are capped at the shard count. Every
/// choice produces bit-identical frames — a property test pins this.
#[must_use]
pub fn checkpoint_snapshot_workers<C: StateCodec + Clone + Send + Sync + 'static>(
    snap: &EngineSnapshot<C>,
    workers: usize,
) -> Checkpoint {
    let all: Vec<usize> = (0..snap.shards.len()).collect();
    write_checkpoint(snap, None, CheckpointKind::Full, 0, &all, workers)
}

/// Serializes a tiered snapshot into a self-contained full version-3
/// [`Checkpoint`]: per-key tier tags ride in each shard section and the
/// header fingerprint covers the whole `templates` ladder (tier →
/// template, `templates[0]` the default tier). Restore through
/// [`restore_checkpoint_chain_with`] with the same ladder.
#[must_use]
pub fn checkpoint_snapshot_with<C: StateCodec + Clone + Send + Sync + 'static>(
    snap: &EngineSnapshot<C>,
    templates: &[C],
) -> Checkpoint {
    checkpoint_snapshot_with_workers(snap, templates, 0)
}

/// [`checkpoint_snapshot_with`] with an explicit encode worker count
/// (see [`checkpoint_snapshot_workers`] for the contract).
#[must_use]
pub fn checkpoint_snapshot_with_workers<C: StateCodec + Clone + Send + Sync + 'static>(
    snap: &EngineSnapshot<C>,
    templates: &[C],
    workers: usize,
) -> Checkpoint {
    assert!(!templates.is_empty(), "need at least the default template");
    let all: Vec<usize> = (0..snap.shards.len()).collect();
    write_checkpoint(
        snap,
        Some(templates),
        CheckpointKind::Full,
        0,
        &all,
        workers,
    )
}

/// Serializes only the shards dirtied since `parent` — an incremental
/// frame restorable on top of its parent via [`restore_checkpoint_chain`].
/// `O(dirty data)` bytes; a delta after touching 1 % of shards costs ~1 %
/// of the full checkpoint.
///
/// # Errors
///
/// * [`CheckpointError::ScheduleMismatch`] — the parent was written by a
///   different counter family or parameter schedule;
/// * [`CheckpointError::ConfigMismatch`] — the parent belongs to an
///   engine with a different shard count or seed;
/// * [`CheckpointError::BadChain`] — the parent's freeze epoch is not
///   strictly older than the snapshot's. A delta must look *back* at its
///   parent; the strict ordering also refuses the common
///   different-lineage accident (a freshly built engine with the same
///   config and schedule, whose epoch clock restarted at 1, citing an
///   older engine's checkpoint as parent). A same-config engine whose
///   epoch clock happens to have advanced *past* the parent's is
///   indistinguishable from the parent's own future without a lineage
///   identity — keep one chain per engine.
pub fn checkpoint_delta<C: StateCodec + Clone + Send + Sync + 'static>(
    snap: &EngineSnapshot<C>,
    parent: &CheckpointHeader,
) -> Result<Checkpoint, CheckpointError> {
    checkpoint_delta_inner(snap, None, parent)
}

/// [`checkpoint_delta`] for tiered engines: writes a version-3 delta
/// whose dirty shard sections carry per-key tier tags. The parent may be
/// a version-2 frame (the chain that was cut before tiering was turned
/// on) or another version-3 frame — both fingerprints are accepted.
///
/// # Errors
///
/// Everything [`checkpoint_delta`] returns.
pub fn checkpoint_delta_with<C: StateCodec + Clone + Send + Sync + 'static>(
    snap: &EngineSnapshot<C>,
    templates: &[C],
    parent: &CheckpointHeader,
) -> Result<Checkpoint, CheckpointError> {
    assert!(!templates.is_empty(), "need at least the default template");
    checkpoint_delta_inner(snap, Some(templates), parent)
}

fn checkpoint_delta_inner<C: StateCodec + Clone + Send + Sync + 'static>(
    snap: &EngineSnapshot<C>,
    templates: Option<&[C]>,
    parent: &CheckpointHeader,
) -> Result<Checkpoint, CheckpointError> {
    let fingerprint_ok = match templates {
        None => parent.params_fingerprint == snap.template.params_fingerprint(),
        // A tiered delta may extend a pre-tiering (version 2) chain: its
        // parent then carries the bare default-template fingerprint.
        Some(t) => {
            parent.params_fingerprint == combined_fingerprint(t)
                || parent.params_fingerprint == t[0].params_fingerprint()
        }
    };
    if !fingerprint_ok {
        return Err(CheckpointError::ScheduleMismatch);
    }
    if parent.config != snap.config() {
        return Err(CheckpointError::ConfigMismatch {
            expected: snap.config(),
            got: parent.config,
        });
    }
    if parent.epoch >= snap.epoch() {
        return Err(CheckpointError::BadChain {
            what: "parent freeze epoch is not strictly older than the snapshot",
        });
    }
    let dirty: Vec<usize> = snap
        .shards
        .iter()
        .enumerate()
        .filter(|(_, s)| s.dirty_epoch() > parent.epoch)
        .map(|(i, _)| i)
        .collect();
    Ok(write_checkpoint(
        snap,
        templates,
        CheckpointKind::Delta,
        parent.chain,
        &dirty,
        0,
    ))
}

/// Size accounting for one encoded shard section, accumulated into the
/// frame-level [`CheckpointStats`].
#[derive(Default, Clone, Copy)]
struct SectionTally {
    keys: u64,
    key_bits: u64,
    state_code_bits: u64,
    counter_state_bits: u64,
}

impl SectionTally {
    fn absorb(&mut self, other: SectionTally) {
        self.keys += other.keys;
        self.key_bits += other.key_bits;
        self.state_code_bits += other.state_code_bits;
        self.counter_state_bits += other.counter_state_bits;
    }
}

/// Encodes one shard as a complete indexed section (index, length
/// prefix, preamble, keys, optional tier tags, states) appended to `v`.
/// The emitted bit stream is position-independent, so a section encoded
/// into a fresh vector on a worker thread splices into the frame
/// byte-identically to one encoded in place — the property the parallel
/// encoder rests on.
fn encode_section_into<C: StateCodec + Clone>(
    v: &mut BitVec,
    shard: &Shard<C>,
    idx: usize,
    tiered: bool,
) -> SectionTally {
    let mut tally = SectionTally::default();
    let section = begin_indexed_section(v, idx as u64);
    // Per-shard preamble: count, exact events, RNG state.
    {
        let mut w = BitWriter::new(v);
        ac_bitio::codes::encode_delta0(&mut w, shard.len() as u64);
        w.write_bits(shard.events(), 64);
        for word in shard.rng().state() {
            w.write_bits(word, 64);
        }
    }
    // Keys sorted ascending, gap-coded; states follow in key order.
    let mut entries: Vec<(u64, &C, u8)> = shard.entries_tagged().collect();
    entries.sort_unstable_by_key(|&(key, _, _)| key);
    let keys: Vec<u64> = entries.iter().map(|&(key, _, _)| key).collect();
    tally.keys = keys.len() as u64;
    tally.key_bits = encode_sorted_keys(v, &keys);
    if tiered {
        // Version 3: sparse tier-tag block, *before* the states — a
        // state can only be decoded by its own tier's template.
        // Layout: delta0(tagged count), then per tagged key, in key
        // order: delta0(position gap) + tier(8). Position gaps are
        // 1-based after the first entry so delta0 never sees a zero
        // mid-stream.
        let tagged: Vec<(u64, u8)> = entries
            .iter()
            .enumerate()
            .filter(|(_, &(_, _, tier))| tier != 0)
            .map(|(pos, &(_, _, tier))| (pos as u64, tier))
            .collect();
        let mut w = BitWriter::new(v);
        ac_bitio::codes::encode_delta0(&mut w, tagged.len() as u64);
        let mut prev = 0u64;
        for (i, &(pos, tier)) in tagged.iter().enumerate() {
            let gap = if i == 0 { pos } else { pos - prev - 1 };
            ac_bitio::codes::encode_delta0(&mut w, gap);
            w.write_bits(u64::from(tier), 8);
            prev = pos;
        }
    } else {
        assert!(
            entries.iter().all(|&(_, _, tier)| tier == 0),
            "engine carries tier tags; version 2 cannot represent them \
             — checkpoint with checkpoint_snapshot_with/checkpoint_delta_with"
        );
    }
    let before = v.len();
    {
        let mut w = BitWriter::new(v);
        for (_, counter, _) in &entries {
            counter.encode_state(&mut w);
            tally.counter_state_bits += counter.state_bits();
        }
    }
    tally.state_code_bits = v.len() - before;
    end_section(v, section);
    tally
}

/// The single writer behind both frame kinds and both versions:
/// serializes the shards named by `indices` (ascending) under the given
/// kind and parent digest. `templates` selects the format: `None` writes
/// version 2 (and panics on non-default tier tags, which it cannot
/// represent); `Some(ladder)` writes version 3 with per-section tag
/// blocks and the ladder-covering fingerprint. `workers` steers section
/// encoding (0 = auto): with more than one worker, sections are encoded
/// into per-worker vectors and spliced in order with [`BitVec::append`],
/// so checksums, chain digests, and every committed byte are identical
/// to the serial path.
fn write_checkpoint<C: StateCodec + Clone + Send + Sync + 'static>(
    snap: &EngineSnapshot<C>,
    templates: Option<&[C]>,
    kind: CheckpointKind,
    parent_chain: u64,
    indices: &[usize],
    workers: usize,
) -> Checkpoint {
    let (version, fingerprint) = match templates {
        None => (CHECKPOINT_VERSION, snap.template.params_fingerprint()),
        Some(t) => (CHECKPOINT_VERSION_TIERED, combined_fingerprint(t)),
    };
    let mut v = BitVec::new();
    // Fixed header; the payload length is patched in at the end.
    v.push_bits(u64::from(CHECKPOINT_MAGIC), 32);
    v.push_bits(u64::from(version), 16);
    v.push_bits(kind.to_bits(), 8);
    v.push_bits(fingerprint, 64);
    let config = snap.config();
    v.push_bits(config.shards as u64, 32);
    v.push_bits(config.seed, 64);
    v.push_bits(snap.epoch(), 64);
    v.push_bits(parent_chain, 64);
    v.push_bits(snap.len() as u64, 64);
    v.push_bits(snap.total_events(), 64);
    let payload_len_at = v.len();
    v.push_bits(0, 64); // payload length, patched below
    let header_checksum_at = v.len();
    v.push_bits(0, 64); // header checksum, patched below
    v.push_bits(0, 64); // payload checksum, patched into the bytes below

    v.push_bits(indices.len() as u64, 32);
    let tiered = templates.is_some();
    let mut tally = SectionTally::default();
    let n_workers = effective_workers(workers, indices.len(), snap.len() as u64);
    if n_workers <= 1 {
        for &idx in indices {
            tally.absorb(encode_section_into(&mut v, &snap.shards[idx], idx, tiered));
        }
    } else {
        // Persistent-pool fan-out (`pool::fan_out`): workers claim
        // section positions off a shared counter and encode into fresh
        // vectors (shard sizes are skewed, so static striping would
        // leave threads idle behind the heaviest shard). Sections then
        // splice into the frame in original position order, reproducing
        // the serial byte stream exactly.
        let work: Vec<(usize, Arc<Shard<C>>)> = indices
            .iter()
            .map(|&idx| (idx, Arc::clone(&snap.shards[idx])))
            .collect();
        let mut encoded = crate::pool::fan_out(n_workers, work.len(), move |pos| {
            let (idx, shard) = &work[pos];
            let mut section = BitVec::new();
            let t = encode_section_into(&mut section, shard, *idx, tiered);
            (section, t)
        });
        encoded.sort_unstable_by_key(|&(pos, _)| pos);
        for (_, (section, t)) in &encoded {
            v.append(section);
            tally.absorb(*t);
        }
    }
    let SectionTally {
        keys: keys_written,
        key_bits,
        state_code_bits,
        counter_state_bits,
    } = tally;
    let total = v.len();
    let payload_bits = total - HEADER_BITS;
    v.overwrite_bits(payload_len_at, payload_bits, 64);
    let header_sum = header_checksum(&[
        u64::from(CHECKPOINT_MAGIC),
        u64::from(version),
        kind.to_bits(),
        fingerprint,
        config.shards as u64,
        config.seed,
        snap.epoch(),
        parent_chain,
        snap.len() as u64,
        snap.total_events(),
        payload_bits,
    ]);
    v.overwrite_bits(header_checksum_at, header_sum, 64);
    let mut bytes = v.to_bytes();
    let payload_sum = payload_checksum(&bytes[PAYLOAD_BYTE..]);
    bytes[PAYLOAD_CHECKSUM_BYTE..PAYLOAD_BYTE].copy_from_slice(&payload_sum.to_le_bytes());

    let stats = CheckpointStats {
        keys: keys_written,
        shards: snap.shards.len(),
        shards_written: indices.len(),
        counter_state_bits,
        state_code_bits,
        key_bits,
        header_bits: total - state_code_bits - key_bits,
        total_bits: total,
    };
    let header = CheckpointHeader {
        version,
        kind,
        params_fingerprint: fingerprint,
        config,
        epoch: snap.epoch(),
        parent_chain,
        keys: snap.len() as u64,
        events: snap.total_events(),
        payload_bits,
        chain: chain_digest(header_sum, payload_sum),
    };
    Checkpoint {
        bytes,
        stats,
        header,
    }
}

/// Parses and validates the fixed header.
///
/// # Errors
///
/// Returns the corresponding [`CheckpointError`] for a short buffer, bad
/// magic, an unsupported version, an unknown kind, or a checksum
/// mismatch.
pub fn read_header(bytes: &[u8]) -> Result<CheckpointHeader, CheckpointError> {
    let v = BitVec::from_bytes(bytes);
    let mut r = BitReader::new(&v);
    let magic = r.try_read_bits(32).ok_or(CheckpointError::Truncated)?;
    if magic != u64::from(CHECKPOINT_MAGIC) {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.try_read_bits(16).ok_or(CheckpointError::Truncated)? as u16;
    if version != CHECKPOINT_VERSION && version != CHECKPOINT_VERSION_TIERED {
        return Err(CheckpointError::UnsupportedVersion { got: version });
    }
    let kind_bits = r.try_read_bits(8).ok_or(CheckpointError::Truncated)?;
    let kind = CheckpointKind::from_bits(kind_bits).ok_or(CheckpointError::Corrupt {
        what: "unknown checkpoint kind",
    })?;
    let params_fingerprint = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let shards = r.try_read_bits(32).ok_or(CheckpointError::Truncated)? as usize;
    let seed = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let epoch = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let parent_chain = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let keys = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let events = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let payload_bits = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let stored_sum = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let computed = header_checksum(&[
        magic,
        u64::from(version),
        kind_bits,
        params_fingerprint,
        shards as u64,
        seed,
        epoch,
        parent_chain,
        keys,
        events,
        payload_bits,
    ]);
    if stored_sum != computed {
        return Err(CheckpointError::Corrupt {
            what: "header checksum mismatch",
        });
    }
    if shards == 0 {
        return Err(CheckpointError::Corrupt {
            what: "zero shards",
        });
    }
    let payload_sum = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    Ok(CheckpointHeader {
        version,
        kind,
        params_fingerprint,
        config: EngineConfig { shards, seed },
        epoch,
        parent_chain,
        keys,
        events,
        payload_bits,
        chain: chain_digest(stored_sum, payload_sum),
    })
}

/// One decoded shard section body. `tiers` is parallel to `entries`
/// when any key carries a non-default tier, and empty otherwise (the
/// all-default case costs nothing).
struct ShardSection<C> {
    rng: Xoshiro256PlusPlus,
    events: u64,
    entries: Vec<(u64, C)>,
    tiers: Vec<u8>,
}

/// Verifies a checkpoint's payload checksum and parses its shard
/// sections into restored shards (each stamped with the header's freeze
/// epoch as its dirty epoch). Shared by the lone-restore and
/// chain-restore paths; all structural validation happens here.
/// `templates` is the tier ladder (rung 0 = default); a version-2 frame
/// uses only rung 0 and must carry its bare fingerprint, a version-3
/// frame must carry the fingerprint covering the whole ladder.
///
/// Decoding runs in two phases: a cheap sequential boundary scan over
/// the length-prefixed sections (which also proves the payload length
/// adds up), then per-section decoding — fanned out across `workers`
/// threads (0 = auto) since sections are self-contained. Errors keep
/// the serial path's precedence: the first failing section in frame
/// order names the error.
fn parse_sections<C: StateCodec + Clone + Send + Sync + 'static>(
    templates: &[C],
    bytes: &[u8],
    header: &CheckpointHeader,
    workers: usize,
) -> Result<Vec<(usize, Shard<C>)>, CheckpointError> {
    let expected_fingerprint = if header.version == CHECKPOINT_VERSION {
        templates[0].params_fingerprint()
    } else {
        combined_fingerprint(templates)
    };
    if header.params_fingerprint != expected_fingerprint {
        return Err(CheckpointError::ScheduleMismatch);
    }
    if bytes.len() < PAYLOAD_BYTE {
        return Err(CheckpointError::Truncated);
    }
    // Length checks first (truncation is its own condition), then the
    // payload checksum, then — and only then — parsing.
    let available_bits = (bytes.len() - PAYLOAD_BYTE) as u64 * 8;
    if available_bits < header.payload_bits {
        return Err(CheckpointError::Truncated);
    }
    if available_bits - header.payload_bits >= 8 {
        return Err(CheckpointError::Corrupt {
            what: "trailing bytes after payload",
        });
    }
    let stored_sum = u64::from_le_bytes(
        bytes[PAYLOAD_CHECKSUM_BYTE..PAYLOAD_BYTE]
            .try_into()
            .expect("eight checksum bytes"),
    );
    if stored_sum != payload_checksum(&bytes[PAYLOAD_BYTE..]) {
        return Err(CheckpointError::Corrupt {
            what: "payload checksum mismatch",
        });
    }
    let v = BitVec::from_bytes(bytes);
    let mut r = BitReader::at(&v, HEADER_BITS);

    let sections = r.try_read_bits(32).ok_or(CheckpointError::Truncated)? as usize;
    match header.kind {
        CheckpointKind::Full if sections != header.config.shards => {
            return Err(CheckpointError::Corrupt {
                what: "full checkpoint must hold every shard",
            });
        }
        CheckpointKind::Delta if sections > header.config.shards => {
            return Err(CheckpointError::Corrupt {
                what: "delta holds more sections than shards",
            });
        }
        _ => {}
    }
    // Plausibility bound before any sizing decision: every shard section
    // costs at least 32 (length prefix) + 32 (shard index) + 1 (count) +
    // 64 (events) + 256 (RNG) bits, so a section count the payload cannot
    // possibly hold is structural corruption, not something to allocate
    // for.
    const MIN_SHARD_SECTION_BITS: u64 = 32 + 32 + 1 + 64 + 256;
    if sections as u64 > header.payload_bits / MIN_SHARD_SECTION_BITS + 1 {
        return Err(CheckpointError::Corrupt {
            what: "section count exceeds what the payload can hold",
        });
    }

    // Phase 1: boundary scan. `read_indexed_section` proves the whole
    // section body is present, so skipping to `start + len` stays in
    // bounds and the per-section decoders can run independently.
    let mut bounds: Vec<(usize, u64, u64)> = Vec::with_capacity(sections);
    for _ in 0..sections {
        let (idx, section_len) = read_indexed_section(&mut r).ok_or(CheckpointError::Truncated)?;
        let idx = idx as usize;
        if idx >= header.config.shards {
            return Err(CheckpointError::Corrupt {
                what: "shard index out of range",
            });
        }
        if let Some(&(prev_idx, _, _)) = bounds.last() {
            if idx <= prev_idx {
                return Err(CheckpointError::Corrupt {
                    what: "shard indices must be strictly increasing",
                });
            }
        }
        let start = r.position();
        bounds.push((idx, start, section_len));
        r = BitReader::at(&v, start + section_len);
    }
    if r.position() - HEADER_BITS != header.payload_bits {
        return Err(CheckpointError::Corrupt {
            what: "payload length mismatch",
        });
    }

    // Phase 2: decode every section body, shard-parallel when asked.
    let n_workers = effective_workers(workers, bounds.len(), header.keys);
    if n_workers <= 1 {
        let mut parsed = Vec::with_capacity(bounds.len());
        for &(idx, start, len) in &bounds {
            let s = parse_one_section(templates, &v, header, start, len)?;
            parsed.push((
                idx,
                Shard::from_restored(s.rng, s.events, s.entries, s.tiers, header.epoch),
            ));
        }
        return Ok(parsed);
    }
    // The pool's jobs outlive this borrow-scoped call, so the shared
    // inputs move into `Arc`s: the payload words, the boundary table,
    // the tier ladder, and the header are all owned by the fan-out.
    let v = Arc::new(v);
    let bounds = Arc::new(bounds);
    let templates: Arc<Vec<C>> = Arc::new(templates.to_vec());
    let header = *header;
    let mut decoded = crate::pool::fan_out(n_workers, bounds.len(), move |pos| {
        let (idx, start, len) = bounds[pos];
        parse_one_section(&templates, &v, &header, start, len).map(|s| {
            (
                idx,
                Shard::from_restored(s.rng, s.events, s.entries, s.tiers, header.epoch),
            )
        })
    });
    // Frame order restored by the sort, so the `collect` below still
    // names the *first failing section in frame order* — the serial
    // path's error precedence.
    decoded.sort_unstable_by_key(|&(pos, _)| pos);
    decoded
        .into_iter()
        .map(|(_, result)| result)
        .collect::<Result<Vec<_>, _>>()
}

/// Decodes one shard section body (everything between its length prefix
/// and its end), performing every structural check the serial parser
/// did: count plausibility, RNG validity, key decodability, tier-tag
/// canonicality, per-state validity, and the exact section length.
fn parse_one_section<C: StateCodec + Clone>(
    templates: &[C],
    v: &BitVec,
    header: &CheckpointHeader,
    section_start: u64,
    section_len: u64,
) -> Result<ShardSection<C>, CheckpointError> {
    let mut r = BitReader::at(v, section_start);
    let count = ac_bitio::codes::try_decode_delta0(&mut r).ok_or(CheckpointError::Corrupt {
        what: "undecodable shard key count",
    })?;
    // Each key costs >= 1 bit inside the section; a count beyond the
    // section length cannot be real, so reject before sizing buffers
    // by it.
    if count > section_len {
        return Err(CheckpointError::Corrupt {
            what: "shard key count exceeds its section",
        });
    }
    let count = usize::try_from(count).map_err(|_| CheckpointError::Corrupt {
        what: "shard key count overflows usize",
    })?;
    let events = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let mut rng_state = [0u64; 4];
    for word in &mut rng_state {
        *word = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    }
    if rng_state.iter().all(|&w| w == 0) {
        return Err(CheckpointError::Corrupt {
            what: "all-zero shard RNG state",
        });
    }
    let keys = decode_sorted_keys(&mut r, count).ok_or(CheckpointError::Corrupt {
        what: "undecodable shard key set",
    })?;
    // Version 3 interposes the sparse tier-tag block between the keys
    // and the states; the writer only tags non-default tiers, so an
    // explicit tier-0 tag is non-canonical and refused.
    let mut tiers: Vec<u8> = Vec::new();
    if header.version == CHECKPOINT_VERSION_TIERED {
        let tagged =
            ac_bitio::codes::try_decode_delta0(&mut r).ok_or(CheckpointError::Corrupt {
                what: "undecodable tier tag count",
            })?;
        if tagged > count as u64 {
            return Err(CheckpointError::Corrupt {
                what: "more tier tags than keys",
            });
        }
        if tagged > 0 {
            tiers = vec![0u8; count];
            let mut pos = 0u64;
            for i in 0..tagged {
                let gap =
                    ac_bitio::codes::try_decode_delta0(&mut r).ok_or(CheckpointError::Corrupt {
                        what: "undecodable tier tag position",
                    })?;
                pos = if i == 0 {
                    gap
                } else {
                    pos.checked_add(gap).and_then(|p| p.checked_add(1)).ok_or(
                        CheckpointError::Corrupt {
                            what: "tier tag position overflows",
                        },
                    )?
                };
                if pos >= count as u64 {
                    return Err(CheckpointError::Corrupt {
                        what: "tier tag position out of range",
                    });
                }
                let tier = r.try_read_bits(8).ok_or(CheckpointError::Truncated)? as u8;
                if tier == 0 || usize::from(tier) >= templates.len() {
                    return Err(CheckpointError::Corrupt {
                        what: "tier tag names no ladder rung",
                    });
                }
                tiers[usize::try_from(pos).expect("pos < count <= usize::MAX")] = tier;
            }
        }
    }
    let mut entries = Vec::with_capacity(count);
    for (slot, key) in keys.into_iter().enumerate() {
        let tier = tiers.get(slot).copied().unwrap_or(0);
        let counter = templates[usize::from(tier)].decode_state(&mut r)?;
        entries.push((key, counter));
    }
    if r.position() - section_start != section_len {
        return Err(CheckpointError::Corrupt {
            what: "shard section length mismatch",
        });
    }
    Ok(ShardSection {
        rng: Xoshiro256PlusPlus::from_state(rng_state),
        events,
        entries,
        tiers,
    })
}

/// Rebuilds a [`CounterEngine`] from one **full** checkpoint. `template`
/// supplies the family and parameter schedule; it must match the
/// checkpoint's fingerprint (its registers are ignored).
///
/// # Errors
///
/// Returns a [`CheckpointError`] for any mismatch, truncation, or
/// validation failure — including [`CheckpointError::DeltaWithoutBase`]
/// for a delta frame, which only restores through
/// [`restore_checkpoint_chain`]. On success every key's counter state —
/// and each shard's RNG — is bit-identical to the snapshot's.
pub fn restore_checkpoint<C: StateCodec + Clone + Send + Sync + 'static>(
    template: &C,
    bytes: &[u8],
) -> Result<CounterEngine<C>, CheckpointError> {
    restore_checkpoint_chain(template, &[bytes])
}

/// [`restore_checkpoint`] for tiered checkpoints: `templates` is the
/// tier ladder (rung 0 = default) the version-3 frame was written
/// against.
///
/// # Errors
///
/// Everything [`restore_checkpoint`] returns.
pub fn restore_checkpoint_with<C: StateCodec + Clone + Send + Sync + 'static>(
    templates: &[C],
    bytes: &[u8],
) -> Result<CounterEngine<C>, CheckpointError> {
    restore_checkpoint_chain_with(templates, &[bytes])
}

/// Folds a **base + deltas chain** back into a [`CounterEngine`] that is
/// bit-identical to the engine the *last* delta was cut from: segment 0
/// must be a full checkpoint, every later segment a delta whose
/// `parent_chain` cites the digest of the segment before it. Dirty shards
/// are replaced wholesale by the newest delta that carries them; clean
/// shards keep the newest earlier state. The chain's final totals are
/// verified against the last header, so a fold that loses or duplicates
/// anything is refused.
///
/// # Errors
///
/// Everything [`restore_checkpoint`] returns, plus
/// [`CheckpointError::BadChain`] for an empty chain, a delta-first chain,
/// a full frame mid-chain, a parent-digest mismatch, or a non-monotone
/// epoch. Each segment's checksums are verified independently, so a
/// corrupt or truncated delta names itself rather than poisoning the
/// fold.
pub fn restore_checkpoint_chain<C: StateCodec + Clone + Send + Sync + 'static>(
    template: &C,
    segments: &[&[u8]],
) -> Result<CounterEngine<C>, CheckpointError> {
    restore_checkpoint_chain_with(std::slice::from_ref(template), segments)
}

/// [`restore_checkpoint_chain`] with an explicit decode worker count:
/// `0` picks one per core (engaged only for large frames), `1` forces
/// the serial decoder, larger values are capped at the section count.
/// Every choice restores identical state — a property test pins this.
///
/// # Errors
///
/// Everything [`restore_checkpoint_chain`] returns.
pub fn restore_checkpoint_chain_workers<C: StateCodec + Clone + Send + Sync + 'static>(
    template: &C,
    segments: &[&[u8]],
    workers: usize,
) -> Result<CounterEngine<C>, CheckpointError> {
    restore_checkpoint_chain_with_workers(std::slice::from_ref(template), segments, workers)
}

/// [`restore_checkpoint_chain`] for tiered chains: `templates` is the
/// tier ladder (rung 0 = default). Accepts any mix of version-2 segments
/// (fingerprinted against rung 0 alone, every key restored at tier 0)
/// and version-3 segments (fingerprinted against the whole ladder,
/// per-key tier tags restored), so a chain that straddles the moment
/// tiering was enabled folds cleanly.
///
/// # Errors
///
/// Everything [`restore_checkpoint_chain`] returns.
pub fn restore_checkpoint_chain_with<C: StateCodec + Clone + Send + Sync + 'static>(
    templates: &[C],
    segments: &[&[u8]],
) -> Result<CounterEngine<C>, CheckpointError> {
    restore_checkpoint_chain_with_workers(templates, segments, 0)
}

/// [`restore_checkpoint_chain_with`] with an explicit decode worker
/// count (see [`restore_checkpoint_chain_workers`] for the contract).
///
/// # Errors
///
/// Everything [`restore_checkpoint_chain`] returns.
pub fn restore_checkpoint_chain_with_workers<C: StateCodec + Clone + Send + Sync + 'static>(
    templates: &[C],
    segments: &[&[u8]],
    workers: usize,
) -> Result<CounterEngine<C>, CheckpointError> {
    assert!(!templates.is_empty(), "need at least the default template");
    let (first, rest) = segments.split_first().ok_or(CheckpointError::BadChain {
        what: "empty chain",
    })?;
    let base = read_header(first)?;
    match base.kind {
        CheckpointKind::Full => {}
        CheckpointKind::Delta if rest.is_empty() => return Err(CheckpointError::DeltaWithoutBase),
        CheckpointKind::Delta => {
            return Err(CheckpointError::BadChain {
                what: "chain must start with a full checkpoint",
            })
        }
    }
    let sections = parse_sections(templates, first, &base, workers)?;
    let mut shards: Vec<Option<Shard<C>>> = (0..base.config.shards).map(|_| None).collect();
    for (idx, shard) in sections {
        shards[idx] = Some(shard);
    }
    // parse_sections proved a full frame holds exactly `shards` strictly
    // increasing in-range indices, so every slot is filled.
    debug_assert!(shards.iter().all(Option::is_some));

    let mut prev = base;
    for &segment in rest {
        let header = read_header(segment)?;
        if header.kind != CheckpointKind::Delta {
            return Err(CheckpointError::BadChain {
                what: "full checkpoint mid-chain (start a new chain from it instead)",
            });
        }
        if header.config != prev.config {
            return Err(CheckpointError::ConfigMismatch {
                expected: prev.config,
                got: header.config,
            });
        }
        if header.parent_chain != prev.chain {
            // A compacted base (written by `compact_chain*`) replaces a
            // base+deltas prefix whose tip it folded; it records that
            // tip's digest in its own `parent_chain` (ordinary full
            // frames store 0 there). The first delta after it still
            // cites the folded tip — by construction the same bytes the
            // compacted base holds — so the alias is accepted exactly
            // there and nowhere else. From the second delta on, normal
            // hash chaining resumes.
            let compacted_alias = prev.kind == CheckpointKind::Full
                && prev.parent_chain != 0
                && header.parent_chain == prev.parent_chain;
            if !compacted_alias {
                return Err(CheckpointError::BadChain {
                    what: "delta cites a different parent checkpoint",
                });
            }
        }
        if header.epoch < prev.epoch {
            return Err(CheckpointError::BadChain {
                what: "delta freeze epoch precedes its parent",
            });
        }
        for (idx, shard) in parse_sections(templates, segment, &header, workers)? {
            shards[idx] = Some(shard);
        }
        prev = header;
    }

    let shards: Vec<Shard<C>> = shards
        .into_iter()
        .map(|s| {
            s.ok_or(CheckpointError::Corrupt {
                what: "chain leaves a shard with no state",
            })
        })
        .collect::<Result<_, _>>()?;
    let keys_total: u64 = shards.iter().map(|s| s.len() as u64).sum();
    let events_total: u64 = shards.iter().map(Shard::events).sum();
    if keys_total != prev.keys || events_total != prev.events {
        return Err(CheckpointError::Corrupt {
            what: "shard totals disagree with the final header",
        });
    }
    Ok(CounterEngine::from_restored(
        templates[0].clone(),
        prev.config,
        shards,
        prev.epoch + 1,
    ))
}

/// [`restore_checkpoint`], additionally refusing a checkpoint whose
/// embedded [`EngineConfig`] differs from `expected` — for deployments
/// where the config is pinned externally and a drifted checkpoint must
/// not silently win.
///
/// # Errors
///
/// [`CheckpointError::ConfigMismatch`] on disagreement, plus everything
/// [`restore_checkpoint`] returns.
pub fn restore_checkpoint_expecting<C: StateCodec + Clone + Send + Sync + 'static>(
    template: &C,
    bytes: &[u8],
    expected: EngineConfig,
) -> Result<CounterEngine<C>, CheckpointError> {
    let header = read_header(bytes)?;
    if header.config != expected {
        return Err(CheckpointError::ConfigMismatch {
            expected,
            got: header.config,
        });
    }
    restore_checkpoint(template, bytes)
}

/// Folds a base+deltas chain into one fresh **full** checkpoint holding
/// exactly the state the chain restores to — the compaction primitive
/// that bounds recovery time by state size instead of history length.
///
/// The compacted base is *not* an ordinary full frame: its header keeps
/// the folded tip's freeze `epoch` (so deltas cut against that tip
/// still select the right dirty shards when chained onto it) and
/// records the tip's chain digest in `parent_chain` (ordinary full
/// frames store 0). [`restore_checkpoint_chain`] uses that digest to
/// accept the one delta written against the folded tip before the swap
/// landed — see the alias rule there — which is what lets a compactor
/// commit without stalling the writer. Its payload bytes are identical
/// to a [`checkpoint_snapshot`] of the serially restored chain (a
/// property test pins this).
///
/// # Errors
///
/// Everything [`restore_checkpoint_chain`] returns.
pub fn compact_chain<C: StateCodec + Clone + Send + Sync + 'static>(
    template: &C,
    segments: &[&[u8]],
) -> Result<Checkpoint, CheckpointError> {
    compact_chain_workers(template, segments, 0)
}

/// [`compact_chain`] with an explicit worker count for both the restore
/// fold and the re-encode (0 = auto, 1 = serial).
///
/// # Errors
///
/// Everything [`restore_checkpoint_chain`] returns.
pub fn compact_chain_workers<C: StateCodec + Clone + Send + Sync + 'static>(
    template: &C,
    segments: &[&[u8]],
    workers: usize,
) -> Result<Checkpoint, CheckpointError> {
    compact_chain_inner(std::slice::from_ref(template), false, segments, workers)
}

/// [`compact_chain`] for tiered chains: restores through the `templates`
/// ladder and writes a version-3 compacted base.
///
/// # Errors
///
/// Everything [`restore_checkpoint_chain`] returns.
pub fn compact_chain_with<C: StateCodec + Clone + Send + Sync + 'static>(
    templates: &[C],
    segments: &[&[u8]],
) -> Result<Checkpoint, CheckpointError> {
    compact_chain_inner(templates, true, segments, 0)
}

/// [`compact_chain_with`] with an explicit worker count (0 = auto).
///
/// # Errors
///
/// Everything [`restore_checkpoint_chain`] returns.
pub fn compact_chain_with_workers<C: StateCodec + Clone + Send + Sync + 'static>(
    templates: &[C],
    segments: &[&[u8]],
    workers: usize,
) -> Result<Checkpoint, CheckpointError> {
    compact_chain_inner(templates, true, segments, workers)
}

fn compact_chain_inner<C: StateCodec + Clone + Send + Sync + 'static>(
    templates: &[C],
    tiered: bool,
    segments: &[&[u8]],
    workers: usize,
) -> Result<Checkpoint, CheckpointError> {
    let tip = read_header(segments.last().ok_or(CheckpointError::BadChain {
        what: "empty chain",
    })?)?;
    let mut engine = restore_checkpoint_chain_with_workers(templates, segments, workers)?;
    // Pin the compacted base to the folded tip's freeze epoch: the
    // restored engine's own clock sits past it, and a base claiming a
    // *newer* epoch than the tip would make deltas cut against the tip
    // unchainable (their epochs must not precede their parent's) while
    // silently shifting the dirty-shard horizon.
    let snap = engine.snapshot().with_epoch(tip.epoch);
    let all: Vec<usize> = (0..snap.shards.len()).collect();
    let t = if tiered { Some(templates) } else { None };
    Ok(write_checkpoint(
        &snap,
        t,
        CheckpointKind::Full,
        tip.chain,
        &all,
        workers,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_bitio::StateBits;
    use ac_core::{
        ApproxCounter, CsurosCounter, ExactCounter, MorrisCounter, NelsonYuCounter, NyParams,
    };
    use ac_randkit::{RandomSource, SplitMix64};

    fn cfg() -> EngineConfig {
        EngineConfig {
            shards: 4,
            seed: 11,
        }
    }

    fn ny_template() -> NelsonYuCounter {
        NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap())
    }

    fn ny_engine(n_keys: u64) -> CounterEngine<NelsonYuCounter> {
        let mut e = CounterEngine::new(ny_template(), cfg());
        let mut gen = SplitMix64::new(3);
        let batch: Vec<(u64, u64)> = (0..n_keys)
            .map(|k| (k * 97 + 13, 1 + gen.next_u64() % 5_000))
            .collect();
        e.apply(&batch);
        e
    }

    fn checkpoint_of<C: StateCodec + Clone + Send + Sync + 'static>(
        e: &mut CounterEngine<C>,
    ) -> Checkpoint {
        checkpoint_snapshot(&e.snapshot())
    }

    #[test]
    fn round_trip_preserves_every_counter_bit_for_bit() {
        let mut e = ny_engine(1_000);
        let ck = checkpoint_of(&mut e);
        let back = restore_checkpoint(&ny_template(), ck.bytes()).unwrap();
        assert_eq!(back.len(), e.len());
        assert_eq!(back.total_events(), e.total_events());
        assert_eq!(back.config(), e.config());
        for (key, counter) in e.iter() {
            let restored = back.counter(key).expect("key present");
            assert_eq!(restored.state_parts(), counter.state_parts(), "key {key}");
            assert_eq!(restored.estimate(), counter.estimate());
            assert_eq!(restored.state_bits(), counter.state_bits());
        }
    }

    #[test]
    fn restored_engine_continues_the_exact_random_stream() {
        // Apply the same post-checkpoint batch to the original and the
        // restored engine: bit-identical results, because shard RNG
        // states ride in the checkpoint.
        let mut original = ny_engine(300);
        let ck = checkpoint_of(&mut original);
        let mut restored = restore_checkpoint(&ny_template(), ck.bytes()).unwrap();

        let follow_up: Vec<(u64, u64)> = (0..500u64).map(|k| (k * 31, 40 + k)).collect();
        original.apply(&follow_up);
        restored.apply(&follow_up);
        assert_eq!(original.total_events(), restored.total_events());
        for &(key, _) in &follow_up {
            // Compare persistent registers: the peak-bits high-water mark
            // is instrumentation (reset by restore), not state.
            assert_eq!(
                original.counter(key).map(NelsonYuCounter::state_parts),
                restored.counter(key).map(NelsonYuCounter::state_parts),
                "key {key}"
            );
        }
    }

    #[test]
    fn stats_agree_with_engine_state_bits() {
        // The satellite contract: what checkpoint writes is exactly what
        // EngineStats reports as counter_state_bits.
        let mut e = ny_engine(2_000);
        let stats_before = e.stats();
        let ck = checkpoint_of(&mut e);
        assert_eq!(ck.stats().counter_state_bits, stats_before.state_bits_total);
        assert_eq!(ck.stats().keys, e.len() as u64);
        assert_eq!(ck.stats().shards_written, ck.stats().shards);
        assert_eq!(
            ck.stats().total_bits,
            ck.stats().state_code_bits + ck.stats().key_bits + ck.stats().header_bits
        );
        assert_eq!(ck.stats().bytes(), ck.bytes().len() as u64);
    }

    #[test]
    fn header_peek_matches_written_engine() {
        let mut e = ny_engine(50);
        let ck = checkpoint_of(&mut e);
        let h = read_header(ck.bytes()).unwrap();
        assert_eq!(h, ck.header(), "stored header equals re-parsed header");
        assert_eq!(h.version, CHECKPOINT_VERSION);
        assert_eq!(h.kind, CheckpointKind::Full);
        assert_eq!(h.parent_chain, 0);
        assert_eq!(h.config, e.config());
        assert_eq!(h.keys, 50);
        assert_eq!(h.events, e.total_events());
    }

    #[test]
    fn delta_after_touching_one_shard_is_small_and_restores_exactly() {
        let mut e = ny_engine(2_000);
        let base = checkpoint_of(&mut e);

        // Dirty exactly one shard: feed keys that all route to shard 0.
        let shard0_keys: Vec<u64> = (0..100_000u64)
            .filter(|&k| e.shard_of(k) == 0)
            .take(40)
            .collect();
        let batch: Vec<(u64, u64)> = shard0_keys.iter().map(|&k| (k, 7)).collect();
        e.apply(&batch);
        let delta = checkpoint_delta(&e.snapshot(), &base.header()).unwrap();

        assert_eq!(delta.header().kind, CheckpointKind::Delta);
        assert_eq!(delta.stats().shards_written, 1, "one dirty shard");
        assert!(
            delta.bytes().len() * 2 < base.bytes().len(),
            "delta ({}) must be far smaller than base ({})",
            delta.bytes().len(),
            base.bytes().len()
        );

        let back =
            restore_checkpoint_chain(&ny_template(), &[base.bytes(), delta.bytes()]).unwrap();
        assert_eq!(back.len(), e.len());
        assert_eq!(back.total_events(), e.total_events());
        for (key, counter) in e.iter() {
            assert_eq!(
                back.counter(key).map(NelsonYuCounter::state_parts),
                Some(counter.state_parts()),
                "key {key}"
            );
        }
    }

    #[test]
    fn chain_of_two_deltas_restores_and_continues_the_stream() {
        let mut e = ny_engine(500);
        let base = checkpoint_of(&mut e);
        e.apply(&[(13, 100), (97 * 31 + 13, 5)]);
        let d1 = checkpoint_delta(&e.snapshot(), &base.header()).unwrap();
        e.apply(&[(13, 1), (7, 7), (999_983, 3)]);
        let d2 = checkpoint_delta(&e.snapshot(), &d1.header()).unwrap();

        let mut back =
            restore_checkpoint_chain(&ny_template(), &[base.bytes(), d1.bytes(), d2.bytes()])
                .unwrap();
        assert_eq!(back.total_events(), e.total_events());
        // The restored engine continues the exact random stream.
        let follow_up: Vec<(u64, u64)> = (0..300u64).map(|k| (k * 7, 11 + k)).collect();
        e.apply(&follow_up);
        back.apply(&follow_up);
        for &(key, _) in &follow_up {
            assert_eq!(
                e.counter(key).map(NelsonYuCounter::state_parts),
                back.counter(key).map(NelsonYuCounter::state_parts),
                "key {key}"
            );
        }
    }

    #[test]
    fn empty_delta_is_header_only_and_restores() {
        let mut e = ny_engine(200);
        let base = checkpoint_of(&mut e);
        // No writes between freezes: the delta carries zero sections.
        let delta = checkpoint_delta(&e.snapshot(), &base.header()).unwrap();
        assert_eq!(delta.stats().shards_written, 0);
        assert_eq!(delta.stats().keys, 0);
        let back =
            restore_checkpoint_chain(&ny_template(), &[base.bytes(), delta.bytes()]).unwrap();
        assert_eq!(back.total_events(), e.total_events());
    }

    #[test]
    fn delta_alone_is_refused() {
        let mut e = ny_engine(100);
        let base = checkpoint_of(&mut e);
        e.apply(&[(13, 2)]);
        let delta = checkpoint_delta(&e.snapshot(), &base.header()).unwrap();
        assert_eq!(
            restore_checkpoint(&ny_template(), delta.bytes()).unwrap_err(),
            CheckpointError::DeltaWithoutBase
        );
        assert_eq!(
            restore_checkpoint_chain(&ny_template(), &[delta.bytes()]).unwrap_err(),
            CheckpointError::DeltaWithoutBase
        );
    }

    #[test]
    fn broken_chains_are_refused() {
        let mut e = ny_engine(100);
        let base = checkpoint_of(&mut e);
        e.apply(&[(13, 2)]);
        let d1 = checkpoint_delta(&e.snapshot(), &base.header()).unwrap();
        e.apply(&[(14, 2)]);
        let d2 = checkpoint_delta(&e.snapshot(), &d1.header()).unwrap();
        let t = ny_template();

        // Skipping a link: d2 cites d1, not base.
        assert_eq!(
            restore_checkpoint_chain(&t, &[base.bytes(), d2.bytes()]).unwrap_err(),
            CheckpointError::BadChain {
                what: "delta cites a different parent checkpoint"
            }
        );
        // Reordering the deltas breaks the same check.
        assert!(matches!(
            restore_checkpoint_chain(&t, &[base.bytes(), d2.bytes(), d1.bytes()]).unwrap_err(),
            CheckpointError::BadChain { .. }
        ));
        // A full frame mid-chain is a chain error, not silently a rebase.
        assert!(matches!(
            restore_checkpoint_chain(&t, &[base.bytes(), base.bytes()]).unwrap_err(),
            CheckpointError::BadChain { .. }
        ));
        // An empty chain has nothing to restore.
        assert!(matches!(
            restore_checkpoint_chain(&t, &[]).unwrap_err(),
            CheckpointError::BadChain { .. }
        ));
        // The intact chain still works.
        assert!(restore_checkpoint_chain(&t, &[base.bytes(), d1.bytes(), d2.bytes()]).is_ok());
    }

    #[test]
    fn truncated_delta_is_rejected_without_poisoning_the_chain_fold() {
        let mut e = ny_engine(300);
        let base = checkpoint_of(&mut e);
        e.apply(&[(13, 50), (14, 60)]);
        let delta = checkpoint_delta(&e.snapshot(), &base.header()).unwrap();
        let t = ny_template();
        for keep in [0, 10, PAYLOAD_BYTE, delta.bytes().len() - 1] {
            let err =
                restore_checkpoint_chain(&t, &[base.bytes(), &delta.bytes()[..keep]]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::Corrupt { .. }
                ),
                "kept {keep} bytes: {err:?}"
            );
        }
    }

    #[test]
    fn delta_against_foreign_parent_is_refused_at_write_time() {
        let mut e = ny_engine(100);
        let _ = checkpoint_of(&mut e);
        // Wrong schedule.
        let mut other =
            CounterEngine::new(NelsonYuCounter::new(NyParams::new(0.1, 8).unwrap()), cfg());
        let other_ck = checkpoint_of(&mut other);
        assert_eq!(
            checkpoint_delta(&e.snapshot(), &other_ck.header()).unwrap_err(),
            CheckpointError::ScheduleMismatch
        );
        // Wrong config.
        let mut bigger = CounterEngine::new(
            ny_template(),
            EngineConfig {
                shards: 8,
                seed: 11,
            },
        );
        let bigger_ck = checkpoint_of(&mut bigger);
        assert!(matches!(
            checkpoint_delta(&e.snapshot(), &bigger_ck.header()).unwrap_err(),
            CheckpointError::ConfigMismatch { .. }
        ));
        // Parent claiming a freeze epoch from the snapshot's future.
        let newer = checkpoint_of(&mut e);
        let snap = e.snapshot();
        let mut forged = newer.header();
        forged.epoch = snap.epoch() + 1_000;
        assert!(matches!(
            checkpoint_delta(&snap, &forged).unwrap_err(),
            CheckpointError::BadChain { .. }
        ));
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let mut e = ny_engine(20);
        let ck = checkpoint_of(&mut e);
        let template = ny_template();

        let mut bad = ck.bytes().to_vec();
        bad[0] ^= 0xFF;
        assert_eq!(
            restore_checkpoint(&template, &bad).unwrap_err(),
            CheckpointError::BadMagic
        );

        assert_eq!(
            restore_checkpoint(&template, &ck.bytes()[..4]).unwrap_err(),
            CheckpointError::Truncated
        );
        let half = &ck.bytes()[..ck.bytes().len() / 2];
        assert_eq!(
            restore_checkpoint(&template, half).unwrap_err(),
            CheckpointError::Truncated
        );
        assert_eq!(
            restore_checkpoint(&template, &[]).unwrap_err(),
            CheckpointError::Truncated
        );
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut e = ny_engine(5);
        let mut bytes = checkpoint_of(&mut e).into_bytes();
        // The version field sits at bits 32..48; bump it past both the
        // base and the tiered versions.
        bytes[4] = bytes[4].wrapping_add(2);
        assert!(matches!(
            restore_checkpoint(&ny_template(), &bytes),
            Err(CheckpointError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn rejects_mismatched_schedules_and_families() {
        let mut e = ny_engine(25);
        let ck = checkpoint_of(&mut e);
        // Same family, different parameters.
        let wrong_eps = NelsonYuCounter::new(NyParams::new(0.1, 8).unwrap());
        assert_eq!(
            restore_checkpoint(&wrong_eps, ck.bytes()).unwrap_err(),
            CheckpointError::ScheduleMismatch
        );
        // Different family altogether.
        let morris = MorrisCounter::new(0.5).unwrap();
        assert_eq!(
            restore_checkpoint(&morris, ck.bytes()).unwrap_err(),
            CheckpointError::ScheduleMismatch
        );
    }

    #[test]
    fn rejects_pinned_config_mismatch() {
        let mut e = ny_engine(25);
        let ck = checkpoint_of(&mut e);
        let template = ny_template();
        let wrong = EngineConfig {
            shards: 8,
            seed: 11,
        };
        assert!(matches!(
            restore_checkpoint_expecting(&template, ck.bytes(), wrong),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
        // The right pin restores fine.
        assert!(restore_checkpoint_expecting(&template, ck.bytes(), cfg()).is_ok());
    }

    #[test]
    fn rejects_corrupted_header_totals() {
        let mut e = ny_engine(30);
        let mut bytes = checkpoint_of(&mut e).into_bytes();
        // keys_total lives past the fixed prefix; flip a low bit in it.
        // Fields: magic(32) version(16) kind(8) fp(64) shards(32) seed(64)
        // epoch(64) parent(64) → keys starts at bit 344 = byte 43.
        bytes[43] ^= 1;
        assert!(matches!(
            restore_checkpoint(&ny_template(), &bytes),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_engine_checkpoints_and_restores() {
        let p = NyParams::new(0.3, 6).unwrap();
        let mut e = CounterEngine::new(NelsonYuCounter::new(p), cfg());
        let ck = checkpoint_of(&mut e);
        let back = restore_checkpoint(&NelsonYuCounter::new(p), ck.bytes()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.total_events(), 0);
    }

    #[test]
    fn every_family_round_trips() {
        /// The family-generic "bit-identical persistent state" oracle:
        /// re-encode both counters and compare the code words (covers
        /// every serialized register; instrumentation like peak bits is
        /// deliberately outside).
        fn encoded<C: StateCodec>(c: &C) -> BitVec {
            let mut v = BitVec::new();
            c.encode_state(&mut BitWriter::new(&mut v));
            v
        }

        fn drive<C: StateCodec + Clone + Send + Sync + 'static + std::fmt::Debug>(template: C) {
            let mut e = CounterEngine::new(template.clone(), cfg());
            let mut gen = SplitMix64::new(21);
            let batch: Vec<(u64, u64)> = (0..400u64)
                .map(|k| (k, 1 + gen.next_u64() % 2_000))
                .collect();
            e.apply(&batch);
            let ck = checkpoint_of(&mut e);
            let back = restore_checkpoint(&template, ck.bytes()).unwrap();
            for (key, counter) in e.iter() {
                let restored = back.counter(key).expect("key present");
                assert_eq!(encoded(restored), encoded(counter), "key {key}");
                assert_eq!(restored.estimate(), counter.estimate(), "key {key}");
                assert_eq!(restored.state_bits(), counter.state_bits(), "key {key}");
            }
            assert_eq!(back.total_events(), e.total_events());
        }
        drive(ExactCounter::new());
        drive(MorrisCounter::new(0.25).unwrap());
        drive(ac_core::MorrisPlus::new(0.2, 8).unwrap());
        drive(NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap()));
        drive(CsurosCounter::new(8).unwrap());
    }

    #[test]
    fn checkpoint_size_is_near_the_information_content() {
        // Dense keys, light per-key traffic — the fleet-scale workload.
        // Keys + states must land within 2× of counter_state_bits plus
        // framing (the acceptance bound the pipeline bench also checks).
        let p = NyParams::new(0.2, 8).unwrap();
        let mut e =
            CounterEngine::new(NelsonYuCounter::new(p), EngineConfig { shards: 8, seed: 2 });
        let mut gen = SplitMix64::new(4);
        let batch: Vec<(u64, u64)> = (0..20_000u64)
            .map(|k| (k, 1 + gen.next_u64() % 32))
            .collect();
        e.apply(&batch);
        let ck = checkpoint_of(&mut e);
        let s = ck.stats();
        assert!(
            s.total_bits <= 2 * s.counter_state_bits + s.header_bits,
            "{} bits total vs 2×{} + {} framing",
            s.total_bits,
            s.counter_state_bits,
            s.header_bits
        );
        // And framing itself is a small fraction at this scale.
        assert!(
            s.header_bits < s.total_bits / 4,
            "framing {} of {}",
            s.header_bits,
            s.total_bits
        );
    }

    // ---- version 3: tiered checkpoints ------------------------------

    use ac_core::{CounterFamily, TierMove, TierPolicy};

    /// A family engine with every fourth key migrated off the default
    /// rung, plus the ladder it was tiered against.
    fn tiered_engine(n_keys: u64) -> (CounterEngine<CounterFamily>, Vec<CounterFamily>) {
        let policy = TierPolicy::default_ladder();
        let templates = policy.templates().unwrap();
        let mut e = CounterEngine::new(templates[0].clone(), cfg());
        let mut gen = SplitMix64::new(17);
        let batch: Vec<(u64, u64)> = (0..n_keys)
            .map(|k| (k * 71 + 5, 1 + gen.next_u64() % 3_000))
            .collect();
        e.apply(&batch);
        let moves: Vec<TierMove> = (0..n_keys)
            .step_by(4)
            .map(|k| TierMove {
                key: k * 71 + 5,
                tier: u8::try_from(1 + (k / 4) % 3).unwrap(),
            })
            .collect();
        let migrated = e.apply_migrations(policy.specs(), &moves).unwrap();
        assert_eq!(migrated, moves.len() as u64);
        (e, templates)
    }

    #[test]
    fn tiered_round_trip_restores_tiers_counters_and_rng_streams() {
        let (mut e, templates) = tiered_engine(800);
        let ck = checkpoint_snapshot_with(&e.snapshot(), &templates);
        assert_eq!(ck.header().version, CHECKPOINT_VERSION_TIERED);
        assert_eq!(
            ck.header().params_fingerprint,
            combined_fingerprint(&templates)
        );

        let mut back = restore_checkpoint_with(&templates, ck.bytes()).unwrap();
        assert_eq!(back.len(), e.len());
        assert_eq!(back.stats().tier_keys, e.stats().tier_keys);
        assert_eq!(back.stats().state_bits_total, e.stats().state_bits_total);
        for (key, counter) in e.iter() {
            assert_eq!(back.tier_of(key), e.tier_of(key), "tier of key {key}");
            assert_eq!(
                back.counter(key).map(ApproxCounter::estimate),
                Some(counter.estimate()),
                "estimate of key {key}"
            );
        }

        // A second checkpoint of the freshly restored engine carries the
        // very same payload (headers differ only in the freeze epoch).
        let again = checkpoint_snapshot_with(&back.snapshot(), &templates);
        assert_eq!(
            &ck.bytes()[PAYLOAD_BYTE..],
            &again.bytes()[PAYLOAD_BYTE..],
            "ckpt -> restore -> ckpt must reproduce the payload bit-for-bit"
        );

        // Shard RNGs rode along: the same follow-up batch drives both
        // engines to bit-identical estimates.
        let follow_up: Vec<(u64, u64)> = (0..400u64).map(|k| (k * 71 + 5, 9 + k)).collect();
        e.apply(&follow_up);
        back.apply(&follow_up);
        for &(key, _) in &follow_up {
            assert_eq!(
                e.counter(key).map(ApproxCounter::estimate),
                back.counter(key).map(ApproxCounter::estimate),
                "post-restore estimate of key {key}"
            );
        }
    }

    #[test]
    fn v2_chain_restores_into_a_tiered_ladder_at_the_default_tier() {
        let policy = TierPolicy::default_ladder();
        let templates = policy.templates().unwrap();
        let mut e = CounterEngine::new(templates[0].clone(), cfg());
        let batch: Vec<(u64, u64)> = (0..300u64).map(|k| (k * 13, 5 + k)).collect();
        e.apply(&batch);
        let ck = checkpoint_of(&mut e);
        assert_eq!(ck.header().version, CHECKPOINT_VERSION);

        let back = restore_checkpoint_chain_with(&templates, &[ck.bytes()]).unwrap();
        assert_eq!(back.len(), e.len());
        let counts = back.tier_counts();
        assert_eq!(counts[0], e.len() as u64, "every key on the default rung");
        assert!(counts[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn tiered_delta_extends_a_pre_tiering_v2_base() {
        let policy = TierPolicy::default_ladder();
        let templates = policy.templates().unwrap();
        let mut e = CounterEngine::new(templates[0].clone(), cfg());
        let batch: Vec<(u64, u64)> = (0..500u64).map(|k| (k * 7 + 1, 2 + k % 90)).collect();
        e.apply(&batch);
        let base = checkpoint_of(&mut e);

        // Tiering turned on after the base was cut: migrate and keep
        // counting, then cut a version-3 delta against the version-2
        // parent.
        let moves: Vec<TierMove> = (0..500u64)
            .step_by(5)
            .map(|k| TierMove {
                key: k * 7 + 1,
                tier: 1,
            })
            .collect();
        e.apply_migrations(policy.specs(), &moves).unwrap();
        let more: Vec<(u64, u64)> = (0..200u64).map(|k| (k * 7 + 1, 3)).collect();
        e.apply(&more);
        let delta = checkpoint_delta_with(&e.snapshot(), &templates, &base.header()).unwrap();
        assert_eq!(delta.header().version, CHECKPOINT_VERSION_TIERED);

        let back =
            restore_checkpoint_chain_with(&templates, &[base.bytes(), delta.bytes()]).unwrap();
        assert_eq!(back.len(), e.len());
        assert_eq!(back.total_events(), e.total_events());
        assert_eq!(back.stats().tier_keys, e.stats().tier_keys);
        for (key, _) in e.iter() {
            assert_eq!(back.tier_of(key), e.tier_of(key), "tier of key {key}");
        }
    }

    #[test]
    #[should_panic(expected = "version 2 cannot represent them")]
    fn version_2_writer_refuses_an_engine_with_tier_tags() {
        let (mut e, _) = tiered_engine(40);
        let _ = checkpoint_of(&mut e);
    }

    #[test]
    fn tiered_frame_refuses_a_bare_or_wrong_ladder() {
        let (mut e, templates) = tiered_engine(60);
        let ck = checkpoint_snapshot_with(&e.snapshot(), &templates);
        // A single-template restore cannot cover the ladder fingerprint.
        assert_eq!(
            restore_checkpoint(&templates[0], ck.bytes()).unwrap_err(),
            CheckpointError::ScheduleMismatch
        );
        // Nor can a reordered ladder: the fingerprint fold is
        // order-sensitive because the tier *indices* must line up.
        let mut reversed = templates.clone();
        reversed.reverse();
        assert_eq!(
            restore_checkpoint_with(&reversed, ck.bytes()).unwrap_err(),
            CheckpointError::ScheduleMismatch
        );
    }

    // ---- parallel encode / restore, off-thread compaction ------------

    use proptest::prelude::*;

    /// Builds a family engine plus a `rounds`-delta chain over it, with
    /// traffic seeded by `seed`.
    fn chain_of<C: StateCodec + Clone + Send + Sync + 'static>(
        template: &C,
        seed: u64,
        rounds: usize,
    ) -> (CounterEngine<C>, Vec<Checkpoint>) {
        let mut e = CounterEngine::new(template.clone(), cfg());
        let mut gen = SplitMix64::new(seed);
        let batch: Vec<(u64, u64)> = (0..300u64)
            .map(|k| (k * 13 + 7, 1 + gen.next_u64() % 700))
            .collect();
        e.apply(&batch);
        let mut frames = vec![checkpoint_snapshot(&e.snapshot())];
        for _ in 0..rounds {
            let extra: Vec<(u64, u64)> = (0..40)
                .map(|_| (gen.next_u64() % 5_000, 1 + gen.next_u64() % 50))
                .collect();
            e.apply(&extra);
            let parent = frames.last().unwrap().header();
            frames.push(checkpoint_delta(&e.snapshot(), &parent).unwrap());
        }
        (e, frames)
    }

    /// The tentpole encode oracle: any worker count must commit the very
    /// same frame bytes the serial encoder does.
    fn assert_parallel_encode_identical<C: StateCodec + Clone + Send + Sync + 'static>(
        template: C,
        seed: u64,
        workers: usize,
    ) {
        let (mut e, _) = chain_of(&template, seed, 0);
        let snap = e.snapshot();
        let serial = checkpoint_snapshot_workers(&snap, 1);
        let parallel = checkpoint_snapshot_workers(&snap, workers);
        assert_eq!(serial.bytes(), parallel.bytes(), "workers {workers}");
    }

    /// The compaction oracle: a compacted base is byte-identical across
    /// worker counts, its payload is exactly a full checkpoint of the
    /// serially folded chain, its header pins the folded tip, and it
    /// restores to the same state the chain does.
    fn assert_compaction_matches_serial_fold<C>(template: C, seed: u64, rounds: usize)
    where
        C: StateCodec + Clone + Send + Sync + 'static,
    {
        let (_, frames) = chain_of(&template, seed, rounds);
        let segments: Vec<&[u8]> = frames.iter().map(Checkpoint::bytes).collect();
        let serial = compact_chain_workers(&template, &segments, 1).unwrap();
        for workers in [0, 2, 8] {
            let parallel = compact_chain_workers(&template, &segments, workers).unwrap();
            assert_eq!(serial.bytes(), parallel.bytes(), "workers {workers}");
        }
        let mut folded = restore_checkpoint_chain_workers(&template, &segments, 1).unwrap();
        let replayed = checkpoint_snapshot_workers(&folded.snapshot(), 1);
        assert_eq!(
            &serial.bytes()[PAYLOAD_BYTE..],
            &replayed.bytes()[PAYLOAD_BYTE..],
            "compacted payload must be the serial fold's full checkpoint"
        );
        let tip = frames.last().unwrap().header();
        assert_eq!(serial.header().epoch, tip.epoch, "epoch pins the tip");
        assert_eq!(serial.header().parent_chain, tip.chain, "tip digest kept");
        let via = restore_checkpoint(&template, serial.bytes()).unwrap();
        assert_eq!(via.total_events(), folded.total_events());
        assert_eq!(via.len(), folded.len());
    }

    #[test]
    fn parallel_encode_is_bit_identical_for_every_family() {
        for workers in [0, 2, 3, 16] {
            assert_parallel_encode_identical(ExactCounter::new(), 40, workers);
            assert_parallel_encode_identical(MorrisCounter::new(0.25).unwrap(), 41, workers);
            assert_parallel_encode_identical(
                ac_core::MorrisPlus::new(0.2, 8).unwrap(),
                42,
                workers,
            );
            assert_parallel_encode_identical(ny_template(), 43, workers);
            assert_parallel_encode_identical(CsurosCounter::new(8).unwrap(), 44, workers);
        }
    }

    #[test]
    fn parallel_encode_is_bit_identical_for_tiered_frames() {
        let (mut e, templates) = tiered_engine(800);
        let snap = e.snapshot();
        let serial = checkpoint_snapshot_with_workers(&snap, &templates, 1);
        for workers in [0, 2, 5, 8] {
            let parallel = checkpoint_snapshot_with_workers(&snap, &templates, workers);
            assert_eq!(serial.bytes(), parallel.bytes(), "workers {workers}");
        }
    }

    #[test]
    fn parallel_restore_matches_serial_restore_over_a_chain() {
        let template = ny_template();
        let (e, frames) = chain_of(&template, 77, 3);
        let segments: Vec<&[u8]> = frames.iter().map(Checkpoint::bytes).collect();
        let serial = restore_checkpoint_chain_workers(&template, &segments, 1).unwrap();
        assert_eq!(serial.total_events(), e.total_events());
        for workers in [0, 2, 4, 8] {
            let mut parallel =
                restore_checkpoint_chain_workers(&template, &segments, workers).unwrap();
            assert_eq!(parallel.total_events(), serial.total_events());
            assert_eq!(parallel.len(), serial.len());
            // Shard RNG streams and every counter register came through
            // identically: re-encoding both engines in full proves it.
            let mut serial_clone =
                restore_checkpoint_chain_workers(&template, &segments, 1).unwrap();
            assert_eq!(
                checkpoint_snapshot(&serial_clone.snapshot()).bytes(),
                checkpoint_snapshot(&parallel.snapshot()).bytes(),
                "workers {workers}"
            );
        }
    }

    #[test]
    fn compacted_base_chains_the_inflight_delta_through_the_alias_rule() {
        let template = ny_template();
        let (mut e, frames) = chain_of(&template, 5, 2);
        let segments: Vec<&[u8]> = frames.iter().map(Checkpoint::bytes).collect();
        let cbase = compact_chain(&template, &segments).unwrap();
        let tip = frames.last().unwrap().header();

        // Deltas kept landing against the live tip while the fold ran.
        e.apply(&[(1, 5), (999, 2)]);
        let d_next = checkpoint_delta(&e.snapshot(), &tip).unwrap();
        e.apply(&[(2, 9)]);
        let d_after = checkpoint_delta(&e.snapshot(), &d_next.header()).unwrap();

        // The compacted base + the in-flight delta restore to exactly
        // the state the uncompacted chain + that delta restore to.
        let via_alias =
            restore_checkpoint_chain(&template, &[cbase.bytes(), d_next.bytes(), d_after.bytes()])
                .unwrap();
        let mut full_chain: Vec<&[u8]> = segments.clone();
        full_chain.push(d_next.bytes());
        full_chain.push(d_after.bytes());
        let via_history = restore_checkpoint_chain(&template, &full_chain).unwrap();
        assert_eq!(via_alias.total_events(), via_history.total_events());
        assert_eq!(via_alias.len(), via_history.len());
        for (key, counter) in via_history.iter() {
            assert_eq!(
                via_alias.counter(key).map(NelsonYuCounter::state_parts),
                Some(counter.state_parts()),
                "key {key}"
            );
        }
    }

    #[test]
    fn alias_rule_accepts_only_the_delta_cut_against_the_folded_tip() {
        let template = ny_template();
        let (mut e, frames) = chain_of(&template, 6, 1);
        let segments: Vec<&[u8]> = frames.iter().map(Checkpoint::bytes).collect();
        let cbase = compact_chain(&template, &segments).unwrap();
        let tip = frames.last().unwrap().header();
        e.apply(&[(1, 1)]);
        let d_next = checkpoint_delta(&e.snapshot(), &tip).unwrap();
        e.apply(&[(2, 2)]);
        let d_after = checkpoint_delta(&e.snapshot(), &d_next.header()).unwrap();

        // Skipping the aliased link: d_after cites d_next, which is
        // neither the compacted base's digest nor the folded tip's.
        assert_eq!(
            restore_checkpoint_chain(&template, &[cbase.bytes(), d_after.bytes()]).unwrap_err(),
            CheckpointError::BadChain {
                what: "delta cites a different parent checkpoint"
            }
        );
        // An ordinary full frame (parent_chain = 0) still refuses a
        // delta that cites someone else — the alias needs a real tip
        // digest on the base side, so pre-compaction chains are exactly
        // as strict as before.
        assert_eq!(
            restore_checkpoint_chain(&template, &[segments[0], d_next.bytes()]).unwrap_err(),
            CheckpointError::BadChain {
                what: "delta cites a different parent checkpoint"
            }
        );
    }

    #[test]
    fn tiered_compaction_matches_the_serial_fold_byte_for_byte() {
        let (mut e, templates) = tiered_engine(600);
        let base = checkpoint_snapshot_with(&e.snapshot(), &templates);
        e.apply(&[(5, 40), (71 + 5, 7)]);
        let d1 = checkpoint_delta_with(&e.snapshot(), &templates, &base.header()).unwrap();
        e.apply(&[(2 * 71 + 5, 11)]);
        let d2 = checkpoint_delta_with(&e.snapshot(), &templates, &d1.header()).unwrap();
        let segments = [base.bytes(), d1.bytes(), d2.bytes()];

        let serial = compact_chain_with_workers(&templates, &segments, 1).unwrap();
        for workers in [0, 4] {
            let parallel = compact_chain_with_workers(&templates, &segments, workers).unwrap();
            assert_eq!(serial.bytes(), parallel.bytes(), "workers {workers}");
        }
        assert_eq!(serial.header().version, CHECKPOINT_VERSION_TIERED);
        let mut folded = restore_checkpoint_chain_with(&templates, &segments).unwrap();
        let replayed = checkpoint_snapshot_with_workers(&folded.snapshot(), &templates, 1);
        assert_eq!(
            &serial.bytes()[PAYLOAD_BYTE..],
            &replayed.bytes()[PAYLOAD_BYTE..]
        );
        // Tier tags survive the fold.
        let via = restore_checkpoint_with(&templates, serial.bytes()).unwrap();
        assert_eq!(via.stats().tier_keys, folded.stats().tier_keys);
    }

    proptest! {
        #[test]
        fn parallel_encode_bytes_equal_serial_across_families(
            seed in 1u64..100_000,
            workers in 2usize..9,
        ) {
            assert_parallel_encode_identical(ExactCounter::new(), seed, workers);
            assert_parallel_encode_identical(MorrisCounter::new(0.25).unwrap(), seed, workers);
            assert_parallel_encode_identical(
                ac_core::MorrisPlus::new(0.2, 8).unwrap(), seed, workers);
            assert_parallel_encode_identical(ny_template(), seed, workers);
            assert_parallel_encode_identical(CsurosCounter::new(8).unwrap(), seed, workers);
        }

        #[test]
        fn compacted_base_is_byte_identical_to_the_serial_fold(
            seed in 1u64..100_000,
            rounds in 1usize..4,
        ) {
            assert_compaction_matches_serial_fold(ExactCounter::new(), seed, rounds);
            assert_compaction_matches_serial_fold(MorrisCounter::new(0.25).unwrap(), seed, rounds);
            assert_compaction_matches_serial_fold(
                ac_core::MorrisPlus::new(0.2, 8).unwrap(), seed, rounds);
            assert_compaction_matches_serial_fold(ny_template(), seed, rounds);
            assert_compaction_matches_serial_fold(CsurosCounter::new(8).unwrap(), seed, rounds);
        }
    }
}
