//! The checkpoint layer: snapshot serialization through `ac-bitio`.
//!
//! A checkpoint is a byte buffer holding a versioned fixed-width header
//! followed by one length-prefixed [`ac_bitio::frame`] section per shard.
//! Counter states are written with the families' [`StateCodec`] codes and
//! keys as Rice-coded sorted gaps, so a million checkpointed counters
//! cost on the order of their summed `state_bits` — the paper's thesis,
//! made durable — rather than a million fixed-width records. Each shard's
//! RNG state rides along (256 bits), so a restored engine continues the
//! *exact* random stream the original would have: checkpoint/restore is
//! invisible to subsequent evolution, not merely distribution-preserving.
//!
//! ```text
//! magic(32) version(16) fingerprint(64) shards(32) seed(64)
//! keys(64) events(64) payload_bits(64)
//! ┌ per shard ───────────────────────────────────────────────┐
//! │ section_len(32) │ count(δ) events(64) rng(4×64)          │
//! │                 │ keys: rice-coded sorted gaps           │
//! │                 │ states: StateCodec, key-sorted order   │
//! └──────────────────────────────────────────────────────────┘
//! ```
//!
//! The header embeds the [`EngineConfig`] and the template's
//! [`StateCodec::params_fingerprint`]; [`restore_checkpoint`] refuses
//! mismatched restores (wrong family, wrong parameters, wrong version,
//! truncated data) with a typed [`CheckpointError`]. The header carries
//! its own checksum and the payload an FNV-1a digest, both verified — and
//! every structural quantity (shard count, per-shard key counts, section
//! lengths) is plausibility-bounded — before anything is allocated or
//! parsed, so truncation and any bit corruption surface as typed errors.
//! The residual trust boundary is deliberate: input that *passes* both
//! checksums is treated as written by this module, so a deliberately
//! crafted checksum-valid buffer may still abort inside a state decoder
//! rather than return `Err`.

use crate::registry::{CounterEngine, EngineConfig};
use crate::shard::Shard;
use crate::snapshot::EngineSnapshot;
use ac_bitio::frame::{
    begin_section, decode_sorted_keys, encode_sorted_keys, end_section, read_section,
};
use ac_bitio::{BitReader, BitVec, BitWriter};
use ac_core::{CoreError, StateCodec};
use ac_randkit::Xoshiro256PlusPlus;
use std::fmt;

/// `"ACKP"` — approximate-counting checkpoint.
pub const CHECKPOINT_MAGIC: u32 = 0x4143_4B50;

/// Current format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Fixed header width in bits: the eight fields, then a 64-bit header
/// checksum, then a 64-bit payload checksum (66 bytes total, so the
/// payload starts byte-aligned).
const HEADER_BITS: u64 = HEADER_FIELD_BITS + 64 + 64;

/// Width of the eight header fields alone.
const HEADER_FIELD_BITS: u64 = 32 + 16 + 64 + 32 + 64 + 64 + 64 + 64;

/// Byte offset of the payload checksum field.
const PAYLOAD_CHECKSUM_BYTE: usize = ((HEADER_FIELD_BITS + 64) / 8) as usize;

/// Byte offset of the first payload byte.
const PAYLOAD_BYTE: usize = (HEADER_BITS / 8) as usize;

/// The canonical [`ac_randkit::mix64`] finalizer chained over the header
/// fields: any header bit flip (past the magic/version prefix, which
/// carry their own typed errors) is caught before the payload is touched.
fn header_checksum(fields: &[u64]) -> u64 {
    let mut acc = 0x0C4E_C4B0_14E5_EEDC_u64;
    for &w in fields {
        acc = ac_randkit::mix64(acc ^ w);
    }
    acc
}

/// FNV-1a over the payload bytes: verified before any payload parsing, so
/// flipped payload bits surface as a typed [`CheckpointError::Corrupt`]
/// instead of feeding garbage to the self-delimiting decoders.
fn payload_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Why a restore was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The buffer does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The format version is not one this build reads.
    UnsupportedVersion {
        /// The version found in the header.
        got: u16,
    },
    /// The template's family/parameter fingerprint does not match the
    /// one the checkpoint was written with.
    ScheduleMismatch,
    /// The caller pinned an expected [`EngineConfig`] and the header
    /// disagrees.
    ConfigMismatch {
        /// The configuration the caller expected.
        expected: EngineConfig,
        /// The configuration in the header.
        got: EngineConfig,
    },
    /// The buffer ends before the structure it promises.
    Truncated,
    /// A structural invariant does not hold (lengths, totals, RNG state).
    Corrupt {
        /// Human-readable description.
        what: &'static str,
    },
    /// A counter state failed its family's validity checks on decode.
    State(CoreError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { got } => {
                write!(f, "unsupported checkpoint version {got}")
            }
            CheckpointError::ScheduleMismatch => write!(
                f,
                "template family/parameters do not match the checkpoint's fingerprint"
            ),
            CheckpointError::ConfigMismatch { expected, got } => write!(
                f,
                "engine config mismatch: expected {expected:?}, checkpoint has {got:?}"
            ),
            CheckpointError::Truncated => write!(f, "checkpoint is truncated"),
            CheckpointError::Corrupt { what } => write!(f, "checkpoint is corrupt: {what}"),
            CheckpointError::State(e) => write!(f, "checkpoint holds an invalid state: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CoreError> for CheckpointError {
    fn from(e: CoreError) -> Self {
        CheckpointError::State(e)
    }
}

/// Size accounting for one written checkpoint — the receipt proving
/// counters persist at ~their `state_bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Counters written.
    pub keys: u64,
    /// Shards written.
    pub shards: usize,
    /// Sum of live [`state_bits`](ac_bitio::StateBits::state_bits) over
    /// every written counter — by construction identical to
    /// [`EngineStats::counter_state_bits`](crate::EngineStats::counter_state_bits)
    /// at freeze time (a test pins this).
    pub counter_state_bits: u64,
    /// Bits spent on encoded counter states.
    pub state_code_bits: u64,
    /// Bits spent on the Rice-coded key sets.
    pub key_bits: u64,
    /// Bits spent on framing: the fixed header plus per-shard section
    /// preambles (lengths, counts, event tallies, RNG states).
    pub header_bits: u64,
    /// Total checkpoint size in bits (= the three parts above).
    pub total_bits: u64,
}

impl CheckpointStats {
    /// Serialized size in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.total_bits.div_ceil(8)
    }
}

/// A written checkpoint: the serialized bytes plus their size breakdown.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    bytes: Vec<u8>,
    stats: CheckpointStats,
}

impl Checkpoint {
    /// The serialized checkpoint, ready for disk or the wire.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the checkpoint, returning the bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// The size breakdown.
    #[must_use]
    pub fn stats(&self) -> CheckpointStats {
        self.stats
    }
}

/// The parsed fixed header of a checkpoint (a cheap peek — no payload is
/// touched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Format version.
    pub version: u16,
    /// Family/parameter fingerprint of the written counters.
    pub params_fingerprint: u64,
    /// The engine configuration at freeze time.
    pub config: EngineConfig,
    /// Total keys in the checkpoint.
    pub keys: u64,
    /// Total events at freeze time.
    pub events: u64,
    /// Payload length in bits (everything after the fixed header).
    pub payload_bits: u64,
}

/// Serializes a snapshot into a [`Checkpoint`].
#[must_use]
pub fn checkpoint_snapshot<C: StateCodec + Clone>(snap: &EngineSnapshot<C>) -> Checkpoint {
    let mut v = BitVec::new();
    // Fixed header; the payload length is patched in at the end.
    v.push_bits(u64::from(CHECKPOINT_MAGIC), 32);
    v.push_bits(u64::from(CHECKPOINT_VERSION), 16);
    v.push_bits(snap.template.params_fingerprint(), 64);
    let config = snap.config();
    v.push_bits(config.shards as u64, 32);
    v.push_bits(config.seed, 64);
    v.push_bits(snap.len() as u64, 64);
    v.push_bits(snap.total_events(), 64);
    let payload_len_at = v.len();
    v.push_bits(0, 64); // payload length, patched below
    let header_checksum_at = v.len();
    v.push_bits(0, 64); // header checksum, patched below
    v.push_bits(0, 64); // payload checksum, patched into the bytes below

    let mut state_code_bits = 0u64;
    let mut key_bits = 0u64;
    let mut counter_state_bits = 0u64;
    for shard in &snap.shards {
        let section = begin_section(&mut v);
        // Per-shard preamble: count, exact events, RNG state.
        {
            let mut w = BitWriter::new(&mut v);
            ac_bitio::codes::encode_delta0(&mut w, shard.len() as u64);
            w.write_bits(shard.events(), 64);
            for word in shard.rng().state() {
                w.write_bits(word, 64);
            }
        }
        // Keys sorted ascending, gap-coded; states follow in key order.
        let mut entries: Vec<(u64, &C)> = shard.entries().collect();
        entries.sort_unstable_by_key(|&(key, _)| key);
        let keys: Vec<u64> = entries.iter().map(|&(key, _)| key).collect();
        key_bits += encode_sorted_keys(&mut v, &keys);
        let before = v.len();
        {
            let mut w = BitWriter::new(&mut v);
            for (_, counter) in &entries {
                counter.encode_state(&mut w);
                counter_state_bits += counter.state_bits();
            }
        }
        state_code_bits += v.len() - before;
        end_section(&mut v, section);
    }
    let total = v.len();
    let payload_bits = total - HEADER_BITS;
    v.overwrite_bits(payload_len_at, payload_bits, 64);
    v.overwrite_bits(
        header_checksum_at,
        header_checksum(&[
            u64::from(CHECKPOINT_MAGIC),
            u64::from(CHECKPOINT_VERSION),
            snap.template.params_fingerprint(),
            config.shards as u64,
            config.seed,
            snap.len() as u64,
            snap.total_events(),
            payload_bits,
        ]),
        64,
    );
    let mut bytes = v.to_bytes();
    let payload_sum = payload_checksum(&bytes[PAYLOAD_BYTE..]);
    bytes[PAYLOAD_CHECKSUM_BYTE..PAYLOAD_BYTE].copy_from_slice(&payload_sum.to_le_bytes());

    let stats = CheckpointStats {
        keys: snap.len() as u64,
        shards: snap.shards.len(),
        counter_state_bits,
        state_code_bits,
        key_bits,
        header_bits: total - state_code_bits - key_bits,
        total_bits: total,
    };
    Checkpoint { bytes, stats }
}

/// Parses and validates the fixed header.
///
/// # Errors
///
/// Returns the corresponding [`CheckpointError`] for a short buffer, bad
/// magic, or an unsupported version.
pub fn read_header(bytes: &[u8]) -> Result<CheckpointHeader, CheckpointError> {
    let v = BitVec::from_bytes(bytes);
    let mut r = BitReader::new(&v);
    let magic = r.try_read_bits(32).ok_or(CheckpointError::Truncated)?;
    if magic != u64::from(CHECKPOINT_MAGIC) {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.try_read_bits(16).ok_or(CheckpointError::Truncated)? as u16;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion { got: version });
    }
    let params_fingerprint = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let shards = r.try_read_bits(32).ok_or(CheckpointError::Truncated)? as usize;
    let seed = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let keys = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let events = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let payload_bits = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let stored_sum = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
    let computed = header_checksum(&[
        magic,
        u64::from(version),
        params_fingerprint,
        shards as u64,
        seed,
        keys,
        events,
        payload_bits,
    ]);
    if stored_sum != computed {
        return Err(CheckpointError::Corrupt {
            what: "header checksum mismatch",
        });
    }
    if shards == 0 {
        return Err(CheckpointError::Corrupt {
            what: "zero shards",
        });
    }
    Ok(CheckpointHeader {
        version,
        params_fingerprint,
        config: EngineConfig { shards, seed },
        keys,
        events,
        payload_bits,
    })
}

/// Rebuilds a [`CounterEngine`] from checkpoint bytes. `template`
/// supplies the family and parameter schedule; it must match the
/// checkpoint's fingerprint (its registers are ignored).
///
/// # Errors
///
/// Returns a [`CheckpointError`] for any mismatch, truncation, or
/// validation failure; on success every key's counter state — and each
/// shard's RNG — is bit-identical to the snapshot's.
pub fn restore_checkpoint<C: StateCodec + Clone>(
    template: &C,
    bytes: &[u8],
) -> Result<CounterEngine<C>, CheckpointError> {
    let header = read_header(bytes)?;
    if header.params_fingerprint != template.params_fingerprint() {
        return Err(CheckpointError::ScheduleMismatch);
    }
    if bytes.len() < PAYLOAD_BYTE {
        return Err(CheckpointError::Truncated);
    }
    // Length checks first (truncation is its own condition), then the
    // payload checksum, then — and only then — parsing.
    let available_bits = (bytes.len() - PAYLOAD_BYTE) as u64 * 8;
    if available_bits < header.payload_bits {
        return Err(CheckpointError::Truncated);
    }
    if available_bits - header.payload_bits >= 8 {
        return Err(CheckpointError::Corrupt {
            what: "trailing bytes after payload",
        });
    }
    let stored_sum = u64::from_le_bytes(
        bytes[PAYLOAD_CHECKSUM_BYTE..PAYLOAD_BYTE]
            .try_into()
            .expect("eight checksum bytes"),
    );
    if stored_sum != payload_checksum(&bytes[PAYLOAD_BYTE..]) {
        return Err(CheckpointError::Corrupt {
            what: "payload checksum mismatch",
        });
    }
    // Plausibility bound before any sizing decision: every shard section
    // costs at least 32 (length prefix) + 1 (count) + 64 (events) + 256
    // (RNG) bits, so a shard count the payload cannot possibly hold is
    // structural corruption, not something to allocate for.
    const MIN_SHARD_SECTION_BITS: u64 = 32 + 1 + 64 + 256;
    if header.config.shards as u64 > header.payload_bits / MIN_SHARD_SECTION_BITS + 1 {
        return Err(CheckpointError::Corrupt {
            what: "shard count exceeds what the payload can hold",
        });
    }
    let v = BitVec::from_bytes(bytes);
    let mut r = BitReader::at(&v, HEADER_BITS);

    let mut shards = Vec::with_capacity(header.config.shards);
    let mut keys_total = 0u64;
    let mut events_total = 0u64;
    for _ in 0..header.config.shards {
        let section_len = read_section(&mut r).ok_or(CheckpointError::Truncated)?;
        let section_start = r.position();

        let count = ac_bitio::codes::try_decode_delta0(&mut r).ok_or(CheckpointError::Corrupt {
            what: "undecodable shard key count",
        })?;
        // Each key costs >= 1 bit inside the section; a count beyond the
        // section length cannot be real, so reject before sizing buffers
        // by it.
        if count > section_len {
            return Err(CheckpointError::Corrupt {
                what: "shard key count exceeds its section",
            });
        }
        let count = usize::try_from(count).map_err(|_| CheckpointError::Corrupt {
            what: "shard key count overflows usize",
        })?;
        let events = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.try_read_bits(64).ok_or(CheckpointError::Truncated)?;
        }
        if rng_state.iter().all(|&w| w == 0) {
            return Err(CheckpointError::Corrupt {
                what: "all-zero shard RNG state",
            });
        }
        let keys = decode_sorted_keys(&mut r, count).ok_or(CheckpointError::Corrupt {
            what: "undecodable shard key set",
        })?;
        let mut entries = Vec::with_capacity(count);
        for key in keys {
            let counter = template.decode_state(&mut r)?;
            entries.push((key, counter));
        }
        if r.position() - section_start != section_len {
            return Err(CheckpointError::Corrupt {
                what: "shard section length mismatch",
            });
        }
        keys_total += entries.len() as u64;
        events_total += events;
        shards.push(Shard::from_restored(
            Xoshiro256PlusPlus::from_state(rng_state),
            events,
            entries,
        ));
    }
    if r.position() - HEADER_BITS != header.payload_bits {
        return Err(CheckpointError::Corrupt {
            what: "payload length mismatch",
        });
    }
    if keys_total != header.keys || events_total != header.events {
        return Err(CheckpointError::Corrupt {
            what: "shard totals disagree with the header",
        });
    }
    Ok(CounterEngine::from_restored(
        template.clone(),
        header.config,
        shards,
    ))
}

/// [`restore_checkpoint`], additionally refusing a checkpoint whose
/// embedded [`EngineConfig`] differs from `expected` — for deployments
/// where the config is pinned externally and a drifted checkpoint must
/// not silently win.
///
/// # Errors
///
/// [`CheckpointError::ConfigMismatch`] on disagreement, plus everything
/// [`restore_checkpoint`] returns.
pub fn restore_checkpoint_expecting<C: StateCodec + Clone>(
    template: &C,
    bytes: &[u8],
    expected: EngineConfig,
) -> Result<CounterEngine<C>, CheckpointError> {
    let header = read_header(bytes)?;
    if header.config != expected {
        return Err(CheckpointError::ConfigMismatch {
            expected,
            got: header.config,
        });
    }
    restore_checkpoint(template, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_bitio::StateBits;
    use ac_core::{
        ApproxCounter, CsurosCounter, ExactCounter, MorrisCounter, NelsonYuCounter, NyParams,
    };
    use ac_randkit::{RandomSource, SplitMix64, Xoshiro256PlusPlus};

    fn cfg() -> EngineConfig {
        EngineConfig {
            shards: 4,
            seed: 11,
        }
    }

    fn ny_engine(n_keys: u64) -> CounterEngine<NelsonYuCounter> {
        let p = NyParams::new(0.2, 8).unwrap();
        let mut e = CounterEngine::new(NelsonYuCounter::new(p), cfg());
        let mut gen = SplitMix64::new(3);
        let batch: Vec<(u64, u64)> = (0..n_keys)
            .map(|k| (k * 97 + 13, 1 + gen.next_u64() % 5_000))
            .collect();
        e.apply(&batch);
        e
    }

    fn checkpoint_of<C: StateCodec + Clone + ac_core::Mergeable>(
        e: &CounterEngine<C>,
    ) -> Checkpoint {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        checkpoint_snapshot(&e.snapshot(&mut rng).unwrap())
    }

    #[test]
    fn round_trip_preserves_every_counter_bit_for_bit() {
        let e = ny_engine(1_000);
        let ck = checkpoint_of(&e);
        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
        let back = restore_checkpoint(&template, ck.bytes()).unwrap();
        assert_eq!(back.len(), e.len());
        assert_eq!(back.total_events(), e.total_events());
        assert_eq!(back.config(), e.config());
        for (key, counter) in e.iter() {
            let restored = back.counter(key).expect("key present");
            assert_eq!(restored.state_parts(), counter.state_parts(), "key {key}");
            assert_eq!(restored.estimate(), counter.estimate());
            assert_eq!(restored.state_bits(), counter.state_bits());
        }
    }

    #[test]
    fn restored_engine_continues_the_exact_random_stream() {
        // Apply the same post-checkpoint batch to the original and the
        // restored engine: bit-identical results, because shard RNG
        // states ride in the checkpoint.
        let mut original = ny_engine(300);
        let ck = checkpoint_of(&original);
        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
        let mut restored = restore_checkpoint(&template, ck.bytes()).unwrap();

        let follow_up: Vec<(u64, u64)> = (0..500u64).map(|k| (k * 31, 40 + k)).collect();
        original.apply(&follow_up);
        restored.apply(&follow_up);
        assert_eq!(original.total_events(), restored.total_events());
        for &(key, _) in &follow_up {
            // Compare persistent registers: the peak-bits high-water mark
            // is instrumentation (reset by restore), not state.
            assert_eq!(
                original.counter(key).map(NelsonYuCounter::state_parts),
                restored.counter(key).map(NelsonYuCounter::state_parts),
                "key {key}"
            );
        }
    }

    #[test]
    fn stats_agree_with_engine_state_bits() {
        // The satellite contract: what checkpoint writes is exactly what
        // EngineStats reports as counter_state_bits.
        let e = ny_engine(2_000);
        let ck = checkpoint_of(&e);
        assert_eq!(ck.stats().counter_state_bits, e.stats().counter_state_bits);
        assert_eq!(ck.stats().keys, e.len() as u64);
        assert_eq!(
            ck.stats().total_bits,
            ck.stats().state_code_bits + ck.stats().key_bits + ck.stats().header_bits
        );
        assert_eq!(ck.stats().bytes(), ck.bytes().len() as u64);
    }

    #[test]
    fn header_peek_matches_written_engine() {
        let e = ny_engine(50);
        let ck = checkpoint_of(&e);
        let h = read_header(ck.bytes()).unwrap();
        assert_eq!(h.version, CHECKPOINT_VERSION);
        assert_eq!(h.config, e.config());
        assert_eq!(h.keys, 50);
        assert_eq!(h.events, e.total_events());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let e = ny_engine(20);
        let ck = checkpoint_of(&e);
        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());

        let mut bad = ck.bytes().to_vec();
        bad[0] ^= 0xFF;
        assert_eq!(
            restore_checkpoint(&template, &bad).unwrap_err(),
            CheckpointError::BadMagic
        );

        assert_eq!(
            restore_checkpoint(&template, &ck.bytes()[..4]).unwrap_err(),
            CheckpointError::Truncated
        );
        let half = &ck.bytes()[..ck.bytes().len() / 2];
        assert_eq!(
            restore_checkpoint(&template, half).unwrap_err(),
            CheckpointError::Truncated
        );
        assert_eq!(
            restore_checkpoint(&template, &[]).unwrap_err(),
            CheckpointError::Truncated
        );
    }

    #[test]
    fn rejects_unsupported_version() {
        let e = ny_engine(5);
        let mut bytes = checkpoint_of(&e).into_bytes();
        // The version field sits at bits 32..48; bump it.
        bytes[4] = bytes[4].wrapping_add(1);
        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
        assert!(matches!(
            restore_checkpoint(&template, &bytes),
            Err(CheckpointError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn rejects_mismatched_schedules_and_families() {
        let e = ny_engine(25);
        let ck = checkpoint_of(&e);
        // Same family, different parameters.
        let wrong_eps = NelsonYuCounter::new(NyParams::new(0.1, 8).unwrap());
        assert_eq!(
            restore_checkpoint(&wrong_eps, ck.bytes()).unwrap_err(),
            CheckpointError::ScheduleMismatch
        );
        // Different family altogether.
        let morris = MorrisCounter::new(0.5).unwrap();
        assert_eq!(
            restore_checkpoint(&morris, ck.bytes()).unwrap_err(),
            CheckpointError::ScheduleMismatch
        );
    }

    #[test]
    fn rejects_pinned_config_mismatch() {
        let e = ny_engine(25);
        let ck = checkpoint_of(&e);
        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
        let wrong = EngineConfig {
            shards: 8,
            seed: 11,
        };
        assert!(matches!(
            restore_checkpoint_expecting(&template, ck.bytes(), wrong),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
        // The right pin restores fine.
        assert!(restore_checkpoint_expecting(&template, ck.bytes(), cfg()).is_ok());
    }

    #[test]
    fn rejects_corrupted_header_totals() {
        let e = ny_engine(30);
        let mut bytes = checkpoint_of(&e).into_bytes();
        // keys_total lives at bits 208..272 → bytes 26..34; flip a low bit.
        bytes[26] ^= 1;
        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
        assert!(matches!(
            restore_checkpoint(&template, &bytes),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_engine_checkpoints_and_restores() {
        let p = NyParams::new(0.3, 6).unwrap();
        let e = CounterEngine::new(NelsonYuCounter::new(p), cfg());
        let ck = checkpoint_of(&e);
        let back = restore_checkpoint(&NelsonYuCounter::new(p), ck.bytes()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.total_events(), 0);
    }

    #[test]
    fn every_family_round_trips() {
        /// The family-generic "bit-identical persistent state" oracle:
        /// re-encode both counters and compare the code words (covers
        /// every serialized register; instrumentation like peak bits is
        /// deliberately outside).
        fn encoded<C: StateCodec>(c: &C) -> BitVec {
            let mut v = BitVec::new();
            c.encode_state(&mut BitWriter::new(&mut v));
            v
        }

        fn drive<C: StateCodec + Clone + ac_core::Mergeable + std::fmt::Debug>(template: C) {
            let mut e = CounterEngine::new(template.clone(), cfg());
            let mut gen = SplitMix64::new(21);
            let batch: Vec<(u64, u64)> = (0..400u64)
                .map(|k| (k, 1 + gen.next_u64() % 2_000))
                .collect();
            e.apply(&batch);
            let ck = checkpoint_of(&e);
            let back = restore_checkpoint(&template, ck.bytes()).unwrap();
            for (key, counter) in e.iter() {
                let restored = back.counter(key).expect("key present");
                assert_eq!(encoded(restored), encoded(counter), "key {key}");
                assert_eq!(restored.estimate(), counter.estimate(), "key {key}");
                assert_eq!(restored.state_bits(), counter.state_bits(), "key {key}");
            }
            assert_eq!(back.total_events(), e.total_events());
        }
        drive(ExactCounter::new());
        drive(MorrisCounter::new(0.25).unwrap());
        drive(ac_core::MorrisPlus::new(0.2, 8).unwrap());
        drive(NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap()));
        drive(CsurosCounter::new(8).unwrap());
    }

    #[test]
    fn checkpoint_size_is_near_the_information_content() {
        // Dense keys, light per-key traffic — the fleet-scale workload.
        // Keys + states must land within 2× of counter_state_bits plus
        // framing (the acceptance bound the pipeline bench also checks).
        let p = NyParams::new(0.2, 8).unwrap();
        let mut e =
            CounterEngine::new(NelsonYuCounter::new(p), EngineConfig { shards: 8, seed: 2 });
        let mut gen = SplitMix64::new(4);
        let batch: Vec<(u64, u64)> = (0..20_000u64)
            .map(|k| (k, 1 + gen.next_u64() % 32))
            .collect();
        e.apply(&batch);
        let ck = checkpoint_of(&e);
        let s = ck.stats();
        assert!(
            s.total_bits <= 2 * s.counter_state_bits + s.header_bits,
            "{} bits total vs 2×{} + {} framing",
            s.total_bits,
            s.counter_state_bits,
            s.header_bits
        );
        // And framing itself is a small fraction at this scale.
        assert!(
            s.header_bits < s.total_bits / 4,
            "framing {} of {}",
            s.header_bits,
            s.total_bits
        );
    }
}
