//! The lock-free building blocks under the ingest layer: a fixed-capacity
//! single-producer / single-consumer ring of batch slots, and an
//! eventcount-style doorbell for parking and waking threads without a
//! shared hot-path lock.
//!
//! Both types are `pub(crate)` plumbing: the public surface is
//! [`IngestQueue`](crate::IngestQueue) / [`IngestProducer`](crate::IngestProducer).
//!
//! ## How the ingest layer arranges rings
//!
//! *Pooled* mode gives each producer one ring of whole
//! [`Batch`](crate::Batch)es; a dispatcher pops them, re-hashes every
//! pair, and copies it into per-shard buckets. *Routed* mode
//! ([`IngestQueue::new_routed`](crate::IngestQueue::new_routed)) replaces
//! that single ring with one **lane** per (producer, shard): the producer
//! routes each pair once at send time, pushes each shard's slice into
//! that shard's lane, and the shard worker pops its own lanes directly —
//! no dispatcher copy. The SPSC discipline holds per lane: the producer
//! handle is the only pusher, and within a burst exactly one shard worker
//! pops a given lane ([`SpscRing::pop_if`] bounds it to a consistent
//! cut of fully-published sequence numbers). Memory footprint is
//! `producers × shards` rings of `ring_batches` slots each — size
//! `ring_batches` down (it bounds *per-lane* burst depth, not aggregate
//! throughput) when producer or shard counts are large.
//!
//! ## Why `Mutex<Option<T>>` slots in a "lock-free" ring
//!
//! The crate forbids `unsafe`, so slots cannot be `UnsafeCell`s. Instead
//! each slot is a `Mutex<Option<T>>` that is **uncontended by protocol**:
//! the producer only locks the slot at `tail & mask` *before* publishing
//! `tail`, and the consumer only locks the slot at `head & mask` *after*
//! observing `tail` past it, so at most one thread ever touches a given
//! slot's mutex at a time and every `lock()` is a single uncontended CAS.
//! The coordination proper rides the atomic `head`/`tail` words, each on
//! its own cache line so producer and consumer never false-share.
//!
//! ## Memory ordering
//!
//! `head`/`tail` use `SeqCst` throughout. The ring moves whole batches
//! (thousands of coalesced pairs), so one sequentially-consistent store
//! per batch is noise — and the doorbell protocol needs store→load
//! ordering between "publish tail" and "read waiters" (a Dekker-style
//! pattern that `Release`/`Acquire` alone does not give).

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Condvar, Mutex};

/// Pads (and aligns) a value to a 64-byte cache line so the producer-side
/// and consumer-side counters of a ring never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct CachePadded<T>(pub(crate) T);

/// A bounded single-producer / single-consumer ring of `T` slots with a
/// power-of-two capacity.
///
/// The *discipline* is the caller's: at most one thread may call
/// [`SpscRing::push`] concurrently, and at most one thread may call
/// [`SpscRing::pop`] concurrently (the ingest layer serializes consumers
/// behind its registry lock, and each producer handle owns its ring's
/// push side exclusively). Violating the discipline cannot corrupt
/// memory — the slots are mutexes — but can stall a push or pop.
#[derive(Debug)]
pub(crate) struct SpscRing<T> {
    slots: Box<[Mutex<Option<T>>]>,
    mask: u64,
    /// Next slot to pop (consumer-owned, producer-read).
    head: CachePadded<AtomicU64>,
    /// Next slot to push (producer-owned, consumer-read).
    tail: CachePadded<AtomicU64>,
}

impl<T> SpscRing<T> {
    /// Creates a ring with at least `capacity` slots (rounded up to the
    /// next power of two so index masking is one AND).
    pub(crate) fn new(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| Mutex::new(None)).collect(),
            mask: cap as u64 - 1,
            head: CachePadded(AtomicU64::new(0)),
            tail: CachePadded(AtomicU64::new(0)),
        }
    }

    /// The slot count (a power of two).
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots at this instant.
    pub(crate) fn len(&self) -> usize {
        let tail = self.tail.0.load(SeqCst);
        let head = self.head.0.load(SeqCst);
        tail.wrapping_sub(head) as usize
    }

    /// True when nothing is queued at this instant.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when a push at this instant would be refused.
    pub(crate) fn is_full(&self) -> bool {
        self.len() >= self.slots.len()
    }

    /// Producer side: appends `value`, or returns it when the ring is
    /// full. Never blocks (the slot mutex is uncontended by protocol).
    pub(crate) fn push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.0.load(SeqCst);
        let head = self.head.0.load(SeqCst);
        if tail.wrapping_sub(head) >= self.slots.len() as u64 {
            return Err(value);
        }
        let slot = &self.slots[(tail & self.mask) as usize];
        let mut guard = slot.lock().expect("ring slot lock");
        debug_assert!(guard.is_none(), "slot reused before consumption");
        *guard = Some(value);
        drop(guard);
        // Publishing tail makes the slot poppable; SeqCst so the
        // doorbell's waiter check (a later load in program order) cannot
        // be reordered ahead of it.
        self.tail.0.store(tail.wrapping_add(1), SeqCst);
        Ok(())
    }

    /// Consumer side: removes the oldest value, or `None` when the ring
    /// is empty at this instant. Never blocks.
    pub(crate) fn pop(&self) -> Option<T> {
        let head = self.head.0.load(SeqCst);
        let tail = self.tail.0.load(SeqCst);
        if head == tail {
            return None;
        }
        let slot = &self.slots[(head & self.mask) as usize];
        let value = slot.lock().expect("ring slot lock").take();
        debug_assert!(value.is_some(), "published slot was empty");
        // Freeing the slot *after* taking the value: the producer only
        // reuses it once head has advanced past it.
        self.head.0.store(head.wrapping_add(1), SeqCst);
        value
    }

    /// Consumer side: removes the oldest value only when `eligible`
    /// accepts it; returns `None` (leaving the value queued) otherwise.
    /// The routed drain uses this to stop a lane sweep at its burst's
    /// consistent cut — published-but-uncommitted batches stay put.
    pub(crate) fn pop_if(&self, eligible: impl FnOnce(&T) -> bool) -> Option<T> {
        let head = self.head.0.load(SeqCst);
        let tail = self.tail.0.load(SeqCst);
        if head == tail {
            return None;
        }
        let slot = &self.slots[(head & self.mask) as usize];
        let mut guard = slot.lock().expect("ring slot lock");
        let passes = {
            let value = guard.as_ref().expect("published slot was empty");
            eligible(value)
        };
        if !passes {
            return None;
        }
        let value = guard.take();
        drop(guard);
        self.head.0.store(head.wrapping_add(1), SeqCst);
        value
    }
}

/// An eventcount-style doorbell: waiters park on a condvar, but notifiers
/// pay nothing (one atomic load) while nobody is waiting — unlike a bare
/// `Condvar`, which costs a mutex round trip on every notify.
///
/// The missed-wakeup race is closed Dekker-style: a waiter registers in
/// `waiters` (a `SeqCst` RMW) *before* re-checking its predicate, and a
/// notifier publishes its state change (`SeqCst` store) *before* loading
/// `waiters`; sequential consistency guarantees at least one side sees
/// the other, and the generation lock + condvar close the remaining
/// check-to-sleep window.
#[derive(Debug, Default)]
pub(crate) struct Doorbell {
    /// Threads registered for (or inside) a wait.
    waiters: AtomicU64,
    /// Wakeup generation counter; bumped under the lock by every notify
    /// that found waiters.
    generation: Mutex<u64>,
    bell: Condvar,
}

impl Doorbell {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Wakes every current waiter. Costs one atomic load when nobody
    /// waits — the common case on the hot push/pop path.
    pub(crate) fn notify(&self) {
        if self.waiters.load(SeqCst) == 0 {
            return;
        }
        let mut generation = self.generation.lock().expect("doorbell lock");
        *generation = generation.wrapping_add(1);
        drop(generation);
        self.bell.notify_all();
    }

    /// Parks until `ready()` returns true. `ready` is evaluated with the
    /// doorbell lock held, so it must not touch this doorbell; it may
    /// (and does, in the ingest layer) take other short-lived locks.
    pub(crate) fn wait(&self, mut ready: impl FnMut() -> bool) {
        self.waiters.fetch_add(1, SeqCst);
        let mut generation = self.generation.lock().expect("doorbell lock");
        while !ready() {
            generation = self.bell.wait(generation).expect("doorbell lock");
        }
        drop(generation);
        self.waiters.fetch_sub(1, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(SpscRing::<u32>::new(1).capacity(), 1);
        assert_eq!(SpscRing::<u32>::new(3).capacity(), 4);
        assert_eq!(SpscRing::<u32>::new(64).capacity(), 64);
        assert_eq!(SpscRing::<u32>::new(65).capacity(), 128);
        assert_eq!(SpscRing::<u32>::new(0).capacity(), 1);
    }

    #[test]
    fn push_pop_is_fifo_and_bounded() {
        let ring = SpscRing::new(4);
        for i in 0..4 {
            assert!(ring.push(i).is_ok());
        }
        assert!(ring.is_full());
        assert_eq!(ring.push(99), Err(99), "full ring returns the value");
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert!(ring.is_empty());
        assert_eq!(ring.pop(), None);
        // Wrap-around: indices keep masking correctly past capacity.
        for round in 0..10u64 {
            assert!(ring.push(round).is_ok());
            assert_eq!(ring.pop(), Some(round));
        }
    }

    #[test]
    fn pop_if_stops_at_the_first_ineligible_value() {
        let ring = SpscRing::new(4);
        for i in 0..3 {
            assert!(ring.push(i).is_ok());
        }
        assert_eq!(ring.pop_if(|&v| v <= 1), Some(0));
        assert_eq!(ring.pop_if(|&v| v <= 1), Some(1));
        assert_eq!(ring.pop_if(|&v| v <= 1), None, "2 must stay queued");
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.pop(), Some(2), "ineligible value is untouched");
        assert_eq!(ring.pop_if(|_| true), None, "empty ring");
    }

    #[test]
    fn concurrent_spsc_traffic_preserves_order_and_loses_nothing() {
        let ring = SpscRing::new(8);
        let total = 100_000u64;
        thread::scope(|s| {
            s.spawn(|| {
                for i in 0..total {
                    let mut v = i;
                    loop {
                        match ring.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                // Yield the core: on a single-CPU host a
                                // spin hint would burn the whole quantum
                                // while the consumer waits to run.
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
            s.spawn(|| {
                let mut expected = 0u64;
                while expected < total {
                    if let Some(v) = ring.pop() {
                        assert_eq!(v, expected, "FIFO order violated");
                        expected += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
        assert!(ring.is_empty());
    }

    #[test]
    fn doorbell_wakes_a_parked_waiter() {
        let bell = Doorbell::new();
        let flag = AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|| {
                bell.wait(|| flag.load(SeqCst));
                assert!(flag.load(SeqCst));
            });
            // Racing notify-before-wait and wait-before-notify are both
            // fine: the waiter re-checks under the lock.
            thread::sleep(std::time::Duration::from_millis(10));
            flag.store(true, SeqCst);
            bell.notify();
        });
    }

    #[test]
    fn notify_without_waiters_is_cheap_and_sound() {
        let bell = Doorbell::new();
        for _ in 0..1_000 {
            bell.notify(); // no waiter: must not deadlock or accumulate
        }
        let flag = AtomicBool::new(true);
        bell.wait(|| flag.load(SeqCst)); // already-true predicate returns
    }
}
